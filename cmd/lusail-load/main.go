// Command lusail-load bulk-loads N-Triples data into a disk-backed lusail
// store. Input streams straight through an external merge sort, so the
// dataset being loaded can be far larger than RAM: memory use is bounded
// by -mem regardless of input size.
//
// Usage:
//
//	lusail-load -out university0.lds university0.nt
//	cat *.nt | lusail-load -out all.lds -
//	lusail-load -out u0.lds -mem 256 -verify university0.nt
//
// The store is written to <out>.tmp and renamed into place only when the
// build completes, so an interrupted load never leaves a partial store.
// Serve the result with: lusail-endpoint -store disk:<out>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"lusail/internal/diskstore"
	"lusail/internal/rdf"
)

func main() {
	out := flag.String("out", "", "output store file (required)")
	mem := flag.Int64("mem", 64, "sort-buffer memory budget in MiB")
	dictBlock := flag.Int("dict-block", 0, "terms per dictionary block (default 16)")
	tripleBlock := flag.Int("block", 0, "triples per index block (default 4096)")
	verify := flag.Bool("verify", false, "re-open the store after loading and check counts")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *out == "" {
		log.Fatal("lusail-load: -out is required")
	}
	inputs := flag.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}

	loader, err := diskstore.NewLoader(*out, diskstore.BuildOptions{
		DictBlockSize:   *dictBlock,
		TripleBlockSize: *tripleBlock,
		MemoryBudget:    *mem << 20,
	})
	if err != nil {
		log.Fatalf("lusail-load: %v", err)
	}
	defer loader.Abort()

	start := time.Now()
	var lines int64
	for _, input := range inputs {
		r := os.Stdin
		if input != "-" {
			f, err := os.Open(input)
			if err != nil {
				log.Fatalf("lusail-load: %v", err)
			}
			r = f
		}
		n, err := addFile(loader, r, &lines, *quiet)
		if input != "-" {
			r.Close()
		}
		if err != nil {
			log.Fatalf("lusail-load: %s: %v", input, err)
		}
		if !*quiet {
			fmt.Printf("read %-40s %10d triples\n", input, n)
		}
	}
	stats, err := loader.Finish()
	if err != nil {
		log.Fatalf("lusail-load: %v", err)
	}
	elapsed := time.Since(start)
	if !*quiet {
		rate := float64(stats.TriplesAdded) / elapsed.Seconds()
		fmt.Printf("loaded %d triples (%d distinct, %d terms) into %s: %s (%.0f triples/s, %.1f MiB)\n",
			stats.TriplesAdded, stats.Triples, stats.Terms, *out,
			elapsed.Round(time.Millisecond), rate, float64(stats.FileBytes)/(1<<20))
	}

	if *verify {
		ds, err := diskstore.Open(*out, diskstore.Options{})
		if err != nil {
			log.Fatalf("lusail-load: verify: %v", err)
		}
		defer ds.Close()
		if int64(ds.Len()) != stats.Triples {
			log.Fatalf("lusail-load: verify: store reports %d triples, loader wrote %d", ds.Len(), stats.Triples)
		}
		total := 0
		for _, p := range ds.Predicates() {
			total += ds.PredicateCount(p)
		}
		if int64(total) != stats.Triples {
			log.Fatalf("lusail-load: verify: predicate counts sum to %d, want %d", total, stats.Triples)
		}
		if !*quiet {
			fmt.Printf("verify ok: %d triples, %d predicates\n", ds.Len(), len(ds.Predicates()))
		}
	}
}

// addFile streams one N-Triples input into the loader line by line.
func addFile(loader *diskstore.Loader, r io.Reader, lines *int64, quiet bool) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var n int64
	for sc.Scan() {
		*lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := rdf.ParseTripleLine(line)
		if err != nil {
			return n, fmt.Errorf("line %d: %w", *lines, err)
		}
		if err := loader.Add(t); err != nil {
			return n, err
		}
		n++
		if !quiet && n%5_000_000 == 0 {
			fmt.Printf("  ... %d triples\n", n)
		}
	}
	return n, sc.Err()
}
