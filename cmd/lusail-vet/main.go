// Command lusail-vet runs lusail's project-specific static-analysis suite
// (internal/lint): nine analyzers that machine-check the engine's
// concurrency and resilience invariants — context threading, span
// lifecycle, breaker admission pairing, lock-region I/O, typed-error
// discipline, stream closing, and the interprocedural trio (lock-order
// deadlock detection, goroutine termination evidence, byte-budget
// discipline on decoder loops). It exits non-zero when any diagnostic
// survives suppression.
//
// Usage:
//
//	go run ./cmd/lusail-vet ./...            # whole module
//	go run ./cmd/lusail-vet ./internal/core  # one package
//	go run ./cmd/lusail-vet -run spanend,pairedadmission ./...
//	go run ./cmd/lusail-vet -tests ./...     # include _test.go files
//	go run ./cmd/lusail-vet -sarif ./...     # SARIF 2.1.0 for code scanning
//	go run ./cmd/lusail-vet -list            # describe the analyzers
//
// Suppress a deliberate finding with a justified directive on (or directly
// above) the flagged line:
//
//	//lint:lusail-vet ctxflow -- detached background loop with own stop channel
//
// See the "Static analysis" section of README.md and DESIGN.md
// "Machine-checked invariants" for what each analyzer enforces and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lusail/internal/lint"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	includeTests := flag.Bool("tests", false, "also analyze _test.go files")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (for GitHub code scanning); always exits 0 unless loading fails")
	timings := flag.Bool("timings", false, "report per-analyzer wall-clock time on stderr")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *runList != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runList, ","))
		if err != nil {
			fatal(err)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n\t"))
		}
		return
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *includeTests

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		loaded, err := loadArg(loader, arg)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, loaded...)
	}

	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			failed = true
			fmt.Fprintf(os.Stderr, "%v\n", terr)
		}
	}

	diags, perAnalyzer := lint.RunTimed(pkgs, analyzers, loader.Fset)
	if *timings {
		var total time.Duration
		for _, tm := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "timings: %-20s %12s\n", tm.Name, tm.Elapsed.Round(time.Microsecond))
			total += tm.Elapsed
		}
		fmt.Fprintf(os.Stderr, "timings: %-20s %12s\n", "total", total.Round(time.Microsecond))
	}
	if *sarifOut {
		data, err := lint.RenderSARIF(diags, analyzers, loader.ModuleDir)
		if err != nil {
			fatal(err)
		}
		if err := lint.ValidateSARIF(data); err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		// SARIF mode reports; the findings gate via code scanning, not the
		// exit status, so one finding does not abort the upload step.
		if failed {
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// loadArg loads the packages named by one command-line pattern: a
// directory, or a directory followed by /... for the whole subtree.
func loadArg(loader *lint.Loader, arg string) ([]*lint.Package, error) {
	if arg == "./..." || arg == "..." {
		return loader.LoadAll(loader.ModuleDir)
	}
	if root, ok := strings.CutSuffix(arg, "/..."); ok {
		return loader.LoadAll(root)
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(loader.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lusail-vet: %s is outside module %s", arg, loader.ModuleDir)
	}
	importPath := loader.ModulePath
	if rel != "." {
		importPath = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return loader.LoadDir(abs, importPath)
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lusail-vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lusail-vet: %v\n", err)
	os.Exit(2)
}
