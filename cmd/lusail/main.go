// Command lusail runs a federated SPARQL query against a set of remote
// endpoints.
//
// Usage:
//
//	lusail -endpoint u0=http://host1:8081/sparql \
//	       -endpoint u1=http://host2:8081/sparql \
//	       -query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 10'
//
// Add -profile to print the per-phase breakdown (source selection, LADE
// analysis, SAPE execution) and the decomposition chosen by the engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lusail"
)

type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }
func (e *endpointFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var endpoints endpointFlags
	flag.Var(&endpoints, "endpoint", "endpoint as name=url (repeatable)")
	query := flag.String("query", "", "SPARQL query text")
	queryFile := flag.String("query-file", "", "read the query from a file")
	format := flag.String("format", "table", "output format: table, json, csv, or tsv")
	profile := flag.Bool("profile", false, "print the engine's phase profile")
	timeout := flag.Duration("timeout", time.Hour, "query timeout")
	noSAPE := flag.Bool("disable-sape", false, "run with LADE only (no selectivity-aware execution)")
	flag.Parse()

	if len(endpoints) == 0 {
		log.Fatal("lusail: at least one -endpoint name=url is required")
	}
	q := *query
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatalf("lusail: %v", err)
		}
		q = string(data)
	}
	if strings.TrimSpace(q) == "" {
		log.Fatal("lusail: provide -query or -query-file")
	}

	var eps []lusail.Endpoint
	for _, spec := range endpoints {
		name, url, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("lusail: invalid -endpoint %q, want name=url", spec)
		}
		eps = append(eps, lusail.NewHTTPEndpoint(name, url))
	}
	opts := lusail.DefaultOptions()
	opts.DisableSAPE = *noSAPE
	eng, err := lusail.NewEngine(eps, opts)
	if err != nil {
		log.Fatalf("lusail: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, prof, err := eng.QueryString(ctx, q)
	if err != nil {
		log.Fatalf("lusail: %v", err)
	}

	switch *format {
	case "json":
		if err := res.WriteJSON(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
		fmt.Println()
	case "csv":
		if err := res.WriteCSV(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
	case "tsv":
		if err := res.WriteTSV(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
	default:
		printTable(res)
	}
	if *profile {
		fmt.Fprintf(os.Stderr, "\nphases: source-selection=%v analysis=%v execution=%v total=%v\n",
			prof.SourceSelection, prof.Analysis, prof.Execution, prof.Total)
		fmt.Fprintf(os.Stderr, "GJVs: %v  subqueries: %d (%d delayed)  checks: %d  count-probes: %d\n",
			prof.GJVs, prof.Subqueries, prof.Delayed, prof.ChecksIssued, prof.CountProbes)
		for _, d := range prof.Decomposition {
			fmt.Fprintf(os.Stderr, "  subquery %s\n", d)
		}
	}
}

func printTable(res *lusail.Results) {
	if res.IsBoolean {
		fmt.Println(res.Boolean)
		return
	}
	fmt.Println(strings.Join(res.Vars, "\t"))
	for i := range res.Rows {
		cells := make([]string, len(res.Vars))
		for j := range res.Vars {
			t := res.Rows[i][j]
			if !t.IsZero() {
				cells[j] = t.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d result(s)\n", res.Len())
}
