// Command lusail runs a federated SPARQL query against a set of remote
// endpoints.
//
// Usage:
//
//	lusail -endpoint u0=http://host1:8081/sparql \
//	       -endpoint u1=http://host2:8081/sparql \
//	       -query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 10'
//
// Add -profile to print the per-phase breakdown (source selection, LADE
// analysis, SAPE execution) and the decomposition chosen by the engine.
//
// Add -repeat N to run the query N times against one engine instance. The
// engine (and its source-selection and check caches) is built once, so runs
// after the first measure query execution rather than engine rebuild —
// the right way to time warm-cache behavior from the CLI. Per-run timings
// go to stderr; the result set is printed once, from the final run.
//
// Add -explain to print the full query plan and execution profile: the
// decomposition, the span tree of everything the engine did (ASK probes,
// check queries, COUNT probes, subqueries, bound-join batches, joins), and
// a per-endpoint table of requests, rows, and bytes. -trace-out writes the
// same span tree in Chrome trace_event format for chrome://tracing or
// Perfetto. -admin serves /metrics (Prometheus text) and /debug/federation
// (JSON) while the query runs.
//
// Add -catalog catalog.json (built beforehand with lusail-catalog) to
// answer source selection and cardinality estimation from precomputed
// summaries instead of per-query ASK/COUNT probes; -catalog-ttl bounds how
// old a summary may be before the engine falls back to probing.
//
// Add -on-failure=degrade to answer from the remaining endpoints when one
// fails mid-query instead of failing the whole query (partial results; the
// excluded contributions are reported as warnings on stderr). Degrade mode
// also enables per-endpoint circuit breakers and hedged probes with the
// library defaults. The default, -on-failure=fail, keeps strict
// all-or-nothing semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"lusail"
	"lusail/internal/obs"
)

type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }
func (e *endpointFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var endpoints endpointFlags
	flag.Var(&endpoints, "endpoint", "endpoint as name=url (repeatable)")
	query := flag.String("query", "", "SPARQL query text")
	queryFile := flag.String("query-file", "", "read the query from a file")
	format := flag.String("format", "table", "output format: table, json, csv, or tsv")
	profile := flag.Bool("profile", false, "print the engine's phase profile")
	explain := flag.Bool("explain", false, "print the query plan and a span-level execution profile")
	traceOut := flag.String("trace-out", "", "write the query's span tree as a Chrome trace_event file")
	admin := flag.String("admin", "", "serve /metrics and /debug/federation on this address (e.g. 127.0.0.1:9090)")
	timeout := flag.Duration("timeout", time.Hour, "query timeout")
	repeat := flag.Int("repeat", 1, "run the query N times against ONE engine: caches and endpoint state stay warm, so runs after the first measure execution (plus any cache-miss planning), not engine rebuild; per-run timings go to stderr and results print once")
	noSAPE := flag.Bool("disable-sape", false, "run with LADE only (no selectivity-aware execution)")
	catalogPath := flag.String("catalog", "", "endpoint catalog file (built with lusail-catalog) for probe-free source selection and cardinality estimation")
	catalogTTL := flag.Duration("catalog-ttl", 24*time.Hour, "treat catalog summaries older than this as stale (0 = never stale)")
	onFailure := flag.String("on-failure", "fail", "endpoint failure policy: fail (whole query errors) or degrade (partial results from the surviving endpoints)")
	flag.Parse()

	if len(endpoints) == 0 {
		log.Fatal("lusail: at least one -endpoint name=url is required")
	}
	q := *query
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatalf("lusail: %v", err)
		}
		q = string(data)
	}
	if strings.TrimSpace(q) == "" {
		log.Fatal("lusail: provide -query or -query-file")
	}

	var eps []lusail.Endpoint
	for _, spec := range endpoints {
		name, url, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("lusail: invalid -endpoint %q, want name=url", spec)
		}
		// Instrument every endpoint so the per-endpoint table of -explain
		// and the /metrics series of -admin have data.
		eps = append(eps, lusail.Instrument(lusail.NewHTTPEndpoint(name, url), nil))
	}
	opts := lusail.DefaultOptions()
	opts.DisableSAPE = *noSAPE
	opts.Trace = *explain || *traceOut != ""
	switch *onFailure {
	case "fail":
	case "degrade":
		opts.OnEndpointFailure = lusail.Degrade
		opts.Resilience = lusail.DefaultResilience()
	default:
		log.Fatalf("lusail: invalid -on-failure %q, want fail or degrade", *onFailure)
	}
	if *catalogPath != "" {
		cat, err := lusail.OpenCatalog(*catalogPath, *catalogTTL)
		if err != nil {
			log.Fatalf("lusail: %v", err)
		}
		if cat.Len() == 0 {
			log.Printf("lusail: catalog %s is empty; run lusail-catalog build first (falling back to probes)", *catalogPath)
		}
		opts.Catalog = cat
	}
	eng, err := lusail.NewEngine(eps, opts)
	if err != nil {
		log.Fatalf("lusail: %v", err)
	}

	if *admin != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default().MetricsHandler())
		mux.Handle("/debug/federation", obs.Default().DebugHandler())
		go func() {
			if err := http.ListenAndServe(*admin, mux); err != nil {
				log.Printf("lusail: admin listener: %v", err)
			}
		}()
	}

	if *repeat < 1 {
		log.Fatalf("lusail: -repeat must be >= 1, got %d", *repeat)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// All -repeat runs share this one engine: the source-selection and
	// check caches stay warm after run 1, so later runs time execution
	// rather than engine construction + cold planning.
	var res *lusail.Results
	var prof *lusail.Profile
	for i := 0; i < *repeat; i++ {
		res, prof, err = eng.QueryString(ctx, q)
		if err != nil {
			log.Fatalf("lusail: run %d/%d: %v", i+1, *repeat, err)
		}
		if *repeat > 1 {
			fmt.Fprintf(os.Stderr, "run %d/%d: total=%v (source-selection=%v analysis=%v execution=%v)\n",
				i+1, *repeat, prof.Total, prof.SourceSelection, prof.Analysis, prof.Execution)
		}
	}
	for _, w := range prof.Warnings {
		fmt.Fprintf(os.Stderr, "warning: endpoint %s (%s): %s\n", w.Endpoint, w.Phase, w.Message)
	}

	switch *format {
	case "json":
		if err := res.WriteJSON(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
		fmt.Println()
	case "csv":
		if err := res.WriteCSV(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
	case "tsv":
		if err := res.WriteTSV(os.Stdout); err != nil {
			log.Fatalf("lusail: %v", err)
		}
	default:
		printTable(res)
	}
	if *profile {
		fmt.Fprintf(os.Stderr, "\nphases: source-selection=%v analysis=%v execution=%v total=%v\n",
			prof.SourceSelection, prof.Analysis, prof.Execution, prof.Total)
		fmt.Fprintf(os.Stderr, "GJVs: %v  subqueries: %d (%d delayed)  checks: %d  count-probes: %d  catalog-hits: %d\n",
			prof.GJVs, prof.Subqueries, prof.Delayed, prof.ChecksIssued, prof.CountProbes, prof.CatalogHits)
		for _, d := range prof.Decomposition {
			fmt.Fprintf(os.Stderr, "  subquery %s\n", d)
		}
	}
	if *explain {
		fmt.Fprintf(os.Stderr, "\n== PLAN ==\n")
		fmt.Fprintf(os.Stderr, "GJVs: %v  subqueries: %d (%d delayed)\n",
			prof.GJVs, prof.Subqueries, prof.Delayed)
		for _, d := range prof.Decomposition {
			fmt.Fprintf(os.Stderr, "  subquery %s\n", d)
		}
		fmt.Fprintf(os.Stderr, "\n== PROFILE ==\n")
		if err := obs.WriteExplain(os.Stderr, prof.Trace); err != nil {
			log.Fatalf("lusail: %v", err)
		}
		fmt.Fprintln(os.Stderr)
		if err := obs.WriteEndpointStats(os.Stderr, obs.Default()); err != nil {
			log.Fatalf("lusail: %v", err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("lusail: %v", err)
		}
		if err := obs.WriteChromeTrace(f, prof.Trace); err != nil {
			log.Fatalf("lusail: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("lusail: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
}

func printTable(res *lusail.Results) {
	if res.IsBoolean {
		fmt.Println(res.Boolean)
		return
	}
	fmt.Println(strings.Join(res.Vars, "\t"))
	for i := range res.Rows {
		cells := make([]string, len(res.Vars))
		for j := range res.Vars {
			t := res.Rows[i][j]
			if !t.IsZero() {
				cells[j] = t.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d result(s)\n", res.Len())
}
