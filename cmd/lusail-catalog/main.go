// Command lusail-catalog builds, inspects, and refreshes the persistent
// endpoint catalog consumed by lusail's -catalog flag: one data summary
// per endpoint (predicates, classes, VoID-style counts, URI-authority
// sketches, probed capabilities) that replaces per-query ASK and COUNT
// probes.
//
// Usage:
//
//	lusail-catalog build -endpoint u0=http://host1:8081/sparql \
//	    -endpoint u1=http://host2:8081/sparql -out catalog.json
//	lusail-catalog inspect -catalog catalog.json [-verbose]
//	lusail-catalog refresh -catalog catalog.json -ttl 24h \
//	    -endpoint u0=http://host1:8081/sparql -endpoint u1=...
//
// build scans every endpoint and writes a fresh catalog. refresh rebuilds
// only summaries older than -ttl (or missing), leaving fresh ones
// untouched. inspect prints what the catalog knows without contacting any
// endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"lusail"
)

type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }
func (e *endpointFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lusail-catalog: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	case "refresh":
		runRefresh(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lusail-catalog {build|inspect|refresh} [flags]")
	fmt.Fprintln(os.Stderr, "  build   -endpoint name=url ... -out catalog.json [-timeout 10m]")
	fmt.Fprintln(os.Stderr, "  inspect -catalog catalog.json [-ttl 24h] [-verbose]")
	fmt.Fprintln(os.Stderr, "  refresh -catalog catalog.json -endpoint name=url ... [-ttl 24h] [-timeout 10m]")
	os.Exit(2)
}

func parseEndpoints(specs endpointFlags) []lusail.Endpoint {
	if len(specs) == 0 {
		log.Fatal("at least one -endpoint name=url is required")
	}
	var eps []lusail.Endpoint
	for _, spec := range specs {
		name, url, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("invalid -endpoint %q, want name=url", spec)
		}
		eps = append(eps, lusail.NewHTTPEndpoint(name, url))
	}
	return eps
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var endpoints endpointFlags
	fs.Var(&endpoints, "endpoint", "endpoint as name=url (repeatable)")
	out := fs.String("out", "catalog.json", "output catalog file")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall build timeout")
	fs.Parse(args)

	eps := parseEndpoints(endpoints)
	cat := lusail.NewCatalog(*out, 0)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	if err := lusail.BuildCatalog(ctx, eps, cat); err != nil {
		log.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d summaries in %v -> %s\n", cat.Len(), time.Since(start).Round(time.Millisecond), *out)
}

func runRefresh(args []string) {
	fs := flag.NewFlagSet("refresh", flag.ExitOnError)
	var endpoints endpointFlags
	fs.Var(&endpoints, "endpoint", "endpoint as name=url (repeatable)")
	path := fs.String("catalog", "catalog.json", "catalog file to refresh in place")
	ttl := fs.Duration("ttl", 24*time.Hour, "rebuild summaries older than this (0 = only missing ones)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall refresh timeout")
	fs.Parse(args)

	eps := parseEndpoints(endpoints)
	cat, err := lusail.OpenCatalog(*path, *ttl)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	n, err := lusail.RefreshCatalog(ctx, eps, cat)
	if err != nil {
		log.Fatal(err)
	}
	if n > 0 {
		if err := cat.Save(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("refreshed %d of %d summaries in %v -> %s\n", n, cat.Len(), time.Since(start).Round(time.Millisecond), *path)
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("catalog", "catalog.json", "catalog file to inspect")
	ttl := fs.Duration("ttl", 24*time.Hour, "staleness horizon used for the fresh column (0 = never stale)")
	verbose := fs.Bool("verbose", false, "also list per-predicate statistics")
	fs.Parse(args)

	cat, err := lusail.OpenCatalog(*path, *ttl)
	if err != nil {
		log.Fatal(err)
	}
	if cat.Len() == 0 {
		fmt.Printf("%s: empty catalog\n", *path)
		return
	}
	now := time.Now()
	fmt.Printf("%-20s %10s %6s %8s %7s %6s %6s %9s\n",
		"endpoint", "triples", "preds", "classes", "values", "trunc", "fresh", "age")
	for _, name := range cat.Endpoints() {
		sum, ok := cat.Summary(name)
		if !ok {
			continue
		}
		fresh := "yes"
		if !sum.Fresh(now, *ttl) {
			fresh = "STALE"
		}
		fmt.Printf("%-20s %10d %6d %8d %7v %6v %6s %9s\n",
			sum.Endpoint, sum.Triples, len(sum.Predicates), len(sum.Classes),
			sum.Capabilities.SupportsValues, sum.Capabilities.Truncated, fresh,
			sum.Age(now).Round(time.Second))
		if !*verbose {
			continue
		}
		preds := make([]string, 0, len(sum.Predicates))
		for p := range sum.Predicates {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		for _, p := range preds {
			ps := sum.Predicates[p]
			fmt.Printf("    %-60s triples=%d subjects=%d objects=%d literals=%d\n",
				p, ps.Triples, ps.Subjects, ps.Objects, ps.LiteralObjects)
		}
	}
}
