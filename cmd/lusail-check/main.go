// Command lusail-check runs lusail's static SPARQL query analysis
// (internal/sparql/sema) over query files: the same checks the engine runs
// before planning, as a standalone vet for query corpora, examples, and CI.
//
// Usage:
//
//	go run ./cmd/lusail-check queries/q1.rq          # one file
//	go run ./cmd/lusail-check examples/ bench/       # directories, *.rq recursively
//	go run ./cmd/lusail-check -                      # query text on stdin
//	go run ./cmd/lusail-check -run cartesian,unboundvar queries/
//	go run ./cmd/lusail-check -json queries/         # structured diagnostics
//	go run ./cmd/lusail-check -sarif queries/        # SARIF 2.1.0 for code scanning
//	go run ./cmd/lusail-check -canon queries/q1.rq   # print canonical form + plan-cache key
//	go run ./cmd/lusail-check -list                  # describe the checks
//	go run ./cmd/lusail-check -corpus                # vet the built-in benchmark corpora
//
// Suppress a deliberate warning with a justified directive comment in the
// query text itself:
//
//	# lusail-check: cartesian -- bound-join bridging makes this cross product cheap
//
// Error-tier findings are never suppressible: the engine rejects those
// queries before planning, so a suppression would only defer the failure.
//
// Exit codes mirror lusail-vet: 0 clean, 1 findings survived (or parse
// failures in the corpus), 2 usage or I/O errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"lusail/internal/bench"
	"lusail/internal/lint"
	"lusail/internal/sparql"
	"lusail/internal/sparql/sema"
)

func main() {
	runList := flag.String("run", "", "comma-separated check subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (for GitHub code scanning); always exits 0 unless reading fails")
	canon := flag.Bool("canon", false, "print each query's canonical form and plan-cache key instead of analyzing")
	corpus := flag.Bool("corpus", false, "also vet the built-in benchmark corpora (LUBM, QFed, LargeRDFBench, Bio2RDF)")
	list := flag.Bool("list", false, "list checks and exit")
	flag.Parse()

	checks := sema.All()
	if *runList != "" {
		var err error
		checks, err = sema.ByName(strings.Split(*runList, ","))
		if err != nil {
			fatal(err)
		}
	}
	if *list {
		for _, c := range checks {
			fmt.Printf("%s (%s)\n\t%s\n\n", c.Name, c.Severity, strings.ReplaceAll(c.Doc, "\n", "\n\t"))
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 && !*corpus {
		fmt.Fprintln(os.Stderr, "usage: lusail-check [flags] <query.rq|dir|-> ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var files []queryFile
	for _, arg := range args {
		loaded, err := loadArg(arg)
		if err != nil {
			fatal(err)
		}
		files = append(files, loaded...)
	}
	if *corpus {
		files = append(files, corpusFiles()...)
	}

	// Parse failures are findings too — a corpus file the engine cannot
	// parse is at least as broken as one it rejects — but they render as
	// diagnostics, not a tool abort, so one bad file doesn't hide the rest.
	failed := false
	var diags []fileDiagnostic
	for _, f := range files {
		q, err := sparql.Parse(f.src)
		if err != nil {
			failed = true
			d := sparql.SemaDiagnostic{Check: "parse", Severity: sparql.SevError, Message: err.Error()}
			var perr *sparql.ParseError
			if errors.As(err, &perr) {
				d.Pos, d.Line, d.Col = perr.Pos, perr.Line, perr.Col
				d.Message = perr.Msg
				if perr.Token != "" {
					d.Message += fmt.Sprintf(" (at %q)", perr.Token)
				}
			}
			diags = append(diags, fileDiagnostic{File: f.name, SemaDiagnostic: d})
			continue
		}
		if *canon {
			text := sema.CanonicalText(q)
			fmt.Printf("# %s\n# key: %s\n%s\n", f.name, sema.KeyOf(text), text)
			continue
		}
		for _, d := range sema.AnalyzeWith(q, f.src, checks) {
			if d.Severity == sparql.SevError {
				failed = true
			}
			diags = append(diags, fileDiagnostic{File: f.name, SemaDiagnostic: d})
		}
	}
	if *canon {
		return
	}

	switch {
	case *sarifOut:
		data, err := renderSARIF(diags, checks)
		if err != nil {
			fatal(err)
		}
		if err := lint.ValidateSARIF(data); err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		// SARIF mode reports; findings gate via code scanning, not the exit
		// status — except parse failures, which mean the corpus is broken.
		if failed {
			os.Exit(1)
		}
		return
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%s\n", d.File, d.SemaDiagnostic.String())
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// queryFile is one query to analyze.
type queryFile struct {
	name string // display path ("<stdin>" for -)
	src  string
}

// fileDiagnostic prefixes a sema diagnostic with the file it came from.
type fileDiagnostic struct {
	File string `json:"file"`
	sparql.SemaDiagnostic
}

// loadArg resolves one command-line argument: "-" reads stdin, a directory
// is walked for *.rq files, anything else is read as a query file.
func loadArg(arg string) ([]queryFile, error) {
	if arg == "-" {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, fmt.Errorf("reading stdin: %w", err)
		}
		return []queryFile{{name: "<stdin>", src: string(src)}}, nil
	}
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		src, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return []queryFile{{name: arg, src: string(src)}}, nil
	}
	var out []queryFile
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".rq") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out = append(out, queryFile{name: path, src: string(src)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// corpusFiles returns every query in the built-in benchmark corpora as a
// pseudo-file named bench:<suite>/<query>, so the corpora the experiments
// run are held to the same semantic bar as on-disk query files.
func corpusFiles() []queryFile {
	var out []queryFile
	for _, suite := range []struct {
		name    string
		queries []bench.Query
	}{
		{"lubm", bench.LUBMQueries()},
		{"qfed", bench.QFedQueries()},
		{"lrb-simple", bench.LRBSimpleQueries()},
		{"lrb-complex", bench.LRBComplexQueries()},
		{"lrb-large", bench.LRBLargeQueries()},
		{"bio2rdf", bench.Bio2RDFQueries()},
	} {
		for _, q := range suite.queries {
			out = append(out, queryFile{
				name: fmt.Sprintf("bench:%s/%s", suite.name, q.Name),
				src:  q.Text,
			})
		}
	}
	return out
}

// renderSARIF adapts sema diagnostics to the shared SARIF renderer: each
// check becomes a rule, each finding a result located in its query file.
func renderSARIF(diags []fileDiagnostic, checks []*sema.Check) ([]byte, error) {
	rules := make([]*lint.Analyzer, 0, len(checks)+2)
	for _, c := range checks {
		rules = append(rules, &lint.Analyzer{Name: c.Name, Doc: c.Doc})
	}
	rules = append(rules,
		&lint.Analyzer{Name: sema.DirectiveCheck, Doc: "malformed or unused # lusail-check suppression directive"},
		&lint.Analyzer{Name: "parse", Doc: "query file does not parse"})
	converted := make([]lint.Diagnostic, 0, len(diags))
	for _, d := range diags {
		line, col := d.Line, d.Col
		if line == 0 {
			line = 1 // SARIF requires a positive startLine
		}
		converted = append(converted, lint.Diagnostic{
			Analyzer: d.Check,
			Pos:      token.Position{Filename: d.File, Line: line, Column: col},
			Message:  fmt.Sprintf("%s: %s", d.Severity, d.Message),
		})
	}
	moduleDir, _ := os.Getwd()
	return lint.RenderSARIFTool(converted, rules, moduleDir, "lusail-check")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lusail-check: %v\n", err)
	os.Exit(2)
}
