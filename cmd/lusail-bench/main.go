// Command lusail-bench regenerates the paper's tables and figures against
// the synthetic federations, printing each as a text table. See DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded paper-vs-
// measured comparisons.
//
// Usage:
//
//	lusail-bench                       # run everything at scale 1
//	lusail-bench -experiment fig9      # one experiment
//	lusail-bench -scale 4 -timeout 2m  # bigger data, longer cutoff
//
// Experiments: table1, fig8, fig9, fig10, fig11, fig12a, fig12bc, fig13,
// fig14, table2, qerror, preprocessing, blocksize, poolsize, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lusail/internal/bench"
	"lusail/internal/obs"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or comma list)")
	scale := flag.Int("scale", 1, "dataset scale factor")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query timeout")
	repeats := flag.Int("repeats", 3, "runs per query (first is warmup)")
	endpoints := flag.String("endpoints", "4,16,64,256", "endpoint counts for fig12bc")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/federation on this address while experiments run")
	flag.Parse()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default().MetricsHandler())
		mux.Handle("/debug/federation", obs.Default().DebugHandler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("lusail-bench: metrics listener: %v", err)
			}
		}()
	}

	opts := bench.ExpOptions{Scale: *scale, Timeout: *timeout, Repeats: *repeats}

	var counts []int
	for _, s := range strings.Split(*endpoints, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("lusail-bench: invalid -endpoints %q", *endpoints)
		}
		counts = append(counts, n)
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	want := func(id string) bool { return wanted["all"] || wanted[id] }
	show := func(t *bench.Table, err error) {
		if err != nil {
			log.Fatalf("lusail-bench: %v", err)
		}
		fmt.Println(t.String())
	}
	showAll := func(ts []*bench.Table, err error) {
		if err != nil {
			log.Fatalf("lusail-bench: %v", err)
		}
		for _, t := range ts {
			fmt.Println(t.String())
		}
	}

	start := time.Now()
	if want("table1") {
		fmt.Println(bench.Table1Datasets(opts).String())
	}
	if want("fig8") {
		show(bench.Fig8QFed(opts))
	}
	if want("fig9") {
		showAll(bench.Fig9LUBM(opts))
	}
	if want("fig10") {
		showAll(bench.Fig10LargeRDFBench(opts))
	}
	if want("fig11") {
		showAll(bench.Fig11Geo(opts))
	}
	if want("fig12a") {
		show(bench.Fig12aProfile(opts))
	}
	if want("fig12bc") {
		showAll(bench.Fig12bcScaling(counts, opts))
	}
	if want("fig13") {
		show(bench.Fig13Thresholds(opts))
	}
	if want("fig14") {
		show(bench.Fig14Ablation(opts))
	}
	if want("table2") {
		show(bench.Table2RealEndpoints(opts))
	}
	if want("qerror") {
		t, _, err := bench.QErrorExperiment(opts)
		show(t, err)
	}
	if want("preprocessing") {
		show(bench.PreprocessingCost(opts))
	}
	if want("blocksize") {
		show(bench.BlockSizeAblation(opts))
	}
	if want("poolsize") {
		show(bench.PoolSizeAblation(opts))
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}
