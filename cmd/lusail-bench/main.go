// Command lusail-bench regenerates the paper's tables and figures against
// the synthetic federations, printing each as a text table. See DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded paper-vs-
// measured comparisons.
//
// Usage:
//
//	lusail-bench                       # run everything at scale 1
//	lusail-bench -experiment fig9      # one experiment
//	lusail-bench -scale 4 -timeout 2m  # bigger data, longer cutoff
//	lusail-bench -experiment catalog -json .  # also write BENCH_catalog.json
//
// Experiments: table1, fig8, fig9, fig10, fig11, fig12a, fig12bc, fig13,
// fig14, table2, qerror, preprocessing, blocksize, poolsize, catalog,
// faults, service, diskscale, pipeline, all.
//
// -metrics-addr also exposes /debug/pprof/ for live CPU and heap profiles
// of a running experiment.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lusail/internal/bench"
	"lusail/internal/core"
	"lusail/internal/lint/leakcheck"
	"lusail/internal/obs"
	"lusail/internal/resilience"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or comma list)")
	scale := flag.Int("scale", 1, "dataset scale factor")
	timeout := flag.Duration("timeout", 60*time.Second, "per-query timeout")
	repeats := flag.Int("repeats", 3, "runs per query (first is warmup)")
	endpoints := flag.String("endpoints", "4,16,64,256", "endpoint counts for fig12bc")
	faultRate := flag.Float64("fault-rate", 0.3, "injected error rate of the faulty endpoint (faults experiment)")
	faultHang := flag.Float64("fault-hang", 0.1, "injected hang rate of the faulty endpoint (faults experiment)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/federation on this address while experiments run")
	jsonDir := flag.String("json", "", "also write each experiment's tables to BENCH_<id>.json in this directory")
	checkInvariants := flag.Bool("check-invariants", false, "run a single LUBM query with resilience enabled under a goroutine-leak check and exit")
	flag.Parse()

	if *checkInvariants {
		if err := runInvariantSmoke(context.Background(), *timeout); err != nil {
			log.Fatalf("lusail-bench: invariant smoke failed: %v", err)
		}
		fmt.Println("invariant smoke passed: query answered, breaker state consistent, no goroutines leaked")
		return
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default().MetricsHandler())
		mux.Handle("/debug/federation", obs.Default().DebugHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("lusail-bench: metrics listener: %v", err)
			}
		}()
	}

	ctx := context.Background()
	opts := bench.ExpOptions{Scale: *scale, Timeout: *timeout, Repeats: *repeats, FaultRate: *faultRate, FaultHang: *faultHang}

	var counts []int
	for _, s := range strings.Split(*endpoints, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("lusail-bench: invalid -endpoints %q", *endpoints)
		}
		counts = append(counts, n)
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	want := func(id string) bool { return wanted["all"] || wanted[id] }
	emit := func(id string, ts []*bench.Table, err error) {
		if err != nil {
			log.Fatalf("lusail-bench: %v", err)
		}
		for _, t := range ts {
			fmt.Println(t.String())
		}
		if *jsonDir == "" {
			return
		}
		path := filepath.Join(*jsonDir, "BENCH_"+id+".json")
		data, err := json.MarshalIndent(ts, "", "  ")
		if err != nil {
			log.Fatalf("lusail-bench: encoding %s: %v", path, err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("lusail-bench: %v", err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	show := func(id string) func(t *bench.Table, err error) {
		return func(t *bench.Table, err error) {
			if err != nil {
				emit(id, nil, err)
				return
			}
			emit(id, []*bench.Table{t}, nil)
		}
	}

	start := time.Now()
	if want("table1") {
		show("table1")(bench.Table1Datasets(opts), nil)
	}
	if want("fig8") {
		show("fig8")(bench.Fig8QFed(ctx, opts))
	}
	if want("fig9") {
		ts, err := bench.Fig9LUBM(ctx, opts)
		emit("fig9", ts, err)
	}
	if want("fig10") {
		ts, err := bench.Fig10LargeRDFBench(ctx, opts)
		emit("fig10", ts, err)
	}
	if want("fig11") {
		ts, err := bench.Fig11Geo(ctx, opts)
		emit("fig11", ts, err)
	}
	if want("fig12a") {
		show("fig12a")(bench.Fig12aProfile(ctx, opts))
	}
	if want("fig12bc") {
		ts, err := bench.Fig12bcScaling(ctx, counts, opts)
		emit("fig12bc", ts, err)
	}
	if want("fig13") {
		show("fig13")(bench.Fig13Thresholds(ctx, opts))
	}
	if want("fig14") {
		show("fig14")(bench.Fig14Ablation(ctx, opts))
	}
	if want("table2") {
		show("table2")(bench.Table2RealEndpoints(ctx, opts))
	}
	if want("qerror") {
		t, _, err := bench.QErrorExperiment(ctx, opts)
		show("qerror")(t, err)
	}
	if want("preprocessing") {
		show("preprocessing")(bench.PreprocessingCost(ctx, opts))
	}
	if want("blocksize") {
		show("blocksize")(bench.BlockSizeAblation(ctx, opts))
	}
	if want("poolsize") {
		show("poolsize")(bench.PoolSizeAblation(ctx, opts))
	}
	if want("catalog") {
		show("catalog")(bench.CatalogProbes(ctx, opts))
	}
	if want("faults") {
		ts, err := bench.FaultsExperiment(ctx, opts)
		emit("faults", ts, err)
	}
	if want("service") {
		show("service")(bench.ServiceExperiment(ctx, opts))
	}
	if want("pipeline") {
		show("pipeline")(bench.PipelineExperiment(ctx, opts))
	}
	if want("diskscale") {
		// The JSON id is the subsystem name: BENCH_diskstore.json.
		ts, err := bench.DiskScale(ctx, opts)
		emit("diskstore", ts, err)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

// runInvariantSmoke is the -check-invariants mode: one LUBM query on a
// 2-university federation with the full resilience stack active (breakers
// and hedged probes), bracketed by a goroutine-leak check. It exercises at
// runtime the same invariants lusail-vet enforces statically — every claimed
// breaker admission recorded, every span ended, every goroutine rooted in a
// cancellable context — and fails non-zero if the engine strands work.
func runInvariantSmoke(ctx context.Context, timeout time.Duration) error {
	base := leakcheck.Take()
	fed, err := bench.NewFed(bench.GenerateLUBM(bench.DefaultLUBM(2)), bench.InProcess())
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.OnEndpointFailure = core.Degrade
	opts.Resilience = resilience.Config{
		FailureThreshold: 0.5,
		Window:           20,
		MinSamples:       5,
		Cooldown:         time.Second,
		HedgeQuantile:    0.9,
		HedgeWarmup:      2,
		HedgeMinDelay:    time.Millisecond,
	}
	eng := fed.NewLusail(opts)
	q := bench.LUBMQueries()[0]
	qctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res, _, err := eng.QueryString(qctx, q.Text)
	if err != nil {
		return fmt.Errorf("query %s: %w", q.Name, err)
	}
	if res.Len() == 0 {
		return fmt.Errorf("query %s: empty result set", q.Name)
	}
	for _, ds := range fed.Datasets {
		if st := eng.Resilience().State(ds.Name); st != resilience.Closed {
			return fmt.Errorf("breaker %s ended the healthy run in state %v", ds.Name, st)
		}
	}
	return leakcheck.Verify(base, leakcheck.DefaultGrace)
}
