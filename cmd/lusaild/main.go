// Command lusaild serves a Lusail federation as a long-running, multi-tenant
// SPARQL endpoint: the demo scenario of many concurrent users querying one
// long-lived federation.
//
// Usage:
//
//	lusaild -addr :8094 \
//	        -endpoint u0=http://host1:8081/sparql \
//	        -endpoint u1=http://host2:8081/sparql
//
//	curl 'http://localhost:8094/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+5'
//
// The service exposes:
//
//	/sparql           SPARQL 1.1 protocol (GET ?query=, POST form, POST
//	                  application/sparql-query); results stream as
//	                  sparql-results+json (CSV/TSV/XML via Accept)
//	/healthz          liveness + federation shape
//	/metrics          Prometheus text (plan/result cache, admission, ...)
//	/admin/plancache  cached plans and the current epoch
//	/admin/tenants    per-tenant quota state
//	/debug/pprof/     live CPU/heap/goroutine profiles
//
// Query plans are cached across requests keyed on the normalized query text
// and invalidated when the catalog changes, so repeated query shapes skip
// decomposition and GJV analysis. Tenants are identified by the
// X-Lusail-Tenant header (or an API key mapped with -api-key); each tenant
// gets a token-bucket rate quota and a bounded concurrency gate. Over-rate
// requests get a structured JSON 429, and requests beyond the wait queue
// are shed with 503. SIGINT/SIGTERM drains gracefully: the listener closes,
// in-flight queries finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lusail"
	"lusail/internal/core"
	"lusail/internal/federation"
	"lusail/internal/server"
)

type repeatable []string

func (r *repeatable) String() string { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var endpoints, tenants, apiKeys repeatable
	flag.Var(&endpoints, "endpoint", "endpoint as name=url (repeatable)")
	flag.Var(&tenants, "tenant", "tenant quota as name=rate:burst:concurrency:queue (repeatable; e.g. gold=10:20:8:16)")
	flag.Var(&apiKeys, "api-key", "API key mapping as key=tenant (repeatable)")
	addr := flag.String("addr", ":8094", "listen address")
	planCache := flag.Int("plan-cache", 256, "max cached query plans (0 disables the plan cache)")
	resultCache := flag.Int("result-cache", 128, "max cached results (0 disables the result cache)")
	resultTTL := flag.Duration("result-cache-ttl", 30*time.Second, "result cache entry lifetime")
	defRate := flag.Float64("rate", 0, "default tenant rate quota in queries/second (0 = unlimited)")
	defBurst := flag.Int("burst", 0, "default tenant burst (0 = derived from -rate)")
	defConcurrency := flag.Int("concurrency", 4, "default tenant concurrent-query limit")
	defQueue := flag.Int("queue", 0, "default tenant wait-queue depth (0 = 2x concurrency)")
	queryTimeout := flag.Duration("query-timeout", 5*time.Minute, "per-query execution timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	noSAPE := flag.Bool("disable-sape", false, "run with LADE only (no selectivity-aware execution)")
	catalogPath := flag.String("catalog", "", "endpoint catalog file (built with lusail-catalog) for probe-free planning")
	catalogTTL := flag.Duration("catalog-ttl", 24*time.Hour, "treat catalog summaries older than this as stale (0 = never stale)")
	onFailure := flag.String("on-failure", "degrade", "endpoint failure policy: fail or degrade (partial results)")
	flag.Parse()

	if len(endpoints) == 0 {
		log.Fatal("lusaild: at least one -endpoint name=url is required")
	}
	var eps []lusail.Endpoint
	for _, spec := range endpoints {
		name, url, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("lusaild: invalid -endpoint %q, want name=url", spec)
		}
		eps = append(eps, lusail.Instrument(lusail.NewHTTPEndpoint(name, url), nil))
	}

	opts := lusail.DefaultOptions()
	opts.DisableSAPE = *noSAPE
	switch *onFailure {
	case "fail":
	case "degrade":
		opts.OnEndpointFailure = lusail.Degrade
		opts.Resilience = lusail.DefaultResilience()
	default:
		log.Fatalf("lusaild: invalid -on-failure %q, want fail or degrade", *onFailure)
	}
	if *catalogPath != "" {
		cat, err := lusail.OpenCatalog(*catalogPath, *catalogTTL)
		if err != nil {
			log.Fatalf("lusaild: %v", err)
		}
		opts.Catalog = cat
	}

	fed, err := federation.New(eps...)
	if err != nil {
		log.Fatalf("lusaild: %v", err)
	}
	eng, err := core.New(fed, opts)
	if err != nil {
		log.Fatalf("lusaild: %v", err)
	}

	cfg := server.Config{
		Engine:             eng,
		PlanCacheSize:      *planCache,
		DisablePlanCache:   *planCache == 0,
		ResultCacheSize:    *resultCache,
		ResultCacheTTL:     *resultTTL,
		DisableResultCache: *resultCache == 0,
		DefaultTenant: server.TenantConfig{
			RatePerSec:    *defRate,
			Burst:         *defBurst,
			MaxConcurrent: *defConcurrency,
			MaxQueue:      *defQueue,
		},
		Tenants:      map[string]server.TenantConfig{},
		APIKeys:      map[string]string{},
		QueryTimeout: *queryTimeout,
	}
	for _, spec := range tenants {
		name, quota, err := parseTenant(spec)
		if err != nil {
			log.Fatalf("lusaild: %v", err)
		}
		cfg.Tenants[name] = quota
	}
	for _, spec := range apiKeys {
		key, tenant, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("lusaild: invalid -api-key %q, want key=tenant", spec)
		}
		cfg.APIKeys[key] = tenant
	}

	srv, err := server.Start(*addr, cfg)
	if err != nil {
		log.Fatalf("lusaild: %v", err)
	}
	log.Printf("lusaild: serving %d endpoint(s) at %s (epoch %s)", fed.Size(), srv.URL, eng.Epoch())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	log.Printf("lusaild: draining (up to %v)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("lusaild: drain incomplete: %v", err)
		_ = srv.Close()
		os.Exit(1)
	}
	log.Printf("lusaild: drained cleanly")
}

// parseTenant parses name=rate:burst:concurrency:queue (trailing fields
// optional).
func parseTenant(spec string) (string, server.TenantConfig, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", server.TenantConfig{}, fmt.Errorf("invalid -tenant %q, want name=rate:burst:concurrency:queue", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) > 4 {
		return "", server.TenantConfig{}, fmt.Errorf("invalid -tenant %q: at most 4 quota fields", spec)
	}
	var quota server.TenantConfig
	for i, p := range parts {
		if p == "" {
			continue
		}
		switch i {
		case 0:
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return "", server.TenantConfig{}, fmt.Errorf("invalid -tenant %q rate: %w", spec, err)
			}
			quota.RatePerSec = v
		default:
			v, err := strconv.Atoi(p)
			if err != nil {
				return "", server.TenantConfig{}, fmt.Errorf("invalid -tenant %q field %d: %w", spec, i, err)
			}
			switch i {
			case 1:
				quota.Burst = v
			case 2:
				quota.MaxConcurrent = v
			case 3:
				quota.MaxQueue = v
			}
		}
	}
	return name, quota, nil
}
