// Command lusail-datagen generates the synthetic benchmark federations
// (LUBM, QFed, LargeRDFBench-like, Bio2RDF-like) as N-Triples files, one
// per endpoint, ready to be served with lusail-endpoint.
//
// Usage:
//
//	lusail-datagen -benchmark lubm -universities 4 -out ./data
//	lusail-datagen -benchmark lrb -scale 2 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"lusail"
	"lusail/internal/bench"
)

func main() {
	benchmark := flag.String("benchmark", "lubm", "benchmark: lubm, qfed, lrb, bio2rdf")
	out := flag.String("out", ".", "output directory")
	scale := flag.Int("scale", 1, "scale factor")
	universities := flag.Int("universities", 4, "universities (lubm only)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var datasets []bench.Dataset
	switch *benchmark {
	case "lubm":
		cfg := bench.DefaultLUBM(*universities)
		cfg.StudentsPerDept *= *scale
		cfg.Seed = *seed
		datasets = bench.GenerateLUBM(cfg)
	case "qfed":
		cfg := bench.DefaultQFed()
		cfg.Drugs *= *scale
		cfg.Diseases *= *scale
		cfg.Seed = *seed
		datasets = bench.GenerateQFed(cfg)
	case "lrb":
		datasets = bench.GenerateLRB(bench.LRBConfig{Scale: *scale, Seed: *seed})
	case "bio2rdf":
		datasets = bench.GenerateBio2RDF(bench.Bio2RDFConfig{Scale: *scale, Seed: *seed})
	default:
		log.Fatalf("lusail-datagen: unknown benchmark %q", *benchmark)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("lusail-datagen: %v", err)
	}
	total := 0
	for _, ds := range datasets {
		name := strings.ToLower(strings.ReplaceAll(ds.Name, " ", "-")) + ".nt"
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("lusail-datagen: %v", err)
		}
		if err := lusail.WriteNTriples(f, ds.Triples); err != nil {
			log.Fatalf("lusail-datagen: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("lusail-datagen: %v", err)
		}
		fmt.Printf("%-30s %8d triples -> %s\n", ds.Name, len(ds.Triples), path)
		total += len(ds.Triples)
	}
	fmt.Printf("%-30s %8d triples total\n", "", total)
}
