// Command lusail-datagen generates the synthetic benchmark federations
// (LUBM, QFed, LargeRDFBench-like, Bio2RDF-like) as N-Triples files, one
// per endpoint, ready to be served with lusail-endpoint or bulk-loaded
// into a disk store with lusail-load.
//
// LUBM datasets stream to disk triple by triple, so generation memory is
// constant regardless of scale; the -preset flag jumps straight to the
// paper's data magnitudes:
//
//	lusail-datagen -benchmark lubm -universities 4 -out ./data
//	lusail-datagen -benchmark lubm -preset 1m -out ./data
//	lusail-datagen -benchmark lrb -scale 2 -out ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"lusail"
	"lusail/internal/bench"
	"lusail/internal/rdf"
)

// presets size the LUBM federation to round triple counts. Triples per
// department ≈ 2 + 7·profs + 8·students, plus 3 per university.
var presets = map[string]bench.LUBMConfig{
	// ~100K triples across 4 endpoints.
	"100k": {Universities: 4, DeptsPerUniv: 10, ProfsPerDept: 20, StudentsPerDept: 295, Seed: 1, RemoteDegreeRatio: 0.3},
	// ~1M triples across 4 endpoints: the smallest of the paper's magnitudes.
	"1m": {Universities: 4, DeptsPerUniv: 25, ProfsPerDept: 40, StudentsPerDept: 1200, Seed: 1, RemoteDegreeRatio: 0.3},
	// ~10M triples across 8 endpoints.
	"10m": {Universities: 8, DeptsPerUniv: 50, ProfsPerDept: 50, StudentsPerDept: 3050, Seed: 1, RemoteDegreeRatio: 0.3},
}

func main() {
	benchmark := flag.String("benchmark", "lubm", "benchmark: lubm, qfed, lrb, bio2rdf")
	out := flag.String("out", ".", "output directory")
	scale := flag.Int("scale", 1, "scale factor")
	universities := flag.Int("universities", 4, "universities (lubm only)")
	preset := flag.String("preset", "", "lubm size preset: 100k, 1m, 10m (overrides -scale/-universities)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("lusail-datagen: %v", err)
	}

	if *benchmark == "lubm" {
		cfg := bench.DefaultLUBM(*universities)
		cfg.StudentsPerDept *= *scale
		if *preset != "" {
			p, ok := presets[strings.ToLower(*preset)]
			if !ok {
				log.Fatalf("lusail-datagen: unknown preset %q (have 100k, 1m, 10m)", *preset)
			}
			cfg = p
		}
		cfg.Seed = *seed
		if err := streamLUBM(cfg, *out); err != nil {
			log.Fatalf("lusail-datagen: %v", err)
		}
		return
	}

	var datasets []bench.Dataset
	switch *benchmark {
	case "qfed":
		cfg := bench.DefaultQFed()
		cfg.Drugs *= *scale
		cfg.Diseases *= *scale
		cfg.Seed = *seed
		datasets = bench.GenerateQFed(cfg)
	case "lrb":
		datasets = bench.GenerateLRB(bench.LRBConfig{Scale: *scale, Seed: *seed})
	case "bio2rdf":
		datasets = bench.GenerateBio2RDF(bench.Bio2RDFConfig{Scale: *scale, Seed: *seed})
	default:
		log.Fatalf("lusail-datagen: unknown benchmark %q", *benchmark)
	}

	total := 0
	for _, ds := range datasets {
		path := filepath.Join(*out, fileName(ds.Name))
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("lusail-datagen: %v", err)
		}
		if err := lusail.WriteNTriples(f, ds.Triples); err != nil {
			log.Fatalf("lusail-datagen: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("lusail-datagen: %v", err)
		}
		fmt.Printf("%-30s %8d triples -> %s\n", ds.Name, len(ds.Triples), path)
		total += len(ds.Triples)
	}
	fmt.Printf("%-30s %8d triples total\n", "", total)
}

func fileName(dataset string) string {
	return strings.ToLower(strings.ReplaceAll(dataset, " ", "-")) + ".nt"
}

// streamLUBM writes each university's dataset as it is generated, never
// holding more than one triple in memory.
func streamLUBM(cfg bench.LUBMConfig, out string) error {
	type sink struct {
		f *os.File
		w *bufio.Writer
		n int64
	}
	sinks := map[string]*sink{}
	var order []string
	err := bench.EmitLUBM(cfg, func(dataset string, t rdf.Triple) error {
		s, ok := sinks[dataset]
		if !ok {
			f, err := os.Create(filepath.Join(out, fileName(dataset)))
			if err != nil {
				return err
			}
			s = &sink{f: f, w: bufio.NewWriterSize(f, 1<<20)}
			sinks[dataset] = s
			order = append(order, dataset)
		}
		if _, err := s.w.WriteString(t.String()); err != nil {
			return err
		}
		if err := s.w.WriteByte('\n'); err != nil {
			return err
		}
		s.n++
		return nil
	})
	var total int64
	for _, name := range order {
		s := sinks[name]
		if ferr := s.w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if cerr := s.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Printf("%-30s %8d triples -> %s\n", name, s.n, filepath.Join(out, fileName(name)))
			total += s.n
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-30s %8d triples total\n", "", total)
	return nil
}
