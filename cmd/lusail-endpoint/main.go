// Command lusail-endpoint serves an RDF dataset over HTTP using the SPARQL
// 1.1 protocol, playing the role of one endpoint in a federation.
//
// Usage:
//
//	lusail-endpoint -addr :8081 -name university0 -data u0.nt
//	lusail-endpoint -addr :8081 -name university0 -store disk:u0.lds
//
// With the default in-memory backend, the dataset is read from a Turtle or
// N-Triples file (or stdin with -data -). With -store disk:<path>, the
// endpoint serves a disk-backed store built by lusail-load: startup is
// immediate and memory stays within the block-cache budget no matter how
// large the store file is. Either way the endpoint answers SELECT and ASK
// queries at / and /sparql via GET or POST and returns
// application/sparql-results+json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"lusail"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	name := flag.String("name", "endpoint", "endpoint name")
	data := flag.String("data", "-", "Turtle or N-Triples file to serve ('-' for stdin)")
	storeFlag := flag.String("store", "mem", "backend: 'mem' (load -data into memory) or 'disk:<path>' (serve a lusail-load store)")
	cacheMiB := flag.Int64("cache", 0, "disk store block-cache budget in MiB (0 = default 64)")
	quiet := flag.Bool("quiet", false, "suppress startup output")
	flag.Parse()

	var g lusail.Graph
	switch {
	case *storeFlag == "mem":
		in := os.Stdin
		if *data != "-" {
			f, err := os.Open(*data)
			if err != nil {
				log.Fatalf("lusail-endpoint: %v", err)
			}
			defer f.Close()
			in = f
		}
		triples, err := lusail.ParseTurtle(in)
		if err != nil {
			log.Fatalf("lusail-endpoint: parsing %s: %v", *data, err)
		}
		g = lusail.NewMemoryStore(triples)
	case strings.HasPrefix(*storeFlag, "disk:"):
		path := strings.TrimPrefix(*storeFlag, "disk:")
		ds, err := lusail.OpenDiskStore(path, lusail.DiskStoreOptions{CacheBytes: *cacheMiB << 20})
		if err != nil {
			log.Fatalf("lusail-endpoint: %v", err)
		}
		defer ds.Close()
		g = ds
	default:
		log.Fatalf("lusail-endpoint: invalid -store %q (want 'mem' or 'disk:<path>')", *storeFlag)
	}

	srv, err := lusail.ServeGraph(*name, *addr, g)
	if err != nil {
		log.Fatalf("lusail-endpoint: %v", err)
	}
	defer srv.Close()
	if !*quiet {
		fmt.Printf("endpoint %q serving %d triples at %s\n", *name, g.Len(), srv.URL)
		base := strings.TrimSuffix(srv.URL, "/sparql")
		fmt.Printf("metrics at %s/metrics (Prometheus text), snapshot at %s/debug/federation\n", base, base)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
