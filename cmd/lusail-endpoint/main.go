// Command lusail-endpoint serves an RDF dataset over HTTP using the SPARQL
// 1.1 protocol, playing the role of one endpoint in a federation.
//
// Usage:
//
//	lusail-endpoint -addr :8081 -name university0 -data u0.nt
//
// The dataset is read from a Turtle or N-Triples file (or stdin with -data -). The
// endpoint answers SELECT and ASK queries at / and /sparql via GET or POST
// and returns application/sparql-results+json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"lusail"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	name := flag.String("name", "endpoint", "endpoint name")
	data := flag.String("data", "-", "Turtle or N-Triples file to serve ('-' for stdin)")
	quiet := flag.Bool("quiet", false, "suppress startup output")
	flag.Parse()

	in := os.Stdin
	if *data != "-" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatalf("lusail-endpoint: %v", err)
		}
		defer f.Close()
		in = f
	}
	triples, err := lusail.ParseTurtle(in)
	if err != nil {
		log.Fatalf("lusail-endpoint: parsing %s: %v", *data, err)
	}

	srv, err := lusail.Serve(*name, *addr, triples)
	if err != nil {
		log.Fatalf("lusail-endpoint: %v", err)
	}
	defer srv.Close()
	if !*quiet {
		fmt.Printf("endpoint %q serving %d triples at %s\n", *name, len(triples), srv.URL)
		base := strings.TrimSuffix(srv.URL, "/sparql")
		fmt.Printf("metrics at %s/metrics (Prometheus text), snapshot at %s/debug/federation\n", base, base)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
