package lusail_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 5). Each benchmark regenerates its experiment — workload,
// parameter sweep, baselines — and prints the resulting table once (run
// with -v to see it). Absolute numbers come from the scaled-down synthetic
// substrate; the shapes (who wins, by what factor, where crossovers fall)
// are the reproduction target recorded in EXPERIMENTS.md.
//
// Run:
//
//	go test -bench=. -benchmem .
//	go run ./cmd/lusail-bench -scale 4   # bigger data, full tables

import (
	"context"
	"testing"
	"time"

	"lusail/internal/bench"
)

func benchExp() bench.ExpOptions {
	return bench.ExpOptions{Scale: 1, Timeout: 30 * time.Second, Repeats: 1}
}

// logTables prints experiment output on the first iteration only.
func logTables(b *testing.B, i int, tables ...*bench.Table) {
	if i != 0 {
		return
	}
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

func BenchmarkTable1_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table1Datasets(benchExp())
		logTables(b, i, t)
	}
}

func BenchmarkFig8_QFed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig8QFed(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkFig9_LUBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := bench.Fig9LUBM(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, ts...)
	}
}

func BenchmarkFig10_LargeRDFBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := bench.Fig10LargeRDFBench(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, ts...)
	}
}

func BenchmarkFig11_Geo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := bench.Fig11Geo(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, ts...)
	}
}

func BenchmarkFig12a_Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig12aProfile(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkFig12bc_Scaling(b *testing.B) {
	// 2..32 endpoints keeps each iteration under a few seconds; the cmd
	// tool sweeps to 256 (the paper's maximum).
	for i := 0; i < b.N; i++ {
		ts, err := bench.Fig12bcScaling(context.Background(), []int{2, 8, 32}, benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, ts...)
	}
}

func BenchmarkDiskScale(b *testing.B) {
	// The 100k tier keeps each iteration in seconds; the cmd tool runs the
	// full magnitude grid (10⁵–10⁶+ triples) for BENCH_diskstore.json.
	for i := 0; i < b.N; i++ {
		ts, err := bench.DiskScale(context.Background(), benchExp(), "lubm-100k")
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, ts...)
	}
}

func BenchmarkFig13_Thresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13Thresholds(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkFig14_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig14Ablation(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkTable2_RealEndpoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table2RealEndpoints(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkQError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, median, err := bench.QErrorExperiment(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(median, "median-q-error")
		}
		logTables(b, i, t)
	}
}

func BenchmarkPreprocessingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.PreprocessingCost(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.BlockSizeAblation(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}

func BenchmarkAblationPoolSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.PoolSizeAblation(context.Background(), benchExp())
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, i, t)
	}
}
