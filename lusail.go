// Package lusail is the public API of this repository: a federated SPARQL
// query processor over decentralized RDF graphs, reproducing the system of
// "Lusail: A System for Querying Linked Data at Scale" (PVLDB 11(4), 2017;
// demonstrated at SIGMOD 2017).
//
// A federation is a set of independently maintained SPARQL endpoints.
// Lusail answers a query over the union of their data by:
//
//  1. selecting the relevant endpoints per triple pattern (ASK probes),
//  2. decomposing the query with LADE — instance-aware locality checks
//     that detect which join variables can be resolved inside endpoints
//     and which require a global join, and
//  3. executing the resulting subqueries with SAPE — selectivity-aware
//     scheduling that runs cheap subqueries concurrently, delays expensive
//     ones into bound joins, and joins results with a cost-ordered
//     parallel hash join.
//
// Quick start:
//
//	eps := []lusail.Endpoint{
//		lusail.NewHTTPEndpoint("dblp", "https://dblp.example/sparql"),
//		lusail.NewHTTPEndpoint("dbpedia", "https://dbpedia.example/sparql"),
//	}
//	eng, err := lusail.NewEngine(eps, lusail.DefaultOptions())
//	...
//	res, profile, err := eng.QueryString(ctx, "SELECT ?s WHERE { ... }")
//
// # Canonical call pattern
//
// Execution is streaming end to end: endpoint responses are decoded
// incrementally and flow through a pull-based operator pipeline, so memory
// is bounded by operator state, not result size. The primary entry point
// is the cursor:
//
//	rows, err := eng.Select(ctx, query) // SELECT only
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row() // []Term aligned to rows.Vars()
//	}
//	if err := rows.Err(); err != nil { ... }
//	prof := rows.Profile() // available after Close
//
// Close is required on every path; it cancels in-flight endpoint work and
// finalizes the Profile. The remaining entry points are conveniences over
// the same pipeline — context first, query text in:
//
//	res, prof, err := eng.QueryString(ctx, query)         // SELECT / ASK, materialized
//	triples, prof, err := eng.ConstructString(ctx, query) // CONSTRUCT
//
// Engine.QueryEarly (emit-callback delivery) is deprecated in favor of
// Select; the package-level Construct and QueryEarly functions are
// deprecated thin wrappers kept for compatibility.
//
// # Resilience
//
// Real federations are flaky. Options has a Resilience section that makes
// the engine fault-tolerant without changing its answers on healthy
// federations:
//
//	opts := lusail.DefaultOptions()
//	opts.OnEndpointFailure = lusail.Degrade        // partial results
//	opts.Resilience = lusail.DefaultResilience()   // breakers + hedged probes
//
// With OnEndpointFailure = Degrade, an endpoint failure during execution
// excludes that endpoint's contribution instead of aborting: the answer is
// complete over the endpoints that responded, and each absorbed failure is
// recorded as a structured entry in Profile.Warnings. Circuit breakers stop
// sending to endpoints whose recent failure rate crosses a threshold, and
// idempotent probes (ASK, COUNT, checks) are hedged with a second request
// when they outlive the endpoint's adaptive latency quantile. WithFaults
// wraps any endpoint with deterministic fault injection for testing.
//
// Endpoints can also be served from this process (see Serve and
// NewMemoryEndpoint), which is how the benchmark suite builds federations
// of up to 256 endpoints on one machine.
package lusail

import (
	"context"
	"io"
	"time"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/diskstore"
	"lusail/internal/endpoint"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// Re-exported data-model types.
type (
	// Term is an RDF term (IRI, literal, or blank node).
	Term = rdf.Term
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Results is a SPARQL result set (SELECT solutions or ASK boolean).
	Results = sparql.Results
	// Query is a parsed SPARQL query.
	Query = sparql.Query
	// Endpoint is anything queryable with SPARQL: a remote HTTP endpoint,
	// an in-process store, or a wrapped/instrumented endpoint.
	Endpoint = client.Endpoint
	// Engine is the Lusail federated query processor.
	Engine = core.Engine
	// Options configures the engine.
	Options = core.Options
	// Profile reports per-phase timings and planning counters of a query.
	Profile = core.Profile
	// Rows is the streaming cursor returned by Engine.Select and
	// Engine.ExecutePlanStream: iterate with Next/Row (or Scan/Binding),
	// check Err after the loop, and Close on every path.
	Rows = core.Rows
	// Plan is a reusable execution plan: the output of source selection and
	// LADE analysis for one query, executable many times with
	// Engine.ExecutePlan / Engine.ExecutePlanStream. Services cache Plans
	// keyed on query shape and Epoch.
	Plan = core.Plan
	// Epoch identifies an engine's planning inputs (federation identity +
	// catalog generation); plans and caches keyed on it are invalidated
	// when it changes.
	Epoch = core.Epoch
	// ThresholdMode selects SAPE's delay rule.
	ThresholdMode = core.ThresholdMode
	// Metrics counts requests/rows/bytes flowing through endpoints.
	Metrics = client.Metrics
	// Store is an in-memory indexed triple store.
	Store = store.Store
	// Graph is the read interface both triple-store backends implement:
	// the in-memory Store and the disk-backed DiskStore. Endpoints serve
	// either through the same evaluator and HTTP handler.
	Graph = store.Graph
	// DiskStore is a read-only, disk-backed compressed triple store
	// (front-coded term dictionary + varint-delta triple blocks in three
	// permutations) accessed through a bounded LRU block cache. Build one
	// with BuildDiskStore or cmd/lusail-load, open it with OpenDiskStore.
	DiskStore = diskstore.Store
	// DiskStoreOptions tunes how a DiskStore is opened (block-cache
	// memory budget).
	DiskStoreOptions = diskstore.Options
	// Server is a running HTTP SPARQL endpoint.
	Server = endpoint.Server
	// Catalog is a persistent endpoint catalog: one data summary per
	// endpoint that lets the engine answer source selection and
	// cardinality estimation without per-query ASK/COUNT probes. Assign
	// one to Options.Catalog to enable the probe-free tier.
	Catalog = catalog.Store
	// CatalogSummary is one endpoint's data summary inside a Catalog.
	CatalogSummary = catalog.Summary
	// FailureMode selects what an endpoint failure means during execution
	// (Options.OnEndpointFailure): FailFast aborts, Degrade excludes the
	// endpoint's contribution and records a Profile warning.
	FailureMode = core.FailureMode
	// ResilienceConfig tunes circuit breakers and hedged probes
	// (Options.Resilience). The zero value disables both.
	ResilienceConfig = resilience.Config
	// Warning is one structured record of an endpoint failure absorbed by
	// Degrade mode, surfaced in Profile.Warnings.
	Warning = resilience.Warning
	// FaultSpec describes deterministic fault injection for WithFaults.
	FaultSpec = resilience.FaultSpec
	// EndpointError is the typed error wrapping every failed endpoint
	// request, carrying the endpoint name and request phase. Extract with
	// errors.As.
	EndpointError = client.EndpointError
	// ParseError is the typed error for malformed SPARQL, carrying the byte
	// offset of the failure. Extract with errors.As.
	ParseError = sparql.ParseError
	// SemaError is the typed error for queries rejected by static query
	// analysis before planning (error-tier findings such as an unbound
	// projection). It carries the diagnostics; extract with errors.As.
	SemaError = sparql.SemaError
	// SemaDiagnostic is one static-analysis finding: check name, severity,
	// message, and (when source text was available) line/column.
	SemaDiagnostic = sparql.SemaDiagnostic
	// SemaSeverity is the tier of a SemaDiagnostic: SevError findings
	// reject the query, SevWarning and SevInfo surface in the profile.
	SemaSeverity = sparql.Severity
)

// Sentinel errors of the resilience layer; test with errors.Is.
var (
	// ErrBreakerOpen is the cause of requests rejected by an open circuit
	// breaker.
	ErrBreakerOpen = resilience.ErrBreakerOpen
	// ErrInjected is the cause of failures produced by WithFaults.
	ErrInjected = resilience.ErrInjected
)

// Failure modes for Options.OnEndpointFailure.
const (
	FailFast = core.FailFast
	Degrade  = core.Degrade
)

// Severity tiers of static-analysis diagnostics (SemaDiagnostic.Severity).
const (
	SevInfo    = sparql.SevInfo
	SevWarning = sparql.SevWarning
	SevError   = sparql.SevError
)

// Threshold modes for Options.Threshold (paper Section 5.4).
const (
	ThresholdMuSigma  = core.ThresholdMuSigma
	ThresholdMu       = core.ThresholdMu
	ThresholdMu2Sigma = core.ThresholdMu2Sigma
	ThresholdOutliers = core.ThresholdOutliers
)

// DefaultOptions returns the engine configuration used in the paper's main
// experiments (μ+σ delay threshold, caches on). Resilience is disabled by
// default; see DefaultResilience.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultResilience returns the recommended resilience settings for
// Options.Resilience: circuit breakers at a 50% failure rate over a
// 20-request window with a 5s cooldown, and p90 tail hedging for
// idempotent probes.
func DefaultResilience() ResilienceConfig { return resilience.DefaultConfig() }

// WithFaults wraps an endpoint with deterministic fault injection per spec:
// seeded, so a given spec reproduces the same request-by-request fault
// sequence on every run. For chaos tests and the `faults` bench experiment;
// injected failures wrap ErrInjected.
func WithFaults(ep Endpoint, spec FaultSpec) Endpoint {
	return resilience.WithFaults(ep, spec)
}

// NewEngine builds a Lusail engine over a federation of endpoints.
// Endpoint names must be unique.
func NewEngine(endpoints []Endpoint, opts Options) (*Engine, error) {
	fed, err := federation.New(endpoints...)
	if err != nil {
		return nil, err
	}
	return core.New(fed, opts)
}

// NewHTTPEndpoint returns a client for a remote SPARQL 1.1 endpoint with
// the default response-size cap (see HTTPOptions).
func NewHTTPEndpoint(name, url string) Endpoint {
	return client.NewHTTP(name, url)
}

// HTTPOptions tunes an HTTP endpoint client: the underlying *http.Client
// and the response-size cap, whose breach surfaces as an EndpointError
// wrapping ErrResponseTooLarge instead of a silent truncation.
type HTTPOptions = client.HTTPOptions

// ErrResponseTooLarge is the cause of requests aborted because an endpoint
// response exceeded the configured size cap; test with errors.Is.
var ErrResponseTooLarge = client.ErrResponseTooLarge

// NewHTTPEndpointWithOptions returns a client for a remote SPARQL 1.1
// endpoint with explicit options, or an error when they fail Validate.
func NewHTTPEndpointWithOptions(name, url string, opts HTTPOptions) (Endpoint, error) {
	return client.NewHTTPWithOptions(name, url, opts)
}

// NewMemoryEndpoint returns an in-process endpoint over the given triples.
func NewMemoryEndpoint(name string, triples []Triple) Endpoint {
	return client.NewInProcess(name, store.NewFromTriples(triples))
}

// NewMemoryStore returns an in-memory store holding the given triples.
func NewMemoryStore(triples []Triple) *Store {
	return store.NewFromTriples(triples)
}

// NewStoreEndpoint returns an in-process endpoint over an existing store.
func NewStoreEndpoint(name string, st *Store) Endpoint {
	return client.NewInProcess(name, st)
}

// NewGraphEndpoint returns an in-process endpoint over any graph backend —
// in-memory or disk-backed.
func NewGraphEndpoint(name string, g Graph) Endpoint {
	return client.NewInProcess(name, g)
}

// OpenDiskStore opens a disk-backed triple store previously built with
// BuildDiskStore or cmd/lusail-load. The zero Options applies the default
// block-cache budget; the store is read-only and safe for concurrent use.
// Close it when done.
func OpenDiskStore(path string, opts DiskStoreOptions) (*DiskStore, error) {
	return diskstore.Open(path, opts)
}

// BuildDiskStore streams triples into a new disk-store file at path using
// bounded memory (external merge sort). For datasets larger than RAM, use
// cmd/lusail-load, which streams straight from N-Triples files.
func BuildDiskStore(path string, triples []Triple) error {
	return diskstore.Build(path, triples, diskstore.BuildOptions{})
}

// Instrument wraps an endpoint so every request is counted in m. Several
// endpoints may share one Metrics for federation-wide totals.
func Instrument(ep Endpoint, m *Metrics) Endpoint {
	return client.NewInstrumented(ep, m)
}

// WithLatency wraps an endpoint with simulated network delay: a fixed
// round-trip time per request plus a transfer time proportional to response
// size at the given bandwidth (bytes/second; 0 disables). It reproduces
// geo-distributed deployments on one machine.
func WithLatency(ep Endpoint, rtt time.Duration, bytesPerSecond int64) Endpoint {
	return client.NewLatency(ep, rtt, bytesPerSecond)
}

// Serve starts an HTTP SPARQL endpoint for the triples on addr
// (e.g. "127.0.0.1:8080" or ":0" for an ephemeral port). The returned
// server reports its URL and is shut down with Close.
func Serve(name, addr string, triples []Triple) (*Server, error) {
	return endpoint.Serve(name, addr, store.NewFromTriples(triples))
}

// ServeGraph starts an HTTP SPARQL endpoint over an existing graph backend
// (in-memory or disk-backed). See Serve for the address semantics.
func ServeGraph(name, addr string, g Graph) (*Server, error) {
	return endpoint.Serve(name, addr, g)
}

// NewCatalog returns an empty catalog that saves to path (empty for
// in-memory only). Summaries older than ttl are treated as stale and the
// engine falls back to probes for them; ttl <= 0 means summaries never
// expire.
func NewCatalog(path string, ttl time.Duration) *Catalog {
	return catalog.NewStore(path, ttl)
}

// OpenCatalog loads a catalog previously saved to path (a missing file
// yields an empty catalog). See NewCatalog for the ttl semantics.
func OpenCatalog(path string, ttl time.Duration) (*Catalog, error) {
	return catalog.Open(path, ttl)
}

// BuildCatalog scans every endpoint and stores one fresh summary per
// endpoint into cat, replacing any existing ones. The scan is the same
// offline preprocessing the paper's index-based baselines perform.
func BuildCatalog(ctx context.Context, endpoints []Endpoint, cat *Catalog) error {
	fed, err := federation.New(endpoints...)
	if err != nil {
		return err
	}
	return catalog.Build(ctx, fed, erh.New(0), cat)
}

// RefreshCatalog rebuilds only the stale or missing summaries for the
// given endpoints, returning how many were rebuilt.
func RefreshCatalog(ctx context.Context, endpoints []Endpoint, cat *Catalog) (int, error) {
	fed, err := federation.New(endpoints...)
	if err != nil {
		return 0, err
	}
	return catalog.Refresh(ctx, fed, erh.New(0), cat)
}

// QueryEarly executes a federated query and delivers solutions to emit as
// soon as they are complete (the paper's future-work "fast and early
// results" mode). See Engine.QueryEarly for eligibility rules; the
// returned bool reports whether streaming was possible.
//
// Deprecated: call eng.QueryEarly(ctx, query, emit) directly; query entry
// points are Engine methods.
func QueryEarly(ctx context.Context, eng *Engine, query string, emit func(map[string]Term) bool) (bool, error) {
	return eng.QueryEarly(ctx, query, emit)
}

// Parse parses a SPARQL query in the supported subset.
func Parse(query string) (*Query, error) { return sparql.Parse(query) }

// Construct executes a federated CONSTRUCT query, returning the
// instantiated (deduplicated) triples.
//
// Deprecated: call eng.ConstructString(ctx, query) directly; query entry
// points are Engine methods.
func Construct(ctx context.Context, eng *Engine, query string) ([]Triple, *Profile, error) {
	return eng.ConstructString(ctx, query)
}

// ParseNTriples reads an N-Triples document.
func ParseNTriples(r io.Reader) ([]Triple, error) { return rdf.ParseNTriples(r) }

// ParseTurtle reads a Turtle document (N-Triples is a subset of Turtle, so
// this reads both formats).
func ParseTurtle(r io.Reader) ([]Triple, error) { return rdf.ParseTurtle(r) }

// WriteNTriples writes triples in N-Triples format.
func WriteNTriples(w io.Writer, triples []Triple) error { return rdf.WriteNTriples(w, triples) }

// Convenience constructors for terms.

// IRI returns an IRI term.
func IRI(iri string) Term { return rdf.NewIRI(iri) }

// Literal returns a plain literal term.
func Literal(lex string) Term { return rdf.NewLiteral(lex) }

// LangLiteral returns a language-tagged literal term.
func LangLiteral(lex, lang string) Term { return rdf.NewLangLiteral(lex, lang) }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term { return rdf.NewTypedLiteral(lex, datatype) }

// Integer returns an xsd:integer literal.
func Integer(v int64) Term { return rdf.NewInteger(v) }
