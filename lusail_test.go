package lusail_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lusail"
)

func exampleTriples(host string, n int) []lusail.Triple {
	var ts []lusail.Triple
	for i := 0; i < n; i++ {
		s := lusail.IRI(host + "/person/" + string(rune('a'+i)))
		ts = append(ts,
			lusail.Triple{S: s, P: lusail.IRI("http://xmlns.com/foaf/0.1/name"), O: lusail.Literal(host + "-person")},
			lusail.Triple{S: s, P: lusail.IRI("http://xmlns.com/foaf/0.1/knows"), O: lusail.IRI("http://b.example/person/a")},
		)
	}
	return ts
}

func TestFacadeEndToEnd(t *testing.T) {
	eps := []lusail.Endpoint{
		lusail.NewMemoryEndpoint("a", exampleTriples("http://a.example", 3)),
		lusail.NewMemoryEndpoint("b", exampleTriples("http://b.example", 2)),
	}
	eng, err := lusail.NewEngine(eps, lusail.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := eng.QueryString(context.Background(), `
		PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT ?p ?friendName WHERE {
			?p foaf:knows ?f .
			?f foaf:name ?friendName .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("no federated results")
	}
	if prof.Total <= 0 {
		t.Error("missing profile")
	}
}

func TestFacadeHTTPAndServe(t *testing.T) {
	srv, err := lusail.Serve("a", "127.0.0.1:0", exampleTriples("http://a.example", 2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	eps := []lusail.Endpoint{
		lusail.NewHTTPEndpoint("a", srv.URL),
		lusail.NewMemoryEndpoint("b", exampleTriples("http://b.example", 2)),
	}
	var m lusail.Metrics
	for i := range eps {
		eps[i] = lusail.Instrument(eps[i], &m)
	}
	eng, err := lusail.NewEngine(eps, lusail.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.QueryString(context.Background(), `
		SELECT ?s WHERE { ?s <http://xmlns.com/foaf/0.1/knows> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("rows = %d, want 4", res.Len())
	}
	if m.Snapshot().Requests == 0 {
		t.Error("instrumentation recorded nothing")
	}
}

func TestFacadeNTriplesRoundTrip(t *testing.T) {
	ts := exampleTriples("http://a.example", 1)
	var b strings.Builder
	if err := lusail.WriteNTriples(&b, ts); err != nil {
		t.Fatal(err)
	}
	back, err := lusail.ParseNTriples(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Errorf("round trip %d != %d", len(back), len(ts))
	}
}

func TestFacadeParse(t *testing.T) {
	q, err := lusail.Parse(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
	if _, err := lusail.Parse(`NOT SPARQL`); err == nil {
		t.Error("expected parse error")
	}
}

func TestFacadeTermConstructors(t *testing.T) {
	if lusail.Integer(5).Value != "5" {
		t.Error("Integer constructor wrong")
	}
	if lusail.LangLiteral("x", "en").Lang != "en" {
		t.Error("LangLiteral constructor wrong")
	}
	if lusail.TypedLiteral("1", "http://dt").Datatype != "http://dt" {
		t.Error("TypedLiteral constructor wrong")
	}
}

func TestFacadeOptionsValidation(t *testing.T) {
	eps := []lusail.Endpoint{lusail.NewMemoryEndpoint("a", exampleTriples("http://a.example", 1))}
	bad := lusail.DefaultOptions()
	bad.Resilience.HedgeQuantile = 1.5
	if _, err := lusail.NewEngine(eps, bad); err == nil {
		t.Error("NewEngine accepted HedgeQuantile 1.5")
	}
	bad = lusail.DefaultOptions()
	bad.ValuesBlockSize = -3
	if _, err := lusail.NewEngine(eps, bad); err == nil {
		t.Error("NewEngine accepted negative ValuesBlockSize")
	}
}

func TestFacadeParseError(t *testing.T) {
	eps := []lusail.Endpoint{lusail.NewMemoryEndpoint("a", exampleTriples("http://a.example", 1))}
	eng, err := lusail.NewEngine(eps, lusail.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.QueryString(context.Background(), "SELECT WHERE {")
	var pe *lusail.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("syntax error is not a typed ParseError: %v", err)
	}
}

func TestFacadeResilience(t *testing.T) {
	healthy := []lusail.Endpoint{
		lusail.NewMemoryEndpoint("a", exampleTriples("http://a.example", 3)),
		lusail.NewMemoryEndpoint("b", exampleTriples("http://b.example", 2)),
	}
	dead := lusail.NewMemoryEndpoint("c", exampleTriples("http://c.example", 2))
	eps := append(append([]lusail.Endpoint{}, healthy...),
		lusail.WithFaults(dead, lusail.FaultSpec{ErrorRate: 1, Seed: 3}))
	query := `
		PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT ?p ?friendName WHERE {
			?p foaf:knows ?f .
			?f foaf:name ?friendName .
		}`

	// Fail-fast (the default): the dead endpoint fails the query with a
	// typed error naming it and carrying the injected cause.
	strict, err := lusail.NewEngine(eps, lusail.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = strict.QueryString(context.Background(), query)
	if err == nil {
		t.Fatal("fail-fast query succeeded despite a dead endpoint")
	}
	var epErr *lusail.EndpointError
	if !errors.As(err, &epErr) || epErr.Endpoint != "c" {
		t.Fatalf("want EndpointError for c, got: %v", err)
	}
	if !errors.Is(err, lusail.ErrInjected) {
		t.Fatalf("error does not unwrap to ErrInjected: %v", err)
	}

	// Degrade: the same query answers from a and b, with warnings.
	opts := lusail.DefaultOptions()
	opts.OnEndpointFailure = lusail.Degrade
	opts.Resilience = lusail.DefaultResilience()
	eng, err := lusail.NewEngine(eps, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := eng.QueryString(context.Background(), query)
	if err != nil {
		t.Fatalf("degrade mode failed: %v", err)
	}
	if res.Len() == 0 {
		t.Error("degraded query returned no rows from the healthy endpoints")
	}
	if !prof.Degraded() || len(prof.Warnings) == 0 {
		t.Errorf("profile not marked degraded: %+v", prof.Warnings)
	}
	for _, w := range prof.Warnings {
		if w.Endpoint != "c" {
			t.Errorf("warning blames healthy endpoint: %+v", w)
		}
	}
}
