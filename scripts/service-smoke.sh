#!/usr/bin/env bash
# service-smoke.sh: end-to-end check of the lusaild service surface.
#
# Boots two real lusail-endpoint processes over generated LUBM data, starts
# lusaild in front of them with a tight quota for the "bronze" tenant, and
# asserts:
#
#   1. a SPARQL protocol query streams back 200 with valid
#      sparql-results+json and non-empty bindings,
#   2. repeating the query hits the plan cache (X-Lusail-Plan-Cache: hit),
#   3. a burst past the bronze tenant's rate quota yields structured 429
#      bodies whose warnings carry phase "admission",
#   4. SIGTERM drains the daemon cleanly (exit 0).
#
# Requires: go, curl, jq. Used by CI and runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/bin/" ./cmd/lusail-datagen ./cmd/lusail-endpoint ./cmd/lusaild

echo "== generating LUBM data =="
"$WORK/bin/lusail-datagen" -benchmark lubm -universities 2 -out "$WORK/data" >/dev/null

echo "== booting endpoints =="
"$WORK/bin/lusail-endpoint" -addr 127.0.0.1:18081 -name u0 -data "$WORK/data/university0.nt" -quiet &
"$WORK/bin/lusail-endpoint" -addr 127.0.0.1:18082 -name u1 -data "$WORK/data/university1.nt" -quiet &

wait_http() {
    for _ in $(seq 1 100); do
        if curl -fsS -o /dev/null "$@"; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: timeout waiting for $*" >&2
    return 1
}
wait_http -G --data-urlencode 'query=ASK { ?s ?p ?o }' http://127.0.0.1:18081/sparql
wait_http -G --data-urlencode 'query=ASK { ?s ?p ?o }' http://127.0.0.1:18082/sparql

echo "== booting lusaild =="
# The short result TTL lets the smoke observe both cache layers: an
# immediate repeat is a result-cache hit, a repeat after the TTL expires
# falls through to the plan cache.
"$WORK/bin/lusaild" -addr 127.0.0.1:18094 \
    -endpoint u0=http://127.0.0.1:18081/sparql \
    -endpoint u1=http://127.0.0.1:18082/sparql \
    -result-cache-ttl 300ms \
    -tenant 'bronze=1:1:4:' &
LUSAILD=$!
wait_http http://127.0.0.1:18094/healthz

QUERY='PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?X WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?X ub:undergraduateDegreeFrom <http://www.University0.edu> .
}'

echo "== smoke query (streamed JSON) =="
curl -fsS -G --data-urlencode "query=$QUERY" -D "$WORK/headers1" \
    http://127.0.0.1:18094/sparql >"$WORK/result1.json"
jq -e '.results.bindings | length > 0' "$WORK/result1.json" >/dev/null \
    || { echo "FAIL: smoke query returned no bindings"; cat "$WORK/result1.json"; exit 1; }
grep -qi 'X-Lusail-Plan-Cache: miss' "$WORK/headers1" \
    || { echo "FAIL: first query should be a plan-cache miss"; cat "$WORK/headers1"; exit 1; }

echo "== immediate repeat (result cache hit) =="
curl -fsS -G --data-urlencode "query=$QUERY" -D "$WORK/headers2" \
    http://127.0.0.1:18094/sparql >/dev/null
grep -qi 'X-Lusail-Cache: result-hit' "$WORK/headers2" \
    || { echo "FAIL: immediate repeat should hit the result cache"; cat "$WORK/headers2"; exit 1; }

echo "== repeat after result TTL (plan cache hit, CSV) =="
sleep 0.5
curl -fsS -G --data-urlencode "query=$QUERY" -H 'Accept: text/csv' -D "$WORK/headers3" \
    http://127.0.0.1:18094/sparql >"$WORK/result3.csv"
grep -qi 'X-Lusail-Plan-Cache: hit' "$WORK/headers3" \
    || { echo "FAIL: repeated query should hit the plan cache"; cat "$WORK/headers3"; exit 1; }
[ -s "$WORK/result3.csv" ] || { echo "FAIL: CSV response empty"; exit 1; }

echo "== quota burst (structured 429s) =="
oks=0; throttled=0
for i in $(seq 1 5); do
    code=$(curl -sS -G --data-urlencode "query=$QUERY" \
        -H 'X-Lusail-Tenant: bronze' -o "$WORK/burst$i.json" \
        -w '%{http_code}' http://127.0.0.1:18094/sparql)
    case "$code" in
    200) oks=$((oks + 1)) ;;
    429)
        throttled=$((throttled + 1))
        jq -e '.warnings[0].phase == "admission" and (.tenant == "bronze")' \
            "$WORK/burst$i.json" >/dev/null \
            || { echo "FAIL: 429 body not structured"; cat "$WORK/burst$i.json"; exit 1; }
        ;;
    *) echo "FAIL: unexpected status $code"; cat "$WORK/burst$i.json"; exit 1 ;;
    esac
done
[ "$oks" -ge 1 ] || { echo "FAIL: no request within quota succeeded"; exit 1; }
[ "$throttled" -ge 1 ] || { echo "FAIL: burst past rate 1/burst 1 was never throttled"; exit 1; }
echo "burst: $oks ok, $throttled throttled with structured bodies"

echo "== metrics visible =="
curl -fsS http://127.0.0.1:18094/metrics | grep -q 'lusail_plan_cache_hits' \
    || { echo "FAIL: plan cache metrics missing from /metrics"; exit 1; }

echo "== graceful drain =="
kill -TERM "$LUSAILD"
if ! wait "$LUSAILD"; then
    echo "FAIL: lusaild exited non-zero on SIGTERM"
    exit 1
fi

echo "PASS: service smoke"
