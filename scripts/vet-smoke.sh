#!/usr/bin/env bash
# vet-smoke.sh: assert the lusail-vet analyzer registry matches the
# documented set, in suite order. `lusail-vet -list` prints each analyzer
# name at column zero followed by an indented doc paragraph; the README
# and DESIGN.md tables are pinned to the same nine names by
# TestRegistryMatchesDocs — this script is the CI-visible half of that
# contract, so a registry drift fails fast with a readable diff.
set -euo pipefail
cd "$(dirname "$0")/.."

want="ctxflow
spanend
pairedadmission
nolockio
errwrapdiscipline
streamclose
lockorder
spawnjoin
budgetbound"

got="$(go run ./cmd/lusail-vet -list | grep -E '^[a-z]' || true)"

if [ "$got" != "$want" ]; then
    echo "lusail-vet registry does not match the documented analyzer set" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    exit 1
fi

echo "vet-smoke: registry matches the documented set ($(echo "$want" | wc -l) analyzers)"
