#!/usr/bin/env bash
# vet-smoke.sh: assert the lusail-vet analyzer registry matches the
# documented set, in suite order. `lusail-vet -list` prints each analyzer
# name at column zero followed by an indented doc paragraph; the README
# and DESIGN.md tables are pinned to the same nine names by
# TestRegistryMatchesDocs — this script is the CI-visible half of that
# contract, so a registry drift fails fast with a readable diff.
set -euo pipefail
cd "$(dirname "$0")/.."

want="ctxflow
spanend
pairedadmission
nolockio
errwrapdiscipline
streamclose
lockorder
spawnjoin
budgetbound"

got="$(go run ./cmd/lusail-vet -list | grep -E '^[a-z]' || true)"

if [ "$got" != "$want" ]; then
    echo "lusail-vet registry does not match the documented analyzer set" >&2
    diff <(echo "$want") <(echo "$got") >&2 || true
    exit 1
fi

echo "vet-smoke: registry matches the documented set ($(echo "$want" | wc -l) analyzers)"

# -timings must emit one stderr line per analyzer plus a total, so a
# regressing analyzer's cost is visible in CI logs.
timing_lines="$(go run ./cmd/lusail-vet -timings ./internal/obs 2>&1 >/dev/null | grep -c '^timings: ' || true)"
expected=$(( $(echo "$want" | wc -l) + 1 ))
if [ "$timing_lines" -ne "$expected" ]; then
    echo "lusail-vet -timings printed $timing_lines lines, want $expected (one per analyzer + total)" >&2
    exit 1
fi
echo "vet-smoke: -timings reports all $expected rows"

# The query-analysis registry (lusail-check) is pinned the same way.
want_checks="unboundvar
cartesian
filtersat
duppattern
optwelldesigned"
got_checks="$(go run ./cmd/lusail-check -list | grep -E '^[a-z]' | sed 's/ .*//' || true)"
if [ "$got_checks" != "$want_checks" ]; then
    echo "lusail-check registry does not match the documented check set" >&2
    diff <(echo "$want_checks") <(echo "$got_checks") >&2 || true
    exit 1
fi
echo "vet-smoke: lusail-check registry matches the documented set ($(echo "$want_checks" | wc -l) checks)"
