#!/usr/bin/env bash
# diskstore-smoke.sh: end-to-end check of the disk-backed store pipeline.
#
# Generates LUBM data, bulk-loads one university into a .lds store with
# lusail-load, serves the same dataset twice — once from memory, once from
# the disk store with a small block cache — and asserts:
#
#   1. lusail-load builds and self-verifies the store,
#   2. both endpoints answer the same SPARQL query with row-identical
#      bindings (the acceptance bar for backend interchangeability),
#   3. a truncated store file is rejected at startup rather than served,
#   4. predicate statistics agree between the two backends (the /summary
#      endpoint both serve to the federation's catalog).
#
# Requires: go, curl, jq. Used by CI and runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building =="
go build -o "$WORK/bin/" ./cmd/lusail-datagen ./cmd/lusail-load ./cmd/lusail-endpoint

echo "== generating LUBM data =="
"$WORK/bin/lusail-datagen" -benchmark lubm -universities 2 -scale 20 -out "$WORK/data" >/dev/null

echo "== bulk load =="
"$WORK/bin/lusail-load" -out "$WORK/u0.lds" -verify "$WORK/data/university0.nt"

echo "== booting memory and disk endpoints over the same dataset =="
"$WORK/bin/lusail-endpoint" -addr 127.0.0.1:18181 -name u0mem -data "$WORK/data/university0.nt" -quiet &
"$WORK/bin/lusail-endpoint" -addr 127.0.0.1:18182 -name u0disk -store "disk:$WORK/u0.lds" -cache 4 -quiet &

wait_http() {
    for _ in $(seq 1 100); do
        if curl -fsS -o /dev/null "$@"; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: timeout waiting for $*" >&2
    return 1
}
wait_http -G --data-urlencode 'query=ASK { ?s ?p ?o }' http://127.0.0.1:18181/sparql
wait_http -G --data-urlencode 'query=ASK { ?s ?p ?o }' http://127.0.0.1:18182/sparql

QUERY='PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?X ?Y ?Z WHERE {
  ?X rdf:type ub:GraduateStudent .
  ?Y rdf:type ub:FullProfessor .
  ?Z rdf:type ub:GraduateCourse .
  ?X ub:advisor ?Y .
  ?Y ub:teacherOf ?Z .
  ?X ub:takesCourse ?Z .
}'

echo "== row-identical results across backends =="
curl -fsS -G --data-urlencode "query=$QUERY" http://127.0.0.1:18181/sparql >"$WORK/mem.json"
curl -fsS -G --data-urlencode "query=$QUERY" http://127.0.0.1:18182/sparql >"$WORK/disk.json"
jq -e '.results.bindings | length > 0' "$WORK/mem.json" >/dev/null \
    || { echo "FAIL: memory endpoint returned no bindings"; cat "$WORK/mem.json"; exit 1; }
jq -S '.results.bindings | sort_by(tostring)' "$WORK/mem.json" >"$WORK/mem.sorted"
jq -S '.results.bindings | sort_by(tostring)' "$WORK/disk.json" >"$WORK/disk.sorted"
diff -u "$WORK/mem.sorted" "$WORK/disk.sorted" \
    || { echo "FAIL: backends returned different rows"; exit 1; }
rows=$(jq '.results.bindings | length' "$WORK/mem.json")
echo "backends agree on $rows rows"

echo "== predicate statistics agree =="
curl -fsS http://127.0.0.1:18181/summary >"$WORK/mem-summary.json"
curl -fsS http://127.0.0.1:18182/summary >"$WORK/disk-summary.json"
jq -S 'del(.endpoint, .built_at, .build_duration_ns)' "$WORK/mem-summary.json" >"$WORK/mem-summary.sorted"
jq -S 'del(.endpoint, .built_at, .build_duration_ns)' "$WORK/disk-summary.json" >"$WORK/disk-summary.sorted"
diff -u "$WORK/mem-summary.sorted" "$WORK/disk-summary.sorted" \
    || { echo "FAIL: backends report different summaries"; exit 1; }

echo "== truncated store rejected at startup =="
size=$(wc -c <"$WORK/u0.lds")
head -c "$((size - 16))" "$WORK/u0.lds" >"$WORK/truncated.lds"
if "$WORK/bin/lusail-endpoint" -addr 127.0.0.1:18183 -name broken \
    -store "disk:$WORK/truncated.lds" -quiet 2>"$WORK/trunc.err"; then
    echo "FAIL: endpoint served a truncated store"
    exit 1
fi
grep -qi 'truncated\|checksum\|outside file' "$WORK/trunc.err" \
    || { echo "FAIL: truncation error not diagnosed"; cat "$WORK/trunc.err"; exit 1; }

echo "PASS: diskstore smoke"
