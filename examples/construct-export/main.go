// construct-export: use a federated CONSTRUCT query to materialize a new,
// unified RDF graph out of facts scattered across endpoints, then write it
// as N-Triples — the classic "build an integrated view of linked data"
// workflow the paper's introduction motivates.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"lusail"
)

const (
	drugNS  = "http://drugs.example/ns/"
	trialNS = "http://trials.example/ns/"
	outNS   = "http://unified.example/ns/"
)

func main() {
	t := func(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }
	drug := func(i int) lusail.Term { return lusail.IRI(fmt.Sprintf("http://drugs.example/drug/%02d", i)) }

	// Endpoint 1: a drug registry.
	var registry []lusail.Triple
	for i := 0; i < 8; i++ {
		registry = append(registry,
			t(drug(i), lusail.IRI(drugNS+"name"), lusail.Literal(fmt.Sprintf("drug-%02d", i))),
			t(drug(i), lusail.IRI(drugNS+"approved"), lusail.Literal([]string{"yes", "no"}[i%2])),
		)
	}
	// Endpoint 2: clinical trials referencing the registry's drug URIs.
	var trials []lusail.Triple
	for i := 0; i < 12; i++ {
		tr := lusail.IRI(fmt.Sprintf("http://trials.example/trial/%02d", i))
		trials = append(trials,
			t(tr, lusail.IRI(trialNS+"tests"), drug(i%8)),
			t(tr, lusail.IRI(trialNS+"phase"), lusail.Integer(int64(1+i%3))),
		)
	}

	eng, err := lusail.NewEngine([]lusail.Endpoint{
		lusail.NewMemoryEndpoint("registry", registry),
		lusail.NewMemoryEndpoint("trials", trials),
	}, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Build a unified graph: approved drugs annotated with the trials that
	// tested them, pulling the name from one endpoint and the trial from
	// the other.
	query := `
		PREFIX d: <` + drugNS + `>
		PREFIX t: <` + trialNS + `>
		PREFIX out: <` + outNS + `>
		CONSTRUCT {
			?drug out:label ?name .
			?drug out:evaluatedIn ?trial .
			?trial out:phase ?phase .
		}
		WHERE {
			?drug d:name ?name .
			?drug d:approved "yes" .
			?trial t:tests ?drug .
			?trial t:phase ?phase .
		}`
	triples, prof, err := lusail.Construct(context.Background(), eng, query)
	if err != nil {
		log.Fatal(err)
	}
	if err := lusail.WriteNTriples(os.Stdout, triples); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nconstructed %d triples from %d subqueries (GJVs: %v)\n",
		len(triples), prof.Subqueries, prof.GJVs)
}
