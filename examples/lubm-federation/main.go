// lubm-federation: serve four same-schema university datasets as real HTTP
// SPARQL endpoints on localhost, then query them federated — the setting of
// the paper's Figure 9, where schema-only engines cannot form exclusive
// groups and Lusail's instance-aware decomposition shines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lusail"
)

const (
	ub  = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
)

// university builds a small self-contained university dataset. Professors
// at odd universities got their doctorate from university 0, creating the
// interlinks that make federation necessary.
func university(id, students int) []lusail.Triple {
	base := fmt.Sprintf("http://www.University%d.edu", id)
	t := func(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }
	univ := lusail.IRI(base)
	var ts []lusail.Triple
	ts = append(ts,
		t(univ, lusail.IRI(rdf+"type"), lusail.IRI(ub+"University")),
		t(univ, lusail.IRI(ub+"address"), lusail.Literal(fmt.Sprintf("%d University Ave", id))),
	)
	for i := 0; i < students; i++ {
		stu := lusail.IRI(fmt.Sprintf("%s/student%d", base, i))
		prof := lusail.IRI(fmt.Sprintf("%s/prof%d", base, i%3))
		course := lusail.IRI(fmt.Sprintf("%s/course%d", base, i%3))
		degree := univ
		if id%2 == 1 && i%2 == 0 {
			degree = lusail.IRI("http://www.University0.edu")
		}
		ts = append(ts,
			t(stu, lusail.IRI(rdf+"type"), lusail.IRI(ub+"GraduateStudent")),
			t(stu, lusail.IRI(ub+"advisor"), prof),
			t(stu, lusail.IRI(ub+"takesCourse"), course),
			t(prof, lusail.IRI(ub+"teacherOf"), course),
			t(prof, lusail.IRI(ub+"doctoralDegreeFrom"), degree),
		)
	}
	return ts
}

func main() {
	// Start four HTTP SPARQL endpoints on ephemeral localhost ports.
	var endpoints []lusail.Endpoint
	var metrics lusail.Metrics
	for i := 0; i < 4; i++ {
		srv, err := lusail.Serve(fmt.Sprintf("University%d", i), "127.0.0.1:0", university(i, 30))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("endpoint %s at %s\n", srv.Name, srv.URL)
		endpoints = append(endpoints, lusail.Instrument(lusail.NewHTTPEndpoint(srv.Name, srv.URL), &metrics))
	}

	eng, err := lusail.NewEngine(endpoints, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	queries := map[string]string{
		"triangle (Q2-style, one subquery per endpoint)": `
			PREFIX ub: <` + ub + `>
			SELECT ?s ?p ?c WHERE {
				?s ub:advisor ?p .
				?p ub:teacherOf ?c .
				?s ub:takesCourse ?c .
			}`,
		"cross-university degrees (Q4-style, global join)": `
			PREFIX ub: <` + ub + `>
			SELECT ?p ?u ?a WHERE {
				?p ub:doctoralDegreeFrom ?u .
				?u ub:address ?a .
			}`,
	}
	for name, q := range queries {
		metrics.Reset()
		start := time.Now()
		res, prof, err := eng.QueryString(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		s := metrics.Snapshot()
		fmt.Printf("\n%s\n  results=%d time=%v requests=%d bytes=%d\n  GJVs=%v subqueries=%d delayed=%d\n",
			name, res.Len(), time.Since(start).Round(time.Millisecond), s.Requests, s.Bytes,
			prof.GJVs, prof.Subqueries, prof.Delayed)
	}
}
