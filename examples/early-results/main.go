// early-results: the paper's future-work feature — delivering solutions as
// soon as they are complete instead of waiting for the slowest endpoint.
// Three endpoints hold the same kind of data; one of them is on a
// high-latency link. Streaming mode surfaces the fast endpoints' answers
// hundreds of milliseconds before the full result set is ready.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lusail"
)

const dcat = "http://www.w3.org/ns/dcat#"

func catalog(region string, n int) []lusail.Triple {
	t := func(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }
	var ts []lusail.Triple
	for i := 0; i < n; i++ {
		ds := lusail.IRI(fmt.Sprintf("http://%s.example/dataset/%d", region, i))
		ts = append(ts,
			t(ds, lusail.IRI(dcat+"title"), lusail.Literal(fmt.Sprintf("%s dataset %d", region, i))),
			t(ds, lusail.IRI(dcat+"theme"), lusail.Literal([]string{"health", "transport", "energy"}[i%3])),
		)
	}
	return ts
}

func main() {
	endpoints := []lusail.Endpoint{
		lusail.NewMemoryEndpoint("fast-1", catalog("fast-1", 6)),
		lusail.NewMemoryEndpoint("fast-2", catalog("fast-2", 6)),
		// The laggard: 250ms per request.
		lusail.WithLatency(lusail.NewMemoryEndpoint("slow", catalog("slow", 6)), 250*time.Millisecond, 0),
	}
	eng, err := lusail.NewEngine(endpoints, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Both patterns keep variable objects (the theme constraint moves into
	// a FILTER, which Lusail pushes into the subquery): the instance checks
	// then prove ?d local, the whole query becomes ONE subquery per
	// endpoint, and streaming mode applies. With the constant form
	// (?d dcat:theme "health") the paper's bidirectional check classifies
	// ?d as global — datasets with titles but other themes witness the
	// difference — and results would only be complete after a global join.
	query := `
		PREFIX dcat: <` + dcat + `>
		SELECT ?d ?title WHERE {
			?d dcat:theme ?theme .
			?d dcat:title ?title .
			FILTER(STR(?theme) = "health")
		}`

	start := time.Now()
	n := 0
	streamed, err := lusail.QueryEarly(context.Background(), eng, query, func(row map[string]lusail.Term) bool {
		n++
		fmt.Printf("%8v  result %d: %s\n", time.Since(start).Round(time.Millisecond), n, row["title"].Value)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed=%v total=%v results=%d\n", streamed, time.Since(start).Round(time.Millisecond), n)
	fmt.Println("note how the fast endpoints' rows arrive before the slow endpoint answers")
}
