// Quickstart: federate two in-memory SPARQL endpoints and run a query that
// must traverse an interlink between them — the smallest possible version
// of the paper's Figure 1/2 scenario.
//
// To serve the same federation to many users instead of querying it once,
// point cmd/lusaild at HTTP endpoints and speak the SPARQL protocol:
//
//	lusaild -addr :8094 -endpoint u0=http://host1:8081/sparql \
//	                    -endpoint u1=http://host2:8081/sparql
//	curl -G --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5' \
//	     http://localhost:8094/sparql
package main

import (
	"context"
	"fmt"
	"log"

	"lusail"
)

const (
	ub  = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
)

func t(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }

func main() {
	// Endpoint 1: university A. It owns univA and its address, which
	// endpoint 2's professor Tim references remotely.
	univA := lusail.IRI("http://univA.edu")
	ep1 := lusail.NewMemoryEndpoint("univA", []lusail.Triple{
		t(univA, lusail.IRI(ub+"address"), lusail.Literal("1 College Road, A-Town")),
	})

	// Endpoint 2: university B with students, advisors, and courses.
	univB := lusail.IRI("http://univB.edu")
	kim, joy, tim := lusail.IRI("http://univB.edu/kim"), lusail.IRI("http://univB.edu/joy"), lusail.IRI("http://univB.edu/tim")
	db := lusail.IRI("http://univB.edu/course/db")
	ep2 := lusail.NewMemoryEndpoint("univB", []lusail.Triple{
		t(univB, lusail.IRI(ub+"address"), lusail.Literal("2 Campus Way, B-Ville")),
		t(kim, lusail.IRI(rdf+"type"), lusail.IRI(ub+"GraduateStudent")),
		t(kim, lusail.IRI(ub+"advisor"), joy),
		t(kim, lusail.IRI(ub+"advisor"), tim),
		t(kim, lusail.IRI(ub+"takesCourse"), db),
		t(joy, lusail.IRI(ub+"teacherOf"), db),
		t(tim, lusail.IRI(ub+"teacherOf"), db),
		t(joy, lusail.IRI(ub+"PhDDegreeFrom"), univB), // local degree
		t(tim, lusail.IRI(ub+"PhDDegreeFrom"), univA), // interlink to EP1!
	})

	// Count every request so we can see the engine's communication cost.
	var metrics lusail.Metrics
	eng, err := lusail.NewEngine([]lusail.Endpoint{
		lusail.Instrument(ep1, &metrics),
		lusail.Instrument(ep2, &metrics),
	}, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's query Qa: students taking a course with their advisor,
	// with the advisor's alma mater and its address. Tim's alma mater lives
	// at the other endpoint, so the engine must join across endpoints.
	query := `
		PREFIX ub: <` + ub + `>
		SELECT ?student ?advisor ?university ?address WHERE {
			?student ub:advisor ?advisor .
			?advisor ub:teacherOf ?course .
			?student ub:takesCourse ?course .
			?advisor ub:PhDDegreeFrom ?university .
			?university ub:address ?address .
		}`
	res, prof, err := eng.QueryString(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("results:")
	for i := 0; i < res.Len(); i++ {
		b := res.Binding(i)
		fmt.Printf("  %s advised by %s (PhD: %s, %q)\n",
			short(b["student"]), short(b["advisor"]), short(b["university"]), b["address"].Value)
	}
	fmt.Printf("\nglobal join variables: %v\n", prof.GJVs)
	fmt.Printf("subqueries: %d (%d delayed)\n", prof.Subqueries, prof.Delayed)
	for _, d := range prof.Decomposition {
		fmt.Printf("  %s\n", d)
	}
	s := metrics.Snapshot()
	fmt.Printf("requests: %d  rows shipped: %d  ~bytes: %d\n", s.Requests, s.Rows, s.Bytes)
	fmt.Printf("phases: source-selection=%v analysis=%v execution=%v\n",
		prof.SourceSelection, prof.Analysis, prof.Execution)
}

func short(t lusail.Term) string {
	v := t.Value
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}
