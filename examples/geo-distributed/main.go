// geo-distributed: the same federation under LAN and simulated WAN
// conditions (per-request round-trip latency plus limited bandwidth),
// reproducing the paper's Section 5.3 observation that communication cost
// dominates federated querying across regions — and that an engine which
// minimizes remote requests degrades far more gracefully.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lusail"
)

const foaf = "http://xmlns.com/foaf/0.1/"

func socialData(region string, people int) []lusail.Triple {
	t := func(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }
	var ts []lusail.Triple
	for i := 0; i < people; i++ {
		person := lusail.IRI(fmt.Sprintf("http://%s.example/person/%d", region, i))
		ts = append(ts,
			t(person, lusail.IRI(foaf+"name"), lusail.Literal(fmt.Sprintf("%s-%d", region, i))),
			t(person, lusail.IRI(foaf+"based_near"), lusail.Literal(region)),
		)
		// Friendships cross regions: every third person knows someone in
		// the us-east region.
		friend := lusail.IRI(fmt.Sprintf("http://%s.example/person/%d", region, (i+1)%people))
		if i%3 == 0 {
			friend = lusail.IRI(fmt.Sprintf("http://us-east.example/person/%d", i%people))
		}
		ts = append(ts, t(person, lusail.IRI(foaf+"knows"), friend))
	}
	return ts
}

func run(label string, rtt time.Duration, bandwidth int64) {
	regions := []string{"us-east", "eu-west", "ap-south"}
	var endpoints []lusail.Endpoint
	var metrics lusail.Metrics
	for _, r := range regions {
		ep := lusail.NewMemoryEndpoint(r, socialData(r, 40))
		wrapped := lusail.WithLatency(ep, rtt, bandwidth)
		endpoints = append(endpoints, lusail.Instrument(wrapped, &metrics))
	}
	eng, err := lusail.NewEngine(endpoints, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	query := `
		PREFIX foaf: <` + foaf + `>
		SELECT ?p ?fname WHERE {
			?p foaf:knows ?f .
			?f foaf:name ?fname .
			?f foaf:based_near "us-east" .
		}`
	start := time.Now()
	res, prof, err := eng.QueryString(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	s := metrics.Snapshot()
	fmt.Printf("%-22s results=%-4d time=%-10v requests=%-4d GJVs=%v\n",
		label, res.Len(), time.Since(start).Round(time.Millisecond), s.Requests, prof.GJVs)
}

func main() {
	fmt.Println("same federation, three network profiles:")
	run("local cluster", 0, 0)
	run("regional (5ms RTT)", 5*time.Millisecond, 100<<20)
	run("intercontinental", 25*time.Millisecond, 10<<20)
}
