// lifesciences: a QFed-style federation of four interlinked biomedical
// datasets (drugs, diseases, prescriptions, side effects) — the workload
// the paper's introduction motivates. Shows FILTER pushdown, OPTIONAL at
// the global level, and how the decomposition changes when a join variable
// is instance-local versus global.
package main

import (
	"context"
	"fmt"
	"log"

	"lusail"
)

const (
	drugNS    = "http://drugbank.example/ns/"
	diseaseNS = "http://diseasome.example/ns/"
	rxNS      = "http://prescriptions.example/ns/"
	sideNS    = "http://sideeffects.example/ns/"
	rdfsLabel = "http://www.w3.org/2000/01/rdf-schema#label"
)

func main() {
	t := func(s, p, o lusail.Term) lusail.Triple { return lusail.Triple{S: s, P: p, O: o} }
	drug := func(i int) lusail.Term { return lusail.IRI(fmt.Sprintf("http://drugbank.example/drug/%03d", i)) }

	// DrugBank: the hub — all other datasets reference its drug URIs.
	var drugbank []lusail.Triple
	for i := 0; i < 25; i++ {
		drugbank = append(drugbank,
			t(drug(i), lusail.IRI(rdfsLabel), lusail.Literal(fmt.Sprintf("drug-%03d", i))),
			t(drug(i), lusail.IRI(drugNS+"category"), lusail.Literal([]string{"antibiotic", "analgesic", "antiviral"}[i%3])),
		)
	}
	// Diseasome: diseases with candidate drugs (interlink to DrugBank).
	var diseasome []lusail.Triple
	for i := 0; i < 12; i++ {
		d := lusail.IRI(fmt.Sprintf("http://diseasome.example/disease/%03d", i))
		diseasome = append(diseasome,
			t(d, lusail.IRI(rdfsLabel), lusail.Literal(fmt.Sprintf("disease-%03d", i))),
			t(d, lusail.IRI(diseaseNS+"possibleDrug"), drug(i*2)),
		)
	}
	// Prescriptions: drug usage records (interlink to DrugBank).
	var rx []lusail.Triple
	for i := 0; i < 30; i++ {
		p := lusail.IRI(fmt.Sprintf("http://prescriptions.example/rx/%03d", i))
		rx = append(rx,
			t(p, lusail.IRI(rxNS+"drug"), drug(i%25)),
			t(p, lusail.IRI(rxNS+"dosageMg"), lusail.Integer(int64(50+10*(i%20)))),
		)
	}
	// Side effects (interlink to DrugBank); sparse on purpose so OPTIONAL
	// has something to be optional about.
	var side []lusail.Triple
	for i := 0; i < 25; i += 3 {
		s := lusail.IRI(fmt.Sprintf("http://sideeffects.example/se/%03d", i))
		side = append(side,
			t(s, lusail.IRI(sideNS+"drug"), drug(i)),
			t(s, lusail.IRI(sideNS+"effect"), lusail.Literal([]string{"nausea", "headache", "rash"}[i%3])),
		)
	}

	var metrics lusail.Metrics
	eng, err := lusail.NewEngine([]lusail.Endpoint{
		lusail.Instrument(lusail.NewMemoryEndpoint("drugbank", drugbank), &metrics),
		lusail.Instrument(lusail.NewMemoryEndpoint("diseasome", diseasome), &metrics),
		lusail.Instrument(lusail.NewMemoryEndpoint("prescriptions", rx), &metrics),
		lusail.Instrument(lusail.NewMemoryEndpoint("sideeffects", side), &metrics),
	}, lusail.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Which diseases have a candidate drug prescribed above 150mg, and
	// what are its known side effects (if any)?
	query := `
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX dis: <` + diseaseNS + `>
		PREFIX rx: <` + rxNS + `>
		PREFIX se: <` + sideNS + `>
		SELECT ?disease ?drugName ?mg ?effect WHERE {
			?d dis:possibleDrug ?drug .
			?d rdfs:label ?disease .
			?drug rdfs:label ?drugName .
			?p rx:drug ?drug .
			?p rx:dosageMg ?mg .
			FILTER(?mg > 150)
			OPTIONAL { ?s se:drug ?drug . ?s se:effect ?effect }
		}`
	res, prof, err := eng.QueryString(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		b := res.Binding(i)
		effect := "(no recorded side effects)"
		if e, ok := b["effect"]; ok {
			effect = e.Value
		}
		fmt.Printf("%-12s %-10s %4smg  %s\n", b["disease"].Value, b["drugName"].Value, b["mg"].Value, effect)
	}
	s := metrics.Snapshot()
	fmt.Printf("\nGJVs=%v subqueries=%d delayed=%d requests=%d\n",
		prof.GJVs, prof.Subqueries, prof.Delayed, s.Requests)
	for _, d := range prof.Decomposition {
		fmt.Printf("  %s\n", d)
	}
}
