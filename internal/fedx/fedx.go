// Package fedx implements the FedX baseline (Schwarte et al., ISWC 2011)
// that the paper compares against: an index-free federated SPARQL engine
// with ASK-based source selection, schema-level *exclusive groups*, and
// left-deep *bound joins* evaluated one unit at a time with binding blocks.
//
// The crucial contrast with Lusail: FedX groups triple patterns only when
// schema information proves a single endpoint can answer them (an exclusive
// group). When several endpoints share a schema — as in LUBM — no exclusive
// groups exist, the query executes one triple pattern at a time, and the
// number of remote requests explodes with the number of endpoints and the
// size of intermediate results. That behavior is what the paper's Figures 9
// and 14 measure.
package fedx

import (
	"context"
	"fmt"
	"sort"

	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/sparql"
)

// Selector abstracts source selection so index-based systems (HiBISCuS)
// can plug their pruning into the same executor.
type Selector interface {
	RelevantSources(ctx context.Context, tp sparql.TriplePattern) ([]string, error)
}

// Options configures the FedX baseline.
type Options struct {
	// PoolSize bounds concurrent endpoint requests (<=0: NumCPU).
	PoolSize int
	// BindBlockSize is the number of bindings per bound-join block.
	// FedX's default is 15.
	BindBlockSize int
	// Selector overrides ASK-based source selection (used by HiBISCuS).
	Selector Selector
}

// Engine is a FedX-style federated query processor.
type Engine struct {
	fed  *federation.Federation
	pool *erh.Pool
	sel  Selector
	opts Options
}

// New returns a FedX engine over the federation.
func New(fed *federation.Federation, opts Options) *Engine {
	if opts.BindBlockSize <= 0 {
		opts.BindBlockSize = 15
	}
	pool := erh.New(opts.PoolSize)
	sel := opts.Selector
	if sel == nil {
		sel = federation.NewSourceSelector(fed, pool)
	}
	return &Engine{fed: fed, pool: pool, sel: sel, opts: opts}
}

// QueryString parses and executes a federated query.
func (e *Engine) QueryString(ctx context.Context, query string) (*sparql.Results, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Query(ctx, q)
}

// Query executes a parsed query.
func (e *Engine) Query(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	branches, err := qplan.Normalize(q)
	if err != nil {
		return nil, err
	}
	var all *sparql.Results
	for _, br := range branches {
		rel, err := e.evalBranch(ctx, q, br)
		if err != nil {
			return nil, err
		}
		if all == nil {
			all = rel
		} else {
			all = qplan.UnionRelations(all, rel)
		}
	}
	if all != nil {
		all.Rows = qplan.DistinctRows(all.Rows)
	}
	return qplan.Finalize(q, all)
}

// unit is one execution step: an exclusive group or a single pattern.
type unit struct {
	patterns  []sparql.TriplePattern
	sources   []string
	exclusive bool
	filters   []sparql.Expr
}

func (u *unit) vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, tp := range u.patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// BatchSelector is an optional extension of Selector: selectors that see
// the whole pattern set at once can apply join-aware pruning (HiBISCuS's
// hypergraph step).
type BatchSelector interface {
	PruneSources(ctx context.Context, patterns []sparql.TriplePattern) [][]string
}

func (e *Engine) evalBranch(ctx context.Context, q *sparql.Query, br *qplan.Branch) (*sparql.Results, error) {
	var sources [][]string
	if bs, ok := e.sel.(BatchSelector); ok {
		sources = bs.PruneSources(ctx, br.Patterns)
	} else {
		sources = make([][]string, len(br.Patterns))
		err := e.pool.ForEach(ctx, len(br.Patterns), func(i int) error {
			s, err := e.sel.RelevantSources(ctx, br.Patterns[i])
			if err != nil {
				return err
			}
			sources[i] = s
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("fedx: source selection: %w", err)
		}
	}
	for _, s := range sources {
		if len(s) == 0 {
			return qplan.EmptyRelation(br.Vars()), nil
		}
	}

	units := buildUnits(br, sources)

	// Early termination applies when any N results are acceptable: FedX
	// stops once LIMIT results are complete (the paper's C4 observation).
	limit := -1
	if q.Limit >= 0 && len(q.OrderBy) == 0 && !q.Distinct && !q.HasAggregates() &&
		len(br.Optionals) == 0 && q.Offset == 0 {
		limit = q.Limit
	}

	rel, err := e.runPipeline(ctx, br, units, limit)
	if err != nil {
		return nil, err
	}

	// OPTIONAL blocks: bound-join evaluation, left-joined.
	for _, ob := range br.Optionals {
		orel, err := e.evalOptional(ctx, ob, rel)
		if err != nil {
			return nil, err
		}
		rel = qplan.LeftJoin(rel, orel)
	}
	rel = qplan.ApplyFilters(rel, br.Filters)
	return rel, nil
}

// buildUnits forms exclusive groups — maximal sets of patterns whose only
// relevant endpoint is the same single source — and singleton units for
// everything else, pushing covered filters into each unit.
func buildUnits(br *qplan.Branch, sources [][]string) []*unit {
	var units []*unit
	bySource := map[string]*unit{}
	for i, tp := range br.Patterns {
		if len(sources[i]) == 1 {
			key := sources[i][0]
			if u, ok := bySource[key]; ok {
				u.patterns = append(u.patterns, tp)
				continue
			}
			u := &unit{patterns: []sparql.TriplePattern{tp}, sources: sources[i], exclusive: true}
			bySource[key] = u
			units = append(units, u)
			continue
		}
		units = append(units, &unit{patterns: []sparql.TriplePattern{tp}, sources: sources[i]})
	}
	for _, u := range units {
		vars := map[string]bool{}
		for _, v := range u.vars() {
			vars[v] = true
		}
		for _, f := range br.Filters {
			if _, isExists := f.(sparql.ExprExists); isExists {
				continue
			}
			ok := true
			for _, v := range sparql.ExprVars(f) {
				if !vars[v] {
					ok = false
					break
				}
			}
			if ok && len(sparql.ExprVars(f)) > 0 {
				u.filters = append(u.filters, f)
			}
		}
	}
	return units
}

// runPipeline executes the units left-deep in variable-counting order: the
// unit with the fewest free variables (given what is already bound) runs
// next; the first runs unbound, later ones as bound joins.
func (e *Engine) runPipeline(ctx context.Context, br *qplan.Branch, units []*unit, limit int) (*sparql.Results, error) {
	remaining := append([]*unit(nil), units...)
	bound := map[string]bool{}
	var rel *sparql.Results

	for len(remaining) > 0 {
		best := pickNextUnit(remaining, bound)
		u := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		last := len(remaining) == 0

		var err error
		if rel == nil {
			rel, err = e.evalUnitUnbound(ctx, u)
		} else {
			stopAt := -1
			if last && limit >= 0 {
				stopAt = limit
			}
			rel, err = e.boundJoin(ctx, u, rel, stopAt)
		}
		if err != nil {
			return nil, err
		}
		for _, v := range u.vars() {
			bound[v] = true
		}
		if len(rel.Rows) == 0 {
			return qplan.EmptyRelation(br.Vars()), nil
		}
	}
	if rel == nil {
		rel = qplan.EmptyRelation(nil)
	}
	return rel, nil
}

// pickNextUnit implements FedX's variable-counting heuristic: prefer the
// unit with the fewest unbound variables; exclusive groups and constants
// break ties.
func pickNextUnit(units []*unit, bound map[string]bool) int {
	best, bestScore := 0, 1<<30
	for i, u := range units {
		free := 0
		for _, v := range u.vars() {
			if !bound[v] {
				free++
			}
		}
		consts := 0
		for _, tp := range u.patterns {
			for _, pt := range []sparql.PatternTerm{tp.S, tp.P, tp.O} {
				if !pt.IsVar() {
					consts++
				}
			}
		}
		score := free*100 - consts*10
		if u.exclusive {
			score -= 50
		}
		if score < bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// unitQuery renders a unit as a SELECT, optionally with a VALUES block.
func unitQuery(u *unit, values *sparql.InlineData) string {
	q := sparql.NewSelect(u.vars()...)
	q.Distinct = true
	for _, tp := range u.patterns {
		q.Where.Elements = append(q.Where.Elements, tp)
	}
	if values != nil {
		q.Where.Elements = append(q.Where.Elements, *values)
	}
	for _, f := range u.filters {
		q.Where.Elements = append(q.Where.Elements, sparql.Filter{Expr: f})
	}
	return q.String()
}

// evalUnitUnbound evaluates a unit at all its sources concurrently.
func (e *Engine) evalUnitUnbound(ctx context.Context, u *unit) (*sparql.Results, error) {
	partial := make([]*sparql.Results, len(u.sources))
	err := e.pool.ForEach(ctx, len(u.sources), func(i int) error {
		res, err := e.fed.Get(u.sources[i]).Query(ctx, unitQuery(u, nil))
		if err != nil {
			return fmt.Errorf("fedx: unit at %s: %w", u.sources[i], err)
		}
		partial[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rel := qplan.EmptyRelation(u.vars())
	for _, p := range partial {
		rel = qplan.UnionRelations(rel, p)
	}
	rel.Rows = qplan.DistinctRows(rel.Rows)
	return rel, nil
}

// boundJoin joins the intermediate relation with a unit by shipping the
// bindings in blocks of BindBlockSize to every relevant endpoint — FedX's
// block nested-loop bound join. When stopAt >= 0, processing stops as soon
// as that many joined rows exist (LIMIT pushdown).
func (e *Engine) boundJoin(ctx context.Context, u *unit, rel *sparql.Results, stopAt int) (*sparql.Results, error) {
	shared := sharedWith(u, rel)
	if len(shared) == 0 {
		// Cross product: evaluate unbound and hash join.
		urel, err := e.evalUnitUnbound(ctx, u)
		if err != nil {
			return nil, err
		}
		return qplan.HashJoin(rel, urel), nil
	}
	rows := qplan.ProjectDistinct(rel, shared)
	out := qplan.EmptyRelation(nil)
	first := true
	for start := 0; start < len(rows); start += e.opts.BindBlockSize {
		end := start + e.opts.BindBlockSize
		if end > len(rows) {
			end = len(rows)
		}
		block := sparql.InlineData{Vars: shared, Rows: rows[start:end]}
		partial := make([]*sparql.Results, len(u.sources))
		err := e.pool.ForEach(ctx, len(u.sources), func(i int) error {
			res, err := e.fed.Get(u.sources[i]).Query(ctx, unitQuery(u, &block))
			if err != nil {
				return fmt.Errorf("fedx: bound join at %s: %w", u.sources[i], err)
			}
			partial[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		urel := qplan.EmptyRelation(u.vars())
		for _, p := range partial {
			urel = qplan.UnionRelations(urel, p)
		}
		urel.Rows = qplan.DistinctRows(urel.Rows)
		joined := qplan.HashJoin(rel, urel)
		if first {
			out = joined
			first = false
		} else {
			out = qplan.UnionRelations(out, joined)
		}
		if stopAt >= 0 && len(out.Rows) >= stopAt {
			break
		}
	}
	if first {
		// No blocks executed (empty bindings): empty join result.
		vars := append(append([]string(nil), rel.Vars...), u.vars()...)
		return qplan.EmptyRelation(vars), nil
	}
	out.Rows = qplan.DistinctRows(out.Rows)
	return out, nil
}

func sharedWith(u *unit, rel *sparql.Results) []string {
	var out []string
	for _, v := range u.vars() {
		if rel.VarIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// evalOptional evaluates an optional block as a bound join against the
// current relation.
func (e *Engine) evalOptional(ctx context.Context, ob *qplan.OptionalBlock, rel *sparql.Results) (*sparql.Results, error) {
	sources := e.fed.Names()
	for _, tp := range ob.Patterns {
		s, err := e.sel.RelevantSources(ctx, tp)
		if err != nil {
			return nil, err
		}
		sources = federation.IntersectSources(sources, s)
	}
	u := &unit{patterns: ob.Patterns, sources: sources}
	vars := map[string]bool{}
	for _, v := range u.vars() {
		vars[v] = true
	}
	var residual []sparql.Expr
	for _, f := range ob.Filters {
		pushable := true
		for _, v := range sparql.ExprVars(f) {
			if !vars[v] {
				pushable = false
			}
		}
		if _, isExists := f.(sparql.ExprExists); isExists {
			pushable = false
		}
		if pushable {
			u.filters = append(u.filters, f)
		} else {
			residual = append(residual, f)
		}
	}
	if len(sources) == 0 {
		return qplan.EmptyRelation(u.vars()), nil
	}
	shared := sharedWith(u, rel)
	var urel *sparql.Results
	var err error
	if len(shared) == 0 || len(rel.Rows) == 0 {
		urel, err = e.evalUnitUnbound(ctx, u)
	} else {
		urel, err = e.boundFetch(ctx, u, rel, shared)
	}
	if err != nil {
		return nil, err
	}
	return qplan.ApplyFilters(urel, residual), nil
}

// boundFetch fetches a unit's rows restricted to the relation's bindings
// without joining (the caller left-joins).
func (e *Engine) boundFetch(ctx context.Context, u *unit, rel *sparql.Results, shared []string) (*sparql.Results, error) {
	rows := qplan.ProjectDistinct(rel, shared)
	out := qplan.EmptyRelation(u.vars())
	for start := 0; start < len(rows); start += e.opts.BindBlockSize {
		end := start + e.opts.BindBlockSize
		if end > len(rows) {
			end = len(rows)
		}
		block := sparql.InlineData{Vars: shared, Rows: rows[start:end]}
		partial := make([]*sparql.Results, len(u.sources))
		err := e.pool.ForEach(ctx, len(u.sources), func(i int) error {
			res, err := e.fed.Get(u.sources[i]).Query(ctx, unitQuery(u, &block))
			if err != nil {
				return fmt.Errorf("fedx: optional at %s: %w", u.sources[i], err)
			}
			partial[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, p := range partial {
			out = qplan.UnionRelations(out, p)
		}
	}
	out.Rows = qplan.DistinctRows(out.Rows)
	return out, nil
}
