package fedx

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/eval"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

const ub = "http://lubm.org/ub#"

func u(s string) rdf.Term { return rdf.NewIRI(ub + s) }

// lubmLike builds n same-schema endpoints, each a small university with
// students, advisors, and courses, plus remote PhD links to university 0.
func lubmLike(n int) ([]client.Endpoint, *store.Store) { return lubmLikeN(n, 4) }

func lubmLikeN(n, studentsPer int) ([]client.Endpoint, *store.Store) {
	typ := rdf.NewIRI(rdf.RDFType)
	oracle := store.New()
	var eps []client.Endpoint
	for uni := 0; uni < n; uni++ {
		var triples []rdf.Triple
		univ := u(fmt.Sprintf("univ%d", uni))
		triples = append(triples, rdf.Triple{S: univ, P: u("address"), O: rdf.NewLiteral(fmt.Sprintf("Addr%d", uni))})
		for s := 0; s < studentsPer; s++ {
			stu := u(fmt.Sprintf("u%d_s%d", uni, s))
			prof := u(fmt.Sprintf("u%d_p%d", uni, s%3))
			course := u(fmt.Sprintf("u%d_c%d", uni, s%3))
			triples = append(triples,
				rdf.Triple{S: stu, P: typ, O: u("GraduateStudent")},
				rdf.Triple{S: stu, P: u("advisor"), O: prof},
				rdf.Triple{S: stu, P: u("takesCourse"), O: course},
				rdf.Triple{S: prof, P: typ, O: u("Professor")},
				rdf.Triple{S: prof, P: u("teacherOf"), O: course},
				rdf.Triple{S: course, P: typ, O: u("Course")},
			)
			// Professors got their PhD from university 0 (interlink).
			triples = append(triples, rdf.Triple{S: prof, P: u("PhDDegreeFrom"), O: u("univ0")})
		}
		oracle.AddAll(triples)
		eps = append(eps, client.NewInProcess(fmt.Sprintf("uni%d", uni), store.NewFromTriples(triples)))
	}
	return eps, oracle
}

func oracleRows(t *testing.T, oracle *store.Store, q string) *sparql.Results {
	t.Helper()
	res, err := eval.New(oracle).QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	res.Rows = qplan.DistinctRows(res.Rows)
	res.Sort()
	return res
}

func fedxRows(t *testing.T, eps []client.Endpoint, q string) *sparql.Results {
	t.Helper()
	e := New(federation.MustNew(eps...), Options{})
	res, err := e.QueryString(context.Background(), q)
	if err != nil {
		t.Fatalf("fedx %s: %v", q, err)
	}
	res.Rows = qplan.DistinctRows(res.Rows)
	res.Sort()
	return res
}

const studentAdvisorQuery = `
	PREFIX ub: <http://lubm.org/ub#>
	PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	SELECT ?s ?p ?c WHERE {
		?s rdf:type ub:GraduateStudent .
		?s ub:advisor ?p .
		?s ub:takesCourse ?c .
		?p ub:teacherOf ?c .
	}`

func TestFedXMatchesOracle(t *testing.T) {
	eps, oracle := lubmLike(3)
	got := fedxRows(t, eps, studentAdvisorQuery)
	want := oracleRows(t, oracle, studentAdvisorQuery)
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %d rows, want %d", len(got.Rows), len(want.Rows))
	}
}

func TestFedXCrossEndpointJoin(t *testing.T) {
	eps, oracle := lubmLike(3)
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?p ?a WHERE { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }`
	got := fedxRows(t, eps, q)
	want := oracleRows(t, oracle, q)
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	if len(got.Rows) == 0 {
		t.Fatal("interlink join returned nothing")
	}
}

func TestFedXOptionalAndFilter(t *testing.T) {
	eps, oracle := lubmLike(2)
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?p ?a WHERE {
	        ?p ub:PhDDegreeFrom ?u .
	        OPTIONAL { ?u ub:address ?a }
	        FILTER(ISIRI(?p))
	      }`
	got := fedxRows(t, eps, q)
	want := oracleRows(t, oracle, q)
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %d rows, want %d", len(got.Rows), len(want.Rows))
	}
}

func TestFedXUnion(t *testing.T) {
	eps, oracle := lubmLike(2)
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?x WHERE { { ?x ub:teacherOf ?c } UNION { ?x ub:takesCourse ?c } }`
	got := fedxRows(t, eps, q)
	want := oracleRows(t, oracle, q)
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %d rows, want %d", len(got.Rows), len(want.Rows))
	}
}

func TestExclusiveGroups(t *testing.T) {
	// Two endpoints with disjoint schemas: patterns collapse into one
	// exclusive group per endpoint → requests stay low.
	ep1 := client.NewInProcess("ep1", store.NewFromTriples([]rdf.Triple{
		{S: u("a"), P: u("onlyAt1"), O: u("b")},
		{S: u("a"), P: u("alsoOnlyAt1"), O: u("c")},
	}))
	ep2 := client.NewInProcess("ep2", store.NewFromTriples([]rdf.Triple{
		{S: u("b"), P: u("onlyAt2"), O: u("d")},
	}))
	var m client.Metrics
	fed := federation.MustNew(
		client.NewInstrumented(ep1, &m),
		client.NewInstrumented(ep2, &m),
	)
	e := New(fed, Options{})
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT * WHERE { ?a ub:onlyAt1 ?b . ?a ub:alsoOnlyAt1 ?c . ?b ub:onlyAt2 ?d }`
	res, err := e.QueryString(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	// 6 ASKs (3 patterns × 2 endpoints) + 1 exclusive group + 1 bound join.
	if got := m.Snapshot().Requests; got > 9 {
		t.Errorf("requests = %d; exclusive groups should keep this <= 9", got)
	}
}

// The paper's central claim, in miniature: same-schema endpoints prevent
// exclusive groups, so FedX sends far more requests than Lusail.
func TestFedXRequestExplosionVsLusail(t *testing.T) {
	build := func() (*federation.Federation, *client.Metrics) {
		// Enough students that bound-join blocks dominate FedX's request
		// count, while Lusail's probe overhead stays constant.
		eps, _ := lubmLikeN(4, 60)
		var m client.Metrics
		var wrapped []client.Endpoint
		for _, ep := range eps {
			wrapped = append(wrapped, client.NewInstrumented(ep, &m))
		}
		return federation.MustNew(wrapped...), &m
	}

	fedF, mF := build()
	fx := New(fedF, Options{})
	if _, err := fx.QueryString(context.Background(), studentAdvisorQuery); err != nil {
		t.Fatal(err)
	}
	fedL, mL := build()
	lu := core.MustNew(fedL, core.DefaultOptions())
	if _, _, err := lu.QueryString(context.Background(), studentAdvisorQuery); err != nil {
		t.Fatal(err)
	}
	fedxReqs := mF.Snapshot().Requests
	lusailReqs := mL.Snapshot().Requests
	if fedxReqs <= lusailReqs {
		t.Errorf("expected FedX to send more requests than Lusail: fedx=%d lusail=%d", fedxReqs, lusailReqs)
	}
}

func TestFedXLimitEarlyTermination(t *testing.T) {
	eps, _ := lubmLike(4)
	var m client.Metrics
	var wrapped []client.Endpoint
	for _, ep := range eps {
		wrapped = append(wrapped, client.NewInstrumented(ep, &m))
	}
	fed := federation.MustNew(wrapped...)
	e := New(fed, Options{BindBlockSize: 1})

	full := studentAdvisorQuery
	if _, err := e.QueryString(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	fullReqs := m.Snapshot().Requests

	m.Reset()
	e2 := New(federation.MustNew(wrapped...), Options{BindBlockSize: 1})
	limited := full + " LIMIT 1"
	res, err := e2.QueryString(context.Background(), limited)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("LIMIT 1 returned %d rows", len(res.Rows))
	}
	if got := m.Snapshot().Requests; got >= fullReqs {
		t.Errorf("LIMIT should cut requests: limited=%d full=%d", got, fullReqs)
	}
}

func TestFedXEmptySourcePattern(t *testing.T) {
	eps, _ := lubmLike(2)
	got := fedxRows(t, eps, `SELECT ?s WHERE { ?s <http://nowhere/p> ?o }`)
	if len(got.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(got.Rows))
	}
}

// FedX and Lusail must agree on random federated queries.
func TestFedXAgreesWithLusailProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		nEP := 2 + rng.Intn(2)
		eps, oracle := lubmLike(nEP)
		fed := federation.MustNew(eps...)
		queries := []string{
			studentAdvisorQuery,
			`PREFIX ub: <http://lubm.org/ub#> SELECT ?p ?a WHERE { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }`,
			`PREFIX ub: <http://lubm.org/ub#> SELECT ?s WHERE { ?s ub:takesCourse ?c . ?p ub:teacherOf ?c . ?p ub:PhDDegreeFrom ?u }`,
		}
		q := queries[rng.Intn(len(queries))]
		fx := New(fed, Options{BindBlockSize: 1 + rng.Intn(20)})
		got, err := fx.QueryString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got.Rows = qplan.DistinctRows(got.Rows)
		got.Sort()
		want := oracleRows(t, oracle, q)
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("trial %d (%d EPs) query %s: %d rows, want %d", trial, nEP, q, len(got.Rows), len(want.Rows))
		}
	}
}

func TestBuildUnitsExclusiveGrouping(t *testing.T) {
	br := &qplan.Branch{Patterns: []sparql.TriplePattern{
		{S: sparql.Var("a"), P: sparql.IRI("http://p1"), O: sparql.Var("b")},
		{S: sparql.Var("a"), P: sparql.IRI("http://p2"), O: sparql.Var("c")},
		{S: sparql.Var("b"), P: sparql.IRI("http://p3"), O: sparql.Var("d")},
		{S: sparql.Var("d"), P: sparql.IRI("http://p4"), O: sparql.Var("e")},
	}}
	sources := [][]string{
		{"ep1"},        // exclusive to ep1
		{"ep1"},        // exclusive to ep1 → same group
		{"ep2"},        // exclusive to ep2 → own group
		{"ep1", "ep2"}, // multi-source → singleton unit
	}
	units := buildUnits(br, sources)
	if len(units) != 3 {
		t.Fatalf("units = %d, want 3", len(units))
	}
	if !units[0].exclusive || len(units[0].patterns) != 2 {
		t.Errorf("unit0 = %+v", units[0])
	}
	if !units[1].exclusive || len(units[1].patterns) != 1 {
		t.Errorf("unit1 = %+v", units[1])
	}
	if units[2].exclusive {
		t.Error("multi-source unit must not be exclusive")
	}
}

func TestPickNextUnitHeuristic(t *testing.T) {
	mk := func(exclusive bool, tps ...sparql.TriplePattern) *unit {
		return &unit{patterns: tps, exclusive: exclusive}
	}
	manyFree := mk(false, sparql.TriplePattern{S: sparql.Var("x"), P: sparql.Var("p"), O: sparql.Var("y")})
	oneFree := mk(false, sparql.TriplePattern{S: sparql.IRI("http://s"), P: sparql.IRI("http://p"), O: sparql.Var("z")})
	units := []*unit{manyFree, oneFree}
	if got := pickNextUnit(units, map[string]bool{}); got != 1 {
		t.Errorf("pickNextUnit = %d, want the fewest-free-variables unit", got)
	}
	// Once z is bound, the constant-rich unit still wins; binding x and y
	// flips the choice.
	if got := pickNextUnit(units, map[string]bool{"x": true, "y": true, "p": true}); got != 0 {
		t.Errorf("pickNextUnit with bound vars = %d, want 0", got)
	}
}

func TestUnitQueryParses(t *testing.T) {
	u := &unit{
		patterns: []sparql.TriplePattern{
			{S: sparql.Var("s"), P: sparql.IRI("http://p"), O: sparql.Var("o")},
		},
	}
	text := unitQuery(u, &sparql.InlineData{Vars: []string{"s"}, Rows: [][]rdf.Term{{rdf.NewIRI("http://a")}}})
	if _, err := sparql.Parse(text); err != nil {
		t.Errorf("unit query does not parse: %v\n%s", err, text)
	}
}
