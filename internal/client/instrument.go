package client

import (
	"context"
	"sync/atomic"
	"time"

	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// Metrics accumulates communication-cost counters for one endpoint or a
// whole federation. All fields are updated atomically.
//
// Metrics predates the obs registry and is kept as a compatibility shim for
// the benchmark harness's delta-based accounting (Snapshot/Sub); new code
// should read the per-endpoint counters and histograms that Instrumented
// reports into its obs.Registry instead.
type Metrics struct {
	Requests atomic.Int64 // number of queries sent (ASK + SELECT)
	Asks     atomic.Int64 // subset of Requests that were ASK queries
	Rows     atomic.Int64 // total solution rows received
	Bytes    atomic.Int64 // estimated payload bytes received
	Errors   atomic.Int64 // failed requests
}

// Snapshot is a plain-value copy of Metrics.
type Snapshot struct {
	Requests, Asks, Rows, Bytes, Errors int64
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests: m.Requests.Load(),
		Asks:     m.Asks.Load(),
		Rows:     m.Rows.Load(),
		Bytes:    m.Bytes.Load(),
		Errors:   m.Errors.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.Requests.Store(0)
	m.Asks.Store(0)
	m.Rows.Store(0)
	m.Bytes.Store(0)
	m.Errors.Store(0)
}

// Sub returns the difference between this snapshot and an earlier one.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		Requests: s.Requests - earlier.Requests,
		Asks:     s.Asks - earlier.Asks,
		Rows:     s.Rows - earlier.Rows,
		Bytes:    s.Bytes - earlier.Bytes,
		Errors:   s.Errors - earlier.Errors,
	}
}

// Instrumented wraps an endpoint and records every query twice: into the
// legacy Metrics shim (when non-nil) and into an obs.Registry as
// per-endpoint labeled counters (requests, errors, ASKs) and histograms
// (request latency, result rows, payload bytes).
type Instrumented struct {
	inner   Endpoint
	metrics *Metrics

	requests *obs.Counter
	errors   *obs.Counter
	asks     *obs.Counter
	latency  *obs.Histogram
	rows     *obs.Histogram
	bytes    *obs.Histogram
}

// NewInstrumented wraps ep so that all traffic is recorded in m and in the
// default obs registry. Multiple endpoints may share one Metrics to get
// federation-wide totals; m may be nil to skip the shim.
func NewInstrumented(ep Endpoint, m *Metrics) *Instrumented {
	return NewInstrumentedWith(ep, m, obs.Default())
}

// NewInstrumentedWith is NewInstrumented reporting into a specific
// registry (tests and tools that need isolated metrics).
func NewInstrumentedWith(ep Endpoint, m *Metrics, reg *obs.Registry) *Instrumented {
	label := obs.L("endpoint", ep.Name())
	return &Instrumented{
		inner:    ep,
		metrics:  m,
		requests: reg.Counter(obs.MetricRequests, "queries sent per endpoint (ASK + SELECT)", label),
		errors:   reg.Counter(obs.MetricErrors, "failed requests per endpoint", label),
		asks:     reg.Counter(obs.MetricAsks, "ASK queries per endpoint", label),
		latency:  reg.Histogram(obs.MetricRequestSeconds, "request latency per endpoint", obs.LatencyBuckets, label),
		rows:     reg.Histogram(obs.MetricResultRows, "solution rows per response", obs.RowBuckets, label),
		bytes:    reg.Histogram(obs.MetricResultBytes, "estimated payload bytes per response", obs.ByteBuckets, label),
	}
}

// Name implements Endpoint.
func (e *Instrumented) Name() string { return e.inner.Name() }

// Unwrap returns the wrapped endpoint.
func (e *Instrumented) Unwrap() Endpoint { return e.inner }

// Metrics returns the metrics sink (possibly nil).
func (e *Instrumented) Metrics() *Metrics { return e.metrics }

// Query implements Endpoint.
func (e *Instrumented) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if e.metrics != nil {
		e.metrics.Requests.Add(1)
	}
	e.requests.Inc()
	start := time.Now()
	res, err := e.inner.Query(ctx, query)
	e.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		if e.metrics != nil {
			e.metrics.Errors.Add(1)
		}
		e.errors.Inc()
		return nil, err
	}
	size := ResultSize(res)
	if e.metrics != nil {
		if res.IsBoolean {
			e.metrics.Asks.Add(1)
		}
		e.metrics.Rows.Add(int64(len(res.Rows)))
		e.metrics.Bytes.Add(int64(size))
	}
	if res.IsBoolean {
		e.asks.Inc()
	}
	e.rows.Observe(float64(len(res.Rows)))
	e.bytes.Observe(float64(size))
	return res, nil
}

// Latency wraps an endpoint and injects network delay: a fixed round-trip
// time per request plus a transfer time proportional to the response size.
// It reproduces the geo-distributed setting of the paper's Section 5.3.
type Latency struct {
	inner Endpoint
	// RTT is the request round-trip latency added to every query.
	RTT time.Duration
	// BytesPerSecond is the simulated downstream bandwidth; zero disables
	// the bandwidth term.
	BytesPerSecond int64
}

// NewLatency wraps ep with the given round-trip time and bandwidth.
func NewLatency(ep Endpoint, rtt time.Duration, bytesPerSecond int64) *Latency {
	return &Latency{inner: ep, RTT: rtt, BytesPerSecond: bytesPerSecond}
}

// Name implements Endpoint.
func (e *Latency) Name() string { return e.inner.Name() }

// Unwrap returns the wrapped endpoint.
func (e *Latency) Unwrap() Endpoint { return e.inner }

// Query implements Endpoint.
func (e *Latency) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if err := sleepCtx(ctx, e.RTT); err != nil {
		return nil, err
	}
	res, err := e.inner.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	if e.BytesPerSecond > 0 {
		transfer := time.Duration(float64(ResultSize(res)) / float64(e.BytesPerSecond) * float64(time.Second))
		if err := sleepCtx(ctx, transfer); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
