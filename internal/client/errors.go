package client

import (
	"errors"
	"fmt"
)

// Phase identifies which stage of federated query processing a request
// belonged to. It is carried by EndpointError so callers (and the
// resilience layer's Degrade mode) can decide how to react to a failure
// without parsing error strings.
type Phase string

// The engine's request phases, in pipeline order.
const (
	PhaseSourceSelection Phase = "source-selection"  // ASK relevance probes
	PhaseCheck           Phase = "check"             // LADE locality check queries
	PhaseCount           Phase = "count-probe"       // SAPE COUNT cardinality probes
	PhaseSubquery        Phase = "subquery"          // unbound subquery evaluation
	PhaseBoundJoin       Phase = "bound-join"        // delayed subqueries with VALUES blocks
	PhaseOptional        Phase = "optional"          // OPTIONAL block evaluation
	PhaseRefinement      Phase = "source-refinement" // bound ASK source refinement
	PhaseCatalog         Phase = "catalog"           // catalog build/refresh scans
	PhaseAdmission       Phase = "admission"         // lusaild tenant admission control
	PhaseSema            Phase = "sema"              // static query analysis findings
)

// ErrResponseTooLarge is the sentinel wrapped into the EndpointError a
// client surfaces when an endpoint's response exceeds the configured
// response-size cap mid-stream. It replaces the historical silent
// truncation (an io.LimitReader quietly clipping the body at 256 MiB and
// parsing the prefix as if it were complete): an oversized response is now
// an explicit, typed failure the engine can degrade on or abort with.
// Detect it with errors.Is(err, client.ErrResponseTooLarge).
var ErrResponseTooLarge = errors.New("response exceeds configured size limit")

// EndpointError is the typed error for any request that failed against a
// federation endpoint. It replaces the fmt.Errorf strings the engine
// historically returned, so callers can dispatch on the failing endpoint
// and phase with errors.As:
//
//	var epErr *client.EndpointError
//	if errors.As(err, &epErr) {
//	    log.Printf("endpoint %s failed during %s", epErr.Endpoint, epErr.Phase)
//	}
//
// EndpointError supports errors.Is/Unwrap, so sentinel checks against the
// underlying cause (context.DeadlineExceeded, resilience.ErrBreakerOpen,
// ...) see through it.
type EndpointError struct {
	// Endpoint is the federation name of the endpoint the request targeted.
	Endpoint string
	// Phase is the engine stage that issued the request.
	Phase Phase
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *EndpointError) Error() string {
	return fmt.Sprintf("%s at %s: %v", e.Phase, e.Endpoint, e.Err)
}

// Unwrap supports errors.Is/As chains.
func (e *EndpointError) Unwrap() error { return e.Err }

// Is reports whether target is an EndpointError for the same endpoint and
// phase (empty fields in target act as wildcards), enabling
// errors.Is(err, &EndpointError{Endpoint: "dbpedia"}).
func (e *EndpointError) Is(target error) bool {
	t, ok := target.(*EndpointError)
	if !ok {
		return false
	}
	return (t.Endpoint == "" || t.Endpoint == e.Endpoint) &&
		(t.Phase == "" || t.Phase == e.Phase)
}

// AsEndpointError extracts the EndpointError from an error chain, or nil.
func AsEndpointError(err error) *EndpointError {
	var epErr *EndpointError
	if errors.As(err, &epErr) {
		return epErr
	}
	return nil
}
