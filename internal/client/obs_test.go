package client

import (
	"context"
	"sync"
	"testing"
	"time"

	"lusail/internal/obs"
)

// TestObsConcurrentInstrumentedRetry hammers one Instrumented+Retry+Flaky
// stack from many goroutines; run with -race to verify the obs registry and
// the endpoint wrappers are concurrency-safe, then check that every counter
// agrees on the number of logical queries.
func TestObsConcurrentInstrumentedRetry(t *testing.T) {
	reg := obs.NewRegistry()
	var m Metrics
	flaky := NewFlaky(testEP(), 5) // every 5th request fails once, then retried
	retry := NewRetry(flaky, 3, time.Microsecond)
	inst := NewInstrumentedWith(retry, &m, reg)

	const goroutines, perG = 16, 25
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := inst.Query(ctx, `ASK { ?s ?p ?o }`)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if !res.Boolean {
					t.Error("ASK = false, want true")
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = goroutines * perG
	if s := m.Snapshot(); s.Requests != total || s.Errors != 0 || s.Asks != total {
		t.Errorf("legacy snapshot = %+v, want %d requests/asks, 0 errors", s, total)
	}
	label := obs.L("endpoint", "ep")
	if v := reg.Counter(obs.MetricRequests, "", label).Value(); v != total {
		t.Errorf("registry requests = %v, want %d", v, total)
	}
	if v := reg.Counter(obs.MetricAsks, "", label).Value(); v != total {
		t.Errorf("registry asks = %v, want %d", v, total)
	}
	if n := reg.Histogram(obs.MetricRequestSeconds, "", obs.LatencyBuckets, label).Count(); n != total {
		t.Errorf("latency observations = %d, want %d", n, total)
	}
	if flaky.Failures() == 0 {
		t.Error("flaky endpoint never failed; retry path untested")
	}
}

// TestRetryBackoffCap verifies the full-jitter backoff is capped: with a
// nominal backoff of an hour but MaxBackoff of a few milliseconds, an
// all-failing endpoint must exhaust its attempts almost immediately.
func TestRetryBackoffCap(t *testing.T) {
	r := NewRetry(NewFlaky(testEP(), 1), 4, time.Hour)
	r.MaxBackoff = 5 * time.Millisecond

	start := time.Now()
	_, err := r.Query(context.Background(), `ASK { ?s ?p ?o }`)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("all-failing endpoint should error")
	}
	if elapsed > time.Second {
		t.Errorf("4 attempts took %v; MaxBackoff cap not applied", elapsed)
	}
}

// TestJitterBounds checks the full-jitter draw stays within [0, d].
func TestJitterBounds(t *testing.T) {
	if jitter(0) != 0 || jitter(-time.Second) != 0 {
		t.Error("jitter of non-positive duration should be 0")
	}
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		if j := jitter(d); j < 0 || j > d {
			t.Fatalf("jitter(%v) = %v, out of [0, %v]", d, j, d)
		}
	}
}
