package client

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	flaky := NewFlaky(testEP(), 2) // every 2nd request fails
	ep := NewRetry(flaky, 3, time.Millisecond)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		res, err := ep.Query(ctx, `ASK { ?s ?p ?o }`)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !res.Boolean {
			t.Fatalf("query %d: wrong answer", i)
		}
	}
	if flaky.Failures() == 0 {
		t.Error("fault injection never triggered")
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	flaky := NewFlaky(testEP(), 1) // all requests fail
	ep := NewRetry(flaky, 3, time.Millisecond)
	_, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("err = %v", err)
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	ep := NewRetry(NewFlaky(testEP(), 1), 5, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ep.Query(ctx, `ASK { ?s ?p ?o }`); err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("cancelled query should not sit in backoff")
	}
}

func TestRetryPassthroughOnSuccess(t *testing.T) {
	var m Metrics
	inner := NewInstrumented(testEP(), &m)
	ep := NewRetry(inner, 5, time.Millisecond)
	if _, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().Requests != 1 {
		t.Errorf("success should use exactly one attempt, used %d", m.Snapshot().Requests)
	}
	if ep.Name() != "ep" {
		t.Errorf("Name = %q", ep.Name())
	}
}
