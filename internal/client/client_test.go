package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func testEP() *InProcess {
	st := store.NewFromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/a"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/b")},
		{S: rdf.NewIRI("http://ex/a"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/c")},
	})
	return NewInProcess("ep", st)
}

func TestInProcessQuery(t *testing.T) {
	ep := testEP()
	res, err := ep.Query(context.Background(), `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if ep.Name() != "ep" {
		t.Errorf("Name = %q", ep.Name())
	}
}

func TestInProcessContextCancelled(t *testing.T) {
	ep := testEP()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ep.Query(ctx, `ASK { ?s ?p ?o }`); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAskHelperErrors(t *testing.T) {
	ep := testEP()
	if _, err := Ask(context.Background(), ep, `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Error("Ask on SELECT should error")
	}
	ok, err := Ask(context.Background(), ep, `ASK { ?s ?p ?o }`)
	if err != nil || !ok {
		t.Errorf("Ask = %v, %v", ok, err)
	}
}

func TestInstrumentedCounts(t *testing.T) {
	var m Metrics
	ep := NewInstrumented(testEP(), &m)
	ctx := context.Background()
	if _, err := ep.Query(ctx, `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Query(ctx, `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Query(ctx, `SELECT bogus`); err == nil {
		t.Fatal("expected parse error")
	}
	s := m.Snapshot()
	if s.Requests != 3 || s.Asks != 1 || s.Rows != 2 || s.Errors != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Bytes <= 0 {
		t.Error("bytes should be positive")
	}
	m.Reset()
	if m.Snapshot() != (Snapshot{}) {
		t.Error("Reset did not zero counters")
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{Requests: 10, Rows: 100, Bytes: 1000}
	b := Snapshot{Requests: 4, Rows: 40, Bytes: 400}
	d := a.Sub(b)
	if d.Requests != 6 || d.Rows != 60 || d.Bytes != 600 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestLatencyInjectsDelay(t *testing.T) {
	ep := NewLatency(testEP(), 30*time.Millisecond, 0)
	start := time.Now()
	if _, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 30ms", elapsed)
	}
}

func TestLatencyBandwidthDelay(t *testing.T) {
	// 2 rows ≈ >100 bytes at 1KB/s ≈ >100ms.
	ep := NewLatency(testEP(), 0, 1024)
	start := time.Now()
	if _, err := ep.Query(context.Background(), `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("elapsed = %v, want bandwidth delay", elapsed)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	ep := NewLatency(testEP(), time.Second, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ep.Query(ctx, `ASK { ?s ?p ?o }`)
	if err == nil {
		t.Error("expected context deadline error")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("cancellation did not interrupt sleep")
	}
}

func TestResultSize(t *testing.T) {
	if ResultSize(nil) != 0 {
		t.Error("nil size should be 0")
	}
	if ResultSize(sparql.BoolResults(true)) <= 0 {
		t.Error("boolean size should be positive")
	}
	r := sparql.NewResults([]string{"x"})
	small := ResultSize(r)
	r.Rows = append(r.Rows, []rdf.Term{rdf.NewIRI("http://example.org/very/long/iri")})
	if ResultSize(r) <= small {
		t.Error("size should grow with rows")
	}
}

func TestHTTPClientErrorPaths(t *testing.T) {
	// Server returns 500.
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal explosion", http.StatusInternalServerError)
	}))
	defer boom.Close()
	ep := NewHTTP("boom", boom.URL)
	if _, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`); err == nil ||
		!strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("expected HTTP 500 error, got %v", err)
	}

	// Server returns invalid JSON.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Write([]byte("{not json"))
	}))
	defer garbage.Close()
	ep = NewHTTP("garbage", garbage.URL)
	if _, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`); err == nil {
		t.Error("expected JSON parse error")
	}

	// Connection refused.
	ep = NewHTTP("nowhere", "http://127.0.0.1:1")
	if _, err := ep.Query(context.Background(), `ASK { ?s ?p ?o }`); err == nil {
		t.Error("expected connection error")
	}
}
