package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"lusail/internal/sparql"
)

// HTTP is a SPARQL 1.1 protocol client for a remote endpoint.
type HTTP struct {
	name string
	url  string
	hc   *http.Client
}

// NewHTTP returns an endpoint client for the SPARQL endpoint at rawURL.
func NewHTTP(name, rawURL string) *HTTP {
	return &HTTP{
		name: name,
		url:  rawURL,
		hc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// NewHTTPWithClient returns an endpoint client using a caller-supplied
// http.Client (for timeouts, transports, or test doubles).
func NewHTTPWithClient(name, rawURL string, hc *http.Client) *HTTP {
	return &HTTP{name: name, url: rawURL, hc: hc}
}

// Name implements Endpoint.
func (e *HTTP) Name() string { return e.name }

// URL returns the endpoint URL.
func (e *HTTP) URL() string { return e.url }

// Query implements Endpoint using a POST with form-encoded query, the most
// widely supported SPARQL protocol binding.
func (e *HTTP) Query(ctx context.Context, query string) (*sparql.Results, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := e.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: reading response: %w", e.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if len(msg) > 300 {
			msg = msg[:300]
		}
		return nil, fmt.Errorf("endpoint %s: HTTP %d: %s", e.name, resp.StatusCode, msg)
	}
	res, err := sparql.ParseResultsJSON(body)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	return res, nil
}
