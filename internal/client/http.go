package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"lusail/internal/sparql"
)

// DefaultMaxResponseBytes caps how much of an endpoint response the client
// will consume when HTTPOptions does not set a limit: 256 MiB, the
// historical materialization cap.
const DefaultMaxResponseBytes = 256 << 20

// HTTPOptions configures an HTTP endpoint client.
type HTTPOptions struct {
	// Client supplies the http.Client (timeouts, transports, test
	// doubles); nil uses a client with a 5-minute timeout.
	Client *http.Client
	// MaxResponseBytes caps the size of a single response body. A response
	// that exceeds it fails with a typed EndpointError wrapping
	// ErrResponseTooLarge — never a silently truncated result. Zero means
	// DefaultMaxResponseBytes; negative is invalid.
	MaxResponseBytes int64
}

// Validate rejects option values that cannot mean anything.
func (o HTTPOptions) Validate() error {
	if o.MaxResponseBytes < 0 {
		return fmt.Errorf("client: negative MaxResponseBytes %d", o.MaxResponseBytes)
	}
	return nil
}

// HTTP is a SPARQL 1.1 protocol client for a remote endpoint.
type HTTP struct {
	name     string
	url      string
	hc       *http.Client
	maxBytes int64
}

// NewHTTP returns an endpoint client for the SPARQL endpoint at rawURL.
func NewHTTP(name, rawURL string) *HTTP {
	e, _ := NewHTTPWithOptions(name, rawURL, HTTPOptions{})
	return e
}

// NewHTTPWithClient returns an endpoint client using a caller-supplied
// http.Client (for timeouts, transports, or test doubles).
func NewHTTPWithClient(name, rawURL string, hc *http.Client) *HTTP {
	e, _ := NewHTTPWithOptions(name, rawURL, HTTPOptions{Client: hc})
	return e
}

// NewHTTPWithOptions returns an endpoint client configured by opts, or an
// error when opts fails Validate.
func NewHTTPWithOptions(name, rawURL string, opts HTTPOptions) (*HTTP, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	maxBytes := opts.MaxResponseBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxResponseBytes
	}
	return &HTTP{name: name, url: rawURL, hc: hc, maxBytes: maxBytes}, nil
}

// Name implements Endpoint.
func (e *HTTP) Name() string { return e.name }

// URL returns the endpoint URL.
func (e *HTTP) URL() string { return e.url }

// Query implements Endpoint by draining QueryStream: the materialized
// convenience is now layered on the streaming path, so both share one
// protocol implementation and one response-size policy.
func (e *HTTP) Query(ctx context.Context, query string) (*sparql.Results, error) {
	rd, err := e.QueryStream(ctx, query)
	if err != nil {
		return nil, err
	}
	return sparql.ReadAllRows(rd)
}

// QueryStream implements Streamer using a POST with form-encoded query,
// the most widely supported SPARQL protocol binding. It returns once the
// response head has been decoded; rows decode incrementally on Read. A
// body larger than the configured MaxResponseBytes fails the stream with
// an EndpointError wrapping ErrResponseTooLarge.
func (e *HTTP) QueryStream(ctx context.Context, query string) (sparql.RowReader, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := e.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := strings.TrimSpace(string(body))
		if len(msg) > 300 {
			msg = msg[:300]
		}
		return nil, fmt.Errorf("endpoint %s: HTTP %d: %s", e.name, resp.StatusCode, msg)
	}
	body := &boundedBody{
		rc:        resp.Body,
		remaining: e.maxBytes + 1, // the +1 distinguishes "exactly at cap" from "over"
		endpoint:  e.name,
		max:       e.maxBytes,
	}
	dec, err := sparql.NewJSONDecoder(body)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	return dec, nil
}

// boundedBody is a response-body reader that fails — with a typed error —
// once more than max bytes have been consumed. Unlike io.LimitReader it
// never fakes a clean EOF at the cap, so an oversized response can never
// be mistaken for a complete one.
type boundedBody struct {
	rc        io.ReadCloser
	remaining int64
	endpoint  string
	max       int64
}

func (b *boundedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &EndpointError{
			Endpoint: b.endpoint,
			Err:      fmt.Errorf("response body exceeds %d bytes: %w", b.max, ErrResponseTooLarge),
		}
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *boundedBody) Close() error { return b.rc.Close() }
