package client

import (
	"errors"

	"context"
	"io"
	"time"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Streamer is implemented by endpoints that can deliver result rows
// incrementally, as they are decoded off the wire, instead of
// materializing the whole result set first. QueryStream returns after the
// response head has been received; rows are pulled with RowReader.Read.
// The caller owns the reader and must Close it on every path.
type Streamer interface {
	QueryStream(ctx context.Context, query string) (sparql.RowReader, error)
}

// QueryStream issues a query against ep, streaming when the endpoint
// implements Streamer and falling back to materialize-then-replay
// otherwise (in-process stores, fault injectors). The fallback preserves
// the RowReader contract exactly; only memory behavior differs.
func QueryStream(ctx context.Context, ep Endpoint, query string) (sparql.RowReader, error) {
	if s, ok := ep.(Streamer); ok {
		return s.QueryStream(ctx, query)
	}
	res, err := ep.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	return sparql.NewResultsReader(res), nil
}

// RowSize estimates the wire size in bytes of one solution row, using the
// same model as ResultSize.
func RowSize(row []rdf.Term) int {
	size := 4
	for _, t := range row {
		if t.IsZero() {
			continue
		}
		size += len(t.Value) + len(t.Lang) + len(t.Datatype) + 30
	}
	return size
}

// QueryStream implements Streamer: the request is counted up front and the
// returned reader accounts rows and bytes as they are pulled, reporting
// latency (time to last row) and totals when the stream ends or is closed.
func (e *Instrumented) QueryStream(ctx context.Context, query string) (sparql.RowReader, error) {
	if e.metrics != nil {
		e.metrics.Requests.Add(1)
	}
	e.requests.Inc()
	start := time.Now()
	rd, err := QueryStream(ctx, e.inner, query)
	if err != nil {
		if e.metrics != nil {
			e.metrics.Errors.Add(1)
		}
		e.errors.Inc()
		return nil, err
	}
	return &instrumentedReader{inner: rd, ep: e, start: start}, nil
}

// instrumentedReader tees row/byte counts off a streamed response.
type instrumentedReader struct {
	inner sparql.RowReader
	ep    *Instrumented
	start time.Time
	rows  int64
	bytes int64
	done  bool
}

func (r *instrumentedReader) Vars() []string { return r.inner.Vars() }

func (r *instrumentedReader) Boolean() (bool, bool) {
	if br, ok := r.inner.(sparql.BooleanReader); ok {
		return br.Boolean()
	}
	return false, false
}

func (r *instrumentedReader) Read() ([]rdf.Term, error) {
	row, err := r.inner.Read()
	if err == nil {
		r.rows++
		r.bytes += int64(RowSize(row))
		return row, nil
	}
	if !errors.Is(err, io.EOF) {
		r.fail()
		return nil, err
	}
	r.settle()
	return nil, io.EOF
}

// settle records the completed stream's totals exactly once.
func (r *instrumentedReader) settle() {
	if r.done {
		return
	}
	r.done = true
	e := r.ep
	e.latency.Observe(time.Since(r.start).Seconds())
	if _, isBool := r.Boolean(); isBool {
		if e.metrics != nil {
			e.metrics.Asks.Add(1)
		}
		e.asks.Inc()
	}
	if e.metrics != nil {
		e.metrics.Rows.Add(r.rows)
		e.metrics.Bytes.Add(r.bytes)
	}
	e.rows.Observe(float64(r.rows))
	e.bytes.Observe(float64(r.bytes))
}

// fail records a mid-stream error exactly once; rows and bytes already
// transferred still count toward the communication totals.
func (r *instrumentedReader) fail() {
	if r.done {
		return
	}
	r.done = true
	e := r.ep
	e.latency.Observe(time.Since(r.start).Seconds())
	if e.metrics != nil {
		e.metrics.Errors.Add(1)
		e.metrics.Rows.Add(r.rows)
		e.metrics.Bytes.Add(r.bytes)
	}
	e.errors.Inc()
	e.rows.Observe(float64(r.rows))
	e.bytes.Observe(float64(r.bytes))
}

func (r *instrumentedReader) Close() error {
	r.settle()
	return r.inner.Close()
}

// QueryStream implements Streamer: the round-trip delay is paid before the
// head arrives and the bandwidth term is paid per row as rows are pulled,
// so a streamed consumer experiences first-row latency ≈ RTT rather than
// RTT + full-transfer time.
func (e *Latency) QueryStream(ctx context.Context, query string) (sparql.RowReader, error) {
	if err := sleepCtx(ctx, e.RTT); err != nil {
		return nil, err
	}
	rd, err := QueryStream(ctx, e.inner, query)
	if err != nil {
		return nil, err
	}
	if e.BytesPerSecond <= 0 {
		return rd, nil
	}
	return &latencyReader{inner: rd, ctx: ctx, bps: e.BytesPerSecond}, nil
}

// latencyReader delays each row by its transfer time at the simulated
// bandwidth.
type latencyReader struct {
	inner sparql.RowReader
	ctx   context.Context
	bps   int64
}

func (r *latencyReader) Vars() []string { return r.inner.Vars() }

func (r *latencyReader) Boolean() (bool, bool) {
	if br, ok := r.inner.(sparql.BooleanReader); ok {
		return br.Boolean()
	}
	return false, false
}

func (r *latencyReader) Read() ([]rdf.Term, error) {
	row, err := r.inner.Read()
	if err != nil {
		return nil, err
	}
	transfer := time.Duration(float64(RowSize(row)) / float64(r.bps) * float64(time.Second))
	if err := sleepCtx(r.ctx, transfer); err != nil {
		return nil, err
	}
	return row, nil
}

func (r *latencyReader) Close() error { return r.inner.Close() }
