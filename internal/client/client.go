// Package client defines the Endpoint abstraction through which all
// federated engines (Lusail and the baselines) talk to SPARQL endpoints,
// plus the concrete implementations used in experiments:
//
//   - InProcess: evaluates queries directly against a local store, standing
//     in for a co-located SPARQL server without HTTP overhead.
//   - HTTP: speaks the SPARQL 1.1 protocol to a remote endpoint.
//   - Instrumented: wraps any endpoint and counts requests, rows, and
//     estimated payload bytes (the communication-cost metrics the paper
//     reports).
//   - Latency: wraps any endpoint and injects WAN round-trip latency and
//     bandwidth delay (the geo-distributed Azure setting of Section 5.3).
package client

import (
	"context"
	"fmt"

	"lusail/internal/eval"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// Endpoint is a queryable SPARQL endpoint.
//
// Implementations must be safe for concurrent use; federated engines issue
// queries from many goroutines at once.
type Endpoint interface {
	// Name returns a stable identifier for the endpoint within a federation.
	Name() string
	// Query evaluates a SPARQL query (SELECT or ASK) and returns its results.
	Query(ctx context.Context, query string) (*sparql.Results, error)
}

// Ask runs an ASK query and returns its boolean.
func Ask(ctx context.Context, ep Endpoint, query string) (bool, error) {
	res, err := ep.Query(ctx, query)
	if err != nil {
		return false, err
	}
	return Boolean(res, ep.Name())
}

// Boolean extracts the boolean of an ASK result set, with the endpoint name
// used only for the error message. Callers that obtain results through a
// wrapper (e.g. the resilience layer's hedged probes) share Ask's contract
// this way.
func Boolean(res *sparql.Results, epName string) (bool, error) {
	if res == nil || !res.IsBoolean {
		return false, fmt.Errorf("client: endpoint %s returned non-boolean result for ASK", epName)
	}
	return res.Boolean, nil
}

// Count runs a scalar COUNT query and returns its value. ok=false reports
// a malformed response — not a single-row single-column result, a
// non-numeric cell, or a negative count — which callers must treat as
// "unknown", never as zero: a remote endpoint that answers with an error
// page or a truncated result set must not make a pattern look free.
func Count(ctx context.Context, ep Endpoint, query string) (n float64, ok bool, err error) {
	res, err := ep.Query(ctx, query)
	if err != nil {
		return 0, false, err
	}
	n, ok = ScalarCount(res)
	return n, ok, nil
}

// ScalarCount extracts the value of a COUNT result set, with the same
// malformed-result contract as Count.
func ScalarCount(res *sparql.Results) (n float64, ok bool) {
	if res == nil || res.IsBoolean || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, false
	}
	f, numeric := res.Rows[0][0].Numeric()
	if !numeric || f < 0 {
		return 0, false
	}
	return f, true
}

// InProcess is an endpoint evaluated in the same process. It models an
// endpoint whose network cost is negligible; wrap it with Latency to model
// a remote one.
type InProcess struct {
	name string
	ev   *eval.Evaluator
}

// NewInProcess returns an in-process endpoint over the given graph backend
// (an in-memory *store.Store or a disk-backed *diskstore.Store).
func NewInProcess(name string, st store.Graph) *InProcess {
	return &InProcess{name: name, ev: eval.New(st)}
}

// Name implements Endpoint.
func (e *InProcess) Name() string { return e.name }

// Store returns the underlying graph backend (used by data generators and
// tests).
func (e *InProcess) Store() store.Graph { return e.ev.Store() }

// Query implements Endpoint.
func (e *InProcess) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := e.ev.QueryString(query)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", e.name, err)
	}
	return res, nil
}

// ResultSize estimates the wire size in bytes of a result set encoded in the
// SPARQL JSON format, without actually encoding it. Used for communication
// accounting and bandwidth simulation.
func ResultSize(r *sparql.Results) int {
	if r == nil {
		return 0
	}
	if r.IsBoolean {
		return 40
	}
	size := 40
	for _, v := range r.Vars {
		size += len(v) + 4
	}
	for _, row := range r.Rows {
		size += 4
		for _, t := range row {
			if t.IsZero() {
				continue
			}
			// {"x":{"type":"uri","value":"..."}} overhead ≈ 30 bytes/term.
			size += len(t.Value) + len(t.Lang) + len(t.Datatype) + 30
		}
	}
	return size
}
