package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// DefaultMaxBackoff caps the exponential backoff of Retry unless the caller
// overrides MaxBackoff.
const DefaultMaxBackoff = 30 * time.Second

// Retry wraps an endpoint and retries failed queries with capped,
// fully-jittered exponential backoff. Federated engines issue many small
// requests to endpoints they do not control; transient failures (connection
// resets, 5xx responses) should not abort a whole federated query.
//
// Full jitter (sleep uniformly in [0, backoff]) matters here: Lusail fans
// subqueries out from many per-endpoint collector threads at once, so
// deterministic backoff would synchronize all of them into retry storms
// against an endpoint that just blipped.
type Retry struct {
	inner Endpoint
	// Attempts is the maximum number of tries (including the first).
	Attempts int
	// Backoff is the nominal delay before the second attempt; it doubles
	// per retry up to MaxBackoff. The actual sleep is drawn uniformly from
	// [0, nominal] (full jitter).
	Backoff time.Duration
	// MaxBackoff caps the nominal delay (default DefaultMaxBackoff; values
	// <= 0 mean uncapped).
	MaxBackoff time.Duration

	retries *obs.Counter
}

// NewRetry wraps ep with up to attempts tries and the given initial
// backoff, reporting retry counts into the default obs registry.
func NewRetry(ep Endpoint, attempts int, backoff time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{
		inner:      ep,
		Attempts:   attempts,
		Backoff:    backoff,
		MaxBackoff: DefaultMaxBackoff,
		retries:    obs.Default().Counter(obs.MetricRetries, "retried requests per endpoint", obs.L("endpoint", ep.Name())),
	}
}

// Name implements Endpoint.
func (e *Retry) Name() string { return e.inner.Name() }

// Unwrap returns the wrapped endpoint.
func (e *Retry) Unwrap() Endpoint { return e.inner }

// Query implements Endpoint. Context cancellation is never retried.
func (e *Retry) Query(ctx context.Context, query string) (*sparql.Results, error) {
	var lastErr error
	delay := e.Backoff
	if e.MaxBackoff > 0 && delay > e.MaxBackoff {
		delay = e.MaxBackoff
	}
	for attempt := 0; attempt < e.Attempts; attempt++ {
		if attempt > 0 {
			e.retries.Inc()
			if err := sleepCtx(ctx, jitter(delay)); err != nil {
				return nil, err
			}
			delay *= 2
			if e.MaxBackoff > 0 && delay > e.MaxBackoff {
				delay = e.MaxBackoff
			}
		}
		res, err := e.inner.Query(ctx, query)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("endpoint %s: %d attempts failed: %w", e.Name(), e.Attempts, lastErr)
}

// jitter draws a full-jitter sleep uniformly from [0, d].
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// Flaky wraps an endpoint and injects failures: every FailEvery-th query
// returns an error before reaching the inner endpoint. It exists for
// failure-injection testing of federated engines and retry policies.
type Flaky struct {
	inner Endpoint
	// FailEvery makes every n-th request fail (1 = all fail).
	FailEvery int
	count     atomic.Int64
}

// NewFlaky wraps ep so that every failEvery-th query errors.
func NewFlaky(ep Endpoint, failEvery int) *Flaky {
	if failEvery < 1 {
		failEvery = 1
	}
	return &Flaky{inner: ep, FailEvery: failEvery}
}

// Name implements Endpoint.
func (e *Flaky) Name() string { return e.inner.Name() }

// Failures returns how many requests have been failed so far.
func (e *Flaky) Failures() int64 {
	n := e.count.Load()
	return n / int64(e.FailEvery)
}

// Query implements Endpoint.
func (e *Flaky) Query(ctx context.Context, query string) (*sparql.Results, error) {
	n := e.count.Add(1)
	if n%int64(e.FailEvery) == 0 {
		return nil, fmt.Errorf("endpoint %s: injected transient failure (request %d)", e.Name(), n)
	}
	return e.inner.Query(ctx, query)
}
