package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// resultsDoc renders a sparql-results+json document with n one-var rows.
func resultsDoc(n int) string {
	var b strings.Builder
	b.WriteString(`{"head":{"vars":["x"]},"results":{"bindings":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"x":{"type":"uri","value":"http://ex.org/r%d"}}`, i)
	}
	b.WriteString(`]}}`)
	return b.String()
}

func sparqlServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPResponseTooLarge pins the truncation fix: a body over the cap is
// a typed EndpointError wrapping ErrResponseTooLarge — never a silently
// clipped result parsed as complete.
func TestHTTPResponseTooLarge(t *testing.T) {
	body := resultsDoc(200)
	srv := sparqlServer(t, body)
	ep, err := NewHTTPWithOptions("cap", srv.URL, HTTPOptions{MaxResponseBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ep.Query(context.Background(), "SELECT * WHERE { ?s ?p ?o }")
	if err == nil {
		t.Fatal("oversized response returned a result")
	}
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("error = %v, want errors.Is(..., ErrResponseTooLarge)", err)
	}
	var ee *EndpointError
	if !errors.As(err, &ee) || ee.Endpoint != "cap" {
		t.Fatalf("error = %v, want *EndpointError for endpoint cap", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("truncation must not satisfy io.EOF: %v", err)
	}
}

// TestHTTPResponseAtCap pins the boundary: a body of exactly the cap size
// is complete, not an error.
func TestHTTPResponseAtCap(t *testing.T) {
	body := resultsDoc(3)
	srv := sparqlServer(t, body)
	ep, err := NewHTTPWithOptions("edge", srv.URL, HTTPOptions{MaxResponseBytes: int64(len(body))})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ep.Query(context.Background(), "SELECT * WHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatalf("body exactly at cap: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestHTTPOptionsValidate(t *testing.T) {
	if _, err := NewHTTPWithOptions("bad", "http://ex.org/sparql", HTTPOptions{MaxResponseBytes: -1}); err == nil {
		t.Fatal("negative MaxResponseBytes accepted")
	}
	if err := (HTTPOptions{}).Validate(); err != nil {
		t.Fatalf("zero options: %v", err)
	}
}

// TestHTTPQueryStreamIncremental proves the client delivers rows before
// the endpoint finishes writing the body.
func TestHTTPQueryStreamIncremental(t *testing.T) {
	release := make(chan struct{})
	served := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		io.WriteString(w, `{"head":{"vars":["x"]},"results":{"bindings":[
			{"x":{"type":"literal","value":"first"}},`)
		w.(http.Flusher).Flush()
		<-release
		io.WriteString(w, `{"x":{"type":"literal","value":"second"}}]}}`)
		close(served)
	}))
	defer srv.Close()
	defer close(release)

	ep := NewHTTP("inc", srv.URL)
	rd, err := ep.QueryStream(context.Background(), "SELECT * WHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	row, err := rd.Read()
	if err != nil {
		t.Fatalf("first row while body still open: %v", err)
	}
	if row[0] != rdf.NewLiteral("first") {
		t.Fatalf("row = %v", row)
	}
	select {
	case <-served:
		t.Fatal("server finished before the first row was observed")
	default:
	}
	release <- struct{}{}
	if row, err = rd.Read(); err != nil || row[0] != rdf.NewLiteral("second") {
		t.Fatalf("second row: %v, %v", row, err)
	}
	if _, err := rd.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v", err)
	}
}

// TestQueryStreamFallback covers endpoints without native streaming: the
// package-level QueryStream adapts Query through a materialized reader
// with identical RowReader semantics.
func TestQueryStreamFallback(t *testing.T) {
	st := store.New()
	st.Add(rdf.Triple{S: rdf.NewIRI("http://ex.org/s"), P: rdf.NewIRI("http://ex.org/p"), O: rdf.NewLiteral("v")})
	ep := NewInProcess("mem", st)
	rd, err := QueryStream(context.Background(), ep, "SELECT ?o WHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	res, err := sparql.ReadAllRows(rd)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != rdf.NewLiteral("v") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}
