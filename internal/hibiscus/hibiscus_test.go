package hibiscus

import (
	"context"
	"reflect"
	"testing"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/eval"
	"lusail/internal/federation"
	"lusail/internal/fedx"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func iri(host, local string) rdf.Term {
	return rdf.NewIRI("http://" + host + "/" + local)
}

// crossDomainFed builds two endpoints with *different URI authorities*
// (like LargeRDFBench's distinct datasets) plus one interlink.
func crossDomainFed() (*federation.Federation, *store.Store) {
	drugs := []rdf.Triple{
		{S: iri("drugbank.org", "d1"), P: iri("drugbank.org", "name"), O: rdf.NewLiteral("aspirin")},
		{S: iri("drugbank.org", "d1"), P: iri("drugbank.org", "target"), O: iri("kegg.org", "k9")},
		{S: iri("drugbank.org", "d2"), P: iri("drugbank.org", "name"), O: rdf.NewLiteral("ibuprofen")},
	}
	kegg := []rdf.Triple{
		{S: iri("kegg.org", "k9"), P: iri("kegg.org", "pathway"), O: rdf.NewLiteral("pw1")},
		{S: iri("kegg.org", "k10"), P: iri("kegg.org", "pathway"), O: rdf.NewLiteral("pw2")},
	}
	oracle := store.New()
	oracle.AddAll(drugs)
	oracle.AddAll(kegg)
	return federation.MustNew(
		client.NewInProcess("drugbank", store.NewFromTriples(drugs)),
		client.NewInProcess("kegg", store.NewFromTriples(kegg)),
	), oracle
}

func TestBuildIndex(t *testing.T) {
	fed, _ := crossDomainFed()
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if idx.TriplesScanned != 5 {
		t.Errorf("TriplesScanned = %d, want 5", idx.TriplesScanned)
	}
	if idx.BuildTime <= 0 {
		t.Error("BuildTime not recorded")
	}
	db := idx.byEndpoint["drugbank"]
	if db == nil {
		t.Fatal("missing drugbank summary")
	}
	ps := db["http://drugbank.org/target"]
	if ps == nil || !ps.objAuth["http://kegg.org"] {
		t.Errorf("target predicate summary wrong: %+v", ps)
	}
}

func TestIndexSourceSelection(t *testing.T) {
	fed, _ := crossDomainFed()
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sel := NewSelector(idx, fed)
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	srcs, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcs, []string{"kegg"}) {
		t.Errorf("sources = %v", srcs)
	}
	// Constant subject with wrong authority prunes the endpoint.
	tp2 := sparql.TriplePattern{S: sparql.IRI("http://elsewhere.org/x"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	srcs, _ = sel.RelevantSources(context.Background(), tp2)
	if len(srcs) != 0 {
		t.Errorf("authority pruning failed: %v", srcs)
	}
}

func TestJoinAwarePruning(t *testing.T) {
	fed, _ := crossDomainFed()
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sel := NewSelector(idx, fed)
	patterns := []sparql.TriplePattern{
		{S: sparql.Var("d"), P: sparql.IRI("http://drugbank.org/target"), O: sparql.Var("k")},
		{S: sparql.Var("k"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("p")},
	}
	sources := sel.PruneSources(context.Background(), patterns)
	if !reflect.DeepEqual(sources[0], []string{"drugbank"}) {
		t.Errorf("pattern 0 sources = %v", sources[0])
	}
	if !reflect.DeepEqual(sources[1], []string{"kegg"}) {
		t.Errorf("pattern 1 sources = %v", sources[1])
	}
}

func TestHiBISCuSMatchesOracle(t *testing.T) {
	fed, oracle := crossDomainFed()
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	e := New(fed, idx, fedx.Options{})
	q := `SELECT ?d ?p WHERE {
		?d <http://drugbank.org/target> ?k .
		?k <http://kegg.org/pathway> ?p .
	}`
	got, err := e.QueryString(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got.Rows = qplan.DistinctRows(got.Rows)
	got.Sort()
	want, err := eval.New(oracle).QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	want.Sort()
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %v want %v", got.Rows, want.Rows)
	}
}

func TestAuthorityExtraction(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://drugbank.org/d1", "http://drugbank.org"},
		{"http://kegg.org/pathway/x", "http://kegg.org"},
		{"urn:isbn:12345", "urn:isbn"},
		{"noscheme/path", "noscheme"},
	}
	for _, tc := range tests {
		if got := authority(tc.in); got != tc.want {
			t.Errorf("authority(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
