// Package hibiscus implements the HiBISCuS baseline (Saleem & Ngonga
// Ngomo, ESWC 2014) used in the paper's comparison: an *index-based*
// source-selection add-on layered over a FedX-style executor.
//
// HiBISCuS precomputes, for every endpoint and predicate, summaries of the
// URI *authorities* occurring in subject and object position. At query time
// it prunes, for every triple pattern, the endpoints whose authorities
// cannot join with the authorities of the patterns it shares variables with
// (the hypergraph pruning step). The index requires a preprocessing pass
// whose cost grows with the dataset — the trade-off the paper's
// "Data Preprocessing Cost" discussion highlights.
package hibiscus

import (
	"context"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/fedx"
	"lusail/internal/sparql"
)

// authSet is a set of URI authorities.
type authSet map[string]bool

// predSummary summarizes one predicate at one endpoint.
type predSummary struct {
	subjAuth authSet
	objAuth  authSet // empty if objects are literals only
	count    int
}

// Index is the per-federation HiBISCuS data summary.
type Index struct {
	// byEndpoint[ep][pred] is the summary of pred at ep.
	byEndpoint map[string]map[string]*predSummary
	// BuildTime records how long preprocessing took.
	BuildTime time.Duration
	// TriplesScanned counts the triples summarized.
	TriplesScanned int
}

// BuildIndex constructs the summaries by querying each endpoint for its
// predicates and their subject/object authorities — the offline
// preprocessing phase of an index-based federation system.
func BuildIndex(ctx context.Context, fed *federation.Federation, pool *erh.Pool) (*Index, error) {
	start := time.Now()
	idx := &Index{byEndpoint: map[string]map[string]*predSummary{}}
	var mu sync.Mutex
	eps := fed.Endpoints()
	err := pool.ForEach(ctx, len(eps), func(i int) error {
		ep := eps[i]
		summ, scanned, err := summarizeEndpoint(ctx, ep)
		if err != nil {
			return err
		}
		mu.Lock()
		idx.byEndpoint[ep.Name()] = summ
		idx.TriplesScanned += scanned
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	idx.BuildTime = time.Since(start)
	return idx, nil
}

func summarizeEndpoint(ctx context.Context, ep client.Endpoint) (map[string]*predSummary, int, error) {
	res, err := ep.Query(ctx, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		return nil, 0, fmt.Errorf("hibiscus: summarizing %s: %w", ep.Name(), err)
	}
	summ := map[string]*predSummary{}
	si, pi, oi := res.VarIndex("s"), res.VarIndex("p"), res.VarIndex("o")
	for _, row := range res.Rows {
		pred := row[pi].Value
		ps, ok := summ[pred]
		if !ok {
			ps = &predSummary{subjAuth: authSet{}, objAuth: authSet{}}
			summ[pred] = ps
		}
		ps.count++
		if a := authority(row[si].Value); a != "" {
			ps.subjAuth[a] = true
		}
		if row[oi].IsIRI() {
			if a := authority(row[oi].Value); a != "" {
				ps.objAuth[a] = true
			}
		}
	}
	return summ, len(res.Rows), nil
}

// authority extracts the URI authority (scheme + host) HiBISCuS hashes on.
func authority(iri string) string {
	u, err := url.Parse(iri)
	if err != nil || u.Host == "" {
		// Fall back to the prefix before the last separator (covers URNs
		// and scheme-less identifiers).
		if i := strings.LastIndexAny(iri, "/#:"); i > 0 {
			return iri[:i]
		}
		return iri
	}
	return u.Scheme + "://" + u.Host
}

// Selector is HiBISCuS's index-based source selector with join-aware
// pruning. It implements fedx.Selector.
type Selector struct {
	idx *Index
	fed *federation.Federation

	mu      sync.Mutex
	pruned  map[string][]string // per-query pattern key -> sources
	labeled bool
}

// NewSelector returns a selector using the prebuilt index.
func NewSelector(idx *Index, fed *federation.Federation) *Selector {
	return &Selector{idx: idx, fed: fed, pruned: map[string][]string{}}
}

// RelevantSources returns the endpoints that may answer the pattern
// according to the index (predicate presence plus authority containment for
// constant subjects/objects).
func (s *Selector) RelevantSources(_ context.Context, tp sparql.TriplePattern) ([]string, error) {
	var out []string
	for _, epName := range s.fed.Names() {
		if s.patternRelevant(epName, tp) {
			out = append(out, epName)
		}
	}
	return out, nil
}

func (s *Selector) patternRelevant(epName string, tp sparql.TriplePattern) bool {
	summ := s.idx.byEndpoint[epName]
	if summ == nil {
		return false
	}
	var cands []*predSummary
	if tp.P.IsVar() {
		for _, ps := range summ {
			cands = append(cands, ps)
		}
	} else {
		ps, ok := summ[tp.P.Term.Value]
		if !ok {
			return false
		}
		cands = []*predSummary{ps}
	}
	for _, ps := range cands {
		if !tp.S.IsVar() && tp.S.Term.IsIRI() && !ps.subjAuth[authority(tp.S.Term.Value)] {
			continue
		}
		if !tp.O.IsVar() && tp.O.Term.IsIRI() && !ps.objAuth[authority(tp.O.Term.Value)] {
			continue
		}
		return true
	}
	return false
}

// PruneSources applies HiBISCuS's hypergraph join-aware pruning to a whole
// conjunctive pattern set: an endpoint stays relevant for a pattern only if,
// for every variable the pattern shares with another pattern, the authority
// sets of the variable's positions can intersect. It runs to fixpoint and
// returns per-pattern source lists.
func (s *Selector) PruneSources(ctx context.Context, patterns []sparql.TriplePattern) [][]string {
	sources := make([][]string, len(patterns))
	for i, tp := range patterns {
		srcs, _ := s.RelevantSources(ctx, tp)
		sources[i] = srcs
	}
	changed := true
	for changed {
		changed = false
		for i, tpi := range patterns {
			for _, v := range tpi.Vars() {
				for j, tpj := range patterns {
					if i == j || !tpj.HasVar(v) {
						continue
					}
					// Union of authorities of v's position in tpj across
					// its current sources.
					other := authSet{}
					for _, ep := range sources[j] {
						for a := range s.varAuthorities(ep, tpj, v) {
							other[a] = true
						}
					}
					if len(other) == 0 {
						continue // literals or unknown: cannot prune
					}
					var kept []string
					for _, ep := range sources[i] {
						mine := s.varAuthorities(ep, tpi, v)
						if len(mine) == 0 || intersects(mine, other) {
							kept = append(kept, ep)
						}
					}
					if len(kept) != len(sources[i]) {
						sources[i] = kept
						changed = true
					}
				}
			}
		}
	}
	return sources
}

// varAuthorities returns the authority set of v's position in tp at ep.
func (s *Selector) varAuthorities(epName string, tp sparql.TriplePattern, v string) authSet {
	summ := s.idx.byEndpoint[epName]
	if summ == nil {
		return nil
	}
	collect := func(pick func(*predSummary) authSet) authSet {
		if tp.P.IsVar() {
			out := authSet{}
			for _, ps := range summ {
				for a := range pick(ps) {
					out[a] = true
				}
			}
			return out
		}
		ps, ok := summ[tp.P.Term.Value]
		if !ok {
			return nil
		}
		return pick(ps)
	}
	switch {
	case tp.S.Var == v:
		return collect(func(ps *predSummary) authSet { return ps.subjAuth })
	case tp.O.Var == v:
		return collect(func(ps *predSummary) authSet { return ps.objAuth })
	}
	return nil
}

func intersects(a, b authSet) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// Engine is HiBISCuS: the FedX executor with index-based source selection.
type Engine struct {
	inner *fedx.Engine
}

// New builds a HiBISCuS engine from a prebuilt index.
func New(fed *federation.Federation, idx *Index, opts fedx.Options) *Engine {
	opts.Selector = NewSelector(idx, fed)
	return &Engine{inner: fedx.New(fed, opts)}
}

// QueryString executes a federated query.
func (e *Engine) QueryString(ctx context.Context, query string) (*sparql.Results, error) {
	return e.inner.QueryString(ctx, query)
}

// Query executes a parsed federated query.
func (e *Engine) Query(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	return e.inner.Query(ctx, q)
}
