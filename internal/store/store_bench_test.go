package store

import (
	"fmt"
	"testing"

	"lusail/internal/rdf"
)

func benchStore(n int) *Store {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i%1000)),
			P: rdf.NewIRI(fmt.Sprintf("http://ex/p%d", i%10)),
			O: rdf.NewIRI(fmt.Sprintf("http://ex/o%d", i%500)),
		})
	}
	return s
}

func BenchmarkStoreAdd(b *testing.B) {
	b.ReportAllocs()
	s := New()
	for i := 0; i < b.N; i++ {
		s.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
			P: rdf.NewIRI("http://ex/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://ex/o%d", i%100)),
		})
	}
}

func BenchmarkMatchByPredicate(b *testing.B) {
	s := benchStore(20000)
	p := rdf.NewIRI("http://ex/p3")
	s.Count(nil, &p, nil) // force index build outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(nil, &p, nil, func(rdf.Triple) bool { n++; return true })
	}
}

func BenchmarkMatchBySubject(b *testing.B) {
	s := benchStore(20000)
	sub := rdf.NewIRI("http://ex/s42")
	s.Count(&sub, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(&sub, nil, nil)
	}
}

func BenchmarkMatchExact(b *testing.B) {
	s := benchStore(20000)
	sub := rdf.NewIRI("http://ex/s42")
	p := rdf.NewIRI("http://ex/p2")
	o := rdf.NewIRI("http://ex/o42")
	s.Count(&sub, &p, &o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(&sub, &p, &o)
	}
}
