package store

import "lusail/internal/rdf"

// Graph is the read surface an RDF backend exposes to the SPARQL evaluator,
// the in-process endpoint client, and the HTTP endpoint server. Two
// implementations exist: the in-memory *Store in this package and the
// disk-backed, compressed *diskstore.Store. Everything above the evaluator
// (federation, resilience, lusaild) talks SPARQL and never sees this
// interface, so an endpoint can serve either backend without any change to
// the federated code paths.
//
// Implementations must be safe for concurrent readers. Mutability is not
// part of the contract: the disk backend is immutable after open, and its
// Version never changes.
type Graph interface {
	// Match streams all triples matching the pattern to fn. A nil term is
	// a wildcard. Iteration stops early if fn returns false. No ordering
	// is guaranteed.
	Match(sub, pred, obj *rdf.Term, fn func(rdf.Triple) bool)
	// Count returns the number of triples matching the pattern.
	Count(sub, pred, obj *rdf.Term) int
	// Contains reports whether at least one triple matches the pattern.
	Contains(sub, pred, obj *rdf.Term) bool
	// Len returns the total number of triples.
	Len() int
	// Version returns a counter that changes with every mutation; readers
	// use it to invalidate caches derived from the graph's contents. An
	// immutable backend returns a constant.
	Version() int64
	// PredicateCount returns the number of triples whose predicate is p —
	// the per-predicate statistic the evaluator's greedy join ordering and
	// the catalog's summaries rely on. Both backends must report identical
	// numbers for identical data.
	PredicateCount(p rdf.Term) int
	// Predicates returns all distinct predicates, sorted by Term.Compare.
	Predicates() []rdf.Term
}

// Store implements Graph.
var _ Graph = (*Store)(nil)
