// Package store implements an in-memory, dictionary-encoded RDF triple store
// with three sorted permutation indexes (SPO, POS, OSP). It plays the role of
// the RDF engine behind each SPARQL endpoint (the paper used Jena Fuseki and
// Virtuoso; any conformant store exercises the same federation code paths).
//
// Terms are interned into a dictionary so triples are stored and compared as
// [3]uint32 identifiers. Pattern matching picks the index whose prefix covers
// the bound positions of the pattern and scans a binary-searched range.
package store

import (
	"sort"
	"sync"

	"lusail/internal/rdf"
)

type tripleID [3]uint32 // always in (s, p, o) order

// Store is a thread-safe in-memory triple store. The zero value is not
// usable; call New.
type Store struct {
	mu    sync.RWMutex
	terms []rdf.Term          // id -> term
	ids   map[rdf.Term]uint32 // term -> id
	set   map[tripleID]struct{}

	spo, pos, osp []tripleID
	dirty         bool // true when indexes need rebuilding

	predCount map[uint32]int // predicate id -> triple count
	version   int64          // bumped on every successful insert
}

// Version returns a counter that increases with every mutation; readers can
// use it to invalidate caches derived from the store's contents.
func (s *Store) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// New returns an empty store.
func New() *Store {
	return &Store{
		ids:       make(map[rdf.Term]uint32),
		set:       make(map[tripleID]struct{}),
		predCount: make(map[uint32]int),
	}
}

// NewFromTriples returns a store loaded with the given triples.
func NewFromTriples(triples []rdf.Triple) *Store {
	s := New()
	s.AddAll(triples)
	return s
}

// Add inserts one triple. Duplicate inserts are ignored.
func (s *Store) Add(t rdf.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(t)
}

// AddAll inserts a batch of triples.
func (s *Store) AddAll(triples []rdf.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range triples {
		s.addLocked(t)
	}
}

func (s *Store) addLocked(t rdf.Triple) {
	id := tripleID{s.internLocked(t.S), s.internLocked(t.P), s.internLocked(t.O)}
	if _, ok := s.set[id]; ok {
		return
	}
	s.set[id] = struct{}{}
	s.spo = append(s.spo, id)
	s.predCount[id[1]]++
	s.dirty = true
	s.version++
}

func (s *Store) internLocked(t rdf.Term) uint32 {
	if id, ok := s.ids[t]; ok {
		return id
	}
	id := uint32(len(s.terms))
	s.terms = append(s.terms, t)
	s.ids[t] = id
	return id
}

// Len returns the number of triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.set)
}

// TermCount returns the number of distinct terms in the dictionary.
func (s *Store) TermCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.terms)
}

// PredicateCount returns the number of triples whose predicate is p.
// This is the per-predicate statistic RDF engines keep for optimization.
func (s *Store) PredicateCount(p rdf.Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.ids[p]
	if !ok {
		return 0
	}
	return s.predCount[id]
}

// Predicates returns all distinct predicates in the store.
func (s *Store) Predicates() []rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rdf.Term, 0, len(s.predCount))
	for id := range s.predCount {
		out = append(out, s.terms[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Triples returns a snapshot of all triples, in SPO order.
func (s *Store) Triples() []rdf.Triple {
	var out []rdf.Triple
	s.Match(nil, nil, nil, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ensureIndexes rebuilds the sorted permutation indexes if needed. It must
// be called without holding the lock; it acquires the write lock only when
// a rebuild is pending.
func (s *Store) ensureIndexes() {
	s.mu.RLock()
	dirty := s.dirty
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return
	}
	sortIndex(s.spo, 0, 1, 2)
	s.pos = append(s.pos[:0], s.spo...)
	sortIndex(s.pos, 1, 2, 0)
	s.osp = append(s.osp[:0], s.spo...)
	sortIndex(s.osp, 2, 0, 1)
	s.dirty = false
}

func sortIndex(idx []tripleID, a, b, c int) {
	sort.Slice(idx, func(i, j int) bool {
		if idx[i][a] != idx[j][a] {
			return idx[i][a] < idx[j][a]
		}
		if idx[i][b] != idx[j][b] {
			return idx[i][b] < idx[j][b]
		}
		return idx[i][c] < idx[j][c]
	})
}

// Match streams all triples matching the pattern to fn. A nil term is a
// wildcard. Iteration stops early if fn returns false.
func (s *Store) Match(sub, pred, obj *rdf.Term, fn func(rdf.Triple) bool) {
	s.ensureIndexes()
	s.mu.RLock()
	defer s.mu.RUnlock()

	var sid, pid, oid uint32
	var sOK, pOK, oOK bool
	resolve := func(t *rdf.Term) (uint32, bool, bool) {
		if t == nil {
			return 0, false, true
		}
		id, ok := s.ids[*t]
		return id, true, ok
	}
	var present bool
	if sid, sOK, present = resolve(sub); !present {
		return
	}
	if pid, pOK, present = resolve(pred); !present {
		return
	}
	if oid, oOK, present = resolve(obj); !present {
		return
	}

	emit := func(id tripleID) bool {
		return fn(rdf.Triple{S: s.terms[id[0]], P: s.terms[id[1]], O: s.terms[id[2]]})
	}

	// Select the index whose sort prefix covers the bound positions.
	switch {
	case sOK: // s bound: SPO index, prefix (s) or (s,p) or exact
		s.scan(s.spo, 0, 1, 2, sid, sOK, pid, pOK, oid, oOK, emit)
	case pOK: // p bound (s unbound): POS index, prefix (p) or (p,o)
		s.scan(s.pos, 1, 2, 0, pid, pOK, oid, oOK, sid, sOK, emit)
	case oOK: // only o bound: OSP
		s.scan(s.osp, 2, 0, 1, oid, oOK, sid, sOK, pid, pOK, emit)
	default: // full scan
		for _, id := range s.spo {
			if !emit(id) {
				return
			}
		}
	}
}

// scan walks index idx (sorted by positions a,b,c) over the range where the
// bound prefix values match, filtering on any bound non-prefix positions.
func (s *Store) scan(idx []tripleID, a, b, c int, va uint32, aOK bool, vb uint32, bOK bool, vc uint32, cOK bool, emit func(tripleID) bool) {
	lo := sort.Search(len(idx), func(i int) bool { return idx[i][a] >= va })
	for i := lo; i < len(idx) && idx[i][a] == va; i++ {
		t := idx[i]
		if bOK && t[b] != vb {
			if t[b] > vb {
				return // sorted: past the (a,b) range
			}
			continue
		}
		if cOK && t[c] != vc {
			if bOK && t[c] > vc {
				return // sorted by c within (a,b) prefix
			}
			continue
		}
		if !emit(t) {
			return
		}
	}
	_ = aOK
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sub, pred, obj *rdf.Term) int {
	n := 0
	s.Match(sub, pred, obj, func(rdf.Triple) bool { n++; return true })
	return n
}

// Contains reports whether at least one triple matches the pattern.
func (s *Store) Contains(sub, pred, obj *rdf.Term) bool {
	found := false
	s.Match(sub, pred, obj, func(rdf.Triple) bool { found = true; return false })
	return found
}

// Remove deletes one triple. It reports whether the triple was present.
// The dictionary retains interned terms (ids are stable for the store's
// lifetime); indexes are rebuilt lazily on the next read.
func (s *Store) Remove(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sid, ok := s.ids[t.S]
	if !ok {
		return false
	}
	pid, ok := s.ids[t.P]
	if !ok {
		return false
	}
	oid, ok := s.ids[t.O]
	if !ok {
		return false
	}
	id := tripleID{sid, pid, oid}
	if _, ok := s.set[id]; !ok {
		return false
	}
	delete(s.set, id)
	for i, x := range s.spo {
		if x == id {
			s.spo = append(s.spo[:i], s.spo[i+1:]...)
			break
		}
	}
	s.predCount[pid]--
	if s.predCount[pid] == 0 {
		delete(s.predCount, pid)
	}
	s.dirty = true
	s.version++
	return true
}

// RemoveMatching deletes every triple matching the pattern (nil = wildcard)
// and returns how many were removed.
func (s *Store) RemoveMatching(sub, pred, obj *rdf.Term) int {
	var victims []rdf.Triple
	s.Match(sub, pred, obj, func(t rdf.Triple) bool {
		victims = append(victims, t)
		return true
	})
	n := 0
	for _, t := range victims {
		if s.Remove(t) {
			n++
		}
	}
	return n
}
