// Package storetest is a conformance suite for store.Graph backends. Both
// the in-memory store and the disk-backed store must pass it, which is
// what makes the two interchangeable behind an endpoint: identical match
// semantics, identical statistics, identical results under concurrency.
package storetest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/store"
)

// Factory builds a Graph holding exactly the given triples (after
// deduplication). The returned cleanup may be nil.
type Factory func(t *testing.T, triples []rdf.Triple) store.Graph

// Run executes the full conformance suite against the backend.
func Run(t *testing.T, factory Factory) {
	t.Run("MatchAllPrefixes", func(t *testing.T) { testMatchAllPrefixes(t, factory) })
	t.Run("DuplicateInserts", func(t *testing.T) { testDuplicateInserts(t, factory) })
	t.Run("TermRoundTrip", func(t *testing.T) { testTermRoundTrip(t, factory) })
	t.Run("PredicateStats", func(t *testing.T) { testPredicateStats(t, factory) })
	t.Run("EarlyStop", func(t *testing.T) { testEarlyStop(t, factory) })
	t.Run("Empty", func(t *testing.T) { testEmpty(t, factory) })
	t.Run("ConcurrentReaders", func(t *testing.T) { testConcurrentReaders(t, factory) })
	t.Run("RandomizedVsReference", func(t *testing.T) { testRandomizedVsReference(t, factory) })
}

func iri(s string) rdf.Term { return rdf.NewIRI("http://conformance.example/" + s) }

func tr(s, p, o string) rdf.Triple { return rdf.NewTriple(iri(s), iri(p), iri(o)) }

// fixture is a small dataset with shared subjects, predicates, and objects
// so every bind pattern has both hits and misses.
func fixture() []rdf.Triple {
	return []rdf.Triple{
		tr("a", "p", "b"),
		tr("a", "p", "c"),
		tr("a", "q", "b"),
		tr("d", "p", "b"),
		tr("d", "q", "e"),
		tr("e", "r", "a"),
		tr("b", "p", "a"),
	}
}

// match collects sorted results from g.Match.
func match(g store.Graph, s, p, o *rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	g.Match(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	sortTriples(out)
	return out
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if c := a.S.Compare(b.S); c != 0 {
			return c < 0
		}
		if c := a.P.Compare(b.P); c != 0 {
			return c < 0
		}
		return a.O.Compare(b.O) < 0
	})
}

// reference filters triples naively — the semantics every backend must
// reproduce exactly.
func reference(triples []rdf.Triple, s, p, o *rdf.Term) []rdf.Triple {
	seen := make(map[rdf.Triple]bool)
	var out []rdf.Triple
	for _, t := range triples {
		if seen[t] {
			continue
		}
		seen[t] = true
		if (s == nil || t.S == *s) && (p == nil || t.P == *p) && (o == nil || t.O == *o) {
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

// patterns enumerates all 8 bound/unbound combinations over a triple.
func patterns(t rdf.Triple) [][3]*rdf.Term {
	s, p, o := t.S, t.P, t.O
	var out [][3]*rdf.Term
	for mask := 0; mask < 8; mask++ {
		var pat [3]*rdf.Term
		if mask&4 != 0 {
			pat[0] = &s
		}
		if mask&2 != 0 {
			pat[1] = &p
		}
		if mask&1 != 0 {
			pat[2] = &o
		}
		out = append(out, pat)
	}
	return out
}

func testMatchAllPrefixes(t *testing.T, factory Factory) {
	data := fixture()
	g := factory(t, data)
	// Probe every bind pattern derived from every triple in the store,
	// plus patterns with terms that are absent.
	probes := append(data,
		tr("a", "p", "zzz-missing"),
		tr("zzz-missing", "p", "b"),
		tr("a", "zzz-missing", "b"),
	)
	for _, probe := range probes {
		for _, pat := range patterns(probe) {
			got := match(g, pat[0], pat[1], pat[2])
			want := reference(data, pat[0], pat[1], pat[2])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Match(%v) = %v, want %v", pat, got, want)
			}
			if c := g.Count(pat[0], pat[1], pat[2]); c != len(want) {
				t.Fatalf("Count(%v) = %d, want %d", pat, c, len(want))
			}
			if has := g.Contains(pat[0], pat[1], pat[2]); has != (len(want) > 0) {
				t.Fatalf("Contains(%v) = %v, want %v", pat, has, len(want) > 0)
			}
		}
	}
}

func testDuplicateInserts(t *testing.T, factory Factory) {
	data := append(fixture(), fixture()...) // every triple twice
	data = append(data, tr("a", "p", "b")) // and one thrice
	g := factory(t, data)
	if got, want := g.Len(), len(fixture()); got != want {
		t.Fatalf("Len() = %d after duplicate inserts, want %d", got, want)
	}
	got := match(g, nil, nil, nil)
	want := reference(fixture(), nil, nil, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("full scan after duplicates = %v, want %v", got, want)
	}
}

func testTermRoundTrip(t *testing.T, factory Factory) {
	// Every term kind, including empty strings, language tags, datatypes,
	// and multi-byte runes, must survive storage byte-for-byte.
	terms := []rdf.Term{
		rdf.NewIRI("http://ex/α/ünïcode"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral(""),
		rdf.NewLiteral("plain \"quoted\" \n newline"),
		rdf.NewLangLiteral("bonjour", "fr"),
		rdf.NewLangLiteral("hello", "en-US"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("42", rdf.XSDDecimal), // same lexical, other type
		rdf.NewInteger(-7),
		rdf.NewDouble(2.5),
	}
	p := iri("value")
	var data []rdf.Triple
	for i, term := range terms {
		data = append(data, rdf.NewTriple(iri(fmt.Sprintf("s%02d", i)), p, term))
	}
	g := factory(t, data)
	for i, term := range terms {
		s := iri(fmt.Sprintf("s%02d", i))
		got := match(g, &s, &p, nil)
		if len(got) != 1 || got[0].O != term {
			t.Fatalf("term %+v did not round-trip: got %v", term, got)
		}
		// And as a bound object.
		o := term
		if !g.Contains(&s, &p, &o) {
			t.Fatalf("Contains with bound object %+v = false", term)
		}
	}
}

func testPredicateStats(t *testing.T, factory Factory) {
	data := fixture()
	g := factory(t, data)
	counts := map[rdf.Term]int{}
	for _, tp := range reference(data, nil, nil, nil) {
		counts[tp.P]++
	}
	for p, want := range counts {
		if got := g.PredicateCount(p); got != want {
			t.Fatalf("PredicateCount(%v) = %d, want %d", p, got, want)
		}
	}
	if got := g.PredicateCount(iri("zzz-missing")); got != 0 {
		t.Fatalf("PredicateCount(missing) = %d, want 0", got)
	}
	var want []rdf.Term
	for p := range counts {
		want = append(want, p)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
	got := g.Predicates()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Predicates() = %v, want %v", got, want)
	}
}

func testEarlyStop(t *testing.T, factory Factory) {
	g := factory(t, fixture())
	n := 0
	g.Match(nil, nil, nil, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Match visited %d triples after early stop, want 3", n)
	}
}

func testEmpty(t *testing.T, factory Factory) {
	g := factory(t, nil)
	if g.Len() != 0 {
		t.Fatalf("empty store Len() = %d", g.Len())
	}
	if got := match(g, nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty store matched %v", got)
	}
	s := iri("a")
	if g.Contains(&s, nil, nil) {
		t.Fatal("empty store Contains() = true")
	}
	if ps := g.Predicates(); len(ps) != 0 {
		t.Fatalf("empty store Predicates() = %v", ps)
	}
}

func testConcurrentReaders(t *testing.T, factory Factory) {
	data := randomTriples(rand.New(rand.NewSource(7)), 2000, 50, 5, 80)
	g := factory(t, data)
	want := reference(data, nil, nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				probe := want[rng.Intn(len(want))]
				pats := patterns(probe)
				pat := pats[rng.Intn(len(pats))]
				got := match(g, pat[0], pat[1], pat[2])
				exp := reference(data, pat[0], pat[1], pat[2])
				if !reflect.DeepEqual(got, exp) {
					t.Errorf("concurrent Match(%v) diverged", pat)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func randomTriples(rng *rand.Rand, n, subjects, preds, objects int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rdf.NewTriple(
			iri(fmt.Sprintf("s%d", rng.Intn(subjects))),
			iri(fmt.Sprintf("p%d", rng.Intn(preds))),
			iri(fmt.Sprintf("o%d", rng.Intn(objects))),
		))
	}
	return out
}

func testRandomizedVsReference(t *testing.T, factory Factory) {
	rng := rand.New(rand.NewSource(42))
	data := randomTriples(rng, 5000, 120, 8, 150)
	g := factory(t, data)
	want := reference(data, nil, nil, nil)
	if g.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d distinct triples", g.Len(), len(want))
	}
	for i := 0; i < 200; i++ {
		probe := want[rng.Intn(len(want))]
		pats := patterns(probe)
		pat := pats[rng.Intn(len(pats))]
		got := match(g, pat[0], pat[1], pat[2])
		exp := reference(data, pat[0], pat[1], pat[2])
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("randomized Match(%v): got %d rows, want %d", pat, len(got), len(exp))
		}
	}
}
