package store_test

import (
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/store"
	"lusail/internal/store/storetest"
)

// TestConformance runs the shared store.Graph suite against the in-memory
// backend; the disk-backed backend runs the same suite, which is what
// keeps the two interchangeable behind an endpoint.
func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, triples []rdf.Triple) store.Graph {
		return store.NewFromTriples(triples)
	})
}
