package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"lusail/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func tr(s, p, o string) rdf.Triple {
	return rdf.NewTriple(iri(s), iri(p), iri(o))
}

func TestAddAndLen(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	s.Add(tr("a", "p", "b")) // duplicate
	s.Add(tr("a", "p", "c"))
	if got := s.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	if got := s.TermCount(); got != 4 { // a, p, b, c
		t.Errorf("TermCount() = %d, want 4", got)
	}
}

func TestMatchPatterns(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{
		tr("a", "p", "b"),
		tr("a", "p", "c"),
		tr("a", "q", "b"),
		tr("d", "p", "b"),
		tr("d", "q", "e"),
	})
	sA, pP, oB := iri("a"), iri("p"), iri("b")
	tests := []struct {
		name    string
		s, p, o *rdf.Term
		want    int
	}{
		{"all wildcards", nil, nil, nil, 5},
		{"s bound", &sA, nil, nil, 3},
		{"p bound", nil, &pP, nil, 3},
		{"o bound", nil, nil, &oB, 3},
		{"sp bound", &sA, &pP, nil, 2},
		{"so bound", &sA, nil, &oB, 2},
		{"po bound", nil, &pP, &oB, 2},
		{"spo bound", &sA, &pP, &oB, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.Count(tc.s, tc.p, tc.o); got != tc.want {
				t.Errorf("Count = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMatchUnknownTerm(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("a", "p", "b")})
	unknown := iri("nope")
	if s.Count(&unknown, nil, nil) != 0 {
		t.Error("unknown subject should match nothing")
	}
	if s.Contains(nil, &unknown, nil) {
		t.Error("unknown predicate should match nothing")
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("a", "p", "b"), tr("a", "p", "c"), tr("a", "p", "d")})
	n := 0
	s.Match(nil, nil, nil, func(rdf.Triple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d triples, want 1", n)
	}
}

func TestPredicateStats(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{
		tr("a", "p", "b"), tr("c", "p", "d"), tr("a", "q", "b"),
	})
	if got := s.PredicateCount(iri("p")); got != 2 {
		t.Errorf("PredicateCount(p) = %d, want 2", got)
	}
	if got := s.PredicateCount(iri("zzz")); got != 0 {
		t.Errorf("PredicateCount(zzz) = %d, want 0", got)
	}
	preds := s.Predicates()
	if len(preds) != 2 {
		t.Errorf("Predicates() = %v, want 2 entries", preds)
	}
}

func TestAddAfterQuery(t *testing.T) {
	s := New()
	s.Add(tr("a", "p", "b"))
	if s.Count(nil, nil, nil) != 1 {
		t.Fatal("initial count wrong")
	}
	s.Add(tr("c", "p", "d")) // mutation after a query must rebuild indexes
	pP := iri("p")
	if got := s.Count(nil, &pP, nil); got != 2 {
		t.Errorf("Count after second add = %d, want 2", got)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(tr(fmt.Sprintf("s%d-%d", w, i), "p", "o"))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := iri("p")
				s.Count(nil, &p, nil)
			}
		}()
	}
	wg.Wait()
	if got := s.Len(); got != 800 {
		t.Errorf("Len() = %d, want 800", got)
	}
}

// Property: every index permutation agrees — any pattern shape returns the
// same multiset of triples as filtering a full scan.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var triples []rdf.Triple
		for i := 0; i < 60; i++ {
			triples = append(triples, tr(
				fmt.Sprintf("s%d", rng.Intn(8)),
				fmt.Sprintf("p%d", rng.Intn(4)),
				fmt.Sprintf("o%d", rng.Intn(8)),
			))
		}
		s := NewFromTriples(triples)
		all := s.Triples()

		for trial := 0; trial < 20; trial++ {
			var sp, pp, op *rdf.Term
			if rng.Intn(2) == 0 {
				v := iri(fmt.Sprintf("s%d", rng.Intn(8)))
				sp = &v
			}
			if rng.Intn(2) == 0 {
				v := iri(fmt.Sprintf("p%d", rng.Intn(4)))
				pp = &v
			}
			if rng.Intn(2) == 0 {
				v := iri(fmt.Sprintf("o%d", rng.Intn(8)))
				op = &v
			}
			var got []rdf.Triple
			s.Match(sp, pp, op, func(x rdf.Triple) bool { got = append(got, x); return true })
			var want []rdf.Triple
			for _, x := range all {
				if (sp == nil || x.S == *sp) && (pp == nil || x.P == *pp) && (op == nil || x.O == *op) {
					want = append(want, x)
				}
			}
			sortTriples(got)
			sortTriples(want)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func TestVersionBumpsOnInsertOnly(t *testing.T) {
	s := New()
	v0 := s.Version()
	s.Add(tr("a", "p", "b"))
	v1 := s.Version()
	if v1 <= v0 {
		t.Error("version should increase on insert")
	}
	s.Add(tr("a", "p", "b")) // duplicate: no change
	if s.Version() != v1 {
		t.Error("duplicate insert must not bump version")
	}
	s.Count(nil, nil, nil) // reads must not bump version
	if s.Version() != v1 {
		t.Error("reads must not bump version")
	}
}

func TestStoreMixedTermKinds(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{
		{S: rdf.NewBlank("b0"), P: iri("p"), O: rdf.NewLiteral("x")},
		{S: iri("a"), P: iri("p"), O: rdf.NewLangLiteral("x", "en")},
		{S: iri("a"), P: iri("p"), O: rdf.NewTypedLiteral("x", rdf.XSDString)},
	})
	// The three "x" objects are distinct terms.
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	lit := rdf.NewLiteral("x")
	if got := s.Count(nil, nil, &lit); got != 1 {
		t.Errorf("plain literal count = %d, want 1", got)
	}
	blank := rdf.NewBlank("b0")
	if got := s.Count(&blank, nil, nil); got != 1 {
		t.Errorf("blank subject count = %d, want 1", got)
	}
}

func TestTriplesSnapshotSorted(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("c", "p", "x"), tr("a", "p", "x"), tr("b", "p", "x")})
	ts := s.Triples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	// SPO order follows dictionary ids (insertion), not term order; just
	// verify the snapshot is complete and stable.
	again := s.Triples()
	if !reflect.DeepEqual(ts, again) {
		t.Error("snapshot not stable")
	}
}

func TestRemove(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("a", "p", "b"), tr("a", "p", "c"), tr("d", "q", "e")})
	if !s.Remove(tr("a", "p", "b")) {
		t.Fatal("Remove returned false for present triple")
	}
	if s.Remove(tr("a", "p", "b")) {
		t.Error("second Remove should return false")
	}
	if s.Remove(tr("zz", "p", "b")) {
		t.Error("Remove of unknown subject should return false")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	pP := iri("p")
	if got := s.Count(nil, &pP, nil); got != 1 {
		t.Errorf("Count(p) after remove = %d, want 1", got)
	}
	if got := s.PredicateCount(iri("p")); got != 1 {
		t.Errorf("PredicateCount(p) = %d", got)
	}
}

func TestRemoveMatching(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("a", "p", "b"), tr("a", "p", "c"), tr("a", "q", "b"), tr("d", "p", "b")})
	sA := iri("a")
	if n := s.RemoveMatching(&sA, nil, nil); n != 3 {
		t.Errorf("RemoveMatching = %d, want 3", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.PredicateCount(iri("q")) != 0 {
		t.Error("q should have no triples left")
	}
}

func TestRemoveBumpsVersionAndInvalidatesQueries(t *testing.T) {
	s := NewFromTriples([]rdf.Triple{tr("a", "p", "b")})
	v := s.Version()
	s.Count(nil, nil, nil) // build indexes
	s.Remove(tr("a", "p", "b"))
	if s.Version() <= v {
		t.Error("Remove must bump version")
	}
	if s.Count(nil, nil, nil) != 0 {
		t.Error("removed triple still visible")
	}
}
