package bench

// LargeRDFBench-like query mix. The names and categories mirror the
// benchmark: S* simple (few patterns, selective, usually touching two or
// three datasets), C* complex (more patterns plus OPTIONAL / UNION /
// FILTER / LIMIT), B* large ("big data" — unselective patterns with large
// intermediate results). Structural landmarks from the paper are
// preserved: C4 carries a LIMIT clause, and C5, B5, B6 consist of two
// disjoint subgraphs related only through a FILTER.

const lrbPrefix = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
PREFIX tcga: <http://tcga.deri.ie/schema/>
PREFIX chebi: <http://chebi.bio2rdf.org/ns/>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX drug: <http://wifo5-04.informatik.uni-mannheim.de/drugbank/>
PREFIX gn: <http://www.geonames.org/ontology#>
PREFIX jam: <http://dbtune.org/jamendo/>
PREFIX kegg: <http://kegg.bio2rdf.org/ns/>
PREFIX mdb: <http://data.linkedmdb.org/resource/>
PREFIX nyt: <http://data.nytimes.com/elements/>
PREFIX swdf: <http://data.semanticweb.org/ns/>
PREFIX affy: <http://affymetrix.bio2rdf.org/ns/>
`

// LRBSimpleQueries returns the S category.
func LRBSimpleQueries() []Query {
	qs := []struct{ name, body string }{
		{"S1", `SELECT ?d ?mass WHERE {
			?d drug:genericName "drug-0003" .
			?d drug:keggCompoundId ?c .
			?c kegg:mass ?mass . }`},
		{"S2", `SELECT ?d ?abs WHERE {
			?d drug:genericName "drug-0004" .
			?d owl:sameAs ?dbp .
			?dbp dbo:abstract ?abs . }`},
		{"S3", `SELECT ?d ?c WHERE {
			?d rdf:type drug:drugs .
			?d drug:keggCompoundId ?c . }`},
		{"S4", `SELECT ?d ?cat WHERE {
			?d drug:drugCategory "cat-2" .
			?d drug:genericName ?cat . }`},
		{"S5", `SELECT ?f ?dir WHERE {
			?f mdb:title "film-0007" .
			?f owl:sameAs ?dbp .
			?dbp dbo:director ?dir . }`},
		{"S6", `SELECT ?p ?n WHERE {
			?p gn:parentCountry ?c .
			?c gn:name "country-3" .
			?p gn:name ?n . }`},
		{"S7", `SELECT ?t ?f WHERE {
			?t rdf:type nyt:Topic .
			?t owl:sameAs ?e .
			?e dbo:director ?f . }`},
		{"S8", `SELECT ?paper ?name WHERE {
			?paper swdf:author ?a .
			?a swdf:name ?name . }`},
		{"S9", `SELECT ?a ?pn WHERE {
			?a jam:name "artist-0005" .
			?a jam:basedNear ?p .
			?p gn:name ?pn . }`},
		{"S10", `SELECT ?r ?v WHERE {
			?p tcga:bcr_patient_barcode "TCGA-0007" .
			?r tcga:patient ?p .
			?r tcga:beta_value ?v . }`},
		{"S11", `SELECT ?probe ?g WHERE {
			?probe affy:symbol "GENE0009" .
			?probe affy:gene ?g . }`},
		{"S12", `SELECT ?kc ?m WHERE {
			?cc rdfs:label "compound-0011" .
			?kc owl:sameAs ?cc .
			?kc kegg:mass ?m . }`},
		{"S13", `SELECT ?d ?n ?abs WHERE {
			?d rdf:type drug:drugs .
			?d drug:genericName ?n .
			?d owl:sameAs ?dbp .
			?dbp dbo:abstract ?abs . }`},
		{"S14", `SELECT ?p ?n ?dbp WHERE {
			?p rdf:type gn:Feature .
			?p gn:name ?n .
			?dbp owl:sameAs ?p .
			?dbp dbo:country ?c2 . }`},
	}
	return buildQueries(qs)
}

// LRBComplexQueries returns the C category.
func LRBComplexQueries() []Query {
	qs := []struct{ name, body string }{
		{"C1", `SELECT ?d ?n ?kc ?cc ?cn ?m WHERE {
			?d rdf:type drug:drugs .
			?d drug:genericName ?n .
			?d drug:keggCompoundId ?kc .
			?kc owl:sameAs ?cc .
			?cc rdfs:label ?cn .
			?cc chebi:mass ?m . }`},
		{"C2", `SELECT ?d ?kc ?abs ?se WHERE {
			?d drug:genericName "drug-0008" .
			?d drug:keggCompoundId ?kc .
			?d owl:sameAs ?dbp .
			?dbp dbo:abstract ?abs .
			OPTIONAL { ?d drug:drugCategory ?se } }`},
		{"C3", `SELECT ?f ?t ?a ?an ?topic WHERE {
			?f rdf:type mdb:Film .
			?f mdb:title ?t .
			?f mdb:actor ?a .
			?a mdb:actor_name ?an .
			?f owl:sameAs ?dbp .
			?topic owl:sameAs ?dbp . }`},
		{"C4", `SELECT ?f ?t ?a ?an WHERE {
			?f rdf:type mdb:Film .
			?f mdb:title ?t .
			?f mdb:actor ?a .
			?a mdb:actor_name ?an .
		} LIMIT 50`},
		{"C5", `# lusail-check: cartesian -- components are value-joined by the STR() filter equality
		SELECT ?d ?cn WHERE {
			?d rdf:type drug:drugs .
			?d drug:genericName ?dn .
			?cc rdf:type chebi:Compound .
			?cc rdfs:label ?cn .
			FILTER(STR(?dn) = STR(?cn)) }`},
		{"C6", `SELECT ?c ?m WHERE {
			{ ?c kegg:mass ?m } UNION { ?c chebi:mass ?m }
			FILTER(?m > 400) }`},
		{"C7", `SELECT ?p ?bar ?ev ?bv WHERE {
			?p tcga:bcr_patient_barcode ?bar .
			?e tcga:patient ?p .
			?e tcga:expression_value ?ev .
			?m tcga:patient ?p .
			?m tcga:beta_value ?bv .
			FILTER(?ev > 9.0 && ?bv > 0.9) }`},
		{"C8", `SELECT ?probe ?g ?sym ?kc WHERE {
			?probe rdf:type affy:Probe .
			?probe affy:gene ?g .
			?probe affy:symbol ?sym .
			?g kegg:symbol ?sym .
			OPTIONAL { ?kc rdf:type kegg:Compound . ?kc kegg:mass ?mass . FILTER(?mass > 540) } }`},
		{"C9", `SELECT ?a ?an ?p ?pn ?dbp WHERE {
			?a rdf:type jam:MusicArtist .
			?a jam:name ?an .
			?a jam:basedNear ?p .
			?p gn:name ?pn .
			?dbp owl:sameAs ?p .
			?dbp dbo:country ?cy . }`},
		{"C10", `SELECT ?x ?n WHERE {
			{ ?x swdf:name ?n } UNION { ?x mdb:actor_name ?n }
			FILTER(CONTAINS(STR(?n), "-000")) }`},
	}
	return buildQueries(qs)
}

// LRBLargeQueries returns the B category.
func LRBLargeQueries() []Query {
	qs := []struct{ name, body string }{
		{"B1", `SELECT ?r ?p ?v WHERE {
			?p rdf:type tcga:Patient .
			{ ?r tcga:patient ?p . ?r tcga:beta_value ?v }
			UNION
			{ ?r tcga:patient ?p . ?r tcga:expression_value ?v } }`},
		{"B2", `SELECT ?p ?n ?c WHERE {
			?p rdf:type gn:Feature .
			?p gn:name ?n .
			?p gn:parentCountry ?c . }`},
		{"B3", `SELECT ?p ?g ?ev WHERE {
			?p rdf:type tcga:Patient .
			?e tcga:patient ?p .
			?e tcga:gene ?g .
			?e tcga:expression_value ?ev . }`},
		{"B4", `SELECT ?d ?n ?kc ?cc WHERE {
			?d rdf:type drug:drugs .
			?d drug:genericName ?n .
			?d drug:keggCompoundId ?kc .
			?kc owl:sameAs ?cc .
			?cc chebi:mass ?m . }`},
		{"B5", `# lusail-check: cartesian -- components are value-joined by the STR() filter equality
		SELECT ?probe ?g WHERE {
			?probe rdf:type affy:Probe .
			?probe affy:symbol ?ps .
			?g rdf:type kegg:Gene .
			?g kegg:symbol ?gs .
			FILTER(STR(?ps) = STR(?gs)) }`},
		{"B6", `# lusail-check: cartesian -- deliberate cross-endpoint product: the large-query suite stresses result volume
		SELECT ?p ?dbp WHERE {
			?p rdf:type gn:Feature .
			?p gn:name ?pn .
			?dbp rdf:type dbo:Place .
			?dbp dbo:country ?cn .
			FILTER(CONTAINS(STR(?pn), "place-00")) }`},
		{"B7", `SELECT ?probe ?g ?e WHERE {
			?probe affy:gene ?g .
			?e tcga:gene ?g .
			?e tcga:expression_value ?v . }`},
		{"B8", `SELECT ?t ?tt ?a ?an ?pn WHERE {
			?t rdf:type jam:Track .
			?t jam:title ?tt .
			?t jam:maker ?a .
			?a jam:name ?an .
			?a jam:basedNear ?p .
			?p gn:name ?pn . }`},
	}
	return buildQueries(qs)
}

// LRBQueries returns all categories concatenated.
func LRBQueries() []Query {
	out := LRBSimpleQueries()
	out = append(out, LRBComplexQueries()...)
	out = append(out, LRBLargeQueries()...)
	return out
}

func buildQueries(qs []struct{ name, body string }) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Name: q.name, Text: lrbPrefix + q.body}
	}
	return out
}
