package bench

import (
	"fmt"
	"math/rand"

	"lusail/internal/rdf"
)

// LargeRDFBench-like federation: 13 datasets mirroring the benchmark's
// domains and interlink structure (Table 1 of the paper), scaled down.
// Dataset URIs use distinct authorities so index-based source pruning
// (HiBISCuS) has real work to do, unlike the same-schema LUBM federation.
const (
	tcgaNS  = "http://tcga.deri.ie/schema/"
	chebiNS = "http://chebi.bio2rdf.org/ns/"
	dbpNS   = "http://dbpedia.org/ontology/"
	dbrNS   = "http://dbpedia.org/resource/"
	drugNS  = "http://wifo5-04.informatik.uni-mannheim.de/drugbank/"
	geoNS   = "http://www.geonames.org/ontology#"
	jamNS   = "http://dbtune.org/jamendo/"
	keggNS  = "http://kegg.bio2rdf.org/ns/"
	mdbNS   = "http://data.linkedmdb.org/resource/"
	nytNS   = "http://data.nytimes.com/elements/"
	swdfNS  = "http://data.semanticweb.org/ns/"
	affyNS  = "http://affymetrix.bio2rdf.org/ns/"
)

// LRBConfig scales the synthetic LargeRDFBench federation.
type LRBConfig struct {
	// Scale multiplies all entity counts (1 = test scale, ~10K triples).
	Scale int
	Seed  int64
}

// DefaultLRB returns test scale.
func DefaultLRB() LRBConfig { return LRBConfig{Scale: 1, Seed: 11} }

// GenerateLRB produces the 13 datasets.
func GenerateLRB(cfg LRBConfig) []Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	s := cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed))
	typ := rdf.NewIRI(rdf.RDFType)
	label := rdf.NewIRI(rdf.RDFSLabel)
	sameAs := rdf.NewIRI(rdf.OWLSameAs)

	nPatients := 40 * s
	nDrugs := 60 * s
	nCompounds := 50 * s
	nGenes := 40 * s
	nPlaces := 120 * s
	nCountries := 8
	nFilms := 50 * s
	nActors := 30 * s
	nArtists := 25 * s
	nTracks := 80 * s
	nTopics := 30 * s
	nPapers := 20 * s
	nAuthors := 15 * s
	nProbes := 70 * s

	patient := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://tcga.deri.ie/patient/p%04d", i)) }
	drug := func(i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://wifo5-04.informatik.uni-mannheim.de/drugbank/drug/DB%04d", i))
	}
	compoundChebi := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://chebi.bio2rdf.org/chebi/CHEBI%04d", i)) }
	compoundKegg := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://kegg.bio2rdf.org/cpd/C%05d", i)) }
	gene := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://kegg.bio2rdf.org/gene/G%04d", i)) }
	place := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://sws.geonames.org/%d/", 100000+i)) }
	country := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://sws.geonames.org/country/%d/", i)) }
	dbpedia := func(kind string, i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%s%s_%04d", dbrNS, kind, i)) }
	film := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sfilm/%04d", mdbNS, i)) }
	actor := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sactor/%04d", mdbNS, i)) }
	artist := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sartist/%04d", jamNS, i)) }
	track := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%strack/%04d", jamNS, i)) }
	topic := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://data.nytimes.com/topic/%04d", i)) }
	paper := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://data.semanticweb.org/paper/%04d", i)) }
	author := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://data.semanticweb.org/person/%04d", i)) }
	probe := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://affymetrix.bio2rdf.org/probe/%05d", i)) }

	ds := func(name string) *Dataset { return &Dataset{Name: name} }
	tcgaA, tcgaM, tcgaE := ds("LinkedTCGA-A"), ds("LinkedTCGA-M"), ds("LinkedTCGA-E")
	chebi, dbped, drugb := ds("ChEBI"), ds("DBPedia-Subset"), ds("DrugBank")
	geon, jam, kegg := ds("GeoNames"), ds("Jamendo"), ds("KEGG")
	mdb, nyt, swdf, affy := ds("LinkedMDB"), ds("NewYorkTimes"), ds("SWDogFood"), ds("Affymetrix")

	add := func(d *Dataset, s, p, o rdf.Term) { d.Triples = append(d.Triples, rdf.Triple{S: s, P: p, O: o}) }

	// --- LinkedTCGA-A: clinical records (patients live here). ---
	for i := 0; i < nPatients; i++ {
		p := patient(i)
		add(tcgaA, p, typ, rdf.NewIRI(tcgaNS+"Patient"))
		add(tcgaA, p, rdf.NewIRI(tcgaNS+"bcr_patient_barcode"), rdf.NewLiteral(fmt.Sprintf("TCGA-%04d", i)))
		add(tcgaA, p, rdf.NewIRI(tcgaNS+"gender"), rdf.NewLiteral([]string{"male", "female"}[i%2]))
		add(tcgaA, p, rdf.NewIRI(tcgaNS+"age_at_diagnosis"), rdf.NewInteger(int64(30+rng.Intn(50))))
	}
	// --- LinkedTCGA-M: methylation results referencing patients. ---
	for i := 0; i < nPatients*8; i++ {
		r := rdf.NewIRI(fmt.Sprintf("http://tcga.deri.ie/methylation/m%06d", i))
		add(tcgaM, r, typ, rdf.NewIRI(tcgaNS+"MethylationResult"))
		add(tcgaM, r, rdf.NewIRI(tcgaNS+"patient"), patient(i%nPatients))
		add(tcgaM, r, rdf.NewIRI(tcgaNS+"beta_value"), rdf.NewDouble(rng.Float64()))
	}
	// --- LinkedTCGA-E: expression results referencing patients and genes. ---
	for i := 0; i < nPatients*6; i++ {
		r := rdf.NewIRI(fmt.Sprintf("http://tcga.deri.ie/expression/e%06d", i))
		add(tcgaE, r, typ, rdf.NewIRI(tcgaNS+"ExpressionResult"))
		add(tcgaE, r, rdf.NewIRI(tcgaNS+"patient"), patient(i%nPatients))
		add(tcgaE, r, rdf.NewIRI(tcgaNS+"gene"), gene(i%nGenes))
		add(tcgaE, r, rdf.NewIRI(tcgaNS+"expression_value"), rdf.NewDouble(rng.Float64()*10))
	}
	// --- ChEBI: chemical compounds. ---
	for i := 0; i < nCompounds; i++ {
		c := compoundChebi(i)
		add(chebi, c, typ, rdf.NewIRI(chebiNS+"Compound"))
		// Every tenth compound shares its label with a DrugBank drug name,
		// giving the C5 filter-join (two disjoint subgraphs) real matches.
		name := fmt.Sprintf("compound-%04d", i)
		if i%10 == 0 {
			name = fmt.Sprintf("drug-%04d", i)
		}
		add(chebi, c, label, rdf.NewLiteral(name))
		add(chebi, c, rdf.NewIRI(chebiNS+"mass"), rdf.NewInteger(int64(50+rng.Intn(500))))
	}
	// --- KEGG: compounds (sameAs ChEBI) and genes. ---
	for i := 0; i < nCompounds; i++ {
		c := compoundKegg(i)
		add(kegg, c, typ, rdf.NewIRI(keggNS+"Compound"))
		add(kegg, c, rdf.NewIRI(keggNS+"mass"), rdf.NewInteger(int64(50+rng.Intn(500))))
		add(kegg, c, sameAs, compoundChebi(i))
	}
	for i := 0; i < nGenes; i++ {
		g := gene(i)
		add(kegg, g, typ, rdf.NewIRI(keggNS+"Gene"))
		add(kegg, g, rdf.NewIRI(keggNS+"symbol"), rdf.NewLiteral(fmt.Sprintf("GENE%04d", i)))
	}
	// --- DrugBank: drugs linking to KEGG compounds and DBPedia. ---
	for i := 0; i < nDrugs; i++ {
		d := drug(i)
		add(drugb, d, typ, rdf.NewIRI(drugNS+"drugs"))
		add(drugb, d, rdf.NewIRI(drugNS+"genericName"), rdf.NewLiteral(fmt.Sprintf("drug-%04d", i)))
		add(drugb, d, rdf.NewIRI(drugNS+"drugCategory"), rdf.NewLiteral(fmt.Sprintf("cat-%d", i%6)))
		add(drugb, d, rdf.NewIRI(drugNS+"keggCompoundId"), compoundKegg(i%nCompounds))
		if i%2 == 0 {
			add(drugb, d, sameAs, dbpedia("Drug", i))
		}
	}
	// --- GeoNames: places with parent countries. ---
	for i := 0; i < nCountries; i++ {
		c := country(i)
		add(geon, c, typ, rdf.NewIRI(geoNS+"Country"))
		add(geon, c, rdf.NewIRI(geoNS+"name"), rdf.NewLiteral(fmt.Sprintf("country-%d", i)))
	}
	for i := 0; i < nPlaces; i++ {
		p := place(i)
		add(geon, p, typ, rdf.NewIRI(geoNS+"Feature"))
		add(geon, p, rdf.NewIRI(geoNS+"name"), rdf.NewLiteral(fmt.Sprintf("place-%04d", i)))
		add(geon, p, rdf.NewIRI(geoNS+"parentCountry"), country(i%nCountries))
	}
	// --- DBPedia subset: drugs, films, places; the hub via sameAs. ---
	for i := 0; i < nDrugs; i++ {
		if i%2 != 0 {
			continue
		}
		e := dbpedia("Drug", i)
		add(dbped, e, typ, rdf.NewIRI(dbpNS+"Drug"))
		add(dbped, e, rdf.NewIRI(dbpNS+"abstract"), rdf.NewLiteral(fmt.Sprintf("dbpedia abstract for drug-%04d", i)))
	}
	for i := 0; i < nFilms; i++ {
		e := dbpedia("Film", i)
		add(dbped, e, typ, rdf.NewIRI(dbpNS+"Film"))
		add(dbped, e, rdf.NewIRI(dbpNS+"director"), rdf.NewLiteral(fmt.Sprintf("director-%d", i%10)))
	}
	for i := 0; i < nPlaces/4; i++ {
		e := dbpedia("Place", i)
		add(dbped, e, typ, rdf.NewIRI(dbpNS+"Place"))
		add(dbped, e, rdf.NewIRI(dbpNS+"country"), rdf.NewLiteral(fmt.Sprintf("country-%d", i%nCountries)))
		add(dbped, e, sameAs, place(i))
	}
	// --- LinkedMDB: films and actors, sameAs into DBPedia. ---
	for i := 0; i < nActors; i++ {
		a := actor(i)
		add(mdb, a, typ, rdf.NewIRI(mdbNS+"Actor"))
		add(mdb, a, rdf.NewIRI(mdbNS+"actor_name"), rdf.NewLiteral(fmt.Sprintf("actor-%04d", i)))
	}
	for i := 0; i < nFilms; i++ {
		f := film(i)
		add(mdb, f, typ, rdf.NewIRI(mdbNS+"Film"))
		add(mdb, f, rdf.NewIRI(mdbNS+"title"), rdf.NewLiteral(fmt.Sprintf("film-%04d", i)))
		add(mdb, f, rdf.NewIRI(mdbNS+"actor"), actor(i%nActors))
		add(mdb, f, rdf.NewIRI(mdbNS+"actor"), actor((i+1)%nActors))
		add(mdb, f, sameAs, dbpedia("Film", i))
	}
	// --- Jamendo: artists near GeoNames places, with tracks. ---
	for i := 0; i < nArtists; i++ {
		a := artist(i)
		add(jam, a, typ, rdf.NewIRI(jamNS+"MusicArtist"))
		add(jam, a, rdf.NewIRI(jamNS+"name"), rdf.NewLiteral(fmt.Sprintf("artist-%04d", i)))
		add(jam, a, rdf.NewIRI(jamNS+"basedNear"), place(i%nPlaces))
	}
	for i := 0; i < nTracks; i++ {
		t := track(i)
		add(jam, t, typ, rdf.NewIRI(jamNS+"Track"))
		add(jam, t, rdf.NewIRI(jamNS+"title"), rdf.NewLiteral(fmt.Sprintf("track-%04d", i)))
		add(jam, t, rdf.NewIRI(jamNS+"maker"), artist(i%nArtists))
	}
	// --- New York Times: topics about DBPedia entities. ---
	for i := 0; i < nTopics; i++ {
		tp := topic(i)
		add(nyt, tp, typ, rdf.NewIRI(nytNS+"Topic"))
		add(nyt, tp, rdf.NewIRI(nytNS+"topicPage"), rdf.NewLiteral(fmt.Sprintf("page-%04d", i)))
		switch i % 3 {
		case 0:
			add(nyt, tp, sameAs, dbpedia("Film", i%nFilms))
		case 1:
			add(nyt, tp, sameAs, dbpedia("Drug", (i*2)%nDrugs))
		default:
			add(nyt, tp, sameAs, dbpedia("Place", i%(nPlaces/4)))
		}
	}
	// --- Semantic Web Dog Food: papers and authors. ---
	for i := 0; i < nAuthors; i++ {
		a := author(i)
		add(swdf, a, typ, rdf.NewIRI(swdfNS+"Person"))
		add(swdf, a, rdf.NewIRI(swdfNS+"name"), rdf.NewLiteral(fmt.Sprintf("author-%04d", i)))
	}
	for i := 0; i < nPapers; i++ {
		p := paper(i)
		add(swdf, p, typ, rdf.NewIRI(swdfNS+"InProceedings"))
		add(swdf, p, rdf.NewIRI(swdfNS+"title"), rdf.NewLiteral(fmt.Sprintf("paper-%04d", i)))
		add(swdf, p, rdf.NewIRI(swdfNS+"author"), author(i%nAuthors))
	}
	// --- Affymetrix: probes referencing KEGG genes. ---
	for i := 0; i < nProbes; i++ {
		pr := probe(i)
		add(affy, pr, typ, rdf.NewIRI(affyNS+"Probe"))
		add(affy, pr, rdf.NewIRI(affyNS+"symbol"), rdf.NewLiteral(fmt.Sprintf("GENE%04d", i%nGenes)))
		add(affy, pr, rdf.NewIRI(affyNS+"gene"), gene(i%nGenes))
	}

	return []Dataset{*tcgaM, *tcgaE, *tcgaA, *chebi, *dbped, *drugb, *geon, *jam, *kegg, *mdb, *nyt, *swdf, *affy}
}
