package bench

import (
	"context"
	"reflect"
	"testing"

	"lusail/internal/core"
)

// TestRewriteParityLUBM pins the soundness contract of the sema rewrite
// pass end to end: for every LUBM benchmark query, the engine must return
// the same row multiset with query rewriting enabled (the default) and
// disabled. A divergence means a rewrite is not multiset-preserving and
// is corrupting results, not just plans.
func TestRewriteParityLUBM(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(2))
	fed, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	rewriting := fed.NewLusail(core.Options{})
	plain := fed.NewLusail(core.Options{DisableQueryRewrite: true})

	for _, q := range LUBMQueries() {
		got, _, err := rewriting.QueryString(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("%s with rewrites: %v", q.Name, err)
		}
		want, _, err := plain.QueryString(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("%s without rewrites: %v", q.Name, err)
		}
		got.Sort()
		want.Sort()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: rewrite changed results: %d rows with rewrites, %d without",
				q.Name, len(got.Rows), len(want.Rows))
		}
	}
}
