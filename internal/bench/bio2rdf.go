package bench

import (
	"fmt"
	"math/rand"

	"lusail/internal/rdf"
)

// Bio2RDF-like federation for the paper's "real endpoints" experiment
// (Table 2): five life-science datasets queried with five representative
// queries (R1-R5) extracted from the Bio2RDF query log. The real experiment
// ran against independently deployed public endpoints; here the same query
// shapes run against synthetic datasets under WAN simulation.
const (
	b2rDrugNS  = "http://bio2rdf.org/drugbank_vocabulary:"
	b2rKeggNS  = "http://bio2rdf.org/kegg_vocabulary:"
	b2rOmimNS  = "http://bio2rdf.org/omim_vocabulary:"
	b2rHgncNS  = "http://bio2rdf.org/hgnc_vocabulary:"
	b2rPharmNS = "http://bio2rdf.org/pharmgkb_vocabulary:"
)

// Bio2RDFConfig scales the synthetic Bio2RDF federation.
type Bio2RDFConfig struct {
	Scale int
	Seed  int64
}

// GenerateBio2RDF produces five datasets: DrugBank, KEGG, OMIM, HGNC,
// PharmGKB.
func GenerateBio2RDF(cfg Bio2RDFConfig) []Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	s := cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	typ := rdf.NewIRI(rdf.RDFType)

	nDrugs, nGenes, nDiseases, nPathways := 50*s, 60*s, 30*s, 20*s

	drug := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://bio2rdf.org/drugbank:DB%05d", i)) }
	geneHGNC := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://bio2rdf.org/hgnc:%d", 1000+i)) }
	disease := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://bio2rdf.org/omim:%d", 600000+i)) }
	pathway := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://bio2rdf.org/kegg:path%04d", i)) }

	var drugbank, kegg, omim, hgnc, pharmgkb []rdf.Triple
	add := func(list *[]rdf.Triple, s, p, o rdf.Term) { *list = append(*list, rdf.Triple{S: s, P: p, O: o}) }

	for i := 0; i < nDrugs; i++ {
		d := drug(i)
		add(&drugbank, d, typ, rdf.NewIRI(b2rDrugNS+"Drug"))
		add(&drugbank, d, rdf.NewIRI(b2rDrugNS+"name"), rdf.NewLiteral(fmt.Sprintf("bdrug-%04d", i)))
		add(&drugbank, d, rdf.NewIRI(b2rDrugNS+"target"), geneHGNC(i%nGenes))
		if i%3 == 0 {
			add(&drugbank, d, rdf.NewIRI(b2rDrugNS+"indication"), disease(i%nDiseases))
		}
	}
	for i := 0; i < nGenes; i++ {
		g := geneHGNC(i)
		add(&hgnc, g, typ, rdf.NewIRI(b2rHgncNS+"Gene"))
		add(&hgnc, g, rdf.NewIRI(b2rHgncNS+"approved-symbol"), rdf.NewLiteral(fmt.Sprintf("SYM%04d", i)))
	}
	for i := 0; i < nPathways; i++ {
		p := pathway(i)
		add(&kegg, p, typ, rdf.NewIRI(b2rKeggNS+"Pathway"))
		add(&kegg, p, rdf.NewIRI(b2rKeggNS+"name"), rdf.NewLiteral(fmt.Sprintf("pathway-%04d", i)))
		for k := 0; k < 3; k++ {
			add(&kegg, p, rdf.NewIRI(b2rKeggNS+"gene"), geneHGNC(rng.Intn(nGenes)))
		}
	}
	for i := 0; i < nDiseases; i++ {
		d := disease(i)
		add(&omim, d, typ, rdf.NewIRI(b2rOmimNS+"Phenotype"))
		add(&omim, d, rdf.NewIRI(b2rOmimNS+"title"), rdf.NewLiteral(fmt.Sprintf("disease-%04d", i)))
		add(&omim, d, rdf.NewIRI(b2rOmimNS+"gene"), geneHGNC(i%nGenes))
	}
	for i := 0; i < nDrugs; i++ {
		if i%2 != 0 {
			continue
		}
		a := rdf.NewIRI(fmt.Sprintf("http://bio2rdf.org/pharmgkb:PA%05d", i))
		add(&pharmgkb, a, typ, rdf.NewIRI(b2rPharmNS+"Association"))
		add(&pharmgkb, a, rdf.NewIRI(b2rPharmNS+"drug"), drug(i))
		add(&pharmgkb, a, rdf.NewIRI(b2rPharmNS+"gene"), geneHGNC(i%nGenes))
		add(&pharmgkb, a, rdf.NewIRI(b2rPharmNS+"evidence"), rdf.NewLiteral(fmt.Sprintf("level-%d", 1+i%4)))
	}

	return []Dataset{
		{Name: "DrugBank", Triples: drugbank},
		{Name: "KEGG", Triples: kegg},
		{Name: "OMIM", Triples: omim},
		{Name: "HGNC", Triples: hgnc},
		{Name: "PharmGKB", Triples: pharmgkb},
	}
}

// Bio2RDFQueries returns R1-R5.
func Bio2RDFQueries() []Query {
	prefix := `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dbv: <http://bio2rdf.org/drugbank_vocabulary:>
PREFIX kv: <http://bio2rdf.org/kegg_vocabulary:>
PREFIX ov: <http://bio2rdf.org/omim_vocabulary:>
PREFIX hv: <http://bio2rdf.org/hgnc_vocabulary:>
PREFIX pv: <http://bio2rdf.org/pharmgkb_vocabulary:>
`
	qs := []struct{ name, body string }{
		{"R1", `SELECT ?d ?n ?sym WHERE {
			?d rdf:type dbv:Drug .
			?d dbv:name ?n .
			?d dbv:target ?g .
			?g hv:approved-symbol ?sym . }`},
		{"R2", `SELECT ?d ?dis ?t WHERE {
			?d dbv:name "bdrug-0012" .
			?d dbv:indication ?dis .
			?dis ov:title ?t . }`},
		{"R3", `SELECT ?p ?g ?sym ?d WHERE {
			?p rdf:type kv:Pathway .
			?p kv:gene ?g .
			?g hv:approved-symbol ?sym .
			?d dbv:target ?g . }`},
		{"R4", `SELECT ?a ?d ?g ?ev WHERE {
			?a pv:drug ?d .
			?a pv:gene ?g .
			?a pv:evidence ?ev .
			?d dbv:name ?n .
			?g hv:approved-symbol ?sym . }`},
		{"R5", `SELECT ?dis ?g ?p WHERE {
			?dis ov:gene ?g .
			?p kv:gene ?g .
			OPTIONAL { ?d dbv:target ?g . ?d dbv:name ?dn } }`},
	}
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Name: q.name, Text: prefix + q.body}
	}
	return out
}
