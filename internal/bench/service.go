package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"lusail/internal/core"
	"lusail/internal/obs"
	"lusail/internal/server"
	"lusail/internal/sparql"
)

// ServiceExperiment measures lusaild under concurrent load: N clients
// hammer a running server over real HTTP with the LUBM query mix, once with
// the plan cache enabled and once without. Repeated query shapes make the
// cached arm skip source selection, statistics, and GJV analysis after each
// shape's first request; the table reports the throughput and latency
// effect plus the cache counters that prove plans were reused. The result
// cache is disabled in both arms so the comparison isolates planning reuse.
func ServiceExperiment(ctx context.Context, opts ExpOptions) (*Table, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	rounds := opts.Repeats
	if rounds <= 0 {
		rounds = 3
	}
	const clients = 8

	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2*opts.Scale)), InProcess())
	if err != nil {
		return nil, err
	}
	queries := LUBMQueries()

	t := &Table{
		Title:  fmt.Sprintf("lusaild service throughput (LUBM, %d clients x %d rounds x %d queries)", clients, rounds, len(queries)),
		Header: []string{"plan cache", "queries", "errors", "qps", "mean", "p50", "p95", "cache hits", "cache misses"},
		Notes: []string{
			"each client cycles the LUBM query mix; with the cache on, every shape is planned once and reused",
			"result cache disabled in both arms: the speedup isolates planning (source selection + analysis) reuse",
		},
	}

	for _, arm := range []struct {
		label   string
		disable bool
	}{
		{"off", true},
		{"on", false},
	} {
		row, err := runServiceArm(ctx, fed, queries, arm.label, arm.disable, clients, rounds, opts.Timeout)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runServiceArm boots one server configuration and drives the client load.
func runServiceArm(ctx context.Context, fed *Fed, queries []Query, label string, disableCache bool, clients, rounds int, timeout time.Duration) ([]string, error) {
	eng := fed.NewLusail(core.DefaultOptions())
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Engine:             eng,
		DisablePlanCache:   disableCache,
		DisableResultCache: true,
		DefaultTenant:      server.TenantConfig{MaxConcurrent: clients, MaxQueue: 2 * clients},
		QueryTimeout:       timeout,
		Logf:               func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	reg := obs.Default()
	hitsBefore := reg.Counter(obs.MetricPlanCacheHits, "").Value()
	missesBefore := reg.Counter(obs.MetricPlanCacheMisses, "").Value()

	httpc := &http.Client{Timeout: timeout}
	var mu sync.Mutex
	var latencies []time.Duration
	errs := 0
	total := 0

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for qi := range queries {
					// Stagger starting points so clients collide on shapes.
					q := queries[(qi+c)%len(queries)]
					d, err := serviceRequest(ctx, httpc, srv.URL, q.Text)
					mu.Lock()
					total++
					if err != nil {
						errs++
					} else {
						latencies = append(latencies, d)
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits := reg.Counter(obs.MetricPlanCacheHits, "").Value() - hitsBefore
	misses := reg.Counter(obs.MetricPlanCacheMisses, "").Value() - missesBefore

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	qps := float64(len(latencies)) / elapsed.Seconds()
	return []string{
		label,
		fmt.Sprintf("%d", total),
		fmt.Sprintf("%d", errs),
		fmt.Sprintf("%.1f", qps),
		FormatDuration(meanDuration(latencies)),
		FormatDuration(percentileDuration(latencies, 0.50)),
		FormatDuration(percentileDuration(latencies, 0.95)),
		fmt.Sprintf("%d", hits),
		fmt.Sprintf("%d", misses),
	}, nil
}

// serviceRequest issues one SPARQL protocol GET and validates the streamed
// JSON body parses as a result document.
func serviceRequest(ctx context.Context, httpc *http.Client, base, query string) (time.Duration, error) {
	u := base + "?query=" + url.QueryEscape(query)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if _, err := sparql.ParseResultsJSON(body); err != nil {
		return 0, fmt.Errorf("invalid results document: %w", err)
	}
	return d, nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func percentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	i := int(p * float64(len(ds)-1))
	return ds[i]
}
