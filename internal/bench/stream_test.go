package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"lusail/internal/core"
	"lusail/internal/lint/leakcheck"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
)

// rowKey renders one solution as a canonical "var=term" string so result
// sets with different row order (and potentially different column order)
// compare as multisets.
func rowKey(vars []string, row []rdf.Term) string {
	parts := make([]string, 0, len(vars))
	for i, v := range vars {
		if i < len(row) && !row[i].IsZero() {
			parts = append(parts, v+"="+row[i].String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1f")
}

// multiset counts canonical rows.
func multiset(vars []string, rows [][]rdf.Term) map[string]int {
	m := make(map[string]int, len(rows))
	for _, row := range rows {
		m[rowKey(vars, row)]++
	}
	return m
}

// drainSelect runs the cursor path to completion and returns its rows.
func drainSelect(t *testing.T, eng *core.Engine, query string) ([]string, [][]rdf.Term) {
	t.Helper()
	rows, err := eng.Select(context.Background(), query)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	defer rows.Close()
	var out [][]rdf.Term
	for rows.Next() {
		out = append(out, append([]rdf.Term(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rows.Profile() == nil {
		t.Fatal("Profile() should be available after Close")
	}
	return rows.Vars(), out
}

func diffMultisets(t *testing.T, name string, want, got map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: row %q: materialized ×%d, streamed ×%d", name, k, n, got[k])
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: streamed-only row %q ×%d", name, k, n)
		}
	}
}

// TestSelectMatchesQueryLUBM is the cursor-parity gate: for every LUBM
// benchmark query, the streaming Select path must deliver exactly the rows
// the materializing Query path returns, compared order-insensitively.
func TestSelectMatchesQueryLUBM(t *testing.T) {
	leakcheck.Check(t)
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	eng := fed.NewLusail(core.DefaultOptions())
	for _, q := range LUBMQueries() {
		t.Run(q.Name, func(t *testing.T) {
			res, _, err := eng.QueryString(context.Background(), q.Text)
			if err != nil {
				t.Fatalf("QueryString: %v", err)
			}
			vars, rows := drainSelect(t, eng, q.Text)
			if len(rows) != len(res.Rows) {
				t.Errorf("row count: materialized %d, streamed %d", len(res.Rows), len(rows))
			}
			diffMultisets(t, q.Name, multiset(res.Vars, res.Rows), multiset(vars, rows))
		})
	}
}

// TestSelectMatchesQueryModifiers covers the solution-modifier tails: the
// streaming fast path (DISTINCT, OFFSET, LIMIT) and the draining tail
// (ORDER BY, aggregates) must both agree with the materialized result.
func TestSelectMatchesQueryModifiers(t *testing.T) {
	leakcheck.Check(t)
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	eng := fed.NewLusail(core.DefaultOptions())
	base := LUBMQueries()[3].Text // Q4 projects a subset of its pattern vars
	for _, tc := range []struct {
		name  string
		query string
		// LIMIT/OFFSET without ORDER BY select an arbitrary slice, so the
		// two paths may legally keep different rows: assert count parity
		// and containment in the unmodified result instead of equality.
		sliced bool
	}{
		{"distinct", strings.Replace(base, "SELECT", "SELECT DISTINCT", 1), false},
		{"limit", base + " LIMIT 5", true},
		{"offset", base + " OFFSET 3", true},
		{"orderby", base + " ORDER BY ?X", false},
		{"count", strings.Replace(base, "SELECT ?X ?Y ?U ?A", "SELECT (COUNT(?X) AS ?n)", 1), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, _, err := eng.QueryString(context.Background(), tc.query)
			if err != nil {
				t.Fatalf("QueryString: %v", err)
			}
			vars, rows := drainSelect(t, eng, tc.query)
			if len(rows) != len(res.Rows) {
				t.Errorf("row count: materialized %d, streamed %d", len(res.Rows), len(rows))
			}
			if tc.sliced {
				full, _, err := eng.QueryString(context.Background(), base)
				if err != nil {
					t.Fatalf("QueryString(base): %v", err)
				}
				pool := multiset(full.Vars, full.Rows)
				for k, n := range multiset(vars, rows) {
					if pool[k] < n {
						t.Errorf("%s: streamed row %q ×%d not in the full result (×%d)", tc.name, k, n, pool[k])
					}
				}
				return
			}
			diffMultisets(t, tc.name, multiset(res.Vars, res.Rows), multiset(vars, rows))
		})
	}
}

// TestSelectMidStreamCancel abandons a cursor mid-iteration: Close must
// cancel everything in flight and reap every pipeline goroutine, and a
// cancelled context must surface as an error, not a silently short result.
func TestSelectMidStreamCancel(t *testing.T) {
	leakcheck.Check(t)
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	eng := fed.NewLusail(core.DefaultOptions())
	q := LUBMQueries()[1].Text

	t.Run("abandon", func(t *testing.T) {
		rows, err := eng.Select(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no first row: %v", rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("close after one row: %v", err)
		}
		if rows.Next() {
			t.Error("Next after Close should report false")
		}
	})

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := eng.Select(ctx, q)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		defer rows.Close()
		if rows.Next() {
			cancel()
		}
		for rows.Next() {
		}
		cancel()
		if !errors.Is(rows.Err(), context.Canceled) {
			t.Errorf("cancelled cursor: Err() = %v, want context.Canceled", rows.Err())
		}
	})
}

// TestSelectDegradeParity pins partial-result parity: with one endpoint
// hard down and Degrade on, the streamed rows must equal the materialized
// rows (both are the sound partial answer over the live endpoints), and
// both paths must record degradation warnings.
func TestSelectDegradeParity(t *testing.T) {
	leakcheck.Check(t)
	datasets := GenerateLUBM(DefaultLUBM(2))
	fed, err := NewFedWithFaults(datasets, InProcess(), datasets[1].Name, resilience.FaultSpec{ErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.OnEndpointFailure = core.Degrade
	eng := fed.NewLusail(opts)
	for _, q := range LUBMQueries() {
		t.Run(q.Name, func(t *testing.T) {
			res, prof, err := eng.QueryString(context.Background(), q.Text)
			if err != nil {
				t.Fatalf("QueryString: %v", err)
			}
			if len(prof.Warnings) == 0 {
				t.Error("materialized path recorded no degradation warnings")
			}
			rows, err := eng.Select(context.Background(), q.Text)
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			defer rows.Close()
			var got [][]rdf.Term
			for rows.Next() {
				got = append(got, append([]rdf.Term(nil), rows.Row()...))
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("cursor: %v", err)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if sp := rows.Profile(); sp == nil || len(sp.Warnings) == 0 {
				t.Error("streamed path recorded no degradation warnings")
			}
			diffMultisets(t, q.Name, multiset(res.Vars, res.Rows), multiset(rows.Vars(), got))
		})
	}
}

// TestSelectRejectsNonSelect pins the cursor API surface: ASK and CONSTRUCT
// forms go through Query, not Select.
func TestSelectRejectsNonSelect(t *testing.T) {
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(1)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	eng := fed.NewLusail(core.DefaultOptions())
	ask := "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nASK { ?s rdf:type ?o }"
	if rows, err := eng.Select(context.Background(), ask); err == nil {
		rows.Close()
		t.Fatal("Select accepted an ASK query")
	}
}

// TestScanBindingAccessors exercises the cursor's row accessors against
// each other on a real result.
func TestScanBindingAccessors(t *testing.T) {
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(1)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	eng := fed.NewLusail(core.DefaultOptions())
	rows, err := eng.Select(context.Background(), LUBMQueries()[2].Text) // Q3: one var
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got, want := len(rows.Vars()), 1; got != want {
		t.Fatalf("vars = %v", rows.Vars())
	}
	n := 0
	for rows.Next() {
		var x rdf.Term
		if err := rows.Scan(&x); err != nil {
			t.Fatal(err)
		}
		if x.IsZero() {
			t.Fatal("Scan produced an unbound ?X")
		}
		b := rows.Binding()
		if b["X"] != x {
			t.Fatalf("Binding()[X] = %v, Scan = %v", b["X"], x)
		}
		if err := rows.Scan(&x, &x); !isArityError(err) {
			t.Fatalf("Scan with wrong arity: %v", err)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Q3 returned no rows")
	}
}

func isArityError(err error) bool {
	return err != nil && !errors.Is(err, context.Canceled) &&
		strings.Contains(fmt.Sprint(err), "destinations")
}
