package bench

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lusail/internal/eval"
	"lusail/internal/qplan"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// oracleFor evaluates a query centrally over the union of all datasets.
func oracleFor(t *testing.T, datasets []Dataset, query string) *sparql.Results {
	t.Helper()
	st := store.New()
	for _, ds := range datasets {
		st.AddAll(ds.Triples)
	}
	res, err := eval.New(st).QueryString(query)
	if err != nil {
		t.Fatalf("oracle for %s: %v", query, err)
	}
	res.Rows = qplan.DistinctRows(res.Rows)
	res.Sort()
	return res
}

// checkAllEngines runs the query on every system and compares to the
// oracle. Queries with LIMIT are compared on cardinality only (any subset
// is valid).
func checkAllEngines(t *testing.T, datasets []Dataset, q Query) {
	t.Helper()
	fed, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	want := oracleFor(t, datasets, q.Text)
	parsed := sparql.MustParse(q.Text)
	limited := parsed.Limit >= 0

	for _, kind := range []EngineKind{Lusail, LusailLADE, FedX, HiBISCuS, SPLENDID} {
		eng, err := fed.NewEngine(context.Background(), kind)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.QueryString(context.Background(), q.Text)
		if err != nil {
			t.Errorf("%s / %s: %v", kind, q.Name, err)
			continue
		}
		got.Rows = qplan.DistinctRows(got.Rows)
		got.Sort()
		if limited {
			if len(got.Rows) != len(want.Rows) {
				t.Errorf("%s / %s: %d rows, oracle %d (LIMIT)", kind, q.Name, len(got.Rows), len(want.Rows))
			}
			continue
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s / %s: %d rows, oracle %d", kind, q.Name, len(got.Rows), len(want.Rows))
		}
	}
}

func TestLUBMGeneratorShape(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(3))
	if len(datasets) != 3 {
		t.Fatalf("datasets = %d", len(datasets))
	}
	for _, ds := range datasets {
		if len(ds.Triples) < 50 {
			t.Errorf("%s has only %d triples", ds.Name, len(ds.Triples))
		}
	}
	// Interlinks: some degree triples must reference other universities.
	remote := 0
	for _, tr := range datasets[1].Triples {
		if tr.P.Value == ubNS+"undergraduateDegreeFrom" && tr.O.Value != "http://www.University1.edu" {
			remote++
		}
	}
	if remote == 0 {
		t.Error("no cross-university interlinks generated")
	}
}

func TestLUBMQueriesNonEmptyAndCorrect(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(2))
	for _, q := range LUBMQueries() {
		want := oracleFor(t, datasets, q.Text)
		if len(want.Rows) == 0 {
			t.Errorf("%s returns no results on generated data", q.Name)
			continue
		}
		checkAllEngines(t, datasets, q)
	}
}

func TestQFedGeneratorShape(t *testing.T) {
	datasets := GenerateQFed(DefaultQFed())
	if len(datasets) != 4 {
		t.Fatalf("datasets = %d", len(datasets))
	}
	names := SortedNames(datasets)
	want := []string{"DailyMed", "Diseasome", "DrugBank", "Sider"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("names = %v", names)
	}
	// Big literals must actually be big.
	bigFound := false
	for _, tr := range datasets[0].Triples {
		if tr.P.Value == dailymedNS+"fullText" && len(tr.O.Value) >= 1024 {
			bigFound = true
		}
	}
	if !bigFound {
		t.Error("no big literals in DailyMed")
	}
}

func TestQFedQueriesNonEmptyAndCorrect(t *testing.T) {
	cfg := DefaultQFed()
	cfg.Drugs = 40
	cfg.Diseases = 20
	cfg.BigLiteralBytes = 256
	datasets := GenerateQFed(cfg)
	for _, q := range QFedQueries() {
		want := oracleFor(t, datasets, q.Text)
		if len(want.Rows) == 0 {
			t.Errorf("%s returns no results on generated data", q.Name)
			continue
		}
		checkAllEngines(t, datasets, q)
	}
}

func TestLRBGeneratorShape(t *testing.T) {
	datasets := GenerateLRB(DefaultLRB())
	if len(datasets) != 13 {
		t.Fatalf("datasets = %d", len(datasets))
	}
	sizes := map[string]int{}
	for _, ds := range datasets {
		sizes[ds.Name] = len(ds.Triples)
	}
	// Size ordering from Table 1: the TCGA results datasets dominate.
	if sizes["LinkedTCGA-M"] <= sizes["ChEBI"] {
		t.Errorf("LinkedTCGA-M (%d) should dwarf ChEBI (%d)", sizes["LinkedTCGA-M"], sizes["ChEBI"])
	}
	if sizes["SWDogFood"] >= sizes["GeoNames"] {
		t.Errorf("SWDogFood (%d) should be small vs GeoNames (%d)", sizes["SWDogFood"], sizes["GeoNames"])
	}
}

func TestLRBQueryCount(t *testing.T) {
	if n := len(LRBSimpleQueries()); n != 14 {
		t.Errorf("simple queries = %d, want 14", n)
	}
	if n := len(LRBComplexQueries()); n != 10 {
		t.Errorf("complex queries = %d, want 10", n)
	}
	if n := len(LRBLargeQueries()); n != 8 {
		t.Errorf("large queries = %d, want 8", n)
	}
}

func TestLRBQueriesNonEmpty(t *testing.T) {
	datasets := GenerateLRB(DefaultLRB())
	for _, q := range LRBQueries() {
		want := oracleFor(t, datasets, q.Text)
		if len(want.Rows) == 0 {
			t.Errorf("%s returns no results on generated data", q.Name)
		}
	}
}

// The full S/C/B × engine matrix is the heavyweight correctness test.
func TestLRBQueriesAllEnginesCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine matrix skipped in -short mode")
	}
	datasets := GenerateLRB(DefaultLRB())
	for _, q := range LRBQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			checkAllEngines(t, datasets, q)
		})
	}
}

func TestBio2RDFQueriesNonEmptyAndCorrect(t *testing.T) {
	datasets := GenerateBio2RDF(Bio2RDFConfig{Scale: 1})
	if len(datasets) != 5 {
		t.Fatalf("datasets = %d", len(datasets))
	}
	for _, q := range Bio2RDFQueries() {
		want := oracleFor(t, datasets, q.Text)
		if len(want.Rows) == 0 {
			t.Errorf("%s returns no results on generated data", q.Name)
			continue
		}
		checkAllEngines(t, datasets, q)
	}
}

func TestRunMeasuresAndTimesOut(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(2))
	fed, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	q := LUBMQueries()[1]
	res := fed.Run(context.Background(), Lusail, q.Text, RunOptions{Repeats: 3})
	if res.Err != nil {
		t.Fatalf("Run: %v", res.Err)
	}
	if res.Time <= 0 || res.Requests <= 0 || res.Results <= 0 {
		t.Errorf("result not measured: %+v", res)
	}

	// An absurd timeout forces TO, like the paper's one-hour cutoff.
	slow, err := NewFed(datasets, NetworkProfile{RTT: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r2 := slow.Run(context.Background(), FedX, q.Text, RunOptions{Timeout: 50 * time.Millisecond})
	if !r2.TimedOut {
		t.Errorf("expected timeout, got %+v", r2)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:  "test",
		Header: []string{"q", "time"},
		Rows:   [][]string{{"Q1", "1.0ms"}, {"Q2", "TO"}},
		Notes:  []string{"n"},
	}
	out := tb.String()
	for _, want := range []string{"== test ==", "Q1", "TO", "note: n"} {
		if !contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatDuration(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatDuration(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatResult(Result{TimedOut: true}); got != "TO" {
		t.Errorf("FormatResult TO = %q", got)
	}
	if got := FormatResult(Result{Err: context.Canceled}); got != "ERR" {
		t.Errorf("FormatResult ERR = %q", got)
	}
}

func TestGeoProfileSlowerThanLocal(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(2))
	q := LUBMQueries()[1].Text

	local, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := NewFed(datasets, GeoDistributed())
	if err != nil {
		t.Fatal(err)
	}
	rl := local.Run(context.Background(), Lusail, q, RunOptions{})
	rg := geo.Run(context.Background(), Lusail, q, RunOptions{})
	if rl.Err != nil || rg.Err != nil {
		t.Fatalf("errs: %v %v", rl.Err, rg.Err)
	}
	if rg.Time <= rl.Time {
		t.Errorf("geo (%v) should be slower than local (%v)", rg.Time, rl.Time)
	}
}

// HiBISCuS's authority-summary pruning must cut request counts relative to
// FedX on cross-domain joins (distinct URI authorities per dataset), the
// effect visible on the paper's LargeRDFBench runs.
func TestHiBISCuSPrunesRequests(t *testing.T) {
	datasets := GenerateLRB(DefaultLRB())
	fed, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	var q Query
	for _, cand := range LRBQueries() {
		if cand.Name == "S13" {
			q = cand
		}
	}
	rF := fed.Run(context.Background(), FedX, q.Text, RunOptions{})
	rH := fed.Run(context.Background(), HiBISCuS, q.Text, RunOptions{})
	if rF.Err != nil || rH.Err != nil {
		t.Fatalf("errs: %v / %v", rF.Err, rH.Err)
	}
	if rH.Requests >= rF.Requests {
		t.Errorf("HiBISCuS requests (%d) should be below FedX (%d)", rH.Requests, rF.Requests)
	}
	if rH.Results != rF.Results {
		t.Errorf("pruning changed results: %d vs %d", rH.Results, rF.Results)
	}
}

// Lusail's request count must grow far slower with endpoints than FedX's
// on same-schema federations (the scalability claim behind Figure 9).
func TestRequestScalingWithEndpoints(t *testing.T) {
	q := LUBMQueries()[1] // Q2 triangle
	reqs := map[EngineKind][]int64{}
	for _, n := range []int{2, 4} {
		fed, err := NewFed(GenerateLUBM(DefaultLUBM(n)), InProcess())
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []EngineKind{Lusail, FedX} {
			r := fed.Run(context.Background(), kind, q.Text, RunOptions{})
			if r.Err != nil {
				t.Fatalf("%s: %v", kind, r.Err)
			}
			reqs[kind] = append(reqs[kind], r.Requests)
		}
	}
	lusailGrowth := float64(reqs[Lusail][1]) / float64(reqs[Lusail][0])
	fedxGrowth := float64(reqs[FedX][1]) / float64(reqs[FedX][0])
	if fedxGrowth <= lusailGrowth {
		t.Errorf("FedX request growth (%.1fx) should exceed Lusail's (%.1fx); reqs=%v",
			fedxGrowth, lusailGrowth, reqs)
	}
}

// Generators must be deterministic per seed: experiments are reproducible.
func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateLUBM(DefaultLUBM(3))
	b := GenerateLUBM(DefaultLUBM(3))
	if !reflect.DeepEqual(a, b) {
		t.Error("LUBM generator not deterministic")
	}
	qa := GenerateQFed(DefaultQFed())
	qb := GenerateQFed(DefaultQFed())
	if !reflect.DeepEqual(qa, qb) {
		t.Error("QFed generator not deterministic")
	}
	la := GenerateLRB(DefaultLRB())
	lb := GenerateLRB(DefaultLRB())
	if !reflect.DeepEqual(la, lb) {
		t.Error("LRB generator not deterministic")
	}
	ba := GenerateBio2RDF(Bio2RDFConfig{Scale: 1})
	bb := GenerateBio2RDF(Bio2RDFConfig{Scale: 1})
	if !reflect.DeepEqual(ba, bb) {
		t.Error("Bio2RDF generator not deterministic")
	}
	// Different seeds produce different data.
	cfg := DefaultLUBM(3)
	cfg.Seed = 99
	c := GenerateLUBM(cfg)
	if reflect.DeepEqual(a, c) {
		t.Error("seed has no effect")
	}
}

// Scale must grow datasets roughly proportionally.
func TestScaleGrowsDatasets(t *testing.T) {
	small := GenerateLRB(LRBConfig{Scale: 1, Seed: 11})
	big := GenerateLRB(LRBConfig{Scale: 3, Seed: 11})
	totalSmall, totalBig := 0, 0
	for i := range small {
		totalSmall += len(small[i].Triples)
		totalBig += len(big[i].Triples)
	}
	if totalBig < 2*totalSmall {
		t.Errorf("scale 3 = %d triples vs scale 1 = %d", totalBig, totalSmall)
	}
}
