package bench

import (
	"context"
	"reflect"
	"testing"

	"lusail/internal/core"
)

// TestCatalogProbeFreeLUBM is the end-to-end acceptance check for the
// endpoint catalog: with a fresh catalog, a constant-predicate LUBM query
// runs with zero ASK probes and zero COUNT probes, while the probe-based
// engine issues both — and both report the same result count.
func TestCatalogProbeFreeLUBM(t *testing.T) {
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.EnsureCatalog(context.Background()); err != nil {
		t.Fatal(err)
	}
	run := RunOptions{Repeats: 1} // cold run: warm caches would hide probes
	for _, q := range LUBMQueries() {
		on := fed.Run(context.Background(), LusailCatalog, q.Text, run)
		if on.Err != nil {
			t.Fatalf("%s catalog-on: %v", q.Name, on.Err)
		}
		if on.Asks != 0 {
			t.Errorf("%s: catalog-on issued %d ASK probes, want 0", q.Name, on.Asks)
		}
		if on.CountProbes != 0 {
			t.Errorf("%s: catalog-on issued %d COUNT probes, want 0", q.Name, on.CountProbes)
		}
		if on.CatalogHits == 0 {
			t.Errorf("%s: catalog-on recorded no catalog hits", q.Name)
		}

		off := fed.Run(context.Background(), Lusail, q.Text, run)
		if off.Err != nil {
			t.Fatalf("%s catalog-off: %v", q.Name, off.Err)
		}
		if off.Asks == 0 {
			t.Errorf("%s: probe path issued no ASK probes; fixture broken", q.Name)
		}
		if off.CountProbes == 0 {
			t.Errorf("%s: probe path issued no COUNT probes; fixture broken", q.Name)
		}
		if on.Results != off.Results {
			t.Errorf("%s: catalog-on found %d results, probe path %d", q.Name, on.Results, off.Results)
		}
	}
}

// TestCatalogRowsMatchProbePath asserts the stronger half of the catalog
// contract: the rows — not just their count — are identical with the
// catalog on and off, for every LUBM query.
func TestCatalogRowsMatchProbePath(t *testing.T) {
	fed, err := NewFed(GenerateLUBM(DefaultLUBM(2)), InProcess())
	if err != nil {
		t.Fatal(err)
	}
	st, err := fed.EnsureCatalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	onOpts := core.DefaultOptions()
	onOpts.Catalog = st
	on := fed.NewLusail(onOpts)
	off := fed.NewLusail(core.DefaultOptions())

	ctx := context.Background()
	for _, q := range LUBMQueries() {
		got, _, err := on.QueryString(ctx, q.Text)
		if err != nil {
			t.Fatalf("%s catalog-on: %v", q.Name, err)
		}
		want, _, err := off.QueryString(ctx, q.Text)
		if err != nil {
			t.Fatalf("%s catalog-off: %v", q.Name, err)
		}
		got.Sort()
		want.Sort()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: rows diverge between catalog and probe paths", q.Name)
		}
	}
}

// TestCatalogProbesExperiment smoke-tests the experiment driver at tiny
// scale so `lusail-bench -experiment catalog` stays runnable.
func TestCatalogProbesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	opts := DefaultExp()
	tbl, err := CatalogProbes(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(LUBMQueries()) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), len(LUBMQueries()))
	}
	// The on:ASK and on:COUNT columns (indexes 8 and 9) must read 0.
	for _, row := range tbl.Rows {
		if row[8] != "0" || row[9] != "0" {
			t.Errorf("%s: catalog-on probes = ASK %s, COUNT %s; want 0, 0", row[0], row[8], row[9])
		}
	}
}
