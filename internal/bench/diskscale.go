package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lusail/internal/client"
	"lusail/internal/diskstore"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/store"
)

// diskScaleTier is one cell row of the DiskScale grid: a LUBM federation
// sized to a target triple count.
type diskScaleTier struct {
	name string
	cfg  LUBMConfig
}

// diskScaleTiers returns the grid, scaled by opts.Scale. Triples per
// department ≈ 2 + 7·profs + 8·students; the base tiers land near 10⁵ and
// 10⁶ triples — the smallest of the paper's data magnitudes, reachable in
// a CI run — and -scale multiplies student counts toward the larger ones.
func diskScaleTiers(opts ExpOptions) []diskScaleTier {
	tiers := []diskScaleTier{
		{"lubm-100k", LUBMConfig{Universities: 4, DeptsPerUniv: 10, ProfsPerDept: 20, StudentsPerDept: 295, Seed: 1, RemoteDegreeRatio: 0.3}},
		{"lubm-1m", LUBMConfig{Universities: 4, DeptsPerUniv: 25, ProfsPerDept: 40, StudentsPerDept: 1200, Seed: 1, RemoteDegreeRatio: 0.3}},
	}
	if opts.Scale > 1 {
		for i := range tiers {
			tiers[i].cfg.StudentsPerDept *= opts.Scale
			tiers[i].name = fmt.Sprintf("%s-x%d", tiers[i].name, opts.Scale)
		}
	}
	return tiers
}

// diskScaleCacheBytes is the per-endpoint block-cache budget used for the
// query comparison: deliberately small so the 10⁶-triple tier cannot fit
// its decoded blocks in memory and must evict — the bounded-memory
// operating point the disk tier exists for.
const diskScaleCacheBytes = 4 << 20

// DiskScale measures the disk-backed store tier end to end, per tier of
// the grid:
//
//   - bulk-load throughput and on-disk compression of the external-sort
//     loader, streaming straight from the generator (constant memory);
//   - LUBM query runtimes on the same federation served from the in-memory
//     backend vs the disk backend with a small block cache, asserting
//     row-identical result counts;
//   - block-cache behavior (hit rate, peak residency vs budget).
//
// It is the fig9/fig12-style experiment for data magnitude rather than
// endpoint count: the x-axis is triples per federation. A non-empty
// onlyTiers filter restricts the grid by tier name prefix (the testing.B
// wrapper runs just the smallest cell; the cmd tool runs everything).
func DiskScale(ctx context.Context, opts ExpOptions, onlyTiers ...string) ([]*Table, error) {
	loadT := &Table{
		Title:  "diskscale: bulk load (streaming external merge sort)",
		Header: []string{"tier", "endpoints", "triples", "terms", "file_MiB", "B/triple", "load_time", "triples/s"},
	}
	queryT := &Table{
		Title:  "diskscale: LUBM query runtime, memory vs disk backend",
		Header: []string{"tier", "query", "results", "memory", "disk", "disk/mem"},
		Notes: []string{
			fmt.Sprintf("disk endpoints run with a %d MiB block cache each; results are asserted row-identical across backends", diskScaleCacheBytes>>20),
		},
	}
	cacheT := &Table{
		Title:  "diskscale: block cache after query workload",
		Header: []string{"tier", "cache_MiB", "peak_resident_MiB", "hit_rate"},
	}

	for _, tier := range diskScaleTiers(opts) {
		if len(onlyTiers) > 0 {
			keep := false
			for _, want := range onlyTiers {
				if strings.HasPrefix(tier.name, want) {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		dir, err := os.MkdirTemp("", "lusail-diskscale-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		// Load phase: stream the generator into one bulk loader per
		// endpoint; nothing is materialized in memory.
		loaders := map[string]*diskstore.Loader{}
		var names []string
		start := time.Now()
		err = EmitLUBM(tier.cfg, func(dataset string, t rdf.Triple) error {
			l, ok := loaders[dataset]
			if !ok {
				var lerr error
				l, lerr = diskstore.NewLoader(filepath.Join(dir, dataset+".lds"), diskstore.BuildOptions{})
				if lerr != nil {
					return lerr
				}
				loaders[dataset] = l
				names = append(names, dataset)
			}
			return l.Add(t)
		})
		if err != nil {
			return nil, fmt.Errorf("diskscale %s: %w", tier.name, err)
		}
		var added, distinct, terms, fileBytes int64
		for _, name := range names {
			stats, err := loaders[name].Finish()
			if err != nil {
				return nil, fmt.Errorf("diskscale %s: loading %s: %w", tier.name, name, err)
			}
			added += stats.TriplesAdded
			distinct += stats.Triples
			terms += stats.Terms
			fileBytes += stats.FileBytes
		}
		loadTime := time.Since(start)
		loadT.Rows = append(loadT.Rows, []string{
			tier.name,
			fmt.Sprintf("%d", len(names)),
			fmt.Sprintf("%d", distinct),
			fmt.Sprintf("%d", terms),
			fmt.Sprintf("%.1f", float64(fileBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(fileBytes)/float64(distinct)),
			FormatDuration(loadTime),
			fmt.Sprintf("%.0f", float64(added)/loadTime.Seconds()),
		})

		// Query phase: same federation, both backends.
		var disks []*diskstore.Store
		var graphs []store.Graph
		for _, name := range names {
			ds, err := diskstore.Open(filepath.Join(dir, name+".lds"), diskstore.Options{CacheBytes: diskScaleCacheBytes})
			if err != nil {
				return nil, fmt.Errorf("diskscale %s: %w", tier.name, err)
			}
			defer ds.Close()
			disks = append(disks, ds)
			graphs = append(graphs, ds)
		}
		diskFed, err := newGraphFed(names, graphs, InProcess())
		if err != nil {
			return nil, err
		}
		memGraphs := make([]store.Graph, 0, len(names))
		for _, ds := range GenerateLUBM(tier.cfg) {
			memGraphs = append(memGraphs, store.NewFromTriples(ds.Triples))
		}
		memFed, err := newGraphFed(names, memGraphs, InProcess())
		if err != nil {
			return nil, err
		}

		for _, q := range LUBMQueries() {
			mr := memFed.Run(ctx, Lusail, q.Text, opts.run())
			dr := diskFed.Run(ctx, Lusail, q.Text, opts.run())
			if mr.Err == nil && dr.Err == nil && mr.Results != dr.Results {
				return nil, fmt.Errorf("diskscale %s %s: memory backend returned %d results, disk backend %d",
					tier.name, q.Name, mr.Results, dr.Results)
			}
			ratio := "-"
			if mr.Err == nil && dr.Err == nil && mr.Time > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(dr.Time)/float64(mr.Time))
			}
			queryT.Rows = append(queryT.Rows, []string{
				tier.name, q.Name, fmt.Sprintf("%d", mr.Results),
				FormatResult(mr), FormatResult(dr), ratio,
			})
		}

		var hits, misses, resident int64
		for _, ds := range disks {
			h, m, u := ds.CacheStats()
			hits += h
			misses += m
			resident += u
			if err := ds.Err(); err != nil {
				return nil, fmt.Errorf("diskscale %s: %w", tier.name, err)
			}
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		cacheT.Rows = append(cacheT.Rows, []string{
			tier.name,
			fmt.Sprintf("%d", int64(len(disks))*diskScaleCacheBytes>>20),
			fmt.Sprintf("%.1f", float64(resident)/(1<<20)),
			fmt.Sprintf("%.1f%%", 100*hitRate),
		})
	}
	return []*Table{loadT, queryT, cacheT}, nil
}

// newGraphFed builds a benchmark federation over existing graph backends
// (memory or disk), mirroring newFed's instrumentation.
func newGraphFed(names []string, graphs []store.Graph, net NetworkProfile) (*Fed, error) {
	m := &client.Metrics{}
	var wrapped []client.Endpoint
	var raw []client.Endpoint
	for i, name := range names {
		ep := client.NewInProcess(name, graphs[i])
		raw = append(raw, ep)
		var e client.Endpoint = ep
		if net.RTT > 0 || net.BytesPerSecond > 0 {
			e = client.NewLatency(e, net.RTT, net.BytesPerSecond)
		}
		wrapped = append(wrapped, client.NewInstrumented(e, m))
	}
	fed, err := federation.New(wrapped...)
	if err != nil {
		return nil, err
	}
	rawFed, err := federation.New(raw...)
	if err != nil {
		return nil, err
	}
	return &Fed{Federation: fed, Metrics: m, rawFed: rawFed}, nil
}
