package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lusail/internal/core"
	"lusail/internal/obs"
)

// ExpOptions configures an experiment run.
type ExpOptions struct {
	// Scale multiplies dataset sizes (1 = fast test scale).
	Scale int
	// Timeout per query (the paper used one hour; default here 30s).
	Timeout time.Duration
	// Repeats per measurement (paper protocol: 3, average of last 2).
	Repeats int
	// FaultRate is the injected error probability of the misbehaving
	// endpoint in the faults experiment (0 means the 0.3 default).
	FaultRate float64
	// FaultHang is the injected hang probability of the misbehaving
	// endpoint in the faults experiment's hedging table (0 means the 0.1
	// default).
	FaultHang float64
}

// DefaultExp returns fast settings suitable for `go test -bench`.
func DefaultExp() ExpOptions {
	return ExpOptions{Scale: 1, Timeout: 30 * time.Second, Repeats: 3, FaultRate: 0.3, FaultHang: 0.1}
}

func (o ExpOptions) run() RunOptions {
	return RunOptions{Timeout: o.Timeout, Repeats: o.Repeats}
}

// compareSystems runs each query on each system and renders a table of
// runtimes plus a request-count column per system.
func compareSystems(ctx context.Context, title string, fed *Fed, queries []Query, systems []EngineKind, opts ExpOptions) *Table {
	t := &Table{Title: title}
	t.Header = []string{"query", "results"}
	for _, s := range systems {
		t.Header = append(t.Header, string(s), string(s)+"#req")
	}
	for _, q := range queries {
		row := []string{q.Name, ""}
		for _, s := range systems {
			r := fed.Run(ctx, s, q.Text, opts.run())
			if r.Err == nil && row[1] == "" {
				row[1] = fmt.Sprintf("%d", r.Results)
			}
			row = append(row, FormatResult(r), fmt.Sprintf("%d", r.Requests))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table1Datasets reproduces Table 1: the datasets and their sizes.
func Table1Datasets(opts ExpOptions) *Table {
	t := &Table{Title: "Table 1: Datasets used in experiments (scaled)"}
	t.Header = []string{"benchmark", "endpoint", "triples"}
	addAll := func(name string, datasets []Dataset) {
		total := 0
		for _, ds := range datasets {
			t.Rows = append(t.Rows, []string{name, ds.Name, fmt.Sprintf("%d", len(ds.Triples))})
			total += len(ds.Triples)
			name = ""
		}
		t.Rows = append(t.Rows, []string{"", "Total Triples", fmt.Sprintf("%d", total)})
	}
	qcfg := DefaultQFed()
	qcfg.Drugs *= opts.Scale
	qcfg.Diseases *= opts.Scale
	addAll("QFed", GenerateQFed(qcfg))
	addAll("LargeRDFBench", GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}))
	lubm := GenerateLUBM(DefaultLUBM(4 * opts.Scale))
	total := 0
	for _, ds := range lubm {
		total += len(ds.Triples)
	}
	t.Rows = append(t.Rows, []string{"LUBM", fmt.Sprintf("%d Universities", len(lubm)), fmt.Sprintf("%d", total)})
	return t
}

// Fig8QFed reproduces Figure 8: QFed query runtimes for Lusail, FedX,
// HiBISCuS, and SPLENDID. Expected shape: Lusail wins everywhere; the
// big-literal variants (C2P2B*) hurt the bound-join systems most.
func Fig8QFed(ctx context.Context, opts ExpOptions) (*Table, error) {
	cfg := DefaultQFed()
	cfg.Drugs *= opts.Scale
	cfg.Diseases *= opts.Scale
	fed, err := NewFed(GenerateQFed(cfg), LocalCluster())
	if err != nil {
		return nil, err
	}
	t := compareSystems(ctx, "Figure 8: QFed (local cluster)", fed, QFedQueries(),
		[]EngineKind{Lusail, FedX, HiBISCuS, SPLENDID}, opts)
	t.Notes = append(t.Notes, "paper: Lusail fastest on all; FedX/HiBISCuS degrade or time out on C2P2B/C2P2BO")
	return t, nil
}

// Fig9LUBM reproduces Figure 9: LUBM queries on 2 and 4 same-schema
// endpoints. Expected shape: FedX/HiBISCuS fall off a cliff as endpoints
// grow (no exclusive groups -> bound joins); Lusail stays near-flat.
func Fig9LUBM(ctx context.Context, opts ExpOptions) ([]*Table, error) {
	var tables []*Table
	for _, n := range []int{2, 4} {
		cfg := DefaultLUBM(n)
		cfg.StudentsPerDept *= opts.Scale
		fed, err := NewFed(GenerateLUBM(cfg), LocalCluster())
		if err != nil {
			return nil, err
		}
		t := compareSystems(ctx, fmt.Sprintf("Figure 9(%c): LUBM, %d endpoints", 'a'+len(tables), n),
			fed, LUBMQueries(), []EngineKind{Lusail, FedX, HiBISCuS}, opts)
		t.Notes = append(t.Notes, "paper: Lusail up to 3 orders of magnitude faster on Q1/Q2/Q4")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10LargeRDFBench reproduces Figure 10: the S/C/B categories on the
// 13-endpoint federation for all four systems.
func Fig10LargeRDFBench(ctx context.Context, opts ExpOptions) ([]*Table, error) {
	fed, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), LocalCluster())
	if err != nil {
		return nil, err
	}
	systems := []EngineKind{Lusail, FedX, HiBISCuS, SPLENDID}
	a := compareSystems(ctx, "Figure 10(a): LargeRDFBench simple queries", fed, LRBSimpleQueries(), systems, opts)
	a.Notes = append(a.Notes, "paper: systems comparable on simple queries; Lusail best on S13/S14")
	b := compareSystems(ctx, "Figure 10(b): LargeRDFBench complex queries", fed, LRBComplexQueries(), systems, opts)
	b.Notes = append(b.Notes, "paper: Lusail dominates; FedX best on C4 (LIMIT early termination)")
	c := compareSystems(ctx, "Figure 10(c): LargeRDFBench large queries", fed, LRBLargeQueries(), systems, opts)
	c.Notes = append(c.Notes, "paper: Lusail superior on all large queries; others time out or fail")
	return []*Table{a, b, c}, nil
}

// Fig11Geo reproduces Figure 11: the geo-distributed (Azure) setting,
// simulated with per-request WAN latency and bandwidth limits.
func Fig11Geo(ctx context.Context, opts ExpOptions) ([]*Table, error) {
	net := GeoDistributed()
	fedLRB, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), net)
	if err != nil {
		return nil, err
	}
	systems := []EngineKind{Lusail, FedX, HiBISCuS, SPLENDID}
	a := compareSystems(ctx, "Figure 11(a): geo-distributed, complex queries", fedLRB, LRBComplexQueries(), systems, opts)
	b := compareSystems(ctx, "Figure 11(b): geo-distributed, large queries", fedLRB, LRBLargeQueries(), systems, opts)

	cfg := DefaultLUBM(2)
	cfg.StudentsPerDept *= opts.Scale
	fedLUBM, err := NewFed(GenerateLUBM(cfg), net)
	if err != nil {
		return nil, err
	}
	c := compareSystems(ctx, "Figure 11(c): geo-distributed, LUBM 2 endpoints", fedLUBM, LUBMQueries(),
		[]EngineKind{Lusail, FedX, HiBISCuS}, opts)
	c.Notes = append(c.Notes, "paper: Lusail ~1s; FedX/HiBISCuS >1000s (communication-bound)")
	return []*Table{a, b, c}, nil
}

// Fig12aProfile reproduces Figure 12(a): the per-phase breakdown (source
// selection, query analysis, execution) for a simple (S10), complex (C4),
// and large (B1) query. The phase times come from the engine's span tree
// (Options.Trace) rather than the Profile's hand-rolled timers: each phase
// is the sum of its named spans, and the total is the root span's duration.
func Fig12aProfile(ctx context.Context, opts ExpOptions) (*Table, error) {
	fed, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), LocalCluster())
	if err != nil {
		return nil, err
	}
	pick := map[string]string{}
	for _, q := range LRBQueries() {
		if q.Name == "S10" || q.Name == "C4" || q.Name == "B1" {
			pick[q.Name] = q.Text
		}
	}
	t := &Table{
		Title:  "Figure 12(a): Lusail phase profile",
		Header: []string{"query", "source-selection", "analysis(LADE)", "execution(SAPE)", "total"},
	}
	for _, name := range []string{"S10", "C4", "B1"} {
		engOpts := core.DefaultOptions()
		engOpts.Trace = true
		eng := fed.NewLusail(engOpts)
		_, prof, err := eng.QueryString(ctx, pick[name])
		if err != nil {
			return nil, fmt.Errorf("profiling %s: %w", name, err)
		}
		if prof.Trace == nil {
			return nil, fmt.Errorf("profiling %s: no trace recorded", name)
		}
		phases := obs.SumByName(prof.Trace)
		t.Rows = append(t.Rows, []string{
			name,
			FormatDuration(phases["source-selection"]),
			FormatDuration(phases["analysis"]),
			FormatDuration(phases["execution"]),
			FormatDuration(prof.Trace.Dur),
		})
	}
	t.Notes = append(t.Notes, "paper: execution dominates; analysis adds no significant overhead")
	return t, nil
}

// Fig12bcScaling reproduces Figures 12(b,c): LUBM Q3 and Q4 phase times as
// the number of endpoints grows, with and without the ASK/check caches.
func Fig12bcScaling(ctx context.Context, endpointCounts []int, opts ExpOptions) ([]*Table, error) {
	if len(endpointCounts) == 0 {
		endpointCounts = []int{4, 16, 64, 256}
	}
	queries := LUBMQueries()
	var tables []*Table
	for _, qi := range []int{2, 3} { // Q3 and Q4
		q := queries[qi]
		t := &Table{
			Title:  fmt.Sprintf("Figure 12(%c): LUBM %s scaling with endpoints", 'b'+len(tables), q.Name),
			Header: []string{"endpoints", "source-selection", "analysis", "execution", "total(cached)", "total(no-cache)"},
		}
		for _, n := range endpointCounts {
			cfg := DefaultLUBM(n)
			fed, err := NewFed(GenerateLUBM(cfg), LocalCluster())
			if err != nil {
				return nil, err
			}
			eng := fed.NewLusail(core.DefaultOptions())
			// Warm the caches, then measure the cached run.
			if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
				return nil, err
			}
			_, prof, err := eng.QueryString(ctx, q.Text)
			if err != nil {
				return nil, err
			}
			// Cold run: fresh engine, caches disabled.
			cold := core.DefaultOptions()
			cold.CacheSources = false
			cold.CacheChecks = false
			engCold := fed.NewLusail(cold)
			_, profCold, err := engCold.QueryString(ctx, q.Text)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				FormatDuration(prof.SourceSelection),
				FormatDuration(prof.Analysis),
				FormatDuration(prof.Execution),
				FormatDuration(prof.Total),
				FormatDuration(profCold.Total),
			})
		}
		t.Notes = append(t.Notes, "paper: execution dominates as endpoints grow; caching helps, especially Q4")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13Thresholds reproduces Figure 13: total per-category LargeRDFBench
// time under the four delay-threshold rules, in the geo-distributed
// setting.
func Fig13Thresholds(ctx context.Context, opts ExpOptions) (*Table, error) {
	fed, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), GeoDistributed())
	if err != nil {
		return nil, err
	}
	modes := []core.ThresholdMode{core.ThresholdMu, core.ThresholdMuSigma, core.ThresholdMu2Sigma, core.ThresholdOutliers}
	t := &Table{Title: "Figure 13: delay-threshold sensitivity (geo-distributed LRB)"}
	t.Header = []string{"category"}
	for _, m := range modes {
		t.Header = append(t.Header, m.String())
	}
	cats := []struct {
		name    string
		queries []Query
	}{
		{"simple", LRBSimpleQueries()},
		{"complex", LRBComplexQueries()},
		{"large", LRBLargeQueries()},
	}
	for _, cat := range cats {
		row := []string{cat.name}
		for _, m := range modes {
			o := core.DefaultOptions()
			o.Threshold = m
			total := time.Duration(0)
			eng := fed.NewLusail(o)
			for _, q := range cat.queries {
				start := time.Now()
				if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
					return nil, fmt.Errorf("%s/%s under %v: %w", cat.name, q.Name, m, err)
				}
				total += time.Since(start)
			}
			row = append(row, FormatDuration(total))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: mu+sigma consistently good; mu worst on large; mu+2sigma/outliers worse on simple+complex")
	return t, nil
}

// Fig14Ablation reproduces Figure 14: FedX vs Lusail-LADE-only vs full
// Lusail (LADE+SAPE) on two queries from each benchmark.
func Fig14Ablation(ctx context.Context, opts ExpOptions) (*Table, error) {
	t := &Table{
		Title:  "Figure 14: effect of LADE and SAPE",
		Header: []string{"benchmark", "query", "FedX", "FedX#KB", "LADE", "LADE#KB", "LADE+SAPE", "SAPE#KB"},
	}
	kb := func(r Result) string { return fmt.Sprintf("%d", r.Bytes/1024) }
	addRows := func(benchName string, fed *Fed, queries []Query) {
		for _, q := range queries {
			rF := fed.Run(ctx, FedX, q.Text, opts.run())
			rL := fed.Run(ctx, LusailLADE, q.Text, opts.run())
			rLS := fed.Run(ctx, Lusail, q.Text, opts.run())
			t.Rows = append(t.Rows, []string{benchName, q.Name,
				FormatResult(rF), kb(rF), FormatResult(rL), kb(rL), FormatResult(rLS), kb(rLS)})
			benchName = ""
		}
	}
	qcfg := DefaultQFed()
	qcfg.Drugs *= opts.Scale
	qfed, err := NewFed(GenerateQFed(qcfg), LocalCluster())
	if err != nil {
		return nil, err
	}
	qfedQs := QFedQueries()
	addRows("QFed", qfed, []Query{qfedQs[0], qfedQs[3]}) // C2P2, C2P2B

	lcfg := DefaultLUBM(4)
	lcfg.StudentsPerDept *= opts.Scale
	lubm, err := NewFed(GenerateLUBM(lcfg), LocalCluster())
	if err != nil {
		return nil, err
	}
	lubmQs := LUBMQueries()
	addRows("LUBM", lubm, []Query{lubmQs[1], lubmQs[3]}) // Q2, Q4

	lrb, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), LocalCluster())
	if err != nil {
		return nil, err
	}
	var picked []Query
	for _, q := range LRBQueries() {
		if q.Name == "C1" || q.Name == "B3" {
			picked = append(picked, q)
		}
	}
	addRows("LargeRDFBench", lrb, picked)
	t.Notes = append(t.Notes, "paper: LADE alone beats FedX by up to 3 orders; SAPE always improves on LADE alone",
		"#KB columns: payload shipped from endpoints — SAPE's bound joins cut communication even when LAN times are equal")
	return t, nil
}

// Table2RealEndpoints reproduces Table 2: Lusail vs FedX on the Bio2RDF
// queries R1-R5 and six LargeRDFBench queries, over WAN-simulated
// independently deployed endpoints.
func Table2RealEndpoints(ctx context.Context, opts ExpOptions) (*Table, error) {
	net := GeoDistributed()
	bio, err := NewFed(GenerateBio2RDF(Bio2RDFConfig{Scale: opts.Scale}), net)
	if err != nil {
		return nil, err
	}
	lrb, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), net)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 2: query runtimes on (simulated) real endpoints",
		Header: []string{"federation", "query", "Lusail", "FedX"},
	}
	addRows := func(fedName string, fed *Fed, queries []Query) {
		for _, q := range queries {
			rL := fed.Run(ctx, Lusail, q.Text, opts.run())
			rF := fed.Run(ctx, FedX, q.Text, opts.run())
			t.Rows = append(t.Rows, []string{fedName, q.Name, FormatResult(rL), FormatResult(rF)})
			fedName = ""
		}
	}
	addRows("Bio2RDF", bio, Bio2RDFQueries())
	want := map[string]bool{"S3": true, "S4": true, "S7": true, "S10": true, "S14": true, "C9": true}
	var picked []Query
	for _, q := range LRBQueries() {
		if want[q.Name] {
			picked = append(picked, q)
		}
	}
	addRows("LargeRDFBench", lrb, picked)
	t.Notes = append(t.Notes, "paper: FedX wins tiny selective S3/S4; Lusail wins the rest by 1-2 orders; FedX fails on several")
	return t, nil
}

// QErrorExperiment reproduces the cardinality-estimation accuracy analysis
// of Section 4.1: the q-error (max(e/a, a/e)) of the cost model over
// multi-pattern subqueries of the LargeRDFBench workload; the paper reports
// a median of 1.09.
func QErrorExperiment(ctx context.Context, opts ExpOptions) (*Table, float64, error) {
	fed, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), LocalCluster())
	if err != nil {
		return nil, 0, err
	}
	var qerrors []float64
	eng := fed.NewLusail(core.DefaultOptions())
	for _, q := range LRBQueries() {
		_, prof, err := eng.QueryString(ctx, q.Text)
		if err != nil {
			return nil, 0, fmt.Errorf("q-error on %s: %w", q.Name, err)
		}
		for _, st := range prof.SubqueryStats {
			e, a := st.Estimated, float64(st.Actual)
			if e <= 0 {
				e = 1
			}
			if a <= 0 {
				a = 1
			}
			qe := e / a
			if qe < 1 {
				qe = 1 / qe
			}
			qerrors = append(qerrors, qe)
		}
	}
	if len(qerrors) == 0 {
		return nil, 0, fmt.Errorf("q-error: no multi-pattern subqueries observed")
	}
	sort.Float64s(qerrors)
	median := qerrors[len(qerrors)/2]
	t := &Table{
		Title:  "Section 4.1: cardinality estimation accuracy (q-error)",
		Header: []string{"observations", "median q-error", "p90 q-error", "max q-error"},
		Rows: [][]string{{
			fmt.Sprintf("%d", len(qerrors)),
			fmt.Sprintf("%.2f", median),
			fmt.Sprintf("%.2f", qerrors[len(qerrors)*9/10]),
			fmt.Sprintf("%.2f", qerrors[len(qerrors)-1]),
		}},
		Notes: []string{"paper: median q-error 1.09 on LargeRDFBench"},
	}
	return t, median, nil
}

// PreprocessingCost reproduces the Section 5.1 discussion: index-based
// systems pay a preprocessing cost proportional to data size; index-free
// systems pay none.
func PreprocessingCost(ctx context.Context, opts ExpOptions) (*Table, error) {
	qfed, err := NewFed(GenerateQFed(DefaultQFed()), LocalCluster())
	if err != nil {
		return nil, err
	}
	lrb, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), LocalCluster())
	if err != nil {
		return nil, err
	}
	qfedHib, qfedSpl, err := qfed.PreprocessingTimes(ctx)
	if err != nil {
		return nil, err
	}
	lrbHib, lrbSpl, err := lrb.PreprocessingTimes(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Section 5.1: data preprocessing cost",
		Header: []string{"federation", "Lusail", "FedX", "HiBISCuS", "SPLENDID"},
		Rows: [][]string{
			{"QFed", "none", "none", FormatDuration(qfedHib), FormatDuration(qfedSpl)},
			{"LargeRDFBench", "none", "none", FormatDuration(lrbHib), FormatDuration(lrbSpl)},
		},
		Notes: []string{"paper: SPLENDID needs 25s (QFed) and 3513s (LRB); Lusail and FedX need no preprocessing"},
	}
	return t, nil
}

// BlockSizeAblation is an extension experiment beyond the paper's figures:
// it sweeps SAPE's VALUES block size on the bound-join-heavy LUBM Q4 to
// expose the trade-off between the number of bound-join requests (small
// blocks) and per-request payload (large blocks).
func BlockSizeAblation(ctx context.Context, opts ExpOptions) (*Table, error) {
	cfg := DefaultLUBM(4)
	cfg.StudentsPerDept *= opts.Scale
	fed, err := NewFed(GenerateLUBM(cfg), LocalCluster())
	if err != nil {
		return nil, err
	}
	q := LUBMQueries()[3] // Q4
	t := &Table{
		Title:  "Ablation: SAPE VALUES block size (LUBM Q4, 4 endpoints)",
		Header: []string{"block size", "time", "requests", "rows", "KB"},
	}
	for _, size := range []int{5, 25, 100, 500, 2000} {
		o := core.DefaultOptions()
		o.ValuesBlockSize = size
		eng := fed.NewLusail(o)
		// Warm caches, then measure.
		if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
			return nil, err
		}
		before := fed.Metrics.Snapshot()
		start := time.Now()
		if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		d := fed.Metrics.Snapshot().Sub(before)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			FormatDuration(elapsed),
			fmt.Sprintf("%d", d.Requests),
			fmt.Sprintf("%d", d.Rows),
			fmt.Sprintf("%d", d.Bytes/1024),
		})
	}
	t.Notes = append(t.Notes, "extension: small blocks multiply bound-join requests; the default 500 balances the two costs")
	return t, nil
}

// PoolSizeAblation is an extension experiment: it sweeps the ERH worker
// pool size to show how endpoint-request parallelism drives response time
// (the paper sizes the pool to the number of physical cores).
func PoolSizeAblation(ctx context.Context, opts ExpOptions) (*Table, error) {
	fed, err := NewFed(GenerateLRB(LRBConfig{Scale: opts.Scale, Seed: 11}), GeoDistributed())
	if err != nil {
		return nil, err
	}
	var q Query
	for _, cand := range LRBQueries() {
		if cand.Name == "C1" {
			q = cand
		}
	}
	t := &Table{
		Title:  "Ablation: ERH pool size (LargeRDFBench C1, geo-distributed)",
		Header: []string{"pool size", "time"},
	}
	for _, size := range []int{1, 2, 4, 8, 16} {
		o := core.DefaultOptions()
		o.PoolSize = size
		eng := fed.NewLusail(o)
		if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, _, err := eng.QueryString(ctx, q.Text); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", size), FormatDuration(time.Since(start))})
	}
	t.Notes = append(t.Notes, "extension: request parallelism hides WAN latency; gains flatten once all endpoints are busy")
	return t, nil
}

// CatalogProbes measures the probe traffic the endpoint catalog removes:
// every LUBM query with the catalog off (per-query ASK source probes and
// SELECT COUNT cardinality probes) and on (both tiers answered from the
// precomputed summaries). Each measurement is one cold run — repeating on
// a warm engine would let the selector's ASK cache hide exactly the probes
// this experiment counts. The catalog build itself is offline
// preprocessing, reported in a note like the baselines' index builds.
func CatalogProbes(ctx context.Context, opts ExpOptions) (*Table, error) {
	cfg := DefaultLUBM(4)
	cfg.StudentsPerDept *= opts.Scale
	fed, err := NewFed(GenerateLUBM(cfg), LocalCluster())
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	if _, err := fed.EnsureCatalog(ctx); err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)

	run := RunOptions{Timeout: opts.Timeout, Repeats: 1}
	t := &Table{Title: "Catalog: probe traffic with and without the endpoint catalog (LUBM, 4 endpoints)"}
	t.Header = []string{"query", "results",
		"off:time", "off:req", "off:ASK", "off:COUNT",
		"on:time", "on:req", "on:ASK", "on:COUNT", "on:hits"}
	for _, q := range LUBMQueries() {
		off := fed.Run(ctx, Lusail, q.Text, run)
		on := fed.Run(ctx, LusailCatalog, q.Text, run)
		t.Rows = append(t.Rows, []string{
			q.Name, fmt.Sprintf("%d", off.Results),
			FormatResult(off), fmt.Sprintf("%d", off.Requests),
			fmt.Sprintf("%d", off.Asks), fmt.Sprintf("%d", off.CountProbes),
			FormatResult(on), fmt.Sprintf("%d", on.Requests),
			fmt.Sprintf("%d", on.Asks), fmt.Sprintf("%d", on.CountProbes),
			fmt.Sprintf("%d", on.CatalogHits),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("catalog built offline in %s (one scan per endpoint, like the baselines' index builds)", FormatDuration(buildTime)),
		"off = probe-based Lusail; on = catalog-backed; single cold run per cell so probes are not hidden by warm caches")
	return t, nil
}
