// Package bench is the benchmark substrate reproducing the paper's
// experimental study: synthetic stand-ins for the LUBM, QFed,
// LargeRDFBench, and Bio2RDF federations, a harness that runs every
// compared engine (Lusail, Lusail/LADE-only, FedX, HiBISCuS, SPLENDID)
// under identical conditions, and one experiment driver per table and
// figure in the paper (see DESIGN.md's experiment index).
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/fedx"
	"lusail/internal/hibiscus"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/splendid"
	"lusail/internal/store"
)

// Dataset is one endpoint's data in a benchmark federation.
type Dataset struct {
	Name    string
	Triples []rdf.Triple
}

// Query is a named benchmark query.
type Query struct {
	Name string
	Text string
}

// EngineKind names the systems under comparison.
type EngineKind string

const (
	// Lusail is the full system (LADE + SAPE).
	Lusail EngineKind = "Lusail"
	// LusailCatalog is Lusail with the endpoint catalog installed: source
	// selection and cardinality estimation answer from precomputed
	// summaries instead of per-query ASK/COUNT probes. The catalog is
	// built offline (like the baselines' indexes) before measurement.
	LusailCatalog EngineKind = "Lusail+Cat"
	// LusailLADE is the ablation with SAPE disabled (Figure 14).
	LusailLADE EngineKind = "Lusail-LADE"
	// FedX is the index-free baseline.
	FedX EngineKind = "FedX"
	// HiBISCuS is FedX plus index-based source pruning.
	HiBISCuS EngineKind = "HiBISCuS"
	// SPLENDID is the VoID-statistics index-based baseline.
	SPLENDID EngineKind = "SPLENDID"
)

// NetworkProfile models the deployment's communication characteristics.
type NetworkProfile struct {
	// RTT per request; zero models a local cluster.
	RTT time.Duration
	// BytesPerSecond downstream bandwidth; zero disables the term.
	BytesPerSecond int64
}

// InProcess is a zero-cost network profile for correctness testing, where
// endpoint calls are plain function calls.
func InProcess() NetworkProfile { return NetworkProfile{} }

// LocalCluster models the paper's 84-core/480-core LAN setting: endpoints
// are separate processes on 1-10Gbps Ethernet, so every request costs a
// fraction of a millisecond. Without this term, in-process endpoints would
// underweight exactly the effect the paper measures — the number of remote
// requests an engine issues.
func LocalCluster() NetworkProfile {
	return NetworkProfile{RTT: 300 * time.Microsecond, BytesPerSecond: 125 << 20}
}

// GeoDistributed approximates the paper's 7-region Azure deployment,
// scaled down so benchmarks finish quickly: a few milliseconds of RTT and
// constrained bandwidth stand in for tens of milliseconds over WAN. The
// *relative* penalty between systems is what the experiment measures.
func GeoDistributed() NetworkProfile {
	return NetworkProfile{RTT: 2 * time.Millisecond, BytesPerSecond: 20 << 20}
}

// Fed is a live benchmark federation: instrumented (and possibly
// latency-wrapped) endpoints plus lazily built baseline indexes.
type Fed struct {
	Federation *federation.Federation
	Metrics    *client.Metrics
	Datasets   []Dataset

	rawFed   *federation.Federation // un-instrumented, for index builds
	indexMu  sync.Mutex
	hibIndex *hibiscus.Index
	splIndex *splendid.Index
	catStore *catalog.Store
}

// NewFed builds a federation from datasets under the given network profile.
func NewFed(datasets []Dataset, net NetworkProfile) (*Fed, error) {
	return newFed(datasets, net, nil)
}

// newFed builds the federation. When wrap is non-nil, each latency-wrapped
// endpoint passes through it before instrumentation, so injected faults (see
// NewFedWithFaults) still count as issued requests — the work an engine
// wastes on a misbehaving endpoint is exactly what the faults experiment
// measures.
func newFed(datasets []Dataset, net NetworkProfile, wrap func(client.Endpoint) client.Endpoint) (*Fed, error) {
	m := &client.Metrics{}
	var wrapped []client.Endpoint
	var raw []client.Endpoint
	for _, ds := range datasets {
		ep := client.NewInProcess(ds.Name, store.NewFromTriples(ds.Triples))
		raw = append(raw, ep)
		var e client.Endpoint = ep
		if net.RTT > 0 || net.BytesPerSecond > 0 {
			e = client.NewLatency(e, net.RTT, net.BytesPerSecond)
		}
		if wrap != nil {
			e = wrap(e)
		}
		wrapped = append(wrapped, client.NewInstrumented(e, m))
	}
	fed, err := federation.New(wrapped...)
	if err != nil {
		return nil, err
	}
	rawFed, err := federation.New(raw...)
	if err != nil {
		return nil, err
	}
	return &Fed{
		Federation: fed,
		Metrics:    m,
		Datasets:   datasets,
		rawFed:     rawFed,
	}, nil
}

// EnsureIndexes builds the HiBISCuS and SPLENDID indexes if they have not
// been built yet. Index construction runs against the raw (un-delayed)
// endpoints: it is an offline preprocessing phase whose cost is reported
// separately (Section 5.1 of the paper), not charged to queries.
func (f *Fed) EnsureIndexes(ctx context.Context) error {
	f.indexMu.Lock()
	defer f.indexMu.Unlock()
	if f.hibIndex != nil {
		return nil
	}
	pool := erh.New(0)
	hibIdx, err := hibiscus.BuildIndex(ctx, f.rawFed, pool)
	if err != nil {
		return fmt.Errorf("bench: building HiBISCuS index: %w", err)
	}
	splIdx, err := splendid.BuildIndex(ctx, f.rawFed, pool)
	if err != nil {
		return fmt.Errorf("bench: building SPLENDID index: %w", err)
	}
	f.hibIndex, f.splIndex = hibIdx, splIdx
	return nil
}

// PreprocessingTimes returns the HiBISCuS and SPLENDID index build times,
// building the indexes if necessary.
func (f *Fed) PreprocessingTimes(ctx context.Context) (hibiscusPrep, splendidPrep time.Duration, err error) {
	if err := f.EnsureIndexes(ctx); err != nil {
		return 0, 0, err
	}
	return f.hibIndex.BuildTime, f.splIndex.BuildTime, nil
}

// EnsureCatalog builds the endpoint catalog if it has not been built yet.
// Like EnsureIndexes, the build runs against the raw endpoints: catalog
// construction is offline preprocessing, not charged to queries.
func (f *Fed) EnsureCatalog(ctx context.Context) (*catalog.Store, error) {
	f.indexMu.Lock()
	defer f.indexMu.Unlock()
	if f.catStore != nil {
		return f.catStore, nil
	}
	st := catalog.NewStore("", 0) // in-memory, never stale
	if err := catalog.Build(ctx, f.rawFed, erh.New(0), st); err != nil {
		return nil, fmt.Errorf("bench: building catalog: %w", err)
	}
	f.catStore = st
	return st, nil
}

// TotalTriples sums the federation's dataset sizes.
func (f *Fed) TotalTriples() int {
	n := 0
	for _, ds := range f.Datasets {
		n += len(ds.Triples)
	}
	return n
}

// engine abstracts the systems under test.
type engine interface {
	QueryString(ctx context.Context, query string) (*sparql.Results, error)
}

// lusailAdapter adapts core.Engine's three-value return and keeps the last
// execution profile around so the harness can report probe counts.
type lusailAdapter struct {
	e    *core.Engine
	mu   sync.Mutex
	last *core.Profile
}

func (a *lusailAdapter) QueryString(ctx context.Context, q string) (*sparql.Results, error) {
	res, prof, err := a.e.QueryString(ctx, q)
	a.mu.Lock()
	a.last = prof
	a.mu.Unlock()
	return res, err
}

// lastProfile returns the profile of the most recent query, or nil.
func (a *lusailAdapter) lastProfile() *core.Profile {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last
}

// NewEngine constructs a fresh engine of the given kind over the
// federation (cold caches).
func (f *Fed) NewEngine(ctx context.Context, kind EngineKind) (engine, error) {
	switch kind {
	case Lusail:
		return &lusailAdapter{e: core.MustNew(f.Federation, core.DefaultOptions())}, nil
	case LusailCatalog:
		st, err := f.EnsureCatalog(ctx)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Catalog = st
		return &lusailAdapter{e: core.MustNew(f.Federation, opts)}, nil
	case LusailLADE:
		opts := core.DefaultOptions()
		opts.DisableSAPE = true
		return &lusailAdapter{e: core.MustNew(f.Federation, opts)}, nil
	case FedX:
		return fedx.New(f.Federation, fedx.Options{}), nil
	case HiBISCuS:
		if err := f.EnsureIndexes(ctx); err != nil {
			return nil, err
		}
		return hibiscus.New(f.Federation, f.hibIndex, fedx.Options{}), nil
	case SPLENDID:
		if err := f.EnsureIndexes(ctx); err != nil {
			return nil, err
		}
		return splendid.New(f.Federation, f.splIndex, splendid.Options{}), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q", kind)
}

// NewLusail returns the full core engine (for profile-based experiments).
// It panics on invalid options; benchmarks construct options statically.
func (f *Fed) NewLusail(opts core.Options) *core.Engine {
	return core.MustNew(f.Federation, opts)
}

// Result is one measured query execution.
type Result struct {
	System   EngineKind
	Query    string
	Time     time.Duration
	Requests int64
	Rows     int64
	Bytes    int64
	// Asks counts ASK probes issued for source selection (all engines).
	Asks int64
	// CountProbes and CatalogHits come from the Lusail execution profile:
	// SELECT COUNT probes issued vs cardinalities answered by the catalog.
	// Both stay zero for non-Lusail engines.
	CountProbes int64
	CatalogHits int64
	Results     int // result-set size
	Err         error
	TimedOut    bool
}

// RunOptions controls a measurement.
type RunOptions struct {
	// Timeout aborts a query (the paper used one hour; benchmarks here use
	// seconds). Zero means no timeout.
	Timeout time.Duration
	// Repeats runs the query this many times on a warm engine and reports
	// the average of all but the first run (the paper's protocol: three
	// runs, average of the last two). Values < 2 measure a single run.
	Repeats int
}

// Run measures one query on one engine kind.
func (f *Fed) Run(ctx context.Context, kind EngineKind, query string, opts RunOptions) Result {
	eng, err := f.NewEngine(ctx, kind)
	if err != nil {
		return Result{System: kind, Err: err}
	}
	return f.runOn(ctx, eng, kind, query, opts)
}

func (f *Fed) runOn(ctx context.Context, eng engine, kind EngineKind, query string, opts RunOptions) Result {
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var total time.Duration
	var res Result
	res.System = kind
	counted := 0
	for i := 0; i < repeats; i++ {
		before := f.Metrics.Snapshot()
		runCtx := ctx
		cancel := context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		start := time.Now()
		out, err := eng.QueryString(runCtx, query)
		elapsed := time.Since(start)
		cancel()
		delta := f.Metrics.Snapshot().Sub(before)
		if err != nil {
			res.Err = err
			res.TimedOut = runCtx.Err() != nil
			res.Time = elapsed
			res.Requests += delta.Requests
			return res
		}
		if i == 0 && repeats > 1 {
			continue // warmup run excluded from the average, like the paper
		}
		total += elapsed
		counted++
		res.Requests += delta.Requests
		res.Rows += delta.Rows
		res.Bytes += delta.Bytes
		res.Asks += delta.Asks
		if a, ok := eng.(*lusailAdapter); ok {
			if prof := a.lastProfile(); prof != nil {
				res.CountProbes += int64(prof.CountProbes)
				res.CatalogHits += int64(prof.CatalogHits)
			}
		}
		res.Results = out.Len()
	}
	if counted > 0 {
		res.Time = total / time.Duration(counted)
		res.Requests /= int64(counted)
		res.Rows /= int64(counted)
		res.Bytes /= int64(counted)
		res.Asks /= int64(counted)
		res.CountProbes /= int64(counted)
		res.CatalogHits /= int64(counted)
	}
	return res
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as fixed-width text.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	writeRow(dashes(widths))
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// FormatResult renders a Result cell: time in ms, TO for timeout, ERR for
// other failures.
func FormatResult(r Result) string {
	if r.TimedOut {
		return "TO"
	}
	if r.Err != nil {
		return "ERR"
	}
	return FormatDuration(r.Time)
}

// FormatDuration prints a duration in adaptive units.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// SortedNames returns dataset names sorted, for deterministic output.
func SortedNames(datasets []Dataset) []string {
	out := make([]string, len(datasets))
	for i, ds := range datasets {
		out[i] = ds.Name
	}
	sort.Strings(out)
	return out
}
