package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/obs"
	"lusail/internal/resilience"
)

// NewFedWithFaults is NewFed with the named endpoint misbehaving according
// to spec (deterministic injection, see resilience.WithFaults). The fault
// layer sits between the latency model and the instrumentation, so injected
// failures are still counted as issued requests.
func NewFedWithFaults(datasets []Dataset, net NetworkProfile, faulty string, spec resilience.FaultSpec) (*Fed, error) {
	return newFed(datasets, net, func(e client.Endpoint) client.Endpoint {
		if e.Name() != faulty {
			return e
		}
		return resilience.WithFaults(e, spec)
	})
}

// faultRun aggregates one resilience configuration's pass over the query mix.
type faultRun struct {
	ok, failed, degraded int
	warnings             int
	requests             int64
	elapsed              time.Duration
	probeDur             []time.Duration // Do/DoHedged durations to the faulty endpoint
	hedges, hedgeWins    int64
	brOpens, brRejects   int64
}

// runFaultConfig executes the LUBM query mix `passes` times on a fresh
// engine over fed, collecting outcome counts, resilience counters (read as
// deltas of the process-global obs registry), and — when the configuration
// has an active resilience manager — the caller-experienced duration of
// every guarded request to the faulty endpoint.
func runFaultConfig(ctx context.Context, fed *Fed, faulty string, o core.Options, queries []Query, passes int, timeout time.Duration) (faultRun, error) {
	eng, err := core.New(fed.Federation, o)
	if err != nil {
		return faultRun{}, err
	}
	var out faultRun
	var mu sync.Mutex
	eng.Resilience().SetProbeObserver(func(ep string, d time.Duration) {
		if ep != faulty {
			return
		}
		mu.Lock()
		out.probeDur = append(out.probeDur, d)
		mu.Unlock()
	})

	reg := obs.Default()
	label := obs.L("endpoint", faulty)
	opens := reg.Counter(obs.MetricBreakerOpens, "circuit breaker transitions to open per endpoint", label)
	rejects := reg.Counter(obs.MetricBreakerRejections, "requests rejected by an open breaker per endpoint", label)
	hedges := reg.Counter(obs.MetricHedges, "probe requests that started a hedge")
	hedgeWins := reg.Counter(obs.MetricHedgeWins, "hedged probes where the hedge finished first")
	opens0, rejects0 := opens.Value(), rejects.Value()
	hedges0, wins0 := hedges.Value(), hedgeWins.Value()

	before := fed.Metrics.Snapshot()
	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, q := range queries {
			qctx, cancel := context.WithTimeout(ctx, timeout)
			_, prof, err := eng.QueryString(qctx, q.Text)
			cancel()
			if err != nil {
				out.failed++
				continue
			}
			out.ok++
			if prof != nil {
				out.warnings += len(prof.Warnings)
				if prof.Degraded() {
					out.degraded++
				}
			}
		}
	}
	out.elapsed = time.Since(start)
	out.requests = fed.Metrics.Snapshot().Sub(before).Requests
	out.brOpens = opens.Value() - opens0
	out.brRejects = rejects.Value() - rejects0
	out.hedges = hedges.Value() - hedges0
	out.hedgeWins = hedgeWins.Value() - wins0
	mu.Lock()
	defer mu.Unlock()
	return out, nil
}

// pctDuration returns the p-quantile (0..1) of ds by nearest-rank, or 0 when
// ds is empty.
func pctDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// FaultsExperiment measures the resilience layer against a misbehaving
// endpoint in the LUBM-4 federation (University3 injected with faults,
// deterministic seed). It produces two tables:
//
//   - partial results: with University3 failing ErrorRate of its requests,
//     fail-fast loses queries while Degrade answers every one from the
//     remaining endpoints, and the circuit breaker converts repeated
//     failures into cheap up-front rejections;
//   - hedged probes: with University3 hanging HangRate of its requests,
//     hedging races a second probe after the adaptive latency quantile and
//     collapses the probe tail, where the unhedged engine burns the full
//     per-query timeout.
//
// Each configuration runs on a fresh federation and engine, so breaker
// state, caches, and the injector's random stream start cold.
func FaultsExperiment(ctx context.Context, opts ExpOptions) ([]*Table, error) {
	if opts.FaultRate <= 0 {
		opts.FaultRate = 0.3
	}
	if opts.FaultHang <= 0 {
		opts.FaultHang = 0.1
	}
	scale := opts.Scale
	if scale < 1 {
		scale = 1
	}
	datasets := GenerateLUBM(DefaultLUBM(4 * scale))
	faulty := datasets[len(datasets)-1].Name
	queries := LUBMQueries()
	const passes = 3

	// Table 1: error injection — fail-fast vs degrade vs degrade+breaker.
	failFast := core.DefaultOptions()
	degrade := core.DefaultOptions()
	degrade.OnEndpointFailure = core.Degrade
	breaker := degrade
	breaker.Resilience = resilience.Config{
		// Threshold below the injected error rate so the breaker actually
		// trips; a long cooldown keeps it open for the rest of the run.
		FailureThreshold: opts.FaultRate * 0.8,
		Window:           20,
		MinSamples:       10,
		Cooldown:         time.Minute,
	}
	errSpec := resilience.FaultSpec{ErrorRate: opts.FaultRate, Seed: 1}

	t1 := &Table{
		Title:  fmt.Sprintf("Partial results under endpoint failures (LUBM-%d, %s error rate %.0f%%)", 4*scale, faulty, 100*opts.FaultRate),
		Header: []string{"config", "ok", "failed", "degraded", "warnings", "br.opens", "br.rejects", "requests", "time"},
		Notes: []string{
			fmt.Sprintf("%d queries x %d passes per config; fresh engine and fault stream per config", len(queries), passes),
			"degraded = queries answered without the failing endpoint's contribution (Profile.Degraded)",
		},
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"fail-fast", failFast},
		{"degrade", degrade},
		{"degrade+breaker", breaker},
	} {
		fed, err := NewFedWithFaults(datasets, LocalCluster(), faulty, errSpec)
		if err != nil {
			return nil, err
		}
		r, err := runFaultConfig(ctx, fed, faulty, cfg.opts, queries, passes, opts.Timeout)
		if err != nil {
			return nil, err
		}
		t1.Rows = append(t1.Rows, []string{
			cfg.name,
			fmt.Sprint(r.ok), fmt.Sprint(r.failed), fmt.Sprint(r.degraded),
			fmt.Sprint(r.warnings),
			fmt.Sprint(r.brOpens), fmt.Sprint(r.brRejects),
			fmt.Sprint(r.requests),
			FormatDuration(r.elapsed),
		})
	}

	// Table 2: hang injection — the same degrade+breaker configuration with
	// and without probe hedging. Hangs only resolve at the query deadline,
	// so the timeout is kept short to bound each unrescued hang's cost.
	hangTimeout := 2 * time.Second
	if opts.Timeout > 0 && opts.Timeout < hangTimeout {
		hangTimeout = opts.Timeout
	}
	unhedged := core.DefaultOptions()
	unhedged.OnEndpointFailure = core.Degrade
	unhedged.Resilience = resilience.Config{
		FailureThreshold: 0.5,
		Window:           20,
		MinSamples:       5,
		Cooldown:         2 * time.Second,
	}
	hedged := unhedged
	hedged.Resilience.HedgeQuantile = 0.9
	hedged.Resilience.HedgeWarmup = 2
	hedged.Resilience.HedgeMinDelay = time.Millisecond
	hangSpec := resilience.FaultSpec{HangRate: opts.FaultHang, Seed: 2}

	t2 := &Table{
		Title:  fmt.Sprintf("Hedged probes vs a hanging endpoint (%s hang rate %.0f%%, %s timeout)", faulty, 100*opts.FaultHang, FormatDuration(hangTimeout)),
		Header: []string{"config", "ok", "failed", "probe p50", "probe p99", "hedges", "hedge wins", "br.opens", "time"},
		Notes: []string{
			"probe p50/p99 = caller-experienced duration of guarded requests to the hanging endpoint",
			"a hung probe without a hedge blocks until the query deadline; the hedge races a second request after the adaptive latency quantile",
		},
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"degrade+breaker", unhedged},
		{"degrade+breaker+hedge", hedged},
	} {
		fed, err := NewFedWithFaults(datasets, LocalCluster(), faulty, hangSpec)
		if err != nil {
			return nil, err
		}
		r, err := runFaultConfig(ctx, fed, faulty, cfg.opts, queries, passes, hangTimeout)
		if err != nil {
			return nil, err
		}
		t2.Rows = append(t2.Rows, []string{
			cfg.name,
			fmt.Sprint(r.ok), fmt.Sprint(r.failed),
			FormatDuration(pctDuration(r.probeDur, 0.50)),
			FormatDuration(pctDuration(r.probeDur, 0.99)),
			fmt.Sprint(r.hedges), fmt.Sprint(r.hedgeWins),
			fmt.Sprint(r.brOpens),
			FormatDuration(r.elapsed),
		})
	}
	return []*Table{t1, t2}, nil
}
