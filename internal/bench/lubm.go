package bench

import (
	"fmt"
	"math/rand"

	"lusail/internal/rdf"
)

// LUBM vocabulary (scaled-down subset of the Lehigh University Benchmark).
const ubNS = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

func ubIRI(local string) rdf.Term { return rdf.NewIRI(ubNS + local) }

// LUBMConfig sizes the synthetic university federation. The paper used 256
// universities of ~138K triples; defaults here generate ~1-2K triples per
// university so the full experiment suite runs in seconds. Shapes are
// preserved: same schema everywhere and cross-university interlinks through
// degrees.
type LUBMConfig struct {
	Universities    int
	DeptsPerUniv    int
	ProfsPerDept    int
	StudentsPerDept int
	Seed            int64
	// RemoteDegreeRatio is the fraction of professors whose PhD (and of
	// students whose undergraduate degree) comes from another university —
	// the interlinks of Figure 1.
	RemoteDegreeRatio float64
}

// DefaultLUBM returns the configuration used by the test suite and the
// default benchmark scale.
func DefaultLUBM(universities int) LUBMConfig {
	return LUBMConfig{
		Universities:      universities,
		DeptsPerUniv:      2,
		ProfsPerDept:      3,
		StudentsPerDept:   12,
		Seed:              1,
		RemoteDegreeRatio: 0.3,
	}
}

// GenerateLUBM produces one dataset per university.
func GenerateLUBM(cfg LUBMConfig) []Dataset {
	var datasets []Dataset
	byName := map[string]int{}
	EmitLUBM(cfg, func(dataset string, t rdf.Triple) error {
		i, ok := byName[dataset]
		if !ok {
			i = len(datasets)
			byName[dataset] = i
			datasets = append(datasets, Dataset{Name: dataset})
		}
		datasets[i].Triples = append(datasets[i].Triples, t)
		return nil
	})
	return datasets
}

// EmitLUBM streams the LUBM federation triple by triple instead of
// materializing it: the path to the paper's data magnitudes, where a
// generated dataset can exceed RAM and flows straight into an N-Triples
// file or a disk-store bulk loader. GenerateLUBM is a wrapper; for a given
// config the two produce exactly the same triples in the same order. A
// non-nil error from emit aborts generation and is returned.
func EmitLUBM(cfg LUBMConfig, emit func(dataset string, t rdf.Triple) error) error {
	if cfg.Universities <= 0 {
		cfg.Universities = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	typ := rdf.NewIRI(rdf.RDFType)

	univ := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu", i)) }

	for ui := 0; ui < cfg.Universities; ui++ {
		dsName := fmt.Sprintf("University%d", ui)
		var emitErr error
		add := func(s, p, o rdf.Term) {
			if emitErr == nil {
				emitErr = emit(dsName, rdf.Triple{S: s, P: p, O: o})
			}
		}
		u := univ(ui)
		add(u, typ, ubIRI("University"))
		add(u, ubIRI("name"), rdf.NewLiteral(fmt.Sprintf("University%d", ui)))
		add(u, ubIRI("address"), rdf.NewLiteral(fmt.Sprintf("%d College Road", ui)))

		remoteUniv := func() rdf.Term {
			if cfg.Universities == 1 {
				return u
			}
			for {
				j := rng.Intn(cfg.Universities)
				if j != ui {
					return univ(j)
				}
			}
		}
		degreeFrom := func() rdf.Term {
			if rng.Float64() < cfg.RemoteDegreeRatio {
				return remoteUniv()
			}
			return u
		}

		for di := 0; di < cfg.DeptsPerUniv; di++ {
			dept := rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu/Department%d", ui, di))
			add(dept, typ, ubIRI("Department"))
			add(dept, ubIRI("subOrganizationOf"), u)

			var courses []rdf.Term
			var profs []rdf.Term
			for pi := 0; pi < cfg.ProfsPerDept; pi++ {
				prof := rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu/Department%d/Professor%d", ui, di, pi))
				profs = append(profs, prof)
				class := "AssociateProfessor"
				if pi%2 == 1 {
					class = "FullProfessor"
				}
				add(prof, typ, ubIRI(class))
				add(prof, ubIRI("worksFor"), dept)
				add(prof, ubIRI("name"), rdf.NewLiteral(fmt.Sprintf("Prof %d.%d.%d", ui, di, pi)))
				// Addresses are generic: every person has one, like the
				// paper's example where <?U, ub:address, ?A> retrieves all
				// addressed entities, making its unbound evaluation costly
				// and its delayed (bound) evaluation selective.
				add(prof, ubIRI("address"), rdf.NewLiteral(fmt.Sprintf("%d Faculty Row, Apt %d%d", ui, di, pi)))
				add(prof, ubIRI("doctoralDegreeFrom"), degreeFrom())
				course := rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu/Department%d/GraduateCourse%d", ui, di, pi))
				courses = append(courses, course)
				add(course, typ, ubIRI("GraduateCourse"))
				add(prof, ubIRI("teacherOf"), course)
			}

			for si := 0; si < cfg.StudentsPerDept; si++ {
				stu := rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu/Department%d/GraduateStudent%d", ui, di, si))
				add(stu, typ, ubIRI("GraduateStudent"))
				add(stu, ubIRI("memberOf"), dept)
				add(stu, ubIRI("name"), rdf.NewLiteral(fmt.Sprintf("Student %d.%d.%d", ui, di, si)))
				add(stu, ubIRI("address"), rdf.NewLiteral(fmt.Sprintf("%d Dorm St, Room %d%d", ui, di, si)))
				add(stu, ubIRI("undergraduateDegreeFrom"), degreeFrom())
				advisor := profs[si%len(profs)]
				add(stu, ubIRI("advisor"), advisor)
				// Every student takes their advisor's course (so the Q2/Q9
				// triangle has answers) plus one other course.
				add(stu, ubIRI("takesCourse"), courses[si%len(courses)])
				add(stu, ubIRI("takesCourse"), courses[(si+1)%len(courses)])
			}
		}
		if emitErr != nil {
			return emitErr
		}
	}
	return nil
}

// LUBMQueries returns the paper's four LUBM queries: Q1, Q2, Q3 correspond
// to benchmark queries Q2, Q9, Q13; Q4 is the paper's variation of Q9 that
// also retrieves information from (possibly remote) universities.
func LUBMQueries() []Query {
	prefix := "PREFIX ub: <" + ubNS + ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
	return []Query{
		{
			// LUBM Q2: graduate students in a department of the university
			// that granted their undergraduate degree (triangle).
			Name: "Q1",
			Text: prefix + `SELECT ?X ?Y ?Z WHERE {
				?X rdf:type ub:GraduateStudent .
				?Y rdf:type ub:University .
				?Z rdf:type ub:Department .
				?X ub:memberOf ?Z .
				?Z ub:subOrganizationOf ?Y .
				?X ub:undergraduateDegreeFrom ?Y .
			}`,
		},
		{
			// LUBM Q9: student-advisor-course triangle.
			Name: "Q2",
			Text: prefix + `SELECT ?X ?Y ?Z WHERE {
				?X rdf:type ub:GraduateStudent .
				?Y rdf:type ub:FullProfessor .
				?Z rdf:type ub:GraduateCourse .
				?X ub:advisor ?Y .
				?Y ub:teacherOf ?Z .
				?X ub:takesCourse ?Z .
			}`,
		},
		{
			// LUBM Q13 (paper's Q3): students who received their
			// undergraduate degree from University0.
			Name: "Q3",
			Text: prefix + `SELECT ?X WHERE {
				?X rdf:type ub:GraduateStudent .
				?X ub:undergraduateDegreeFrom <http://www.University0.edu> .
			}`,
		},
		{
			// Paper's Q4: Q9 plus the advisor's doctoral university and its
			// address, which may live at a remote endpoint.
			Name: "Q4",
			Text: prefix + `SELECT ?X ?Y ?U ?A WHERE {
				?X rdf:type ub:GraduateStudent .
				?X ub:advisor ?Y .
				?Y ub:teacherOf ?Z .
				?X ub:takesCourse ?Z .
				?Y ub:doctoralDegreeFrom ?U .
				?U ub:address ?A .
			}`,
		},
	}
}
