package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"lusail/internal/core"
	"lusail/internal/rdf"
)

// pipelineLUBM is the federation the pipeline experiment runs on: sized so
// the wide query below materializes tens of megabytes of rows, the regime
// where streamed and materialized execution separate.
func pipelineLUBM(opts ExpOptions) LUBMConfig {
	cfg := LUBMConfig{Universities: 4, DeptsPerUniv: 10, ProfsPerDept: 20,
		StudentsPerDept: 600, Seed: 1, RemoteDegreeRatio: 0.3}
	if opts.Scale > 1 {
		cfg.StudentsPerDept *= opts.Scale
	}
	return cfg
}

// pipelineQueries returns the workload: the paper's LUBM queries cover the
// pipeline shapes (hash joins, delayed bound joins), and "wide" is a
// low-selectivity join whose result is large enough that holding it in
// memory dominates the materialized arm's footprint.
func pipelineQueries() []Query {
	prefix := "PREFIX ub: <" + ubNS + ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
	qs := LUBMQueries()
	qs = append(qs, Query{
		Name: "wide",
		Text: prefix + `SELECT ?X ?N ?A ?Z WHERE {
			?X rdf:type ub:GraduateStudent .
			?X ub:name ?N .
			?X ub:address ?A .
			?X ub:takesCourse ?Z .
		}`,
	})
	return qs
}

// heapWatch samples runtime.ReadMemStats in the background and tracks the
// peak HeapAlloc seen while an arm runs.
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatch {
	w := &heapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak {
				w.peak = ms.HeapAlloc
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

// Peak stops sampling and returns the high-water HeapAlloc in bytes.
func (w *heapWatch) Peak() uint64 {
	close(w.stop)
	<-w.done
	return w.peak
}

// resultDigest is an order-insensitive multiset fingerprint: per-row
// canonical encodings hashed and folded with addition, so two arms agree
// exactly when they produced the same rows the same number of times.
type resultDigest struct {
	rows uint64
	sum  uint64
}

func (d *resultDigest) add(vars []string, row []rdf.Term) {
	parts := make([]string, 0, len(vars))
	for i, v := range vars {
		if i < len(row) && !row[i].IsZero() {
			parts = append(parts, v+"="+row[i].String())
		}
	}
	sort.Strings(parts)
	h := fnv.New64a()
	h.Write([]byte(strings.Join(parts, "\x1f")))
	d.rows++
	d.sum += h.Sum64()
}

// PipelineExperiment compares materialized execution (QueryString: the full
// result set is built in memory, rows available only at the end) against
// the streaming cursor (Select: rows consumed as the pipeline produces
// them, nothing retained) on one in-process LUBM federation. Per query and
// arm it reports time-to-first-row, total runtime, throughput, and the
// peak HeapAlloc sampled while the arm ran; the two arms' result multisets
// are asserted identical in-harness, so every number in the table describes
// executions that provably returned the same rows.
func PipelineExperiment(ctx context.Context, opts ExpOptions) (*Table, error) {
	fed, err := NewFed(GenerateLUBM(pipelineLUBM(opts)), InProcess())
	if err != nil {
		return nil, err
	}
	eng := fed.NewLusail(core.DefaultOptions())
	// Collect aggressively while measuring: with the default GOGC the peak
	// is dominated by transient garbage the collector hasn't reclaimed yet,
	// which both arms produce alike. A low target keeps the peak close to
	// live retained memory — the quantity the two arms actually differ in.
	prevGC := debug.SetGCPercent(20)
	defer debug.SetGCPercent(prevGC)
	t := &Table{
		Title:  "pipeline: streamed (cursor) vs materialized execution",
		Header: []string{"query", "rows", "first_row_mat", "first_row_stream", "total_mat", "total_stream", "stream_rows/s", "heap_mat_MiB", "heap_stream_MiB"},
		Notes: []string{
			"first_row_mat equals total_mat: a materialized result has no rows until it is complete",
			"heap is the arm's working set: high-water HeapAlloc sampled while the arm ran, minus the post-GC baseline (the resident federation data) measured just before it started",
			"row parity is asserted in-harness: both arms must return the same result multiset",
			"in-process endpoints share the process heap, so both columns include server-side evaluation churn (dominant for Q4); the streamed arm's saving is the client-side result set and join intermediates",
		},
	}

	// baseline returns HeapAlloc after a forced GC: the resident federation
	// data plus whatever the runtime retains, subtracted from each arm's
	// peak so the columns show the execution's own working set.
	baseline := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	delta := func(peak, base uint64) float64 {
		if peak < base {
			return 0
		}
		return float64(peak-base) / (1 << 20)
	}

	for _, q := range pipelineQueries() {
		// Materialized arm.
		matBase := baseline()
		matWatch := watchHeap()
		matStart := time.Now()
		res, _, err := eng.QueryString(ctx, q.Text)
		matTotal := time.Since(matStart)
		matPeak := matWatch.Peak()
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: materialized: %w", q.Name, err)
		}
		var matDig resultDigest
		for _, row := range res.Rows {
			matDig.add(res.Vars, row)
		}
		res = nil

		// Streamed arm: consume and fold, retain nothing.
		strBase := baseline()
		var streamDig resultDigest
		var firstRow time.Duration
		strWatch := watchHeap()
		strStart := time.Now()
		rows, err := eng.Select(ctx, q.Text)
		if err != nil {
			strWatch.Peak()
			return nil, fmt.Errorf("pipeline %s: select: %w", q.Name, err)
		}
		for rows.Next() {
			if streamDig.rows == 0 {
				firstRow = time.Since(strStart)
			}
			streamDig.add(rows.Vars(), rows.Row())
		}
		err = rows.Err()
		if cerr := rows.Close(); err == nil {
			err = cerr
		}
		strTotal := time.Since(strStart)
		strPeak := strWatch.Peak()
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: cursor: %w", q.Name, err)
		}

		if matDig != streamDig {
			return nil, fmt.Errorf("pipeline %s: result mismatch: materialized %d rows (digest %x), streamed %d rows (digest %x)",
				q.Name, matDig.rows, matDig.sum, streamDig.rows, streamDig.sum)
		}
		rowsPerSec := "-"
		if strTotal > 0 {
			rowsPerSec = fmt.Sprintf("%.0f", float64(streamDig.rows)/strTotal.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			q.Name,
			fmt.Sprintf("%d", matDig.rows),
			FormatDuration(matTotal),
			FormatDuration(firstRow),
			FormatDuration(matTotal),
			FormatDuration(strTotal),
			rowsPerSec,
			fmt.Sprintf("%.1f", delta(matPeak, matBase)),
			fmt.Sprintf("%.1f", delta(strPeak, strBase)),
		})
	}
	return t, nil
}
