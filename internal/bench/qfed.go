package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"lusail/internal/rdf"
)

// QFed namespaces: four real-world life-science datasets (DailyMed,
// Diseasome, DrugBank, Sider) with cross-dataset links, mirrored here
// synthetically with the benchmark's challenging property: all four
// endpoints interlink on drugs.
const (
	dailymedNS  = "http://dailymed.bio2rdf.org/ns/"
	diseasomeNS = "http://diseasome.bio2rdf.org/ns/"
	drugbankNS  = "http://drugbank.bio2rdf.org/ns/"
	siderNS     = "http://sider.bio2rdf.org/ns/"
)

// QFedConfig sizes the synthetic QFed federation.
type QFedConfig struct {
	Drugs    int // drugs in DrugBank; other datasets scale with this
	Diseases int
	Seed     int64
	// BigLiteralBytes is the size of DailyMed's full-text descriptions,
	// the "big literal" object of the C2P2B* queries.
	BigLiteralBytes int
}

// DefaultQFed returns the standard scale.
func DefaultQFed() QFedConfig {
	return QFedConfig{Drugs: 120, Diseases: 60, Seed: 7, BigLiteralBytes: 2048}
}

// GenerateQFed produces the four QFed datasets.
func GenerateQFed(cfg QFedConfig) []Dataset {
	if cfg.Drugs <= 0 {
		cfg.Drugs = 50
	}
	if cfg.Diseases <= 0 {
		cfg.Diseases = cfg.Drugs / 2
	}
	if cfg.BigLiteralBytes <= 0 {
		cfg.BigLiteralBytes = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	typ := rdf.NewIRI(rdf.RDFType)
	label := rdf.NewIRI(rdf.RDFSLabel)

	dbDrug := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sdrugs/DB%04d", drugbankNS, i)) }

	// DrugBank: the hub dataset.
	var drugbank []rdf.Triple
	for i := 0; i < cfg.Drugs; i++ {
		d := dbDrug(i)
		drugbank = append(drugbank,
			rdf.Triple{S: d, P: typ, O: rdf.NewIRI(drugbankNS + "Drug")},
			rdf.Triple{S: d, P: label, O: rdf.NewLiteral(fmt.Sprintf("drug-%04d", i))},
			rdf.Triple{S: d, P: rdf.NewIRI(drugbankNS + "category"), O: rdf.NewLiteral(fmt.Sprintf("category-%d", i%8))},
			rdf.Triple{S: d, P: rdf.NewIRI(drugbankNS + "molecularWeight"), O: rdf.NewInteger(int64(100 + rng.Intn(900)))},
		)
	}

	// DailyMed: ~80% of drugs have a DailyMed page with a big full-text
	// description and a genericDrug link back to DrugBank.
	var dailymed []rdf.Triple
	for i := 0; i < cfg.Drugs; i++ {
		if rng.Float64() > 0.8 {
			continue
		}
		dm := rdf.NewIRI(fmt.Sprintf("%sdrugs/DM%04d", dailymedNS, i))
		dailymed = append(dailymed,
			rdf.Triple{S: dm, P: typ, O: rdf.NewIRI(dailymedNS + "Drug")},
			rdf.Triple{S: dm, P: label, O: rdf.NewLiteral(fmt.Sprintf("dailymed drug-%04d", i))},
			rdf.Triple{S: dm, P: rdf.NewIRI(dailymedNS + "genericDrug"), O: dbDrug(i)},
			rdf.Triple{S: dm, P: rdf.NewIRI(dailymedNS + "fullText"), O: rdf.NewLiteral(bigLiteral(rng, i, cfg.BigLiteralBytes))},
		)
	}

	// Diseasome: diseases with possibleDrug links into DrugBank.
	var diseasome []rdf.Triple
	for i := 0; i < cfg.Diseases; i++ {
		ds := rdf.NewIRI(fmt.Sprintf("%sdiseases/DS%04d", diseasomeNS, i))
		diseasome = append(diseasome,
			rdf.Triple{S: ds, P: typ, O: rdf.NewIRI(diseasomeNS + "Disease")},
			rdf.Triple{S: ds, P: label, O: rdf.NewLiteral(fmt.Sprintf("disease-%04d", i))},
			rdf.Triple{S: ds, P: rdf.NewIRI(diseasomeNS + "class"), O: rdf.NewLiteral(fmt.Sprintf("class-%d", i%5))},
		)
		nDrugs := 1 + rng.Intn(3)
		for k := 0; k < nDrugs; k++ {
			diseasome = append(diseasome, rdf.Triple{
				S: ds,
				P: rdf.NewIRI(diseasomeNS + "possibleDrug"),
				O: dbDrug(rng.Intn(cfg.Drugs)),
			})
		}
	}

	// Sider: side effects linked to DrugBank drugs.
	var sider []rdf.Triple
	effects := []string{"headache", "nausea", "dizziness", "rash", "fatigue", "insomnia"}
	for i := 0; i < cfg.Drugs; i++ {
		if rng.Float64() > 0.7 {
			continue
		}
		se := rdf.NewIRI(fmt.Sprintf("%sdrugs/SE%04d", siderNS, i))
		sider = append(sider,
			rdf.Triple{S: se, P: typ, O: rdf.NewIRI(siderNS + "Drug")},
			rdf.Triple{S: se, P: rdf.NewIRI(siderNS + "sameAs"), O: dbDrug(i)},
			rdf.Triple{S: se, P: rdf.NewIRI(siderNS + "sideEffect"), O: rdf.NewLiteral(effects[rng.Intn(len(effects))])},
		)
	}

	return []Dataset{
		{Name: "DailyMed", Triples: dailymed},
		{Name: "Diseasome", Triples: diseasome},
		{Name: "DrugBank", Triples: drugbank},
		{Name: "Sider", Triples: sider},
	}
}

// bigLiteral builds a deterministic filler text of roughly n bytes.
func bigLiteral(rng *rand.Rand, id, n int) string {
	words := []string{"indication", "dosage", "warning", "clinical", "pharmacology", "adverse", "reaction", "tablet", "solution"}
	var b strings.Builder
	fmt.Fprintf(&b, "full prescribing information for drug-%04d. ", id)
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
		b.WriteByte(' ')
	}
	return b.String()
}

// QFedQueries returns the C2P2 query family: two classes (disease, drug)
// joined across two link predicates, in the paper's variants — base,
// Filter, Optional+Filter, Big literal, and combinations. The names match
// Figure 8.
func QFedQueries() []Query {
	prefix := `PREFIX dm: <` + dailymedNS + `>
PREFIX ds: <` + diseasomeNS + `>
PREFIX db: <` + drugbankNS + `>
PREFIX sider: <` + siderNS + `>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
`
	base := `?disease ds:possibleDrug ?drug .
		?drug rdfs:label ?name .
		?dmdrug dm:genericDrug ?drug .`
	bigPart := `?dmdrug dm:fullText ?text .`
	optPart := `OPTIONAL { ?sedrug sider:sameAs ?drug . ?sedrug sider:sideEffect ?effect }`
	filterPart := `FILTER CONTAINS(STR(?name), "drug-00")`

	mk := func(name string, parts ...string) Query {
		return Query{
			Name: name,
			Text: prefix + "SELECT * WHERE {\n" + strings.Join(parts, "\n") + "\n}",
		}
	}
	return []Query{
		mk("C2P2", base),
		mk("C2P2F", base, filterPart),
		mk("C2P2OF", base, optPart, filterPart),
		mk("C2P2B", base, bigPart),
		mk("C2P2BO", base, bigPart, optPart),
		mk("C2P2BF", base, bigPart, filterPart),
		mk("C2P2BOF", base, bigPart, optPart, filterPart),
	}
}
