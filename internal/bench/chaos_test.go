package bench

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// canonRows renders a result set as a sorted list of tab-joined rows, so two
// executions can be compared independent of row order (subquery arrival
// order is nondeterministic).
func canonRows(res *sparql.Results) []string {
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for j, t := range r {
			cells[j] = t.String()
		}
		rows = append(rows, strings.Join(cells, "\t"))
	}
	sort.Strings(rows)
	return rows
}

// TestDegradeMatchesHealthySubfederation is the partial-results correctness
// property: with one endpoint failing every request, Degrade mode must
// return exactly what a federation without that endpoint returns — the
// surviving endpoints' full contribution, nothing more, nothing less.
func TestDegradeMatchesHealthySubfederation(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(4))
	faulty := datasets[len(datasets)-1].Name

	fedFaulty, err := NewFedWithFaults(datasets, InProcess(), faulty, resilience.FaultSpec{ErrorRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	degOpts := core.DefaultOptions()
	degOpts.OnEndpointFailure = core.Degrade
	degEng, err := core.New(fedFaulty.Federation, degOpts)
	if err != nil {
		t.Fatal(err)
	}

	fedHealthy, err := NewFed(datasets[:len(datasets)-1], InProcess())
	if err != nil {
		t.Fatal(err)
	}
	refEng := core.MustNew(fedHealthy.Federation, core.DefaultOptions())

	for _, q := range LUBMQueries() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, prof, err := degEng.QueryString(ctx, q.Text)
		cancel()
		if err != nil {
			t.Fatalf("%s: degrade mode failed outright: %v", q.Name, err)
		}
		if !prof.Degraded() {
			t.Errorf("%s: profile not marked degraded despite a dead endpoint", q.Name)
		}
		sawFaulty := false
		for _, w := range prof.Warnings {
			if w.Endpoint == faulty {
				sawFaulty = true
			} else {
				t.Errorf("%s: warning blames healthy endpoint %s: %+v", q.Name, w.Endpoint, w)
			}
		}
		if !sawFaulty {
			t.Errorf("%s: no warning names the dead endpoint %s", q.Name, faulty)
		}

		ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
		want, _, err := refEng.QueryString(ctx, q.Text)
		cancel()
		if err != nil {
			t.Fatalf("%s: reference federation failed: %v", q.Name, err)
		}

		g, w := canonRows(got), canonRows(want)
		if len(g) != len(w) {
			t.Fatalf("%s: degraded answer has %d rows, healthy sub-federation %d", q.Name, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: row %d differs:\ndegraded: %s\nhealthy:  %s", q.Name, i, g[i], w[i])
			}
		}
	}
}

// TestFailFastSurfacesEndpointError is the other half of the contract: in
// the default mode a dead endpoint fails the query with a typed error
// naming it.
func TestFailFastSurfacesEndpointError(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(4))
	faulty := datasets[len(datasets)-1].Name
	fed, err := NewFedWithFaults(datasets, InProcess(), faulty, resilience.FaultSpec{ErrorRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustNew(fed.Federation, core.DefaultOptions())
	failed := 0
	for _, q := range LUBMQueries() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, _, err := eng.QueryString(ctx, q.Text)
		cancel()
		if err == nil {
			continue
		}
		failed++
		var epErr *client.EndpointError
		if !errors.As(err, &epErr) {
			t.Fatalf("%s: failure is not a typed EndpointError: %v", q.Name, err)
		}
		if epErr.Endpoint != faulty {
			t.Fatalf("%s: EndpointError blames %s, want %s", q.Name, epErr.Endpoint, faulty)
		}
		if !errors.Is(err, resilience.ErrInjected) {
			t.Fatalf("%s: EndpointError does not unwrap to the injected cause: %v", q.Name, err)
		}
	}
	if failed == 0 {
		t.Fatal("no query failed in fail-fast mode despite a dead endpoint")
	}
}

// TestBreakerOpensUnderSustainedFailures runs the query mix against a dead
// endpoint with breakers enabled: queries must still answer (Degrade), and
// after enough traffic the endpoint's breaker must be open so later queries
// skip it without issuing requests.
func TestBreakerOpensUnderSustainedFailures(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(4))
	faulty := datasets[len(datasets)-1].Name
	fed, err := NewFedWithFaults(datasets, InProcess(), faulty, resilience.FaultSpec{ErrorRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.OnEndpointFailure = core.Degrade
	opts.Resilience = resilience.Config{
		FailureThreshold: 0.5,
		Window:           10,
		MinSamples:       5,
		Cooldown:         time.Minute, // stays open for the whole test
	}
	eng, err := core.New(fed.Federation, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for _, q := range LUBMQueries() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, _, err := eng.QueryString(ctx, q.Text)
			cancel()
			if err != nil {
				t.Fatalf("pass %d %s: query failed despite Degrade+breaker: %v", pass, q.Name, err)
			}
		}
	}
	if st := eng.Resilience().State(faulty); st != resilience.Open {
		t.Errorf("breaker state for %s = %v, want Open after sustained failures", faulty, st)
	}
	for _, ds := range datasets[:len(datasets)-1] {
		if st := eng.Resilience().State(ds.Name); st != resilience.Closed {
			t.Errorf("breaker state for healthy %s = %v, want Closed", ds.Name, st)
		}
	}
}

// findFaulty walks an endpoint's wrapper chain to the chaos injector.
func findFaulty(ep client.Endpoint) *resilience.Faulty {
	for ep != nil {
		if f, ok := ep.(*resilience.Faulty); ok {
			return f
		}
		u, ok := ep.(interface{ Unwrap() client.Endpoint })
		if !ok {
			return nil
		}
		ep = u.Unwrap()
	}
	return nil
}

// TestBreakerRecoversAfterEndpointHeals closes the loop the open-breaker
// tests cannot: through the real engine path (pool gate, then Do/DoHedged
// at dispatch), a breaker tripped by a dead endpoint must — once the
// endpoint heals and the cooldown elapses — admit a half-open trial, see
// it succeed, and close, restoring the endpoint's contribution. This is
// the regression test for the gate/Do double-admission bug that wedged
// breakers in half-open forever, permanently excluding the endpoint.
func TestBreakerRecoversAfterEndpointHeals(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(4))
	faulty := datasets[len(datasets)-1].Name
	fed, err := NewFedWithFaults(datasets, InProcess(), faulty, resilience.FaultSpec{ErrorRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inj := findFaulty(fed.Federation.Get(faulty))
	if inj == nil {
		t.Fatal("fault injector not found in the endpoint wrapper chain")
	}

	const cooldown = 50 * time.Millisecond
	opts := core.DefaultOptions()
	opts.OnEndpointFailure = core.Degrade
	opts.Resilience = resilience.Config{
		FailureThreshold: 0.5,
		Window:           10,
		MinSamples:       5,
		Cooldown:         cooldown,
	}
	eng, err := core.New(fed.Federation, opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := LUBMQueries()
	run := func(stage string) {
		for _, q := range queries {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, _, err := eng.QueryString(ctx, q.Text)
			cancel()
			if err != nil {
				t.Fatalf("%s: %s: Degrade mode failed: %v", stage, q.Name, err)
			}
		}
	}

	// Drive traffic until the dead endpoint's breaker trips. With a short
	// cooldown the breaker oscillates open → half-open → open, so any
	// non-Closed observation proves the trip.
	tripped := false
	for pass := 0; pass < 5 && !tripped; pass++ {
		run("trip")
		tripped = eng.Resilience().State(faulty) != resilience.Closed
	}
	if !tripped {
		t.Fatalf("breaker for %s never left Closed against a dead endpoint", faulty)
	}

	// Heal the endpoint, wait out the cooldown, and drive more traffic: a
	// half-open trial must run, succeed, and close the breaker.
	inj.SetSpec(resilience.FaultSpec{})
	deadline := time.Now().Add(15 * time.Second)
	for eng.Resilience().State(faulty) != resilience.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker for %s stuck in %v long after the endpoint recovered",
				faulty, eng.Resilience().State(faulty))
		}
		time.Sleep(2 * cooldown)
		run("recover")
	}

	// With the breaker closed the healed endpoint contributes again: answers
	// match an always-healthy 4-endpoint federation, with no warnings.
	healthyFed, err := NewFed(datasets, InProcess())
	if err != nil {
		t.Fatal(err)
	}
	refEng := core.MustNew(healthyFed.Federation, core.DefaultOptions())
	for _, q := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		got, prof, err := eng.QueryString(ctx, q.Text)
		cancel()
		if err != nil {
			t.Fatalf("%s after recovery: %v", q.Name, err)
		}
		if len(prof.Warnings) != 0 {
			t.Fatalf("%s after recovery still degraded: %+v", q.Name, prof.Warnings)
		}
		ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
		want, _, err := refEng.QueryString(ctx, q.Text)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		g, w := canonRows(got), canonRows(want)
		if len(g) != len(w) {
			t.Fatalf("%s after recovery: %d rows, healthy federation has %d", q.Name, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s after recovery: row %d differs:\nrecovered: %s\nhealthy:   %s", q.Name, i, g[i], w[i])
			}
		}
	}
}

// TestDegradeAtPartialErrorRate is the acceptance scenario: one of four
// LUBM endpoints erroring on 30% of its requests. Degrade mode must answer
// every query, every answer must contain at least the healthy
// sub-federation's rows (contributions from the three clean endpoints are
// never lost), failed contributions must surface as warnings, and with a
// threshold below the error rate the breaker must open under sustained
// traffic.
func TestDegradeAtPartialErrorRate(t *testing.T) {
	datasets := GenerateLUBM(DefaultLUBM(4))
	faulty := datasets[len(datasets)-1].Name
	fed, err := NewFedWithFaults(datasets, InProcess(), faulty, resilience.FaultSpec{ErrorRate: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.OnEndpointFailure = core.Degrade
	opts.Resilience = resilience.Config{
		FailureThreshold: 0.2,
		Window:           10,
		MinSamples:       5,
		Cooldown:         time.Minute,
	}
	eng, err := core.New(fed.Federation, opts)
	if err != nil {
		t.Fatal(err)
	}

	fedHealthy, err := NewFed(datasets[:len(datasets)-1], InProcess())
	if err != nil {
		t.Fatal(err)
	}
	refEng := core.MustNew(fedHealthy.Federation, core.DefaultOptions())
	healthyRows := map[string]map[string]bool{}
	for _, q := range LUBMQueries() {
		res, _, err := refEng.QueryString(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		rows := map[string]bool{}
		for _, r := range canonRows(res) {
			rows[r] = true
		}
		healthyRows[q.Name] = rows
	}

	warned := false
	for pass := 0; pass < 5; pass++ {
		for _, q := range LUBMQueries() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, prof, err := eng.QueryString(ctx, q.Text)
			cancel()
			if err != nil {
				t.Fatalf("pass %d %s: Degrade mode failed: %v", pass, q.Name, err)
			}
			for _, w := range prof.Warnings {
				if w.Endpoint == faulty {
					warned = true
				}
			}
			got := map[string]bool{}
			for _, r := range canonRows(res) {
				got[r] = true
			}
			for r := range healthyRows[q.Name] {
				if !got[r] {
					t.Fatalf("pass %d %s: healthy endpoints' row lost under degradation: %s", pass, q.Name, r)
				}
			}
		}
	}
	if !warned {
		t.Error("no Profile warning named the faulty endpoint across 5 passes at 30% errors")
	}
	if st := eng.Resilience().State(faulty); st != resilience.Open {
		t.Errorf("breaker state for %s = %v, want Open (threshold 0.2 < error rate 0.3)", faulty, st)
	}
}
