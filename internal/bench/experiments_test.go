package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fastExp keeps experiment smoke tests quick.
func fastExp() ExpOptions {
	return ExpOptions{Scale: 1, Timeout: 30 * time.Second, Repeats: 1}
}

func assertNoLusailFailures(t *testing.T, tb *Table) {
	t.Helper()
	lusailCols := []int{}
	for i, h := range tb.Header {
		if h == string(Lusail) || h == "Lusail" || h == "LADE+SAPE" {
			lusailCols = append(lusailCols, i)
		}
	}
	for _, row := range tb.Rows {
		for _, c := range lusailCols {
			if c < len(row) && (row[c] == "ERR" || row[c] == "TO") {
				t.Errorf("table %q: Lusail failed on row %v", tb.Title, row)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	tb := Table1Datasets(fastExp())
	if len(tb.Rows) < 15 {
		t.Errorf("Table 1 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "LargeRDFBench") {
		t.Error("Table 1 missing LargeRDFBench")
	}
}

func TestFig8Smoke(t *testing.T) {
	tb, err := Fig8QFed(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Errorf("Fig8 rows = %d, want 7 QFed queries", len(tb.Rows))
	}
	assertNoLusailFailures(t, tb)
}

func TestFig9Smoke(t *testing.T) {
	tables, err := Fig9LUBM(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Fig9 tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 4 {
			t.Errorf("%s rows = %d, want 4", tb.Title, len(tb.Rows))
		}
		assertNoLusailFailures(t, tb)
	}
}

func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tables, err := Fig10LargeRDFBench(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig10 tables = %d", len(tables))
	}
	wantRows := []int{14, 10, 8}
	for i, tb := range tables {
		if len(tb.Rows) != wantRows[i] {
			t.Errorf("%s rows = %d, want %d", tb.Title, len(tb.Rows), wantRows[i])
		}
		assertNoLusailFailures(t, tb)
	}
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tables, err := Fig11Geo(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig11 tables = %d", len(tables))
	}
	for _, tb := range tables {
		assertNoLusailFailures(t, tb)
	}
}

func TestFig12aSmoke(t *testing.T) {
	tb, err := Fig12aProfile(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("Fig12a rows = %d", len(tb.Rows))
	}
}

func TestFig12bcSmoke(t *testing.T) {
	tables, err := Fig12bcScaling(context.Background(), []int{2, 4}, fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Fig12bc tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 2 {
			t.Errorf("%s rows = %d", tb.Title, len(tb.Rows))
		}
	}
}

func TestFig13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tb, err := Fig13Thresholds(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("Fig13 rows = %d", len(tb.Rows))
	}
}

func TestFig14Smoke(t *testing.T) {
	tb, err := Fig14Ablation(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("Fig14 rows = %d, want 6", len(tb.Rows))
	}
	assertNoLusailFailures(t, tb)
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tb, err := Table2RealEndpoints(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 { // 5 Bio2RDF + 6 LRB
		t.Errorf("Table2 rows = %d, want 11", len(tb.Rows))
	}
	assertNoLusailFailures(t, tb)
}

func TestQErrorSmoke(t *testing.T) {
	tb, median, err := QErrorExperiment(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Errorf("q-error rows = %d", len(tb.Rows))
	}
	if median < 1 {
		t.Errorf("median q-error %v < 1 is impossible", median)
	}
	// The paper reports 1.09; our synthetic data should stay in the same
	// ballpark (well under an order of magnitude).
	if median > 10 {
		t.Errorf("median q-error %v implausibly large", median)
	}
}

func TestPreprocessingCostSmoke(t *testing.T) {
	tb, err := PreprocessingCost(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("preprocessing rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "none" || row[2] != "none" {
			t.Errorf("index-free systems must have no preprocessing: %v", row)
		}
	}
}

func TestBlockSizeAblationSmoke(t *testing.T) {
	tb, err := BlockSizeAblation(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("block-size rows = %d", len(tb.Rows))
	}
}

func TestPoolSizeAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	tb, err := PoolSizeAblation(context.Background(), fastExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("pool-size rows = %d", len(tb.Rows))
	}
}
