package server

import (
	"container/list"
	"sync"
	"time"

	"lusail/internal/core"
	"lusail/internal/obs"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// ResultCache memoizes complete query results keyed on the query text,
// invalidated by planning epoch and a TTL. Only complete, non-degraded
// results within the row bound are stored: a degraded answer reflects a
// transient endpoint failure, not the federation's data.
type ResultCache struct {
	max     int
	maxRows int
	ttl     time.Duration
	now     func() time.Time

	mu      sync.Mutex
	entries map[string]*resultEntry
	lru     *list.List

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

type resultEntry struct {
	query    string
	res      *sparql.Results
	epoch    core.Epoch
	storedAt time.Time
	elem     *list.Element
}

// NewResultCache returns a result cache holding at most max results
// (<=0: 128), each of at most maxRows rows (<=0: 10000), valid for ttl
// (<=0: 30s).
func NewResultCache(max, maxRows int, ttl time.Duration) *ResultCache {
	if max <= 0 {
		max = 128
	}
	if maxRows <= 0 {
		maxRows = 10000
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	reg := obs.Default()
	return &ResultCache{
		max:       max,
		maxRows:   maxRows,
		ttl:       ttl,
		now:       time.Now,
		entries:   map[string]*resultEntry{},
		lru:       list.New(),
		hits:      reg.Counter(obs.MetricResultCacheHits, "queries answered from the result cache"),
		misses:    reg.Counter(obs.MetricResultCacheMisses, "queries not answered from the result cache"),
		evictions: reg.Counter(obs.MetricResultCacheEvictions, "results evicted (LRU, TTL, or epoch change)"),
		size:      reg.Gauge(obs.MetricResultCacheSize, "results currently cached"),
	}
}

// Get returns the cached result for the query if it was stored under the
// same epoch and is within TTL.
func (c *ResultCache) Get(query string, epoch core.Epoch) (*sparql.Results, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	if e.epoch != epoch || c.now().Sub(e.storedAt) > c.ttl {
		c.evictions.Inc()
		c.removeLocked(e)
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits.Inc()
	return e.res, true
}

// Put stores a completed result under the epoch it was computed in.
// Degraded or oversized results are ignored.
func (c *ResultCache) Put(query string, epoch core.Epoch, res *sparql.Results, warnings []resilience.Warning) {
	if res == nil || len(warnings) > 0 || res.Len() > c.maxRows {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[query]; ok {
		c.removeLocked(e)
	}
	e := &resultEntry{query: query, res: res, epoch: epoch, storedAt: c.now()}
	e.elem = c.lru.PushFront(e)
	c.entries[query] = e
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		if oldest == nil || oldest == e.elem {
			break
		}
		c.evictions.Inc()
		c.removeLocked(oldest.Value.(*resultEntry))
	}
	c.size.Set(int64(c.lru.Len()))
}

func (c *ResultCache) removeLocked(e *resultEntry) {
	if cur, ok := c.entries[e.query]; ok && cur == e {
		delete(c.entries, e.query)
		c.lru.Remove(e.elem)
		c.size.Set(int64(c.lru.Len()))
	}
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
