package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/resilience"
)

// TenantConfig is one tenant's admission quota.
type TenantConfig struct {
	// RatePerSec refills the tenant's token bucket (queries per second);
	// <=0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst caps the bucket (max queries admitted back-to-back); <=0
	// defaults to max(1, RatePerSec).
	Burst int `json:"burst"`
	// MaxConcurrent bounds the tenant's in-flight queries above the shared
	// ERH pool; <=0 defaults to 4.
	MaxConcurrent int `json:"max_concurrent"`
	// MaxQueue bounds how many over-concurrency queries may wait for a
	// slot; beyond it requests are shed immediately with 503. <0 disables
	// queueing (shed as soon as concurrency is exhausted); 0 defaults to
	// 2×MaxConcurrent.
	MaxQueue int `json:"max_queue"`
}

// withDefaults resolves the zero-value conventions.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Burst <= 0 {
		c.Burst = 1
		if c.RatePerSec > 1 {
			c.Burst = int(c.RatePerSec)
		}
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// Rejection is a structured admission refusal: the HTTP status to return
// and a resilience.Warning describing the decision, so over-quota clients
// get the same machine-readable shape as degraded results instead of a
// bare error string.
type Rejection struct {
	// Status is 429 (over rate quota) or 503 (shed under load).
	Status int `json:"status"`
	// Tenant is the refused tenant.
	Tenant string `json:"tenant"`
	// RetryAfter suggests when to retry (0 = unknown).
	RetryAfter time.Duration `json:"retry_after_ns"`
	// Warning is the structured record of the refusal.
	Warning resilience.Warning `json:"warning"`
}

// Error implements error.
func (r *Rejection) Error() string {
	return fmt.Sprintf("admission: tenant %s: %s", r.Tenant, r.Warning.Message)
}

// Admission is the per-tenant admission controller: a token bucket for
// request rate and a bounded concurrency gate with a FIFO wait queue,
// layered above the engine's shared ERH pool. Over-rate requests are
// refused with 429; requests arriving when both the tenant's concurrency
// slots and its wait queue are full are shed with 503.
type Admission struct {
	def TenantConfig

	mu      sync.Mutex
	tenants map[string]*tenant
	now     func() time.Time

	throttled *obs.Counter
	shed      *obs.Counter
	inFlight  *obs.Gauge
	queued    *obs.Gauge
	waitSecs  *obs.Histogram
}

// tenant is the runtime state of one tenant, guarded by Admission.mu.
type tenant struct {
	name     string
	cfg      TenantConfig
	tokens   float64
	last     time.Time
	inFlight int
	queue    []*waiter
}

// waiter is one request waiting for a concurrency slot. grant is buffered
// so the releaser can hand a slot over without blocking under the lock.
type waiter struct {
	grant chan struct{}
}

// NewAdmission returns an admission controller. def is applied to tenants
// without an explicit configuration; overrides maps tenant names to their
// quotas.
func NewAdmission(def TenantConfig, overrides map[string]TenantConfig) *Admission {
	reg := obs.Default()
	a := &Admission{
		def:       def.withDefaults(),
		tenants:   map[string]*tenant{},
		now:       time.Now,
		throttled: reg.Counter(obs.MetricAdmissionThrottled, "queries refused over the tenant rate quota (429)"),
		shed:      reg.Counter(obs.MetricAdmissionShed, "queries shed because the tenant queue was full (503)"),
		inFlight:  reg.Gauge(obs.MetricAdmissionInFlight, "admitted queries currently executing"),
		queued:    reg.Gauge(obs.MetricAdmissionQueued, "queries waiting for a tenant concurrency slot"),
		waitSecs:  reg.Histogram(obs.MetricAdmissionWaitSeconds, "time spent waiting for a tenant concurrency slot", obs.LatencyBuckets),
	}
	for name, cfg := range overrides {
		resolved := cfg.withDefaults()
		a.tenants[name] = &tenant{name: name, cfg: resolved, tokens: float64(resolved.Burst), last: a.now()}
	}
	return a
}

// setClock overrides the controller's clock (tests).
func (a *Admission) setClock(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
}

// getLocked returns (creating if needed) the tenant's state.
func (a *Admission) getLocked(name string) *tenant {
	t, ok := a.tenants[name]
	if !ok {
		t = &tenant{name: name, cfg: a.def, tokens: float64(a.def.Burst), last: a.now()}
		a.tenants[name] = t
	}
	return t
}

// refillLocked advances the tenant's token bucket to now.
func (t *tenant) refillLocked(now time.Time) {
	if t.cfg.RatePerSec <= 0 {
		return
	}
	elapsed := now.Sub(t.last).Seconds()
	if elapsed > 0 {
		t.tokens += elapsed * t.cfg.RatePerSec
		if max := float64(t.cfg.Burst); t.tokens > max {
			t.tokens = max
		}
		t.last = now
	}
}

// Admit charges one query against the tenant's quota and acquires a
// concurrency slot, waiting (bounded by the tenant's queue depth and ctx)
// when the tenant is at its concurrency limit. On success it returns a
// release function the caller must invoke exactly once when the query
// finishes. On refusal it returns a *Rejection carrying the HTTP status and
// the structured warning body.
func (a *Admission) Admit(ctx context.Context, tenantName string) (func(), error) {
	start := time.Now()
	a.mu.Lock()
	t := a.getLocked(tenantName)
	now := a.now()
	t.refillLocked(now)

	// Rate quota first: a request over the rate never occupies queue space.
	if t.cfg.RatePerSec > 0 {
		if t.tokens < 1 {
			deficit := 1 - t.tokens
			retry := time.Duration(deficit / t.cfg.RatePerSec * float64(time.Second))
			a.mu.Unlock()
			a.throttled.Inc()
			return nil, &Rejection{
				Status:     http.StatusTooManyRequests,
				Tenant:     tenantName,
				RetryAfter: retry,
				Warning: resilience.Warning{
					Phase:   client.PhaseAdmission,
					Message: fmt.Sprintf("tenant %q over rate quota (%.3g queries/s, burst %d)", tenantName, t.cfg.RatePerSec, t.cfg.Burst),
				},
			}
		}
		t.tokens--
	}

	// Concurrency gate: take a free slot, or wait in the bounded queue.
	if t.inFlight < t.cfg.MaxConcurrent {
		t.inFlight++
		a.mu.Unlock()
		a.inFlight.Add(1)
		return a.releaseFunc(t), nil
	}
	if len(t.queue) >= t.cfg.MaxQueue {
		depth := len(t.queue)
		a.mu.Unlock()
		a.shed.Inc()
		return nil, &Rejection{
			Status: http.StatusServiceUnavailable,
			Tenant: tenantName,
			Warning: resilience.Warning{
				Phase: client.PhaseAdmission,
				Message: fmt.Sprintf("tenant %q shed under load (%d in flight, queue %d/%d full)",
					tenantName, t.cfg.MaxConcurrent, depth, t.cfg.MaxQueue),
			},
		}
	}
	w := &waiter{grant: make(chan struct{}, 1)}
	t.queue = append(t.queue, w)
	a.mu.Unlock()
	a.queued.Add(1)

	select {
	case <-w.grant:
		// A finishing query handed its slot to us: inFlight was never
		// decremented, so no re-check is needed.
		a.queued.Add(-1)
		a.inFlight.Add(1)
		a.waitSecs.Observe(time.Since(start).Seconds())
		return a.releaseFunc(t), nil
	case <-ctx.Done():
		a.mu.Lock()
		removed := false
		for i, q := range t.queue {
			if q == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				removed = true
				break
			}
		}
		a.mu.Unlock()
		a.queued.Add(-1)
		if !removed {
			// A grant raced with the cancellation: the slot is (or is about
			// to be) in our buffered channel. Take it and pass it on.
			<-w.grant
			a.release(t)
		}
		return nil, ctx.Err()
	}
}

// releaseFunc wraps release for one admitted query, tolerating double calls.
func (a *Admission) releaseFunc(t *tenant) func() {
	var once sync.Once
	return func() { once.Do(func() { a.inFlight.Add(-1); a.release(t) }) }
}

// release frees one concurrency slot: the first queued waiter inherits it,
// otherwise the tenant's in-flight count drops. The grant send happens
// outside the lock (the channel is buffered, and each waiter is granted at
// most once because it is popped first).
func (a *Admission) release(t *tenant) {
	a.mu.Lock()
	if len(t.queue) > 0 {
		w := t.queue[0]
		t.queue = t.queue[1:]
		a.mu.Unlock()
		w.grant <- struct{}{}
		return
	}
	t.inFlight--
	a.mu.Unlock()
}

// TenantSnapshot is one tenant's state for the admin inspection route.
type TenantSnapshot struct {
	Name     string       `json:"name"`
	Config   TenantConfig `json:"config"`
	Tokens   float64      `json:"tokens"`
	InFlight int          `json:"in_flight"`
	Queued   int          `json:"queued"`
}

// Snapshot returns per-tenant state sorted by name.
func (a *Admission) Snapshot() []TenantSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(a.tenants))
	for _, t := range a.tenants {
		t.refillLocked(a.now())
		out = append(out, TenantSnapshot{
			Name:     t.name,
			Config:   t.cfg,
			Tokens:   t.tokens,
			InFlight: t.inFlight,
			Queued:   len(t.queue),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
