package server

import (
	"fmt"
	"testing"
	"time"

	"lusail/internal/core"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

func testResults(rows int) *sparql.Results {
	res := sparql.NewResults([]string{"s"})
	for i := 0; i < rows; i++ {
		res.Rows = append(res.Rows, []rdf.Term{rdf.NewIRI(fmt.Sprintf("http://x/%d", i))})
	}
	return res
}

func TestResultCacheEpochAndTTL(t *testing.T) {
	c := NewResultCache(4, 100, time.Minute)
	now := time.Now()
	c.now = func() time.Time { return now }
	ep := core.Epoch{Federation: 1}
	res := testResults(3)

	c.Put("q", ep, res, nil)
	if got, ok := c.Get("q", ep); !ok || got.Len() != 3 {
		t.Fatalf("fresh get: ok=%v len=%v, want hit with 3 rows", ok, got)
	}

	// A different epoch means the plan inputs changed: miss and evict.
	if _, ok := c.Get("q", core.Epoch{Federation: 1, Catalog: 1}); ok {
		t.Fatal("epoch-mismatched get: want miss")
	}
	if c.Len() != 0 {
		t.Fatalf("after epoch eviction: len=%d, want 0", c.Len())
	}

	c.Put("q", ep, res, nil)
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("q", ep); ok {
		t.Fatal("expired get: want miss")
	}
}

func TestResultCacheRefusals(t *testing.T) {
	c := NewResultCache(4, 10, time.Minute)
	ep := core.Epoch{}

	c.Put("degraded", ep, testResults(1), []resilience.Warning{{Message: "endpoint down"}})
	if _, ok := c.Get("degraded", ep); ok {
		t.Error("degraded result must not be cached")
	}
	c.Put("huge", ep, testResults(11), nil)
	if _, ok := c.Get("huge", ep); ok {
		t.Error("oversized result must not be cached")
	}
	c.Put("nil", ep, nil, nil)
	if _, ok := c.Get("nil", ep); ok {
		t.Error("nil result must not be cached")
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	c := NewResultCache(2, 100, time.Minute)
	ep := core.Epoch{}
	c.Put("a", ep, testResults(1), nil)
	c.Put("b", ep, testResults(1), nil)
	c.Put("c", ep, testResults(1), nil)
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	if _, ok := c.Get("a", ep); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := c.Get("c", ep); !ok {
		t.Error("newest entry should be cached")
	}
}
