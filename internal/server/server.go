package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"lusail/internal/client"
	"lusail/internal/core"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
	"lusail/internal/sparql/sema"
)

// Config configures a lusaild server around an existing engine.
type Config struct {
	// Engine is the federated engine to expose (required).
	Engine *core.Engine

	// PlanCacheSize bounds the plan cache (<=0: 256). DisablePlanCache
	// plans every request from scratch (the bench's cache-off arm).
	PlanCacheSize    int
	DisablePlanCache bool

	// ResultCacheSize / ResultCacheMaxRows / ResultCacheTTL bound the
	// result cache (defaults 128 entries × 10000 rows × 30s).
	// DisableResultCache turns it off.
	ResultCacheSize    int
	ResultCacheMaxRows int
	ResultCacheTTL     time.Duration
	DisableResultCache bool

	// DefaultTenant is the admission quota applied to tenants without an
	// entry in Tenants. The zero value resolves to 4 concurrent queries, a
	// queue of 8, and no rate limit.
	DefaultTenant TenantConfig
	// Tenants maps tenant names to explicit quotas.
	Tenants map[string]TenantConfig
	// APIKeys maps API keys (X-API-Key header or Authorization: Bearer) to
	// tenant names, so keys can rotate without renaming tenants.
	APIKeys map[string]string

	// QueryTimeout bounds one query's execution (<=0: 5 minutes). The
	// client disconnecting cancels earlier.
	QueryTimeout time.Duration

	// Logf receives request-level log lines (default: log.Printf).
	Logf func(format string, args ...any)
}

// Server is a running lusaild instance: the SPARQL protocol on /sparql,
// health on /healthz, Prometheus text on /metrics, cache/tenant inspection
// under /admin/, and pprof under /debug/pprof/.
type Server struct {
	URL string // http://host:port/sparql

	eng     *core.Engine
	plans   *PlanCache // nil when disabled
	results *ResultCache
	adm     *Admission
	cfg     Config
	mux     *http.ServeMux
	srv     *http.Server
	ln      net.Listener

	queries     *obs.Counter
	errs        *obs.Counter
	querySecs   *obs.Histogram
	rows        *obs.Counter
	disconnects *obs.Counter
}

// New assembles a server (without listening); Handler exposes its mux for
// tests and embedding. Start is the listen-and-serve convenience.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	reg := obs.Default()
	s := &Server{
		eng:         cfg.Engine,
		adm:         NewAdmission(cfg.DefaultTenant, cfg.Tenants),
		cfg:         cfg,
		queries:     reg.Counter(obs.MetricServerQueries, "queries received by lusaild"),
		errs:        reg.Counter(obs.MetricServerErrors, "queries rejected or failed in lusaild"),
		querySecs:   reg.Histogram(obs.MetricServerQuerySeconds, "end-to-end lusaild query latency", obs.LatencyBuckets),
		rows:        reg.Counter(obs.MetricServerRowsStreamed, "result rows streamed to clients"),
		disconnects: reg.Counter(obs.MetricServerDisconnects, "queries cancelled by client disconnect"),
	}
	if !cfg.DisablePlanCache {
		s.plans = NewPlanCache(cfg.Engine, cfg.PlanCacheSize)
	}
	if !cfg.DisableResultCache {
		s.results = NewResultCache(cfg.ResultCacheSize, cfg.ResultCacheMaxRows, cfg.ResultCacheTTL)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleSPARQL)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", obs.Default().MetricsHandler())
	mux.Handle("/debug/federation", obs.Default().DebugHandler())
	mux.HandleFunc("/admin/plancache", s.handleAdminPlanCache)
	mux.HandleFunc("/admin/tenants", s.handleAdminTenants)
	// pprof registers on DefaultServeMux only via its init; a custom mux
	// needs the handlers wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s.handleSPARQL(w, r)
	})
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// PlanCache returns the server's plan cache (nil when disabled).
func (s *Server) PlanCache() *PlanCache { return s.plans }

// Admission returns the server's admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// Start listens on addr (e.g. ":8094" or "127.0.0.1:0") and serves until
// Shutdown or Close. It returns once the listener is ready.
func Start(addr string, cfg Config) (*Server, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.URL = fmt.Sprintf("http://%s/sparql", ln.Addr().String())
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logf("lusaild: serve: %v", err)
		}
	}()
	return s, nil
}

// Shutdown drains the server gracefully: the listener closes immediately,
// in-flight queries run to completion (bounded by ctx), then the server
// exits. This is the SIGTERM path of cmd/lusaild.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Close shuts the server down immediately, abandoning in-flight requests.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// tenantOf resolves the request's tenant: an API key (X-API-Key or
// Authorization: Bearer) mapped through Config.APIKeys wins, then the
// X-Lusail-Tenant header, then "anonymous".
func (s *Server) tenantOf(r *http.Request) string {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key != "" {
		if tenant, ok := s.cfg.APIKeys[key]; ok {
			return tenant
		}
	}
	if t := r.Header.Get("X-Lusail-Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// rejectionBody is the structured 429/503 response payload.
type rejectionBody struct {
	Error      string               `json:"error"`
	Tenant     string               `json:"tenant"`
	RetryAfter float64              `json:"retry_after_seconds,omitempty"`
	Warnings   []resilience.Warning `json:"warnings"`
}

// writeRejection renders an admission refusal as structured JSON with the
// appropriate status and Retry-After header.
func (s *Server) writeRejection(w http.ResponseWriter, rej *Rejection) {
	s.errs.Inc()
	w.Header().Set("Content-Type", "application/json")
	retry := rej.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds()+1)))
	w.WriteHeader(rej.Status)
	body := rejectionBody{
		Error:      rej.Warning.Message,
		Tenant:     rej.Tenant,
		RetryAfter: retry.Seconds(),
		Warnings:   []resilience.Warning{rej.Warning},
	}
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.cfg.Logf("lusaild: writing rejection: %v", err)
	}
}

// semaRejectionBody is the structured 400 payload for queries the static
// analyzer rejects: one entry per error-tier finding, with check name,
// severity, and source position.
type semaRejectionBody struct {
	Error       string                  `json:"error"`
	Diagnostics []sparql.SemaDiagnostic `json:"diagnostics"`
}

// writeSemaRejection answers an error-tier sema finding with a structured
// 400. The query never reached admission or the engine.
func (s *Server) writeSemaRejection(w http.ResponseWriter, semaErr *sparql.SemaError) {
	s.errs.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	body := semaRejectionBody{
		Error:       semaErr.Error(),
		Diagnostics: semaErr.Diagnostics,
	}
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.cfg.Logf("lusaild: writing sema rejection: %v", err)
	}
}

// endpointWarnings filters a profile's warnings down to genuine endpoint
// degradations: sema findings describe the query text, so they neither mark
// an answer incomplete nor block result caching.
func endpointWarnings(ws []resilience.Warning) []resilience.Warning {
	var out []resilience.Warning
	for _, w := range ws {
		if w.Phase != client.PhaseSema {
			out = append(out, w)
		}
	}
	return out
}

// fail rejects a request with a plain error, counting it.
func (s *Server) fail(w http.ResponseWriter, msg string, code int) {
	s.errs.Inc()
	http.Error(w, msg, code)
}

// extractQuery implements the SPARQL protocol's three request forms.
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
			if err != nil {
				return "", fmt.Errorf("reading query body: %w", err)
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", fmt.Errorf("parsing form: %w", err)
		}
		return r.PostForm.Get("query"), nil
	}
	return "", fmt.Errorf("method %s not allowed", r.Method)
}

// wantsJSON reports whether content negotiation selects the (streamable)
// JSON results format.
func wantsJSON(accept string) bool {
	switch {
	case strings.Contains(accept, "text/csv"),
		strings.Contains(accept, "application/sparql-results+xml"),
		strings.Contains(accept, "application/xml"),
		strings.Contains(accept, "text/tab-separated-values"):
		return false
	}
	return true
}

// handleSPARQL is the SPARQL protocol endpoint.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	s.queries.Inc()
	start := time.Now()
	defer func() { s.querySecs.Observe(time.Since(start).Seconds()) }()

	query, err := extractQuery(r)
	if err != nil {
		s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(query) == "" {
		s.fail(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	parsed, err := sparql.Parse(query)
	if err != nil {
		s.fail(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Static analysis runs before admission: a query the engine would
	// reject anyway (error-tier sema findings, e.g. a FILTER over a
	// variable its group never binds) is answered with a structured 400
	// without spending an admission slot or any endpoint traffic. The vet
	// sees the original source text, so diagnostics carry line/column
	// positions; warnings do not block and reach the client via headers.
	var semaWarnings []sparql.SemaDiagnostic
	if s.eng.SemaChecksEnabled() {
		semaErr, rest := sema.Vet(parsed, query)
		if semaErr != nil {
			s.writeSemaRejection(w, semaErr)
			return
		}
		semaWarnings = rest
	}

	// Admission: quota and concurrency are charged before any engine work.
	tenant := s.tenantOf(r)
	release, err := s.adm.Admit(r.Context(), tenant)
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			s.writeRejection(w, rej)
			return
		}
		// The client went away while queued.
		s.disconnects.Inc()
		s.errs.Inc()
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	if parsed.Form == sparql.ConstructForm {
		s.handleConstruct(ctx, w, parsed)
		return
	}

	// The sema canonical form is the cache key: it normalizes whitespace,
	// prefix declarations, commutative pattern order, and internal variable
	// names, so every spelling of one query shares one plan and one cached
	// result. The canonical text is what gets planned on a miss.
	canonical := sema.CanonicalText(parsed)
	key := sema.KeyOf(canonical)
	if len(semaWarnings) > 0 {
		w.Header().Set("X-Lusail-Sema-Warnings", strconv.Itoa(len(semaWarnings)))
	}
	epoch := s.eng.Epoch()

	if s.results != nil {
		if res, ok := s.results.Get(key, epoch); ok {
			w.Header().Set("X-Lusail-Cache", "result-hit")
			s.writeResults(w, r, res)
			return
		}
	}

	var plan *core.Plan
	var hit bool
	if s.plans != nil {
		plan, hit, err = s.plans.Get(ctx, key, canonical)
	} else {
		plan, err = s.eng.Plan(ctx, parsed)
	}
	if err != nil {
		s.queryError(w, ctx, fmt.Errorf("planning: %w", err))
		return
	}
	if hit {
		w.Header().Set("X-Lusail-Plan-Cache", "hit")
	} else {
		w.Header().Set("X-Lusail-Plan-Cache", "miss")
	}

	// ASK and non-JSON formats need the complete result; everything else
	// streams.
	if parsed.Form == sparql.AskForm || !wantsJSON(r.Header.Get("Accept")) {
		res, prof, err := s.eng.ExecutePlan(ctx, plan)
		if err != nil {
			s.queryError(w, ctx, err)
			return
		}
		// Sema findings describe the query, not the answer: only endpoint
		// warnings mark the response degraded or block result caching.
		degraded := endpointWarnings(prof.Warnings)
		if len(degraded) > 0 {
			w.Header().Set("X-Lusail-Degraded", strconv.Itoa(len(degraded)))
		}
		if s.results != nil {
			s.results.Put(key, epoch, res, degraded)
		}
		s.writeResults(w, r, res)
		return
	}

	s.streamJSON(ctx, w, plan, key, epoch)
}

// streamJSON executes the plan through the engine's cursor and flushes
// rows to the wire as the pipeline produces them — every plan shape
// streams; only blocking modifiers (ORDER BY, aggregates) delay the first
// row, and then only inside the engine, never by materializing here. Rows
// are teed into the result cache on the side (keyed by the canonical-form
// hash), up to its row bound.
func (s *Server) streamJSON(ctx context.Context, w http.ResponseWriter, plan *core.Plan, key string, epoch core.Epoch) {
	rows, err := s.eng.ExecutePlanStream(ctx, plan)
	if err != nil {
		// Nothing on the wire yet: a clean error response is possible.
		s.queryError(w, ctx, err)
		return
	}
	defer rows.Close()

	vars := rows.Vars()
	w.Header().Set("Content-Type", "application/sparql-results+json")
	stream, err := sparql.NewJSONStream(w, vars)
	if err != nil {
		s.queryError(w, ctx, err)
		return
	}
	flusher, _ := w.(http.Flusher)

	// Tee rows into the result cache while streaming, up to its row bound;
	// past it the copy is abandoned but streaming continues.
	var cached *sparql.Results
	if s.results != nil {
		cached = sparql.NewResults(vars)
	}
	emitted := 0
	for rows.Next() {
		if stream.WriteRow(rows.Binding()) != nil {
			break // client gone; Close cancels the pipeline
		}
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
		if cached != nil {
			cached.Rows = append(cached.Rows, append([]rdf.Term(nil), rows.Row()...))
			if len(cached.Rows) > s.results.maxRows {
				cached = nil
			}
		}
	}
	s.rows.Add(int64(emitted))
	if err := rows.Err(); err != nil {
		if emitted == 0 && stream.Err() == nil {
			// The head was written but no row: report instead of an empty
			// result the client would mistake for a complete answer.
			s.errs.Inc()
			s.cfg.Logf("lusaild: stream failed before first row: %v", err)
			return
		}
		// Mid-stream failure: the JSON document stays unterminated so the
		// client sees a broken response rather than a silently truncated
		// result set.
		s.errs.Inc()
		if ctx.Err() != nil || stream.Err() != nil {
			s.disconnects.Inc()
			s.cfg.Logf("lusaild: client disconnected after %d rows", emitted)
		} else {
			s.cfg.Logf("lusaild: stream failed after %d rows: %v", emitted, err)
		}
		return
	}
	if stream.Err() != nil || ctx.Err() != nil {
		// The client went away mid-stream; nothing more to write.
		s.disconnects.Inc()
		s.cfg.Logf("lusaild: client disconnected after %d rows", emitted)
		return
	}
	if err := stream.Close(); err != nil {
		s.disconnects.Inc()
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	if cached != nil && s.results != nil {
		if err := rows.Close(); err != nil {
			return
		}
		s.results.Put(key, epoch, cached, endpointWarnings(rows.Profile().Warnings))
	}
}

// handleConstruct evaluates a CONSTRUCT query and writes N-Triples.
func (s *Server) handleConstruct(ctx context.Context, w http.ResponseWriter, q *sparql.Query) {
	triples, _, err := s.eng.Construct(ctx, q)
	if err != nil {
		s.queryError(w, ctx, err)
		return
	}
	w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
	if err := rdf.WriteNTriples(w, triples); err != nil {
		s.cfg.Logf("lusaild: writing construct result: %v", err)
	}
}

// queryError maps an execution failure to a response: client disconnects
// are counted but unanswerable, everything else is a 500 (bad SPARQL was
// already rejected with 400 at parse).
func (s *Server) queryError(w http.ResponseWriter, ctx context.Context, err error) {
	if ctx.Err() != nil {
		s.disconnects.Inc()
		s.errs.Inc()
		return
	}
	s.fail(w, err.Error(), http.StatusInternalServerError)
}

// writeResults renders a complete result set with content negotiation,
// mirroring package endpoint.
func (s *Server) writeResults(w http.ResponseWriter, r *http.Request, res *sparql.Results) {
	accept := r.Header.Get("Accept")
	var err error
	switch {
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = res.WriteCSV(w)
	case strings.Contains(accept, "application/sparql-results+xml") || strings.Contains(accept, "application/xml"):
		w.Header().Set("Content-Type", "application/sparql-results+xml; charset=utf-8")
		err = res.WriteXML(w)
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		err = res.WriteTSV(w)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		err = res.WriteJSON(w)
	}
	if err != nil {
		s.cfg.Logf("lusaild: writing results: %v", err)
	}
}

// handleHealthz reports liveness and basic shape.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"endpoints": s.eng.Federation().Size(),
		"epoch":     s.eng.Epoch(),
	})
}

// handleAdminPlanCache serves the plan cache contents.
func (s *Server) handleAdminPlanCache(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body := map[string]any{"epoch": s.eng.Epoch()}
	if s.plans != nil {
		body["enabled"] = true
		body["plans"] = s.plans.Snapshot()
	} else {
		body["enabled"] = false
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// handleAdminTenants serves per-tenant admission state.
func (s *Server) handleAdminTenants(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"tenants": s.adm.Snapshot()})
}
