// Package server is lusaild: a long-running, multi-tenant HTTP service
// exposing a Lusail engine over the SPARQL 1.1 protocol. Around the engine
// it layers the pieces a shared federation deployment needs: a single-flight
// plan cache so decomposition and GJV analysis run once per distinct query
// shape, a bounded result cache for repeated identical queries, per-tenant
// admission control (token-bucket quotas, a concurrency gate above the
// shared ERH pool, and queue-depth load shedding), and incremental result
// streaming with client-disconnect cancellation.
package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"lusail/internal/core"
	"lusail/internal/obs"
)

// PlanCache memoizes engine plans keyed on the sema canonical-form hash
// (sema.Key), invalidated by the engine's planning epoch. Canonical keying
// means every spelling of one query — different whitespace, prefix names,
// commutative pattern order, or internal variable names — maps to a single
// cached plan; the cached plan is built from the canonical text itself, so
// which spelling arrives first does not matter. Concurrent requests for the
// same uncached query single-flight the planning step: one request plans,
// the rest wait for its result. The cache is bounded; least-recently-used
// entries are evicted.
type PlanCache struct {
	eng *core.Engine
	max int

	mu      sync.Mutex
	entries map[string]*planEntry
	lru     *list.List // front = most recent; values are *planEntry

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	stale     *obs.Counter
	size      *obs.Gauge
	planSecs  *obs.Histogram
}

// planEntry is one cached (possibly in-flight) plan. done is closed when
// plan/err are valid; failed builds are removed from the cache so the next
// request retries.
type planEntry struct {
	key   string // sema.Key of the canonical form
	query string // canonical text, planned on a miss and shown in the snapshot
	done  chan struct{}
	plan  *core.Plan
	err   error
	elem  *list.Element
}

// NewPlanCache returns a plan cache over the engine holding at most max
// plans (<=0 selects the default of 256).
func NewPlanCache(eng *core.Engine, max int) *PlanCache {
	if max <= 0 {
		max = 256
	}
	reg := obs.Default()
	return &PlanCache{
		eng:       eng,
		max:       max,
		entries:   map[string]*planEntry{},
		lru:       list.New(),
		hits:      reg.Counter(obs.MetricPlanCacheHits, "plan cache hits (planning skipped)"),
		misses:    reg.Counter(obs.MetricPlanCacheMisses, "plan cache misses (query planned)"),
		evictions: reg.Counter(obs.MetricPlanCacheEvictions, "plans evicted by the LRU bound"),
		stale:     reg.Counter(obs.MetricPlanCacheStale, "plans discarded because the engine epoch changed"),
		size:      reg.Gauge(obs.MetricPlanCacheSize, "plans currently cached"),
		planSecs:  reg.Histogram(obs.MetricServerPlanSeconds, "planning latency on plan cache misses", obs.LatencyBuckets),
	}
}

// Get returns the plan for the query whose canonical form is canonical and
// whose cache key is key (sema.KeyOf(canonical)), planning the canonical
// text on a miss. The second return reports a cache hit. Concurrent callers
// for one key share a single planning run; a caller whose own context is
// cancelled while waiting returns its context error, without poisoning the
// cache for the others.
func (c *PlanCache) Get(ctx context.Context, key, canonical string) (*core.Plan, bool, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.err != nil {
				// The builder failed (and removed the entry). A failure from
				// the builder's own cancelled context says nothing about the
				// query: retry as the builder if we are still alive.
				if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
					if ctx.Err() == nil {
						continue
					}
					return nil, false, ctx.Err()
				}
				return nil, false, e.err
			}
			if e.plan.Stale(c.eng) {
				c.stale.Inc()
				c.remove(e)
				continue
			}
			c.hits.Inc()
			return e.plan, true, nil
		}

		// Miss: publish an in-flight entry, then plan outside the lock.
		e = &planEntry{key: key, query: canonical, done: make(chan struct{})}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		for c.lru.Len() > c.max {
			oldest := c.lru.Back()
			if oldest == nil || oldest == e.elem {
				break
			}
			c.evictions.Inc()
			c.removeLocked(oldest.Value.(*planEntry))
		}
		c.size.Set(int64(c.lru.Len()))
		c.mu.Unlock()

		c.misses.Inc()
		t0 := time.Now()
		plan, err := c.eng.PlanString(ctx, canonical)
		e.plan, e.err = plan, err
		close(e.done)
		if err != nil {
			c.remove(e)
			return nil, false, err
		}
		c.planSecs.Observe(time.Since(t0).Seconds())
		return plan, false, nil
	}
}

// remove drops the entry if it is still the cached one for its query.
func (c *PlanCache) remove(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(e)
}

func (c *PlanCache) removeLocked(e *planEntry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		c.lru.Remove(e.elem)
		c.size.Set(int64(c.lru.Len()))
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// PlanCacheEntry is one entry of the admin snapshot.
type PlanCacheEntry struct {
	Key        string     `json:"key"`
	Query      string     `json:"query"` // canonical text
	Epoch      core.Epoch `json:"epoch"`
	GJVs       []string   `json:"gjvs,omitempty"`
	Subqueries int        `json:"subqueries"`
	InFlight   bool       `json:"in_flight,omitempty"`
}

// Snapshot returns the cached entries, most recently used first, for the
// admin inspection route.
func (c *PlanCache) Snapshot() []PlanCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PlanCacheEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		entry := PlanCacheEntry{Key: e.key, Query: e.query}
		select {
		case <-e.done:
			if e.plan != nil {
				entry.Epoch = e.plan.Epoch()
				entry.GJVs = e.plan.GJVs()
				entry.Subqueries = e.plan.Subqueries()
			}
		default:
			entry.InFlight = true
		}
		out = append(out, entry)
	}
	return out
}
