package server

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"lusail/internal/client"
)

// pollUntil retries cond for up to 5s.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func snapshotOf(a *Admission, tenant string) (TenantSnapshot, bool) {
	for _, s := range a.Snapshot() {
		if s.Name == tenant {
			return s, true
		}
	}
	return TenantSnapshot{}, false
}

func TestAdmissionRateQuota(t *testing.T) {
	a := NewAdmission(TenantConfig{RatePerSec: 1, Burst: 2, MaxConcurrent: 8}, nil)
	now := time.Now()
	a.setClock(func() time.Time { return now })
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		release, err := a.Admit(ctx, "alice")
		if err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
		release()
	}

	_, err := a.Admit(ctx, "alice")
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("over-burst admit: want *Rejection, got %v", err)
	}
	if rej.Status != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", rej.Status)
	}
	if rej.Warning.Phase != client.PhaseAdmission {
		t.Errorf("warning phase = %q, want %q", rej.Warning.Phase, client.PhaseAdmission)
	}
	if rej.RetryAfter <= 0 {
		t.Errorf("retry-after = %v, want > 0", rej.RetryAfter)
	}

	// One second refills one token at 1 query/s.
	now = now.Add(1100 * time.Millisecond)
	release, err := a.Admit(ctx, "alice")
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	release()

	// Other tenants have their own bucket.
	release, err = a.Admit(ctx, "bob")
	if err != nil {
		t.Fatalf("admit for fresh tenant: %v", err)
	}
	release()
}

func TestAdmissionQueueHandoffAndShed(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, MaxQueue: 1}, nil)
	ctx := context.Background()

	release1, err := a.Admit(ctx, "t")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}

	got := make(chan func(), 1)
	go func() {
		r, err := a.Admit(ctx, "t")
		if err != nil {
			t.Errorf("queued admit: %v", err)
			got <- func() {}
			return
		}
		got <- r
	}()
	pollUntil(t, "waiter to queue", func() bool {
		s, ok := snapshotOf(a, "t")
		return ok && s.Queued == 1
	})

	// Queue full: the third request is shed with 503.
	_, err = a.Admit(ctx, "t")
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("over-queue admit: want *Rejection, got %v", err)
	}
	if rej.Status != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rej.Status)
	}
	if rej.Warning.Phase != client.PhaseAdmission {
		t.Errorf("warning phase = %q, want %q", rej.Warning.Phase, client.PhaseAdmission)
	}

	// Releasing the slot hands it to the queued waiter.
	release1()
	release2 := <-got
	if s, _ := snapshotOf(a, "t"); s.InFlight != 1 || s.Queued != 0 {
		t.Errorf("after handoff: in_flight=%d queued=%d, want 1/0", s.InFlight, s.Queued)
	}
	release2()

	if s, _ := snapshotOf(a, "t"); s.InFlight != 0 {
		t.Errorf("after final release: in_flight=%d, want 0", s.InFlight)
	}
	if release3, err := a.Admit(ctx, "t"); err != nil {
		t.Fatalf("admit after drain: %v", err)
	} else {
		release3()
	}
}

func TestAdmissionQueuedCancellation(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 1, MaxQueue: 2}, nil)
	ctx := context.Background()

	release1, err := a.Admit(ctx, "t")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}

	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := a.Admit(cctx, "t")
		errc <- err
	}()
	pollUntil(t, "waiter to queue", func() bool {
		s, ok := snapshotOf(a, "t")
		return ok && s.Queued == 1
	})

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	if s, _ := snapshotOf(a, "t"); s.Queued != 0 {
		t.Errorf("after cancel: queued=%d, want 0", s.Queued)
	}

	// The held slot is unaffected and still releasable.
	release1()
	if s, _ := snapshotOf(a, "t"); s.InFlight != 0 {
		t.Errorf("after release: in_flight=%d, want 0", s.InFlight)
	}
	if release2, err := a.Admit(ctx, "t"); err != nil {
		t.Fatalf("admit after cancellation drained: %v", err)
	} else {
		release2()
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(TenantConfig{MaxConcurrent: 2}, nil)
	release, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // must not free a second slot
	if s, _ := snapshotOf(a, "t"); s.InFlight != 0 {
		t.Errorf("in_flight=%d after double release, want 0", s.InFlight)
	}
}
