package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"lusail/internal/bench"
	"lusail/internal/catalog"
	"lusail/internal/core"
	"lusail/internal/lint/leakcheck"
	"lusail/internal/resilience"
	"lusail/internal/server"
	"lusail/internal/sparql/sema"
	"lusail/internal/sparql"
)

// The LUBM federation is immutable once built, so all tests that only read
// from it share one instance; engines are cheap by comparison.
var (
	fedOnce sync.Once
	fed     *bench.Fed
	fedErr  error
)

func sharedFed(t *testing.T) *bench.Fed {
	t.Helper()
	fedOnce.Do(func() {
		fed, fedErr = bench.NewFed(bench.GenerateLUBM(bench.DefaultLUBM(2)), bench.InProcess())
	})
	if fedErr != nil {
		t.Fatalf("building LUBM federation: %v", fedErr)
	}
	return fed
}

func startServer(t *testing.T, eng *core.Engine, mutate func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.Config{
		Engine:       eng,
		QueryTimeout: 30 * time.Second,
		Logf:         func(string, ...any) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func testQuery() string { return bench.LUBMQueries()[0].Text }

func get(t *testing.T, rawURL string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, body
}

// TestConcurrentSameShapeSingleFlight exercises the plan cache's single-
// flight path: many concurrent requests for one query shape must plan it
// exactly once, and every response must be a valid streamed JSON document.
// Run under -race this also checks the cache's locking.
func TestConcurrentSameShapeSingleFlight(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, func(cfg *server.Config) {
		cfg.DisableResultCache = true // isolate the plan cache
		cfg.DefaultTenant = server.TenantConfig{MaxConcurrent: 16}
	})
	u := srv.URL + "?query=" + url.QueryEscape(testQuery())

	const n = 8
	var mu sync.Mutex
	misses, rows := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, u, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			res, err := sparql.ParseResultsJSON(body)
			if err != nil {
				t.Errorf("invalid results document: %v", err)
				return
			}
			mu.Lock()
			rows += res.Len()
			if resp.Header.Get("X-Lusail-Plan-Cache") == "miss" {
				misses++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if misses != 1 {
		t.Errorf("plan-cache misses = %d, want exactly 1 (single flight)", misses)
	}
	if srv.PlanCache().Len() != 1 {
		t.Errorf("plan cache holds %d plans, want 1", srv.PlanCache().Len())
	}
	if rows == 0 {
		t.Error("all responses were empty; expected LUBM results")
	}
}

// TestPlanCacheEpochInvalidation checks that a catalog update bumps the
// engine's epoch and forces cached plans to be rebuilt.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	cat := catalog.NewStore("", 0)
	opts := core.DefaultOptions()
	opts.Catalog = cat
	eng := sharedFed(t).NewLusail(opts)
	srv := startServer(t, eng, func(cfg *server.Config) {
		cfg.DisableResultCache = true
	})
	u := srv.URL + "?query=" + url.QueryEscape(testQuery())

	resp, _ := get(t, u, nil)
	if got := resp.Header.Get("X-Lusail-Plan-Cache"); got != "miss" {
		t.Fatalf("first request: plan cache %q, want miss", got)
	}
	resp, _ = get(t, u, nil)
	if got := resp.Header.Get("X-Lusail-Plan-Cache"); got != "hit" {
		t.Fatalf("second request: plan cache %q, want hit", got)
	}

	before := eng.Epoch()
	// Any catalog write bumps the epoch; a summary for an unknown endpoint
	// changes no planning decision but still invalidates, conservatively.
	cat.Put(&catalog.Summary{Endpoint: "ghost", BuiltAt: time.Now()})
	if eng.Epoch() == before {
		t.Fatal("catalog Put did not change the engine epoch")
	}

	resp, _ = get(t, u, nil)
	if got := resp.Header.Get("X-Lusail-Plan-Cache"); got != "miss" {
		t.Fatalf("post-bump request: plan cache %q, want miss (stale plan rebuilt)", got)
	}
	resp, _ = get(t, u, nil)
	if got := resp.Header.Get("X-Lusail-Plan-Cache"); got != "hit" {
		t.Fatalf("post-rebuild request: plan cache %q, want hit", got)
	}
}

// TestQuotaBurstStructured429 drives a tenant past its rate quota and
// checks the structured rejection body.
func TestQuotaBurstStructured429(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, func(cfg *server.Config) {
		cfg.Tenants = map[string]server.TenantConfig{
			"bronze": {RatePerSec: 0.001, Burst: 1, MaxConcurrent: 4},
		}
	})
	u := srv.URL + "?query=" + url.QueryEscape(testQuery())
	hdr := map[string]string{"X-Lusail-Tenant": "bronze"}

	resp, body := get(t, u, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within-quota request: status %d: %s", resp.StatusCode, body)
	}

	resp, body = get(t, u, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var rej struct {
		Error    string               `json:"error"`
		Tenant   string               `json:"tenant"`
		Warnings []resilience.Warning `json:"warnings"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, body)
	}
	if rej.Tenant != "bronze" || rej.Error == "" || len(rej.Warnings) != 1 {
		t.Errorf("unexpected rejection body: %+v", rej)
	}

	// An unthrottled tenant is unaffected.
	resp, body = get(t, u, map[string]string{"X-Lusail-Tenant": "gold"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other tenant: status %d: %s", resp.StatusCode, body)
	}
}

// TestStreamingDisconnectFreesSlot hangs every endpoint so a query blocks
// mid-execution, disconnects the client, and checks that cancellation
// propagates: the tenant's only concurrency slot is released and the server
// stays healthy. This is the ctxflow invariant exercised at runtime.
func TestStreamingDisconnectFreesSlot(t *testing.T) {
	datasets := bench.GenerateLUBM(bench.DefaultLUBM(1))
	hangFed, err := bench.NewFedWithFaults(datasets, bench.InProcess(), datasets[0].Name, resilience.FaultSpec{Hang: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := hangFed.NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, func(cfg *server.Config) {
		cfg.Tenants = map[string]server.TenantConfig{
			"solo": {MaxConcurrent: 1, MaxQueue: -1},
		}
	})
	base := srv.URL[:len(srv.URL)-len("/sparql")]

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"?query="+url.QueryEscape(testQuery()), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Lusail-Tenant", "solo")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	inFlight := func() int {
		resp, body := get(t, base+"/admin/tenants", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/admin/tenants: status %d", resp.StatusCode)
		}
		var st struct {
			Tenants []server.TenantSnapshot `json:"tenants"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("/admin/tenants body: %v", err)
		}
		for _, ts := range st.Tenants {
			if ts.Name == "solo" {
				return ts.InFlight
			}
		}
		return 0
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	waitFor("the hanging query to occupy the slot", func() bool { return inFlight() == 1 })
	cancel() // client disconnects
	if err := <-done; err == nil {
		t.Fatal("hanging request completed; expected the cancelled context to abort it")
	}
	waitFor("the slot to be released after disconnect", func() bool { return inFlight() == 0 })

	resp, _ := get(t, base+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after disconnect: status %d", resp.StatusCode)
	}
}

// TestStartQueryDrainNoLeak wraps a full server lifecycle — start, serve a
// query, graceful drain — in a goroutine-leak check.
func TestStartQueryDrainNoLeak(t *testing.T) {
	sharedFed(t) // build (or reuse) the federation outside the baseline
	base := leakcheck.Take()

	eng := fed.NewLusail(core.DefaultOptions())
	srv, err := server.Start("127.0.0.1:0", server.Config{
		Engine:       eng,
		QueryTimeout: 30 * time.Second,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, srv.URL+"?query="+url.QueryEscape(testQuery()), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	if _, err := sparql.ParseResultsJSON(body); err != nil {
		t.Fatalf("invalid results document: %v", err)
	}

	ctx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelDrain()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := leakcheck.Verify(base, leakcheck.DefaultGrace); err != nil {
		t.Fatalf("goroutines leaked across server lifecycle: %v", err)
	}
}

// TestContentNegotiationAndResultCache covers the non-streaming formats and
// the result cache header.
func TestContentNegotiationAndResultCache(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, nil)
	u := srv.URL + "?query=" + url.QueryEscape(testQuery())

	resp, body := get(t, u, map[string]string{"Accept": "text/csv"})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("CSV: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("CSV content type %q", ct)
	}

	// The completed CSV answer populated the result cache; the next request
	// for the same canonical shape is answered from it.
	resp, _ = get(t, u, nil)
	if resp.Header.Get("X-Lusail-Cache") != "result-hit" {
		t.Errorf("second request: X-Lusail-Cache=%q, want result-hit", resp.Header.Get("X-Lusail-Cache"))
	}
}

// TestPlanCacheDirectSingleFlight hits the cache API without HTTP: all
// concurrent getters of one shape must receive the identical *core.Plan.
func TestPlanCacheDirectSingleFlight(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	pc := server.NewPlanCache(eng, 8)
	parsed, err := sparql.Parse(testQuery())
	if err != nil {
		t.Fatal(err)
	}
	canonical := sema.CanonicalText(parsed)
	key := sema.KeyOf(canonical)

	const n = 16
	plans := make([]*core.Plan, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := pc.Get(context.Background(), key, canonical)
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] || plans[i] == nil {
			t.Fatalf("getter %d received a different plan (%p vs %p)", i, plans[i], plans[0])
		}
	}
	if pc.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", pc.Len())
	}
}

// TestCanonicalKeyHitRate proves the plan cache keys on the sema canonical
// form: the same LUBM shape spelled with different whitespace, prefix
// names, pattern order, and variable names must build exactly one plan —
// the second spelling is a hit.
func TestCanonicalKeyHitRate(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, func(cfg *server.Config) {
		cfg.DisableResultCache = true // the plan cache is under test
	})

	spellingA := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?X WHERE {
	?X rdf:type ub:GraduateStudent .
	?X ub:undergraduateDegreeFrom <http://www.University0.edu> .
}`
	// Same query: prefixes renamed, patterns reordered, variable renamed
	// (the projected ?X must keep its name — it is the output schema).
	spellingB := `PREFIX uni: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?X
WHERE {
	?X   uni:undergraduateDegreeFrom   <http://www.University0.edu> .
	?X <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> uni:GraduateStudent
}`

	respA, bodyA := get(t, srv.URL+"?query="+url.QueryEscape(spellingA), nil)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("spelling A: status %d: %s", respA.StatusCode, bodyA)
	}
	if got := respA.Header.Get("X-Lusail-Plan-Cache"); got != "miss" {
		t.Fatalf("spelling A: X-Lusail-Plan-Cache=%q, want miss", got)
	}
	respB, bodyB := get(t, srv.URL+"?query="+url.QueryEscape(spellingB), nil)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("spelling B: status %d: %s", respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Lusail-Plan-Cache"); got != "hit" {
		t.Errorf("spelling B: X-Lusail-Plan-Cache=%q, want hit (canonical keying)", got)
	}
	if srv.PlanCache().Len() != 1 {
		t.Errorf("plan cache holds %d plans, want 1", srv.PlanCache().Len())
	}

	// Both spellings must return the same rows.
	resA, errA := sparql.ParseResultsJSON(bodyA)
	resB, errB := sparql.ParseResultsJSON(bodyB)
	if errA != nil || errB != nil {
		t.Fatalf("parsing results: %v / %v", errA, errB)
	}
	if resA.Len() != resB.Len() {
		t.Errorf("spellings returned different row counts: %d vs %d", resA.Len(), resB.Len())
	}
}

// TestSemaRejection checks that an error-tier static-analysis finding is
// answered with a structured 400 carrying positioned diagnostics, before
// any engine work.
func TestSemaRejection(t *testing.T) {
	eng := sharedFed(t).NewLusail(core.DefaultOptions())
	srv := startServer(t, eng, nil)

	// FILTER over a variable its group never binds: error tier.
	bad := `SELECT ?s WHERE {
  ?s <http://example.org/p> ?o .
  FILTER(?price > 100)
}`
	resp, body := get(t, srv.URL+"?query="+url.QueryEscape(bad), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var rej struct {
		Error       string                  `json:"error"`
		Diagnostics []sparql.SemaDiagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatalf("rejection is not structured JSON: %v: %s", err, body)
	}
	if len(rej.Diagnostics) == 0 {
		t.Fatal("rejection carries no diagnostics")
	}
	d := rej.Diagnostics[0]
	if d.Check != "unboundvar" || d.Line != 3 {
		t.Errorf("diagnostic = %+v, want unboundvar at line 3", d)
	}

	// Warning-tier findings must not block; they surface as a header.
	warned := `SELECT ?a ?x WHERE {
  ?a <http://example.org/p> ?b .
  ?x <http://example.org/q> ?y .
}`
	resp, body = get(t, srv.URL+"?query="+url.QueryEscape(warned), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warning-tier query: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Lusail-Sema-Warnings") == "" {
		t.Error("missing X-Lusail-Sema-Warnings header on cartesian query")
	}
	if resp.Header.Get("X-Lusail-Degraded") != "" {
		t.Error("sema warnings must not mark the answer degraded")
	}
}
