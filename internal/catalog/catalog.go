// Package catalog implements Lusail's persistent endpoint catalog: one
// precomputed data summary per endpoint, persisted as JSON, refreshed in
// the background, and consulted by the engine as the probe-free first tier
// of a two-tier strategy.
//
// Lusail's baseline protocol pays a per-query round-trip tax: every triple
// pattern triggers ASK probes at all endpoints (source selection) and
// SELECT COUNT probes at all relevant endpoints (SAPE statistics,
// Section 4.1 of the paper). For small federated queries those probes
// dominate latency. The catalog amortizes them into an offline pass, in
// the spirit of SPLENDID's VoID statistics and HiBISCuS's authority
// sketches: each summary records the endpoint's distinct predicates,
// classes, VoID-style counts (triples, per-predicate triple/subject/object
// counts), subject/object URI-authority sketches, and probed capabilities
// (VALUES support, observed result-size caps).
//
// At query time:
//
//   - federation.SourceSelector asks the catalog to Decide each endpoint
//     per pattern. Proven-irrelevant endpoints are pruned without traffic;
//     proven-relevant ones are included; only undecided endpoints (missing,
//     stale, or partial summaries) fall back to ASK probes.
//   - core's statistics collector asks Cardinality for constant-predicate
//     patterns and only issues COUNT probes when the catalog cannot answer.
//
// Decisions are conservative in exactly one direction: Irrelevant is only
// returned when the summary *proves* no triple can match (unknown
// predicate or class, disjoint URI authority), while Relevant may
// over-approximate (an authority sketch cannot distinguish two entities of
// one authority). An over-approximated source list costs extra work but
// never correctness — the engine's subqueries simply return no rows there —
// so query results are identical with the catalog on, off, or stale.
package catalog

import (
	"net/url"
	"sort"
	"strings"
	"time"

	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// PredicateStat is the VoID-style description of one predicate at one
// endpoint.
type PredicateStat struct {
	// Triples counts triples with this predicate.
	Triples int64 `json:"triples"`
	// Subjects counts distinct subjects of this predicate.
	Subjects int64 `json:"subjects"`
	// Objects counts distinct objects of this predicate.
	Objects int64 `json:"objects"`
	// LiteralObjects counts triples whose object is a literal.
	LiteralObjects int64 `json:"literal_objects,omitempty"`
	// SubjAuthorities is the sorted set of URI authorities occurring in
	// subject position (the HiBISCuS-style sketch used to prune
	// constant-subject patterns).
	SubjAuthorities []string `json:"subj_authorities,omitempty"`
	// ObjAuthorities is the sorted set of URI authorities occurring in
	// object position (IRIs only).
	ObjAuthorities []string `json:"obj_authorities,omitempty"`
}

// Capabilities records what the endpoint was probed to support.
type Capabilities struct {
	// SupportsValues reports whether the endpoint answered a VALUES-block
	// query, i.e. bound joins may ship VALUES there.
	SupportsValues bool `json:"supports_values"`
	// MaxResultRows is the largest result size the endpoint returned while
	// being summarized; when Truncated it is the observed server-side cap.
	MaxResultRows int64 `json:"max_result_rows,omitempty"`
	// Truncated reports that the summary scan returned fewer rows than the
	// endpoint's own COUNT, i.e. the server caps result sizes and the
	// summary is partial. Partial summaries never prune (Decide returns
	// TierUnknown instead of TierIrrelevant).
	Truncated bool `json:"truncated,omitempty"`
}

// Summary is the catalog's knowledge about one endpoint.
type Summary struct {
	// Endpoint is the endpoint's federation name.
	Endpoint string `json:"endpoint"`
	// BuiltAt is when the summary was (re)built; staleness is measured
	// against it.
	BuiltAt time.Time `json:"built_at"`
	// BuildDuration is how long the build took (preprocessing cost).
	BuildDuration time.Duration `json:"build_duration_ns"`
	// Triples is the endpoint's total triple count.
	Triples int64 `json:"triples"`
	// Predicates maps each distinct predicate IRI to its statistics.
	Predicates map[string]*PredicateStat `json:"predicates"`
	// Classes maps each class IRI to its instance count (rdf:type objects).
	Classes map[string]int64 `json:"classes,omitempty"`
	// Capabilities are the endpoint's probed capabilities.
	Capabilities Capabilities `json:"capabilities"`
}

// Fresh reports whether the summary is younger than ttl at the given time.
// A non-positive ttl means summaries never expire.
func (s *Summary) Fresh(now time.Time, ttl time.Duration) bool {
	if s == nil {
		return false
	}
	if ttl <= 0 {
		return true
	}
	return now.Sub(s.BuiltAt) < ttl
}

// Age returns how old the summary is.
func (s *Summary) Age(now time.Time) time.Duration { return now.Sub(s.BuiltAt) }

// Authority extracts the URI authority (scheme + host) the sketches hash
// on, falling back to the prefix before the last separator for URNs and
// scheme-less identifiers (the same rule HiBISCuS uses).
func Authority(iri string) string {
	u, err := url.Parse(iri)
	if err != nil || u.Host == "" {
		if i := strings.LastIndexAny(iri, "/#:"); i > 0 {
			return iri[:i]
		}
		return iri
	}
	return u.Scheme + "://" + u.Host
}

// hasAuthority reports membership in a sorted authority sketch.
func hasAuthority(sorted []string, auth string) bool {
	i := sort.SearchStrings(sorted, auth)
	return i < len(sorted) && sorted[i] == auth
}

// Decide classifies the endpoint for the pattern from the summary alone.
//
// The contract mirrors federation.TierDecision: TierIrrelevant is a proof
// (no triple at this endpoint can match the pattern), TierRelevant may
// over-approximate, and TierUnknown asks the caller to fall back to an ASK
// probe. A truncated (partial) summary can still prove relevance — what it
// saw, the endpoint has — but never irrelevance.
func (s *Summary) Decide(tp sparql.TriplePattern) federation.TierDecision {
	if s == nil {
		return federation.TierUnknown
	}
	irrelevant := federation.TierIrrelevant
	if s.Capabilities.Truncated {
		// The scan missed triples; absence from the summary proves nothing.
		irrelevant = federation.TierUnknown
	}
	if s.Triples == 0 {
		return irrelevant
	}

	if !tp.P.IsVar() {
		pred := tp.P.Term.Value
		// rdf:type with a constant class is answered from the class list,
		// which is exact (not a sketch).
		if pred == rdf.RDFType && !tp.O.IsVar() && tp.O.Term.IsIRI() {
			if s.Classes[tp.O.Term.Value] > 0 {
				return s.decideSubject(tp, s.Predicates[pred])
			}
			return irrelevant
		}
		ps, ok := s.Predicates[pred]
		if !ok || ps.Triples == 0 {
			return irrelevant
		}
		if d := s.decideSubject(tp, ps); d != federation.TierRelevant {
			return d
		}
		return s.decideObject(tp, ps, irrelevant)
	}

	// Variable predicate: decide from the union of all predicate sketches.
	if d := s.decideSubject(tp, nil); d != federation.TierRelevant {
		return d
	}
	return s.decideObject(tp, nil, irrelevant)
}

// decideSubject applies the subject position of tp against ps (or, when ps
// is nil, against every predicate's sketch).
func (s *Summary) decideSubject(tp sparql.TriplePattern, ps *PredicateStat) federation.TierDecision {
	if tp.S.IsVar() {
		return federation.TierRelevant
	}
	if !tp.S.Term.IsIRI() {
		// Constant blank nodes have no cross-document identity to sketch.
		return federation.TierUnknown
	}
	auth := Authority(tp.S.Term.Value)
	found := false
	if ps != nil {
		found = hasAuthority(ps.SubjAuthorities, auth)
	} else {
		for _, p := range s.Predicates {
			if hasAuthority(p.SubjAuthorities, auth) {
				found = true
				break
			}
		}
	}
	if found {
		return federation.TierRelevant
	}
	if s.Capabilities.Truncated {
		return federation.TierUnknown
	}
	return federation.TierIrrelevant
}

// decideObject applies the object position of tp. irrelevant carries the
// truncation-adjusted "not found" verdict.
func (s *Summary) decideObject(tp sparql.TriplePattern, ps *PredicateStat, irrelevant federation.TierDecision) federation.TierDecision {
	if tp.O.IsVar() {
		return federation.TierRelevant
	}
	o := tp.O.Term
	if o.IsIRI() {
		auth := Authority(o.Value)
		if ps != nil {
			if hasAuthority(ps.ObjAuthorities, auth) {
				return federation.TierRelevant
			}
			return irrelevant
		}
		for _, p := range s.Predicates {
			if hasAuthority(p.ObjAuthorities, auth) {
				return federation.TierRelevant
			}
		}
		return irrelevant
	}
	// Constant literal object: the sketch only records whether the
	// predicate has literal objects at all.
	if ps != nil {
		if ps.LiteralObjects > 0 {
			return federation.TierRelevant
		}
		return irrelevant
	}
	for _, p := range s.Predicates {
		if p.LiteralObjects > 0 {
			return federation.TierRelevant
		}
	}
	return irrelevant
}

// Cardinality estimates the number of solutions of the pattern at this
// endpoint, replacing a live SELECT COUNT probe. It only answers (ok=true)
// for constant-predicate patterns on a non-truncated summary — the cases
// the VoID-style counts describe exactly or nearly so; everything else
// falls back to a probe.
func (s *Summary) Cardinality(tp sparql.TriplePattern) (est float64, ok bool) {
	if s == nil || s.Capabilities.Truncated || tp.P.IsVar() {
		return 0, false
	}
	pred := tp.P.Term.Value
	if pred == rdf.RDFType && !tp.O.IsVar() {
		if !tp.O.Term.IsIRI() {
			return 0, false
		}
		n := float64(s.Classes[tp.O.Term.Value])
		if !tp.S.IsVar() {
			// (const, rdf:type, const): at most one such triple.
			if n > 1 {
				n = 1
			}
		}
		return n, true
	}
	ps := s.Predicates[pred]
	if ps == nil {
		return 0, true // predicate absent: exactly zero solutions
	}
	switch {
	case tp.S.IsVar() && tp.O.IsVar():
		// Exact for (?s p ?o); an upper bound for the self-loop (?x p ?x).
		return float64(ps.Triples), true
	case !tp.S.IsVar() && tp.O.IsVar():
		// Average out-degree of a subject under this predicate.
		if ps.Subjects == 0 {
			return 0, true
		}
		return float64(ps.Triples) / float64(ps.Subjects), true
	case tp.S.IsVar() && !tp.O.IsVar():
		// Average in-degree of an object under this predicate.
		if ps.Objects == 0 {
			return 0, true
		}
		return float64(ps.Triples) / float64(ps.Objects), true
	default:
		// Fully constant: zero or one solution.
		return 1, true
	}
}
