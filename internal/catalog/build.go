package catalog

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// probeIRI is the throwaway constant used by the VALUES capability probe.
const probeIRI = "urn:lusail:capability-probe"

// BuildSummary summarizes one endpoint with three requests: a COUNT of its
// triples, one full scan that feeds every statistic and sketch, and a
// VALUES capability probe. When the scan returns fewer rows than the COUNT
// (a server-side result cap), the summary is marked Truncated and will
// prove relevance but never irrelevance.
func BuildSummary(ctx context.Context, ep client.Endpoint) (*Summary, error) {
	start := time.Now()
	sum := &Summary{
		Endpoint:   ep.Name(),
		BuiltAt:    start,
		Predicates: map[string]*PredicateStat{},
		Classes:    map[string]int64{},
	}

	total, totalKnown, err := client.Count(ctx, ep, countAllQuery())
	if err != nil {
		return nil, fmt.Errorf("catalog: counting %s: %w", ep.Name(), err)
	}

	res, err := ep.Query(ctx, scanQuery())
	if err != nil {
		return nil, fmt.Errorf("catalog: scanning %s: %w", ep.Name(), err)
	}
	si, pi, oi := res.VarIndex("s"), res.VarIndex("p"), res.VarIndex("o")
	if si < 0 || pi < 0 || oi < 0 {
		return nil, fmt.Errorf("catalog: endpoint %s returned unusable scan result", ep.Name())
	}

	type predAccum struct {
		stat     PredicateStat
		subjects map[string]struct{}
		objects  map[string]struct{}
		subjAuth map[string]struct{}
		objAuth  map[string]struct{}
	}
	accum := map[string]*predAccum{}
	for _, row := range res.Rows {
		sum.Triples++
		pred := row[pi].Value
		pa, ok := accum[pred]
		if !ok {
			pa = &predAccum{
				subjects: map[string]struct{}{},
				objects:  map[string]struct{}{},
				subjAuth: map[string]struct{}{},
				objAuth:  map[string]struct{}{},
			}
			accum[pred] = pa
		}
		pa.stat.Triples++
		subj, obj := row[si], row[oi]
		pa.subjects[subj.String()] = struct{}{}
		pa.objects[obj.String()] = struct{}{}
		if subj.IsIRI() {
			pa.subjAuth[Authority(subj.Value)] = struct{}{}
		}
		switch {
		case obj.IsIRI():
			pa.objAuth[Authority(obj.Value)] = struct{}{}
			if pred == rdf.RDFType {
				sum.Classes[obj.Value]++
			}
		case obj.IsLiteral():
			pa.stat.LiteralObjects++
		}
	}
	for pred, pa := range accum {
		pa.stat.Subjects = int64(len(pa.subjects))
		pa.stat.Objects = int64(len(pa.objects))
		pa.stat.SubjAuthorities = sortedKeys(pa.subjAuth)
		pa.stat.ObjAuthorities = sortedKeys(pa.objAuth)
		stat := pa.stat
		sum.Predicates[pred] = &stat
	}

	sum.Capabilities.MaxResultRows = int64(len(res.Rows))
	// The scan is complete only when the endpoint's own COUNT confirms it;
	// a failed or malformed COUNT leaves completeness unproven, so the
	// summary stays partial (it will never prune).
	sum.Capabilities.Truncated = !totalKnown || int64(total) != sum.Triples
	sum.Capabilities.SupportsValues = probeValues(ctx, ep)

	sum.BuildDuration = time.Since(start)
	obs.Default().
		Histogram(obs.MetricCatalogBuildSeconds, "time to build one endpoint summary", obs.LatencyBuckets).
		Observe(sum.BuildDuration.Seconds())
	return sum, nil
}

// probeValues checks whether the endpoint evaluates a VALUES block: one
// inlined row must come back unchanged. Any error or wrong shape counts as
// "unsupported" — the engine then knows bound joins cannot ship VALUES.
func probeValues(ctx context.Context, ep client.Endpoint) bool {
	q := sparql.NewSelect("x")
	q.Where.Elements = append(q.Where.Elements, sparql.InlineData{
		Vars: []string{"x"},
		Rows: [][]rdf.Term{{rdf.NewIRI(probeIRI)}},
	})
	res, err := ep.Query(ctx, q.String())
	if err != nil || res == nil || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return false
	}
	return res.Rows[0][0].IsIRI() && res.Rows[0][0].Value == probeIRI
}

func countAllQuery() string {
	q := &sparql.Query{
		Form:  sparql.SelectForm,
		Limit: -1,
		Projection: []sparql.Projection{
			{Var: "lusail_c", Agg: &sparql.Aggregate{Func: "COUNT"}},
		},
		Where: &sparql.GroupPattern{Elements: []sparql.Element{
			sparql.TriplePattern{S: sparql.Var("s"), P: sparql.Var("p"), O: sparql.Var("o")},
		}},
	}
	return q.String()
}

func scanQuery() string {
	q := sparql.NewSelect("s", "p", "o")
	q.Where.Elements = append(q.Where.Elements, sparql.TriplePattern{
		S: sparql.Var("s"), P: sparql.Var("p"), O: sparql.Var("o"),
	})
	return q.String()
}

func sortedKeys(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build summarizes every endpoint of the federation concurrently over the
// pool and stores the results. Endpoints that fail keep their previous
// summary (if any); the joined errors are returned after all endpoints
// were attempted.
func Build(ctx context.Context, fed *federation.Federation, pool *erh.Pool, st *Store) error {
	eps := fed.Endpoints()
	names := make([]string, len(eps))
	for i, ep := range eps {
		names[i] = ep.Name()
	}
	return buildEndpoints(ctx, fed, pool, st, names)
}

// Refresh rebuilds only the summaries that are missing or older than the
// store's TTL, returning how many were rebuilt.
func Refresh(ctx context.Context, fed *federation.Federation, pool *erh.Pool, st *Store) (int, error) {
	stale := st.Stale(fed.Names())
	if len(stale) == 0 {
		return 0, nil
	}
	return len(stale), buildEndpoints(ctx, fed, pool, st, stale)
}

func buildEndpoints(ctx context.Context, fed *federation.Federation, pool *erh.Pool, st *Store, names []string) error {
	refreshes := obs.Default().Counter(obs.MetricCatalogRefreshes, "endpoint summaries (re)built")
	return pool.ForEach(ctx, len(names), func(i int) error {
		ep := fed.Get(names[i])
		if ep == nil {
			return fmt.Errorf("catalog: unknown endpoint %q", names[i])
		}
		sum, err := BuildSummary(ctx, ep)
		if err != nil {
			return err
		}
		st.Put(sum)
		refreshes.Inc()
		return nil
	})
}

// Refresher periodically rebuilds stale summaries in the background and
// persists the store after each round.
type Refresher struct {
	stop chan struct{}
	done chan struct{}
}

// StartRefresher launches a background loop that, every interval, rebuilds
// the summaries the TTL has expired and saves the store (when it has a
// path). logf receives non-fatal errors; pass nil to discard them. Call
// Stop to halt the loop and wait for an in-flight round to finish.
func StartRefresher(st *Store, fed *federation.Federation, pool *erh.Pool, interval time.Duration, logf func(format string, args ...any)) *Refresher {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Refresher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
			}
			//lint:lusail-vet ctxflow -- detached background refresher rooted on its own stop channel, not a request
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				select {
				case <-r.stop:
					cancel()
				case <-ctx.Done():
				}
			}()
			n, err := Refresh(ctx, fed, pool, st)
			if err != nil {
				logf("catalog: background refresh: %v", err)
			}
			if n > 0 {
				if err := st.Save(); err != nil {
					logf("catalog: saving after refresh: %v", err)
				}
			}
			cancel()
		}
	}()
	return r
}

// Stop halts the refresher, cancelling an in-flight round, and waits for
// the loop to exit.
func (r *Refresher) Stop() {
	close(r.stop)
	<-r.done
}
