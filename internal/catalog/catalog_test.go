package catalog

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func iri(host, local string) rdf.Term {
	return rdf.NewIRI("http://" + host + "/" + local)
}

// testFed mirrors the cross-authority federations of the paper's
// experiments: two endpoints with disjoint URI authorities plus one
// interlink from drugbank into kegg.
func testFed() *federation.Federation {
	drugs := []rdf.Triple{
		{S: iri("drugbank.org", "d1"), P: rdf.NewIRI(rdf.RDFType), O: iri("drugbank.org", "Drug")},
		{S: iri("drugbank.org", "d1"), P: iri("drugbank.org", "name"), O: rdf.NewLiteral("aspirin")},
		{S: iri("drugbank.org", "d1"), P: iri("drugbank.org", "target"), O: iri("kegg.org", "k9")},
		{S: iri("drugbank.org", "d2"), P: rdf.NewIRI(rdf.RDFType), O: iri("drugbank.org", "Drug")},
		{S: iri("drugbank.org", "d2"), P: iri("drugbank.org", "name"), O: rdf.NewLiteral("ibuprofen")},
	}
	kegg := []rdf.Triple{
		{S: iri("kegg.org", "k9"), P: iri("kegg.org", "pathway"), O: rdf.NewLiteral("pw1")},
		{S: iri("kegg.org", "k10"), P: iri("kegg.org", "pathway"), O: rdf.NewLiteral("pw2")},
	}
	return federation.MustNew(
		client.NewInProcess("drugbank", store.NewFromTriples(drugs)),
		client.NewInProcess("kegg", store.NewFromTriples(kegg)),
	)
}

func TestAuthority(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://drugbank.org/d1", "http://drugbank.org"},
		{"http://kegg.org/pathway/x", "http://kegg.org"},
		{"urn:isbn:12345", "urn:isbn"},
		{"noscheme/path", "noscheme"},
		{"opaque", "opaque"},
	}
	for _, tc := range tests {
		if got := Authority(tc.in); got != tc.want {
			t.Errorf("Authority(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBuildSummary(t *testing.T) {
	fed := testFed()
	sum, err := BuildSummary(context.Background(), fed.Get("drugbank"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Endpoint != "drugbank" || sum.Triples != 5 {
		t.Fatalf("summary = %q/%d triples, want drugbank/5", sum.Endpoint, sum.Triples)
	}
	if sum.Capabilities.Truncated {
		t.Error("complete scan marked Truncated")
	}
	if !sum.Capabilities.SupportsValues {
		t.Error("in-process endpoint should pass the VALUES probe")
	}
	if got := sum.Classes["http://drugbank.org/Drug"]; got != 2 {
		t.Errorf("Drug instances = %d, want 2", got)
	}
	ps := sum.Predicates["http://drugbank.org/name"]
	if ps == nil || ps.Triples != 2 || ps.Subjects != 2 || ps.LiteralObjects != 2 {
		t.Fatalf("name stat = %+v", ps)
	}
	tgt := sum.Predicates["http://drugbank.org/target"]
	if tgt == nil || !reflect.DeepEqual(tgt.ObjAuthorities, []string{"http://kegg.org"}) {
		t.Errorf("target obj authorities = %+v", tgt)
	}
	if sum.BuildDuration <= 0 {
		t.Error("BuildDuration not recorded")
	}
}

func TestSummaryDecide(t *testing.T) {
	fed := testFed()
	db, err := BuildSummary(context.Background(), fed.Get("drugbank"))
	if err != nil {
		t.Fatal(err)
	}
	v, c := sparql.Var, sparql.IRI
	tests := []struct {
		name string
		tp   sparql.TriplePattern
		want federation.TierDecision
	}{
		{"known predicate", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/name"), O: v("o")}, federation.TierRelevant},
		{"unknown predicate", sparql.TriplePattern{S: v("s"), P: c("http://kegg.org/pathway"), O: v("o")}, federation.TierIrrelevant},
		{"known class", sparql.TriplePattern{S: v("s"), P: c(rdf.RDFType), O: c("http://drugbank.org/Drug")}, federation.TierRelevant},
		{"unknown class", sparql.TriplePattern{S: v("s"), P: c(rdf.RDFType), O: c("http://kegg.org/Pathway")}, federation.TierIrrelevant},
		{"subject authority match", sparql.TriplePattern{S: c("http://drugbank.org/d2"), P: c("http://drugbank.org/name"), O: v("o")}, federation.TierRelevant},
		{"subject authority miss", sparql.TriplePattern{S: c("http://elsewhere.org/x"), P: c("http://drugbank.org/name"), O: v("o")}, federation.TierIrrelevant},
		{"object authority match", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/target"), O: c("http://kegg.org/k10")}, federation.TierRelevant},
		{"object authority miss", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/target"), O: c("http://elsewhere.org/x")}, federation.TierIrrelevant},
		{"literal object on literal predicate", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/name"), O: sparql.Const(rdf.NewLiteral("aspirin"))}, federation.TierRelevant},
		{"literal object on IRI-only predicate", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/target"), O: sparql.Const(rdf.NewLiteral("x"))}, federation.TierIrrelevant},
		{"variable predicate", sparql.TriplePattern{S: v("s"), P: v("p"), O: v("o")}, federation.TierRelevant},
		{"variable predicate, foreign subject", sparql.TriplePattern{S: c("http://elsewhere.org/x"), P: v("p"), O: v("o")}, federation.TierIrrelevant},
	}
	for _, tc := range tests {
		if got := db.Decide(tc.tp); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTruncatedSummaryNeverPrunes(t *testing.T) {
	fed := testFed()
	db, err := BuildSummary(context.Background(), fed.Get("drugbank"))
	if err != nil {
		t.Fatal(err)
	}
	db.Capabilities.Truncated = true
	v, c := sparql.Var, sparql.IRI
	// What the partial scan saw is still a proof of relevance...
	tp := sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/name"), O: v("o")}
	if got := db.Decide(tp); got != federation.TierRelevant {
		t.Errorf("seen predicate on truncated summary: %v, want relevant", got)
	}
	// ...but absence proves nothing.
	tp = sparql.TriplePattern{S: v("s"), P: c("http://kegg.org/pathway"), O: v("o")}
	if got := db.Decide(tp); got != federation.TierUnknown {
		t.Errorf("unseen predicate on truncated summary: %v, want unknown", got)
	}
	// And cardinalities are no longer trustworthy.
	if _, ok := db.Cardinality(sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/name"), O: v("o")}); ok {
		t.Error("truncated summary answered a cardinality")
	}
}

func TestSummaryCardinality(t *testing.T) {
	fed := testFed()
	db, err := BuildSummary(context.Background(), fed.Get("drugbank"))
	if err != nil {
		t.Fatal(err)
	}
	v, c := sparql.Var, sparql.IRI
	tests := []struct {
		name   string
		tp     sparql.TriplePattern
		want   float64
		wantOK bool
	}{
		{"(var p var)", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/name"), O: v("o")}, 2, true},
		{"(const p var)", sparql.TriplePattern{S: c("http://drugbank.org/d1"), P: c("http://drugbank.org/name"), O: v("o")}, 1, true},
		{"(var p const)", sparql.TriplePattern{S: v("s"), P: c("http://drugbank.org/target"), O: c("http://kegg.org/k9")}, 1, true},
		{"absent predicate", sparql.TriplePattern{S: v("s"), P: c("http://kegg.org/pathway"), O: v("o")}, 0, true},
		{"class count", sparql.TriplePattern{S: v("s"), P: c(rdf.RDFType), O: c("http://drugbank.org/Drug")}, 2, true},
		{"variable predicate", sparql.TriplePattern{S: v("s"), P: v("p"), O: v("o")}, 0, false},
	}
	for _, tc := range tests {
		got, ok := db.Cardinality(tc.tp)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("%s: Cardinality = (%v, %v), want (%v, %v)", tc.name, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestBuildAndStoreRoundtrip(t *testing.T) {
	fed := testFed()
	path := t.TempDir() + "/catalog.json"
	st := NewStore(path, time.Hour)
	if err := Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Endpoints(), []string{"drugbank", "kegg"}) {
		t.Fatalf("reloaded endpoints = %v", re.Endpoints())
	}
	orig, _ := st.Summary("drugbank")
	got, ok := re.Summary("drugbank")
	if !ok || !reflect.DeepEqual(got.Predicates, orig.Predicates) || got.Triples != orig.Triples {
		t.Errorf("reloaded summary differs:\n got %+v\nwant %+v", got, orig)
	}

	// The reloaded store answers tier decisions identically.
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	if d := re.Decide(tp, "drugbank"); d != federation.TierIrrelevant {
		t.Errorf("reloaded Decide(drugbank) = %v, want irrelevant", d)
	}
	if d := re.Decide(tp, "kegg"); d != federation.TierRelevant {
		t.Errorf("reloaded Decide(kegg) = %v, want relevant", d)
	}
}

func TestOpenMissingAndVersionMismatch(t *testing.T) {
	st, err := Open(t.TempDir()+"/nope.json", time.Hour)
	if err != nil || st.Len() != 0 {
		t.Fatalf("missing file: (%v, %v), want empty store", st.Len(), err)
	}

	fed := testFed()
	path := t.TempDir() + "/catalog.json"
	st = NewStore(path, time.Hour)
	if err := Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	// Bump the version: summaries must be discarded, not misread.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 {
		t.Errorf("version-mismatched catalog kept %d summaries", re.Len())
	}
}

func TestStoreTTL(t *testing.T) {
	fed := testFed()
	st := NewStore("", time.Hour)
	if err := Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	if d := st.Decide(tp, "drugbank"); d != federation.TierIrrelevant {
		t.Fatalf("fresh Decide = %v, want irrelevant", d)
	}
	if _, ok := st.Cardinality(tp, "kegg"); !ok {
		t.Fatal("fresh store should answer cardinality")
	}
	if stale := st.Stale(fed.Names()); len(stale) != 0 {
		t.Fatalf("fresh store reports stale endpoints %v", stale)
	}

	// Two hours later everything is stale: decisions fall back to unknown,
	// cardinalities to probes, and Refresh rebuilds both summaries.
	st.setClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	if d := st.Decide(tp, "drugbank"); d != federation.TierUnknown {
		t.Errorf("stale Decide = %v, want unknown", d)
	}
	if _, ok := st.Cardinality(tp, "kegg"); ok {
		t.Error("stale store answered a cardinality")
	}
	if stale := st.Stale(fed.Names()); len(stale) != 2 {
		t.Errorf("stale = %v, want both endpoints", stale)
	}
	n, err := Refresh(context.Background(), fed, erh.New(4), st)
	if err != nil || n != 2 {
		t.Fatalf("Refresh = (%d, %v), want (2, nil)", n, err)
	}
	// The summaries were rebuilt at wall-clock now; seen from wall-clock
	// now they are fresh again.
	st.setClock(time.Now)
	if stale := st.Stale(fed.Names()); len(stale) != 0 {
		t.Errorf("post-refresh stale = %v", stale)
	}
	n, err = Refresh(context.Background(), fed, erh.New(4), st)
	if err != nil || n != 0 {
		t.Errorf("idempotent Refresh = (%d, %v), want (0, nil)", n, err)
	}
}

// TestStoreRace exercises concurrent lookups during a refresh; run with
// -race.
func TestStoreRace(t *testing.T) {
	fed := testFed()
	st := NewStore("", time.Hour)
	if err := Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := Build(context.Background(), fed, erh.New(2), st); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		st.Decide(tp, "drugbank")
		st.Cardinality(tp, "kegg")
		st.Fresh("kegg")
		st.Endpoints()
	}
	<-done
}
