package catalog

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/sparql"
)

// TestSelectorWithStore runs the real two-tier stack end to end: a fresh
// catalog answers source selection without traffic, the same catalog gone
// stale falls back to ASK probes, and both tiers agree on the sources.
func TestSelectorWithStore(t *testing.T) {
	var m client.Metrics
	base := testFed()
	var eps []client.Endpoint
	for _, ep := range base.Endpoints() {
		eps = append(eps, client.NewInstrumented(ep, &m))
	}
	fed := federation.MustNew(eps...)

	st := NewStore("", time.Hour)
	if err := Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	buildRequests := m.Snapshot().Requests

	sel := federation.NewSourceSelector(fed, erh.New(4))
	sel.SetCatalog(st)

	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://kegg.org/pathway"), O: sparql.Var("o")}
	fresh, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, []string{"kegg"}) {
		t.Errorf("fresh sources = %v, want [kegg]", fresh)
	}
	if n := m.Snapshot().Requests - buildRequests; n != 0 {
		t.Errorf("fresh catalog issued %d requests, want 0", n)
	}

	// The catalog goes stale: the selector must fall back to ASK probes and
	// still find the same sources.
	st.setClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
	sel.ClearCache()
	before := m.Snapshot().Asks
	stale, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stale, fresh) {
		t.Errorf("stale-path sources = %v, fresh-path = %v; tiers disagree", stale, fresh)
	}
	if n := m.Snapshot().Asks - before; n != int64(fed.Size()) {
		t.Errorf("stale catalog issued %d ASKs, want %d (every endpoint probed)", n, fed.Size())
	}

	// The ASK result was cached: a repeat lookup issues no traffic even
	// though the catalog is still stale.
	before = m.Snapshot().Asks
	if _, err := sel.RelevantSources(context.Background(), tp); err != nil {
		t.Fatal(err)
	}
	if n := m.Snapshot().Asks - before; n != 0 {
		t.Errorf("repeat lookup issued %d ASKs, want 0 (cache)", n)
	}
}
