package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// fileVersion guards the on-disk format; bump it when Summary changes
// incompatibly so old catalogs are rebuilt rather than misread.
const fileVersion = 1

// file is the on-disk shape of a catalog.
type file struct {
	Version   int        `json:"version"`
	SavedAt   time.Time  `json:"saved_at"`
	Summaries []*Summary `json:"summaries"`
}

// Store holds the endpoint summaries, answers tier decisions and
// cardinality estimates, and persists itself as JSON. It is safe for
// concurrent use: lookups may race with a background refresh.
type Store struct {
	mu         sync.RWMutex
	byEndpoint map[string]*Summary
	path       string        // "" = in-memory only
	ttl        time.Duration // <=0 = summaries never go stale
	now        func() time.Time

	// epoch counts summary mutations (Put, Drop, including background
	// refreshes). Plans and caches keyed on it are invalidated the moment
	// the catalog's answers could change.
	epoch atomic.Uint64

	staleLookups *obs.Counter
}

// Epoch returns the catalog's mutation epoch: it increases on every Put or
// Drop, so equal epochs imply identical tier decisions and cardinality
// answers (modulo TTL expiry, which callers bound separately).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// NewStore returns an empty catalog. path may be empty for an in-memory
// catalog; ttl <= 0 disables staleness (summaries stay fresh forever).
func NewStore(path string, ttl time.Duration) *Store {
	return &Store{
		byEndpoint:   map[string]*Summary{},
		path:         path,
		ttl:          ttl,
		now:          time.Now,
		staleLookups: obs.Default().Counter(obs.MetricCatalogStaleLookups, "catalog lookups that found only a stale summary"),
	}
}

// Open loads the catalog at path, or returns an empty store when the file
// does not exist yet. A version mismatch discards the stored summaries
// (they will be rebuilt) rather than failing.
func Open(path string, ttl time.Duration) (*Store, error) {
	s := NewStore(path, ttl)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: reading %s: %w", path, err)
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("catalog: parsing %s: %w", path, err)
	}
	if f.Version != fileVersion {
		return s, nil
	}
	for _, sum := range f.Summaries {
		if sum != nil && sum.Endpoint != "" {
			s.byEndpoint[sum.Endpoint] = sum
		}
	}
	return s, nil
}

// setClock overrides the store's clock (tests).
func (s *Store) setClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// TTL returns the configured staleness bound (<=0: never stale).
func (s *Store) TTL() time.Duration { return s.ttl }

// Path returns the persistence path ("" for in-memory catalogs).
func (s *Store) Path() string { return s.path }

// Len returns the number of summaries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byEndpoint)
}

// Endpoints returns the summarized endpoint names, sorted.
func (s *Store) Endpoints() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byEndpoint))
	for name := range s.byEndpoint {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Summary returns the stored summary for the endpoint regardless of
// freshness (inspection and refresh decisions).
func (s *Store) Summary(endpoint string) (*Summary, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sum, ok := s.byEndpoint[endpoint]
	return sum, ok
}

// Fresh returns the summary only when it exists and is within TTL.
func (s *Store) Fresh(endpoint string) (*Summary, bool) {
	s.mu.RLock()
	sum, ok := s.byEndpoint[endpoint]
	now, ttl := s.now(), s.ttl
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if !sum.Fresh(now, ttl) {
		s.staleLookups.Add(1)
		return nil, false
	}
	return sum, true
}

// Stale reports the subset of the given endpoints whose summary is missing
// or older than TTL, in input order.
func (s *Store) Stale(endpoints []string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := s.now()
	var out []string
	for _, name := range endpoints {
		if !s.byEndpoint[name].Fresh(now, s.ttl) {
			out = append(out, name)
		}
	}
	return out
}

// Put stores (or replaces) a summary.
func (s *Store) Put(sum *Summary) {
	if sum == nil || sum.Endpoint == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byEndpoint[sum.Endpoint] = sum
	s.epoch.Add(1)
}

// Drop removes the endpoint's summary, if any.
func (s *Store) Drop(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byEndpoint, endpoint)
	s.epoch.Add(1)
}

// Decide implements federation.CatalogTier: a fresh summary answers from
// its sketches; a missing or stale one yields TierUnknown so the selector
// falls back to an ASK probe.
func (s *Store) Decide(tp sparql.TriplePattern, endpoint string) federation.TierDecision {
	sum, ok := s.Fresh(endpoint)
	if !ok {
		return federation.TierUnknown
	}
	return sum.Decide(tp)
}

// Cardinality estimates the pattern's solution count at the endpoint from
// a fresh summary; ok=false asks the caller to issue a COUNT probe.
func (s *Store) Cardinality(tp sparql.TriplePattern, endpoint string) (float64, bool) {
	sum, ok := s.Fresh(endpoint)
	if !ok {
		return 0, false
	}
	return sum.Cardinality(tp)
}

// Save writes the catalog to its path atomically (temp file + rename).
// Saving an in-memory catalog (empty path) is a no-op.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	return s.SaveTo(s.path)
}

// SaveTo writes the catalog as JSON to the given path.
func (s *Store) SaveTo(path string) error {
	s.mu.RLock()
	f := file{Version: fileVersion, SavedAt: s.now().UTC()}
	for _, name := range s.endpointsLocked() {
		f.Summaries = append(f.Summaries, s.byEndpoint[name])
	}
	s.mu.RUnlock()

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: encoding: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".catalog-*.json")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("catalog: writing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("catalog: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// endpointsLocked returns sorted names; callers hold at least a read lock.
func (s *Store) endpointsLocked() []string {
	out := make([]string, 0, len(s.byEndpoint))
	for name := range s.byEndpoint {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
