// Package qplan holds the query-planning machinery shared by every
// federated engine in this repository (Lusail and the FedX/HiBISCuS/
// SPLENDID baselines): normalization of parsed queries into conjunctive
// branches, relation algebra over materialized result sets, and final
// solution-modifier application.
package qplan

import (
	"fmt"
	"lusail/internal/eval"
	"sort"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Branch is one conjunctive alternative of the query after UNION
// distribution: a set of triple patterns, filters, optional blocks, and
// inline data.
type Branch struct {
	Patterns  []sparql.TriplePattern
	Filters   []sparql.Expr
	Optionals []*OptionalBlock
	Values    []sparql.InlineData
}

// OptionalBlock is a top-level OPTIONAL group: its patterns and any filters
// scoped to it.
type OptionalBlock struct {
	Patterns []sparql.TriplePattern
	Filters  []sparql.Expr
}

// vars returns all variables bound anywhere in the Branch, sorted.
func (br *Branch) Vars() []string {
	seen := map[string]bool{}
	for _, tp := range br.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	for _, ob := range br.Optionals {
		for _, tp := range ob.Patterns {
			for _, v := range tp.Vars() {
				seen[v] = true
			}
		}
	}
	for _, vd := range br.Values {
		for _, v := range vd.Vars {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// normalize flattens the query's WHERE clause into conjunctive branches by
// distributing UNION blocks, and collects filters and optional groups.
// Federated evaluation then runs each Branch independently and unions the
// results (sound because UNION distributes over join).
func Normalize(q *sparql.Query) ([]*Branch, error) {
	base := &Branch{}
	branches := []*Branch{base}
	if err := flattenGroup(q.Where, &branches); err != nil {
		return nil, err
	}
	for _, br := range branches {
		if len(br.Patterns) == 0 && len(br.Optionals) == 0 {
			return nil, fmt.Errorf("lusail: query Branch has no triple patterns")
		}
	}
	return branches, nil
}

// flattenGroup merges the elements of g into every current Branch,
// multiplying branches at UNION blocks.
func flattenGroup(g *sparql.GroupPattern, branches *[]*Branch) error {
	for _, el := range g.Elements {
		switch el := el.(type) {
		case sparql.TriplePattern:
			for _, br := range *branches {
				br.Patterns = append(br.Patterns, el)
			}
		case sparql.Filter:
			for _, br := range *branches {
				br.Filters = append(br.Filters, el.Expr)
			}
		case sparql.InlineData:
			for _, br := range *branches {
				br.Values = append(br.Values, el)
			}
		case sparql.Optional:
			ob, err := flattenOptional(el.Group)
			if err != nil {
				return err
			}
			for _, br := range *branches {
				br.Optionals = append(br.Optionals, ob)
			}
		case sparql.Union:
			// Distribute: each existing Branch forks once per union Branch.
			var next []*Branch
			for _, ub := range el.Branches {
				forks := make([]*Branch, len(*branches))
				for i, br := range *branches {
					forks[i] = copyBranch(br)
				}
				if err := flattenGroup(ub, &forks); err != nil {
					return err
				}
				next = append(next, forks...)
			}
			*branches = next
		case sparql.SubSelect:
			return fmt.Errorf("lusail: nested SELECT in federated queries is not supported")
		case sparql.Bind:
			return fmt.Errorf("lusail: BIND in federated queries is not supported")
		default:
			return fmt.Errorf("lusail: unsupported pattern element %T", el)
		}
	}
	return nil
}

func flattenOptional(g *sparql.GroupPattern) (*OptionalBlock, error) {
	ob := &OptionalBlock{}
	for _, el := range g.Elements {
		switch el := el.(type) {
		case sparql.TriplePattern:
			ob.Patterns = append(ob.Patterns, el)
		case sparql.Filter:
			ob.Filters = append(ob.Filters, el.Expr)
		default:
			return nil, fmt.Errorf("lusail: unsupported element %T inside OPTIONAL", el)
		}
	}
	if len(ob.Patterns) == 0 {
		return nil, fmt.Errorf("lusail: OPTIONAL block without triple patterns")
	}
	return ob, nil
}

func copyBranch(br *Branch) *Branch {
	nb := &Branch{
		Patterns:  append([]sparql.TriplePattern(nil), br.Patterns...),
		Filters:   append([]sparql.Expr(nil), br.Filters...),
		Optionals: append([]*OptionalBlock(nil), br.Optionals...),
		Values:    append([]sparql.InlineData(nil), br.Values...),
	}
	return nb
}

// finalize applies the query's solution modifiers (aggregates, projection,
// DISTINCT, ORDER BY, LIMIT/OFFSET) to the global relation.
func Finalize(q *sparql.Query, rel *sparql.Results) (*sparql.Results, error) {
	if rel == nil {
		rel = EmptyRelation(nil)
	}
	if q.Form == sparql.AskForm {
		return sparql.BoolResults(len(rel.Rows) > 0), nil
	}
	if len(q.GroupBy) > 0 {
		bindings := make([]eval.Binding, len(rel.Rows))
		for i := range rel.Rows {
			bindings[i] = rel.Binding(i)
		}
		return eval.GroupAggregate(q, bindings)
	}
	if q.HasAggregates() {
		return aggregateRelation(q, rel)
	}
	// ProjectedVars returns the WHERE clause's sorted variables for
	// SELECT *, matching single-store evaluation exactly.
	vars := q.ProjectedVars()
	out := sparql.NewResults(vars)
	idx := make([]int, len(vars))
	for i, v := range vars {
		idx[i] = rel.VarIndex(v)
	}
	out.Rows = make([][]rdf.Term, len(rel.Rows))
	for r, row := range rel.Rows {
		nr := make([]rdf.Term, len(vars))
		for i, j := range idx {
			if j >= 0 {
				nr[i] = row[j]
			}
		}
		out.Rows[r] = nr
	}
	if len(q.OrderBy) > 0 {
		sortByOrder(out, q.OrderBy)
	}
	if q.Distinct {
		out.Rows = DistinctRows(out.Rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[q.Offset:]
		}
	}
	// Lusail's LIMIT strategy (noted in the paper's C4 discussion):
	// compute the complete result, then truncate.
	if q.Limit >= 0 && q.Limit < len(out.Rows) {
		out.Rows = out.Rows[:q.Limit]
	}
	return out, nil
}

func sortByOrder(res *sparql.Results, conds []sparql.OrderCond) {
	var idx []int
	var desc []bool
	for _, c := range conds {
		if i := res.VarIndex(c.Var); i >= 0 {
			idx = append(idx, i)
			desc = append(desc, c.Desc)
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, i := range idx {
			c := res.Rows[a][i].Compare(res.Rows[b][i])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func aggregateRelation(q *sparql.Query, rel *sparql.Results) (*sparql.Results, error) {
	vars := make([]string, len(q.Projection))
	row := make([]rdf.Term, len(q.Projection))
	for i, p := range q.Projection {
		vars[i] = p.Var
		if p.Agg == nil {
			return nil, fmt.Errorf("lusail: mixing variables and aggregates is not supported")
		}
		v, err := computeAggregate(p.Agg, rel)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	out := sparql.NewResults(vars)
	out.Rows = [][]rdf.Term{row}
	return out, nil
}

func computeAggregate(a *sparql.Aggregate, rel *sparql.Results) (rdf.Term, error) {
	switch a.Func {
	case "COUNT":
		if a.Var == "" {
			return rdf.NewInteger(int64(len(rel.Rows))), nil
		}
		idx := rel.VarIndex(a.Var)
		if idx < 0 {
			return rdf.NewInteger(0), nil
		}
		if a.Distinct {
			seen := map[rdf.Term]bool{}
			for _, row := range rel.Rows {
				if !row[idx].IsZero() {
					seen[row[idx]] = true
				}
			}
			return rdf.NewInteger(int64(len(seen))), nil
		}
		n := 0
		for _, row := range rel.Rows {
			if !row[idx].IsZero() {
				n++
			}
		}
		return rdf.NewInteger(int64(n)), nil
	case "SUM", "MIN", "MAX", "AVG":
		idx := rel.VarIndex(a.Var)
		var vals []float64
		if idx >= 0 {
			for _, row := range rel.Rows {
				if f, ok := row[idx].Numeric(); ok {
					vals = append(vals, f)
				}
			}
		}
		if len(vals) == 0 {
			return rdf.NewInteger(0), nil
		}
		agg := vals[0]
		for _, v := range vals[1:] {
			switch a.Func {
			case "SUM", "AVG":
				agg += v
			case "MIN":
				if v < agg {
					agg = v
				}
			case "MAX":
				if v > agg {
					agg = v
				}
			}
		}
		if a.Func == "AVG" {
			agg /= float64(len(vals))
		}
		return rdf.NewDouble(agg), nil
	}
	return rdf.Term{}, fmt.Errorf("lusail: unsupported aggregate %s", a.Func)
}
