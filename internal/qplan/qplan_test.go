package qplan

import (
	"reflect"
	"sort"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func rel(vars []string, rows ...[]rdf.Term) *sparql.Results {
	r := sparql.NewResults(vars)
	r.Rows = rows
	return r
}

func row(vals ...string) []rdf.Term {
	out := make([]rdf.Term, len(vals))
	for i, v := range vals {
		if v != "" {
			out[i] = iri(v)
		}
	}
	return out
}

func TestNormalizeConjunctive(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . FILTER(?a != ?c) }`)
	branches, err := Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 {
		t.Fatalf("branches = %d", len(branches))
	}
	br := branches[0]
	if len(br.Patterns) != 2 || len(br.Filters) != 1 {
		t.Errorf("patterns=%d filters=%d", len(br.Patterns), len(br.Filters))
	}
}

func TestNormalizeUnionDistribution(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://p> ?b .
		{ ?b <http://q> ?c } UNION { ?b <http://r> ?c }
		{ ?c <http://s> ?d } UNION { ?c <http://t> ?d }
	}`)
	branches, err := Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 4 {
		t.Fatalf("branches = %d, want 4 (2x2 distribution)", len(branches))
	}
	for _, br := range branches {
		if len(br.Patterns) != 3 {
			t.Errorf("branch patterns = %d, want 3", len(br.Patterns))
		}
	}
}

func TestNormalizeOptionalAndValues(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://p> ?b .
		OPTIONAL { ?b <http://q> ?c . FILTER(?c != <http://x>) }
		VALUES ?a { <http://v1> }
	}`)
	branches, err := Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	br := branches[0]
	if len(br.Optionals) != 1 || len(br.Optionals[0].Patterns) != 1 || len(br.Optionals[0].Filters) != 1 {
		t.Errorf("optionals = %+v", br.Optionals)
	}
	if len(br.Values) != 1 {
		t.Errorf("values = %d", len(br.Values))
	}
	vars := br.Vars()
	if !reflect.DeepEqual(vars, []string{"a", "b", "c"}) {
		t.Errorf("vars = %v", vars)
	}
}

func TestNormalizeRejectsEmptyAndUnsupported(t *testing.T) {
	bad := []string{
		`SELECT * WHERE { FILTER(1 = 1) }`,                                                 // no patterns
		`SELECT * WHERE { ?a <http://p> ?b . BIND(?a AS ?x) }`,                             // BIND
		`SELECT * WHERE { { SELECT ?a WHERE { ?a <http://p> ?b } } }`,                      // nested select
		`SELECT * WHERE { ?a <http://p> ?b . OPTIONAL { OPTIONAL { ?b <http://q> ?c } } }`, // nested optional
	}
	for _, in := range bad {
		q := sparql.MustParse(in)
		if _, err := Normalize(q); err == nil {
			t.Errorf("Normalize(%q) should fail", in)
		}
	}
}

func TestUnionRelationsAligns(t *testing.T) {
	a := rel([]string{"x", "y"}, row("1", "2"))
	b := rel([]string{"y", "z"}, row("3", "4"))
	u := UnionRelations(a, b)
	if !reflect.DeepEqual(u.Vars, []string{"x", "y", "z"}) {
		t.Fatalf("vars = %v", u.Vars)
	}
	if len(u.Rows) != 2 {
		t.Fatalf("rows = %d", len(u.Rows))
	}
	if u.Rows[0][2].IsZero() == false || u.Rows[1][0].IsZero() == false {
		t.Error("missing columns should be unbound")
	}
	if u.Rows[1][1] != iri("3") || u.Rows[1][2] != iri("4") {
		t.Errorf("row alignment wrong: %v", u.Rows[1])
	}
}

func TestUnionRelationsNil(t *testing.T) {
	a := rel([]string{"x"}, row("1"))
	if UnionRelations(nil, a) != a || UnionRelations(a, nil) != a {
		t.Error("nil union should return the other side")
	}
}

func TestHashJoinShared(t *testing.T) {
	a := rel([]string{"x", "y"}, row("a1", "k1"), row("a2", "k2"), row("a3", "k9"))
	b := rel([]string{"y", "z"}, row("k1", "b1"), row("k2", "b2"), row("k2", "b3"))
	j := HashJoin(a, b)
	if len(j.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(j.Rows))
	}
	if !reflect.DeepEqual(j.Vars, []string{"x", "y", "z"}) {
		t.Errorf("vars = %v", j.Vars)
	}
}

func TestHashJoinCrossProduct(t *testing.T) {
	a := rel([]string{"x"}, row("1"), row("2"))
	b := rel([]string{"y"}, row("3"), row("4"), row("5"))
	j := HashJoin(a, b)
	if len(j.Rows) != 6 {
		t.Errorf("cross product rows = %d, want 6", len(j.Rows))
	}
}

func TestHashJoinUnboundKeyRowsDropped(t *testing.T) {
	a := rel([]string{"x", "y"}, row("a1", "k1"), row("a2", "")) // a2's y unbound
	b := rel([]string{"y", "z"}, row("k1", "b1"))
	j := HashJoin(a, b)
	if len(j.Rows) != 1 {
		t.Errorf("rows = %d, want 1 (unbound key does not inner-join)", len(j.Rows))
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	a := rel([]string{"x", "y"}, row("a1", "k1"), row("a2", "k9"))
	b := rel([]string{"y", "z"}, row("k1", "b1"))
	j := LeftJoin(a, b)
	if len(j.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(j.Rows))
	}
	matched, unmatched := 0, 0
	zIdx := j.VarIndex("z")
	for _, r := range j.Rows {
		if r[zIdx].IsZero() {
			unmatched++
		} else {
			matched++
		}
	}
	if matched != 1 || unmatched != 1 {
		t.Errorf("matched=%d unmatched=%d", matched, unmatched)
	}
}

func TestDistinctRows(t *testing.T) {
	rows := [][]rdf.Term{row("a"), row("a"), row("b")}
	got := DistinctRows(rows)
	if len(got) != 2 {
		t.Errorf("distinct rows = %d", len(got))
	}
	// Kind matters: an IRI and a literal with the same text are distinct.
	rows = [][]rdf.Term{{rdf.NewIRI("x")}, {rdf.NewLiteral("x")}}
	if got := DistinctRows(rows); len(got) != 2 {
		t.Errorf("IRI vs literal collapsed: %d", len(got))
	}
}

func TestProjectDistinct(t *testing.T) {
	r := rel([]string{"x", "y", "z"},
		row("a", "k", "1"), row("a", "k", "2"), row("b", "k", "3"), row("c", "", "4"))
	got := ProjectDistinct(r, []string{"x", "y"})
	if len(got) != 2 { // (a,k), (b,k); (c,unbound) skipped
		t.Errorf("projected rows = %d: %v", len(got), got)
	}
}

func TestApplyFilters(t *testing.T) {
	r := rel([]string{"x"}, []rdf.Term{rdf.NewInteger(1)}, []rdf.Term{rdf.NewInteger(5)})
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://p> ?x . FILTER(?x > 3) }`)
	var f sparql.Expr
	for _, el := range q.Where.Elements {
		if ff, ok := el.(sparql.Filter); ok {
			f = ff.Expr
		}
	}
	out := ApplyFilters(r, []sparql.Expr{f})
	if len(out.Rows) != 1 {
		t.Errorf("filtered rows = %d", len(out.Rows))
	}
	// A filter referencing an absent variable errors → removes all rows.
	q2 := sparql.MustParse(`SELECT * WHERE { ?s <http://p> ?x . FILTER(?missing > 3) }`)
	var f2 sparql.Expr
	for _, el := range q2.Where.Elements {
		if ff, ok := el.(sparql.Filter); ok {
			f2 = ff.Expr
		}
	}
	out = ApplyFilters(r, []sparql.Expr{f2})
	if len(out.Rows) != 0 {
		t.Errorf("error filter kept %d rows", len(out.Rows))
	}
}

func TestFinalizeProjectionOrderLimit(t *testing.T) {
	q := sparql.MustParse(`SELECT ?y ?x WHERE { ?x <http://p> ?y } ORDER BY DESC(?x) LIMIT 2 OFFSET 1`)
	r := rel([]string{"x", "y"}, row("a", "1"), row("b", "2"), row("c", "3"), row("d", "4"))
	out, err := Finalize(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Vars, []string{"y", "x"}) {
		t.Errorf("vars = %v", out.Vars)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	// DESC(?x): d,c,b,a → offset 1 → c,b
	if out.Rows[0][1] != iri("c") || out.Rows[1][1] != iri("b") {
		t.Errorf("order/offset wrong: %v", out.Rows)
	}
}

func TestFinalizeAsk(t *testing.T) {
	q := sparql.MustParse(`ASK { ?x <http://p> ?y }`)
	out, err := Finalize(q, rel([]string{"x"}, row("a")))
	if err != nil || !out.IsBoolean || !out.Boolean {
		t.Errorf("ASK finalize = %+v, %v", out, err)
	}
	out, err = Finalize(q, rel([]string{"x"}))
	if err != nil || out.Boolean {
		t.Errorf("empty ASK finalize = %+v, %v", out, err)
	}
}

func TestFinalizeAggregates(t *testing.T) {
	q := sparql.MustParse(`SELECT (COUNT(DISTINCT ?x) AS ?c) (MAX(?n) AS ?m) WHERE { ?x <http://p> ?n }`)
	r := sparql.NewResults([]string{"x", "n"})
	r.Rows = [][]rdf.Term{
		{iri("a"), rdf.NewInteger(3)},
		{iri("a"), rdf.NewInteger(7)},
		{iri("b"), rdf.NewInteger(5)},
	}
	out, err := Finalize(q, r)
	if err != nil {
		t.Fatal(err)
	}
	b := out.Binding(0)
	if b["c"] != rdf.NewInteger(2) {
		t.Errorf("count = %v", b["c"])
	}
	if f, _ := b["m"].Numeric(); f != 7 {
		t.Errorf("max = %v", b["m"])
	}
}

func TestFinalizeDistinct(t *testing.T) {
	q := sparql.MustParse(`SELECT DISTINCT ?x WHERE { ?x <http://p> ?y }`)
	r := rel([]string{"x", "y"}, row("a", "1"), row("a", "2"))
	out, err := Finalize(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Errorf("distinct rows = %d", len(out.Rows))
	}
}

func TestSharedVarsOrder(t *testing.T) {
	a := rel([]string{"x", "y", "z"})
	b := rel([]string{"z", "y", "w"})
	got := SharedVars(a, b)
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"y", "z"}) {
		t.Errorf("shared = %v", got)
	}
}
