package qplan

import (
	"lusail/internal/eval"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Relation helpers: all federated intermediate results are represented as
// *sparql.Results (a variable header plus rows of terms).

func EmptyRelation(vars []string) *sparql.Results {
	return sparql.NewResults(vars)
}

// UnionRelations concatenates two relations, aligning columns by variable
// name. Variables missing in one side are unbound in its rows. Duplicate
// rows are preserved; set semantics is applied at finalize/dedupe points.
func UnionRelations(a, b *sparql.Results) *sparql.Results {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	vars := append([]string(nil), a.Vars...)
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v] = true
	}
	for _, v := range b.Vars {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	out := sparql.NewResults(vars)
	out.Rows = make([][]rdf.Term, 0, len(a.Rows)+len(b.Rows))
	appendAligned := func(src *sparql.Results) {
		idx := make([]int, len(vars))
		for i, v := range vars {
			idx[i] = src.VarIndex(v)
		}
		for _, row := range src.Rows {
			nr := make([]rdf.Term, len(vars))
			for i, j := range idx {
				if j >= 0 {
					nr[i] = row[j]
				}
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	appendAligned(a)
	appendAligned(b)
	return out
}

// DistinctRows removes duplicate rows (set semantics).
func DistinctRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := make(map[string]bool, len(rows))
	out := make([][]rdf.Term, 0, len(rows))
	for _, row := range rows {
		k := TermsKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}

func TermsKey(row []rdf.Term) string {
	var b []byte
	for _, t := range row {
		b = append(b, byte(t.Kind))
		b = append(b, t.Value...)
		b = append(b, 1)
		b = append(b, t.Lang...)
		b = append(b, 2)
		b = append(b, t.Datatype...)
		b = append(b, 0)
	}
	return string(b)
}

// SharedVars returns variables common to both relations.
func SharedVars(a, b *sparql.Results) []string {
	var out []string
	for _, v := range a.Vars {
		if b.VarIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// JoinKey builds the hash key of a row over the given column indexes; the
// second return is false when any key column is unbound (such rows do not
// participate in an inner join on that key).
func JoinKey(row []rdf.Term, idx []int) (string, bool) {
	var b []byte
	for _, i := range idx {
		t := row[i]
		if t.IsZero() {
			return "", false
		}
		b = append(b, byte(t.Kind))
		b = append(b, t.Value...)
		b = append(b, 1)
		b = append(b, t.Lang...)
		b = append(b, 2)
		b = append(b, t.Datatype...)
		b = append(b, 0)
	}
	return string(b), true
}

// HashJoin inner-joins two relations on their shared variables using an
// in-memory hash join: build on the smaller side, probe with the larger
// (the paper's join evaluation, Section 4.2). With no shared variables it
// degenerates to a cross product.
func HashJoin(a, b *sparql.Results) *sparql.Results {
	if len(a.Rows) > len(b.Rows) {
		a, b = b, a // build on the smaller relation
	}
	shared := SharedVars(a, b)
	outVars := append([]string(nil), a.Vars...)
	var bExtraIdx []int
	for i, v := range b.Vars {
		if a.VarIndex(v) < 0 {
			outVars = append(outVars, v)
			bExtraIdx = append(bExtraIdx, i)
		}
	}
	out := sparql.NewResults(outVars)

	if len(shared) == 0 {
		for _, ra := range a.Rows {
			for _, rb := range b.Rows {
				nr := make([]rdf.Term, 0, len(outVars))
				nr = append(nr, ra...)
				for _, i := range bExtraIdx {
					nr = append(nr, rb[i])
				}
				out.Rows = append(out.Rows, nr)
			}
		}
		return out
	}

	aIdx := make([]int, len(shared))
	bIdx := make([]int, len(shared))
	for i, v := range shared {
		aIdx[i] = a.VarIndex(v)
		bIdx[i] = b.VarIndex(v)
	}
	table := make(map[string][][]rdf.Term, len(a.Rows))
	for _, ra := range a.Rows {
		if k, ok := JoinKey(ra, aIdx); ok {
			table[k] = append(table[k], ra)
		}
	}
	for _, rb := range b.Rows {
		k, ok := JoinKey(rb, bIdx)
		if !ok {
			continue
		}
		for _, ra := range table[k] {
			nr := make([]rdf.Term, 0, len(outVars))
			nr = append(nr, ra...)
			for _, i := range bExtraIdx {
				nr = append(nr, rb[i])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// LeftJoin extends each row of a with compatible rows of b, keeping rows of
// a without matches (OPTIONAL semantics at the global level).
func LeftJoin(a, b *sparql.Results) *sparql.Results {
	shared := SharedVars(a, b)
	outVars := append([]string(nil), a.Vars...)
	var bExtraIdx []int
	for i, v := range b.Vars {
		if a.VarIndex(v) < 0 {
			outVars = append(outVars, v)
			bExtraIdx = append(bExtraIdx, i)
		}
	}
	out := sparql.NewResults(outVars)

	aIdx := make([]int, len(shared))
	bIdx := make([]int, len(shared))
	for i, v := range shared {
		aIdx[i] = a.VarIndex(v)
		bIdx[i] = b.VarIndex(v)
	}
	table := make(map[string][][]rdf.Term, len(b.Rows))
	for _, rb := range b.Rows {
		if k, ok := JoinKey(rb, bIdx); ok {
			table[k] = append(table[k], rb)
		}
	}
	for _, ra := range a.Rows {
		var matches [][]rdf.Term
		if len(shared) == 0 {
			matches = b.Rows
		} else if k, ok := JoinKey(ra, aIdx); ok {
			matches = table[k]
		}
		if len(matches) == 0 {
			nr := make([]rdf.Term, len(outVars))
			copy(nr, ra)
			out.Rows = append(out.Rows, nr)
			continue
		}
		for _, rb := range matches {
			nr := make([]rdf.Term, 0, len(outVars))
			nr = append(nr, ra...)
			for _, i := range bExtraIdx {
				nr = append(nr, rb[i])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// ProjectDistinct returns the distinct rows of the relation restricted to
// the given variables (used to build VALUES blocks for bound joins).
func ProjectDistinct(rel *sparql.Results, vars []string) [][]rdf.Term {
	idx := make([]int, len(vars))
	for i, v := range vars {
		idx[i] = rel.VarIndex(v)
	}
	seen := map[string]bool{}
	var out [][]rdf.Term
	for _, row := range rel.Rows {
		nr := make([]rdf.Term, len(vars))
		skip := false
		for i, j := range idx {
			if j < 0 || row[j].IsZero() {
				skip = true
				break
			}
			nr[i] = row[j]
		}
		if skip {
			continue
		}
		k := TermsKey(nr)
		if !seen[k] {
			seen[k] = true
			out = append(out, nr)
		}
	}
	return out
}

// ApplyFilters keeps only rows satisfying all expressions. Expressions that
// reference variables absent from the relation are evaluated with those
// variables unbound (per SPARQL, an erroring filter drops the row).
func ApplyFilters(rel *sparql.Results, filters []sparql.Expr) *sparql.Results {
	if len(filters) == 0 || len(rel.Rows) == 0 {
		return rel
	}
	out := sparql.NewResults(rel.Vars)
	for i, row := range rel.Rows {
		b := rel.Binding(i)
		keep := true
		for _, f := range filters {
			if !eval.FilterBinding(f, b) {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}
