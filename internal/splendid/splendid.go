// Package splendid implements the SPLENDID baseline (Görlitz & Staab,
// COLD 2011) from the paper's comparison: an index-based federated engine
// driven by VoID-style statistics.
//
// SPLENDID precomputes per-endpoint VoID descriptors (triple counts, per-
// predicate counts, per-class counts), selects sources from the index (with
// ASK fallback for constant subjects/objects), orders joins with the
// statistics, and picks per-join between fully materializing both sides
// (hash join) and shipping bindings (bind join). Its tendency to
// materialize large intermediate relations is what makes it time out on the
// paper's complex and large queries.
package splendid

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// VoID is the statistics descriptor of one endpoint.
type VoID struct {
	Triples    int
	Predicates map[string]int // predicate IRI -> triple count
	Classes    map[string]int // class IRI -> instance count
}

// Index is the federation-wide VoID catalog.
type Index struct {
	byEndpoint map[string]*VoID
	BuildTime  time.Duration
}

// BuildIndex gathers VoID statistics from every endpoint (the offline
// preprocessing phase; its cost scales with data size).
func BuildIndex(ctx context.Context, fed *federation.Federation, pool *erh.Pool) (*Index, error) {
	start := time.Now()
	idx := &Index{byEndpoint: map[string]*VoID{}}
	var mu sync.Mutex
	eps := fed.Endpoints()
	err := pool.ForEach(ctx, len(eps), func(i int) error {
		v, err := describeEndpoint(ctx, eps[i])
		if err != nil {
			return err
		}
		mu.Lock()
		idx.byEndpoint[eps[i].Name()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	idx.BuildTime = time.Since(start)
	return idx, nil
}

func describeEndpoint(ctx context.Context, ep client.Endpoint) (*VoID, error) {
	v := &VoID{Predicates: map[string]int{}, Classes: map[string]int{}}
	res, err := ep.Query(ctx, `SELECT ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		return nil, fmt.Errorf("splendid: describing %s: %w", ep.Name(), err)
	}
	pi, oi := res.VarIndex("p"), res.VarIndex("o")
	for _, row := range res.Rows {
		v.Triples++
		pred := row[pi].Value
		v.Predicates[pred]++
		if pred == rdf.RDFType && row[oi].IsIRI() {
			v.Classes[row[oi].Value]++
		}
	}
	return v, nil
}

// Options configures SPLENDID.
type Options struct {
	// PoolSize bounds concurrent endpoint requests (<=0: NumCPU).
	PoolSize int
	// BindJoinThreshold: when the bound side has at most this many rows,
	// use a bind join instead of fully materializing the other side.
	BindJoinThreshold int
	// BindBlockSize is the VALUES block size for bind joins.
	BindBlockSize int
}

// Engine is the SPLENDID baseline engine.
type Engine struct {
	fed  *federation.Federation
	pool *erh.Pool
	idx  *Index
	sel  *federation.SourceSelector // ASK fallback
	opts Options
}

// New returns a SPLENDID engine over a prebuilt VoID index.
func New(fed *federation.Federation, idx *Index, opts Options) *Engine {
	if opts.BindJoinThreshold <= 0 {
		opts.BindJoinThreshold = 100
	}
	if opts.BindBlockSize <= 0 {
		opts.BindBlockSize = 20
	}
	pool := erh.New(opts.PoolSize)
	return &Engine{
		fed:  fed,
		pool: pool,
		idx:  idx,
		sel:  federation.NewSourceSelector(fed, pool),
		opts: opts,
	}
}

// QueryString parses and executes a federated query.
func (e *Engine) QueryString(ctx context.Context, query string) (*sparql.Results, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Query(ctx, q)
}

// Query executes a parsed query.
func (e *Engine) Query(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	branches, err := qplan.Normalize(q)
	if err != nil {
		return nil, err
	}
	var all *sparql.Results
	for _, br := range branches {
		rel, err := e.evalBranch(ctx, br)
		if err != nil {
			return nil, err
		}
		if all == nil {
			all = rel
		} else {
			all = qplan.UnionRelations(all, rel)
		}
	}
	if all != nil {
		all.Rows = qplan.DistinctRows(all.Rows)
	}
	return qplan.Finalize(q, all)
}

func (e *Engine) evalBranch(ctx context.Context, br *qplan.Branch) (*sparql.Results, error) {
	type step struct {
		tp      sparql.TriplePattern
		sources []string
		est     float64
	}
	steps := make([]*step, len(br.Patterns))
	for i, tp := range br.Patterns {
		srcs, err := e.selectSources(ctx, tp)
		if err != nil {
			return nil, err
		}
		if len(srcs) == 0 {
			return qplan.EmptyRelation(br.Vars()), nil
		}
		steps[i] = &step{tp: tp, sources: srcs, est: e.estimate(tp, srcs)}
	}

	// Join order: statistics-driven greedy — cheapest estimated pattern
	// first, then the connected pattern with the lowest estimate.
	var order []*step
	used := make([]bool, len(steps))
	bound := map[string]bool{}
	for len(order) < len(steps) {
		best, bestScore := -1, 0.0
		for i, st := range steps {
			if used[i] {
				continue
			}
			score := st.est
			connected := false
			for _, v := range st.tp.Vars() {
				if bound[v] {
					connected = true
				}
			}
			if len(order) > 0 && !connected {
				score *= 1e6 // avoid cross products
			}
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		order = append(order, steps[best])
		used[best] = true
		for _, v := range steps[best].tp.Vars() {
			bound[v] = true
		}
	}

	var rel *sparql.Results
	for _, st := range order {
		var err error
		if rel == nil {
			rel, err = e.fetchPattern(ctx, st.tp, st.sources, nil)
		} else if len(rel.Rows) <= e.opts.BindJoinThreshold {
			// Bind join: ship current bindings.
			rel, err = e.bindJoin(ctx, rel, st.tp, st.sources)
		} else {
			// Hash join: materialize the pattern fully (SPLENDID's
			// expensive habit on unselective queries).
			var right *sparql.Results
			right, err = e.fetchPattern(ctx, st.tp, st.sources, nil)
			if err == nil {
				rel = qplan.HashJoin(rel, right)
			}
		}
		if err != nil {
			return nil, err
		}
		if len(rel.Rows) == 0 {
			return qplan.EmptyRelation(br.Vars()), nil
		}
	}
	if rel == nil {
		rel = qplan.EmptyRelation(nil)
	}

	for _, ob := range br.Optionals {
		orel, err := e.evalOptional(ctx, ob)
		if err != nil {
			return nil, err
		}
		rel = qplan.LeftJoin(rel, orel)
	}
	rel = qplan.ApplyFilters(rel, br.Filters)
	return rel, nil
}

// selectSources uses the VoID index for variable-subject/object patterns
// and ASK probes when constants make the index inconclusive.
func (e *Engine) selectSources(ctx context.Context, tp sparql.TriplePattern) ([]string, error) {
	var candidates []string
	for name, v := range e.idx.byEndpoint {
		ok := true
		if !tp.P.IsVar() {
			if tp.P.Term.Value == rdf.RDFType && !tp.O.IsVar() && tp.O.Term.IsIRI() {
				ok = v.Classes[tp.O.Term.Value] > 0
			} else {
				ok = v.Predicates[tp.P.Term.Value] > 0
			}
		} else {
			ok = v.Triples > 0
		}
		if ok {
			candidates = append(candidates, name)
		}
	}
	// Keep federation order deterministic.
	candidates = federation.IntersectSources(e.fed.Names(), candidates)
	// Constant subject or object: confirm with ASK (the index has no
	// per-instance information).
	if (!tp.S.IsVar() || (!tp.O.IsVar() && tp.P.IsVar())) && len(candidates) > 0 {
		confirmed := make([]bool, len(candidates))
		ask := sparql.NewAsk()
		ask.Where.Elements = append(ask.Where.Elements, tp)
		text := ask.String()
		err := e.pool.ForEach(ctx, len(candidates), func(i int) error {
			ok, err := client.Ask(ctx, e.fed.Get(candidates[i]), text)
			if err != nil {
				return err
			}
			confirmed[i] = ok
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("splendid: ASK fallback: %w", err)
		}
		var out []string
		for i, ok := range confirmed {
			if ok {
				out = append(out, candidates[i])
			}
		}
		return out, nil
	}
	return candidates, nil
}

// estimate returns the VoID-based cardinality estimate of a pattern.
func (e *Engine) estimate(tp sparql.TriplePattern, sources []string) float64 {
	total := 0.0
	for _, name := range sources {
		v := e.idx.byEndpoint[name]
		if v == nil {
			continue
		}
		switch {
		case !tp.P.IsVar() && tp.P.Term.Value == rdf.RDFType && !tp.O.IsVar() && tp.O.Term.IsIRI():
			total += float64(v.Classes[tp.O.Term.Value])
		case !tp.P.IsVar():
			c := float64(v.Predicates[tp.P.Term.Value])
			if !tp.S.IsVar() || !tp.O.IsVar() {
				c /= 10 // constants are selective; VoID has no finer data
			}
			total += c
		default:
			total += float64(v.Triples)
		}
	}
	return total
}

func patternQuery(tp sparql.TriplePattern, values *sparql.InlineData) string {
	q := sparql.NewSelect(tp.Vars()...)
	q.Distinct = true
	q.Where.Elements = append(q.Where.Elements, tp)
	if values != nil {
		q.Where.Elements = append(q.Where.Elements, *values)
	}
	return q.String()
}

// fetchPattern retrieves all matches of a pattern from its sources.
func (e *Engine) fetchPattern(ctx context.Context, tp sparql.TriplePattern, sources []string, values *sparql.InlineData) (*sparql.Results, error) {
	partial := make([]*sparql.Results, len(sources))
	err := e.pool.ForEach(ctx, len(sources), func(i int) error {
		res, err := e.fed.Get(sources[i]).Query(ctx, patternQuery(tp, values))
		if err != nil {
			return fmt.Errorf("splendid: fetch at %s: %w", sources[i], err)
		}
		partial[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rel := qplan.EmptyRelation(tp.Vars())
	for _, p := range partial {
		rel = qplan.UnionRelations(rel, p)
	}
	rel.Rows = qplan.DistinctRows(rel.Rows)
	return rel, nil
}

// bindJoin ships the current bindings to the pattern's sources in blocks.
func (e *Engine) bindJoin(ctx context.Context, rel *sparql.Results, tp sparql.TriplePattern, sources []string) (*sparql.Results, error) {
	var shared []string
	for _, v := range tp.Vars() {
		if rel.VarIndex(v) >= 0 {
			shared = append(shared, v)
		}
	}
	if len(shared) == 0 {
		right, err := e.fetchPattern(ctx, tp, sources, nil)
		if err != nil {
			return nil, err
		}
		return qplan.HashJoin(rel, right), nil
	}
	rows := qplan.ProjectDistinct(rel, shared)
	right := qplan.EmptyRelation(tp.Vars())
	for start := 0; start < len(rows); start += e.opts.BindBlockSize {
		end := start + e.opts.BindBlockSize
		if end > len(rows) {
			end = len(rows)
		}
		block := sparql.InlineData{Vars: shared, Rows: rows[start:end]}
		part, err := e.fetchPattern(ctx, tp, sources, &block)
		if err != nil {
			return nil, err
		}
		right = qplan.UnionRelations(right, part)
	}
	right.Rows = qplan.DistinctRows(right.Rows)
	return qplan.HashJoin(rel, right), nil
}

func (e *Engine) evalOptional(ctx context.Context, ob *qplan.OptionalBlock) (*sparql.Results, error) {
	var rel *sparql.Results
	for _, tp := range ob.Patterns {
		srcs, err := e.selectSources(ctx, tp)
		if err != nil {
			return nil, err
		}
		right, err := e.fetchPattern(ctx, tp, srcs, nil)
		if err != nil {
			return nil, err
		}
		if rel == nil {
			rel = right
		} else {
			rel = qplan.HashJoin(rel, right)
		}
	}
	if rel == nil {
		rel = qplan.EmptyRelation(nil)
	}
	return qplan.ApplyFilters(rel, ob.Filters), nil
}
