package splendid

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/eval"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

const ub = "http://lubm.org/ub#"

func u(s string) rdf.Term { return rdf.NewIRI(ub + s) }

func smallFed(n int) (*federation.Federation, *store.Store) {
	typ := rdf.NewIRI(rdf.RDFType)
	oracle := store.New()
	var eps []client.Endpoint
	for uni := 0; uni < n; uni++ {
		var triples []rdf.Triple
		for s := 0; s < 5; s++ {
			stu := u(fmt.Sprintf("u%d_s%d", uni, s))
			prof := u(fmt.Sprintf("u%d_p%d", uni, s%2))
			triples = append(triples,
				rdf.Triple{S: stu, P: typ, O: u("Student")},
				rdf.Triple{S: stu, P: u("advisor"), O: prof},
				rdf.Triple{S: prof, P: u("PhDDegreeFrom"), O: u("univ0")},
			)
		}
		if uni == 0 {
			triples = append(triples, rdf.Triple{S: u("univ0"), P: u("address"), O: rdf.NewLiteral("Addr0")})
		}
		oracle.AddAll(triples)
		eps = append(eps, client.NewInProcess(fmt.Sprintf("uni%d", uni), store.NewFromTriples(triples)))
	}
	return federation.MustNew(eps...), oracle
}

func buildEngine(t *testing.T, fed *federation.Federation) *Engine {
	t.Helper()
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	return New(fed, idx, Options{})
}

func TestVoIDIndex(t *testing.T) {
	fed, _ := smallFed(2)
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	v := idx.byEndpoint["uni0"]
	if v == nil {
		t.Fatal("missing uni0 VoID")
	}
	if v.Predicates[ub+"advisor"] != 5 {
		t.Errorf("advisor count = %d, want 5", v.Predicates[ub+"advisor"])
	}
	if v.Classes[ub+"Student"] != 5 {
		t.Errorf("Student class count = %d, want 5", v.Classes[ub+"Student"])
	}
	if idx.BuildTime <= 0 {
		t.Error("BuildTime missing")
	}
}

func TestSourceSelectionFromIndex(t *testing.T) {
	fed, _ := smallFed(2)
	e := buildEngine(t, fed)
	// address only exists at uni0.
	tp := sparql.TriplePattern{S: sparql.Var("u"), P: sparql.IRI(ub + "address"), O: sparql.Var("a")}
	srcs, err := e.selectSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcs, []string{"uni0"}) {
		t.Errorf("sources = %v", srcs)
	}
	// Class-based selection via rdf:type.
	tp2 := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI(rdf.RDFType), O: sparql.IRI(ub + "Student")}
	srcs, _ = e.selectSources(context.Background(), tp2)
	if len(srcs) != 2 {
		t.Errorf("Student sources = %v", srcs)
	}
}

func TestSplendidMatchesOracle(t *testing.T) {
	fed, oracle := smallFed(3)
	e := buildEngine(t, fed)
	queries := []string{
		`PREFIX ub: <http://lubm.org/ub#>
		 SELECT ?s ?p WHERE { ?s ub:advisor ?p . ?p ub:PhDDegreeFrom ?u0 . ?u0 ub:address ?a }`,
		`PREFIX ub: <http://lubm.org/ub#>
		 PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		 SELECT ?s WHERE { ?s rdf:type ub:Student . ?s ub:advisor ?p }`,
	}
	for _, q := range queries {
		got, err := e.QueryString(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got.Rows = qplan.DistinctRows(got.Rows)
		got.Sort()
		want, err := eval.New(oracle).QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		want.Rows = qplan.DistinctRows(want.Rows)
		want.Sort()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("query %s: got %d rows want %d", q, len(got.Rows), len(want.Rows))
		}
	}
}

func TestBindVsHashJoinThreshold(t *testing.T) {
	fed, oracle := smallFed(2)
	// Force hash joins by setting the threshold to zero rows.
	idx, err := BuildIndex(context.Background(), fed, erh.New(4))
	if err != nil {
		t.Fatal(err)
	}
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?s ?p WHERE { ?s ub:advisor ?p . ?p ub:PhDDegreeFrom ?u }`
	for _, threshold := range []int{1, 1000} {
		e := New(fed, idx, Options{BindJoinThreshold: threshold, BindBlockSize: 2})
		got, err := e.QueryString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got.Rows = qplan.DistinctRows(got.Rows)
		got.Sort()
		want, _ := eval.New(oracle).QueryString(q)
		want.Rows = qplan.DistinctRows(want.Rows)
		want.Sort()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("threshold %d: results differ", threshold)
		}
	}
}

func TestSplendidOptional(t *testing.T) {
	fed, oracle := smallFed(2)
	e := buildEngine(t, fed)
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?p ?a WHERE {
	        ?p ub:PhDDegreeFrom ?u .
	        OPTIONAL { ?u ub:address ?a }
	      }`
	got, err := e.QueryString(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got.Rows = qplan.DistinctRows(got.Rows)
	got.Sort()
	want, _ := eval.New(oracle).QueryString(q)
	want.Rows = qplan.DistinctRows(want.Rows)
	want.Sort()
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("got %d rows want %d", len(got.Rows), len(want.Rows))
	}
}
