package eval

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// errExpr signals a SPARQL expression evaluation error; per the spec, a
// FILTER whose expression errors removes the solution.
var errExpr = fmt.Errorf("expression error")

// emptyEvaluator backs FilterBinding: expression evaluation over no graph.
var emptyEvaluator = New(store.New())

// evalEBV evaluates an expression and converts it to its effective boolean
// value.
func evalEBV(e *Evaluator, x sparql.Expr, b Binding) (bool, error) {
	t, err := evalExpr(e, x, b)
	if err != nil {
		return false, err
	}
	return ebv(t)
}

// ebv implements SPARQL's effective boolean value rules.
func ebv(t rdf.Term) (bool, error) {
	if t.Kind != rdf.Literal {
		return false, errExpr
	}
	if v, ok := t.Bool(); ok {
		return v, nil
	}
	if t.Datatype == rdf.XSDBoolean {
		return false, errExpr // malformed boolean
	}
	if f, ok := t.Numeric(); ok && t.Datatype != "" {
		return f != 0, nil
	}
	if t.Datatype == "" || t.Datatype == rdf.XSDString {
		return t.Value != "", nil
	}
	return false, errExpr
}

// evalExpr evaluates an expression to an RDF term. Boolean results are
// xsd:boolean literals.
func evalExpr(e *Evaluator, x sparql.Expr, b Binding) (rdf.Term, error) {
	switch x := x.(type) {
	case sparql.ExprTerm:
		return x.Term, nil
	case sparql.ExprVar:
		t, ok := b[x.Name]
		if !ok {
			return rdf.Term{}, errExpr
		}
		return t, nil
	case sparql.ExprUnary:
		return evalUnary(e, x, b)
	case sparql.ExprBinary:
		return evalBinary(e, x, b)
	case sparql.ExprCall:
		return evalCall(e, x, b)
	case sparql.ExprExists:
		// Fast path for Lusail's check-query shape: EXISTS over a single
		// sub-select projecting one variable reduces to set membership on
		// the (memoized) sub-select column.
		if sub, v, ok := singleVarSubSelect(x.Group); ok {
			if val, bound := b[v]; bound {
				set, err := e.subSelectSet(sub, v)
				if err != nil {
					return rdf.Term{}, err
				}
				return rdf.NewBoolean(set[val] != x.Not), nil
			}
		}
		rows, err := e.evalGroup(x.Group, []Binding{b})
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean((len(rows) > 0) != x.Not), nil
	}
	return rdf.Term{}, fmt.Errorf("eval: unsupported expression %T", x)
}

func evalUnary(e *Evaluator, x sparql.ExprUnary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "!":
		v, err := evalEBV(e, x.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(!v), nil
	case "-":
		t, err := evalExpr(e, x.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		f, ok := t.Numeric()
		if !ok {
			return rdf.Term{}, errExpr
		}
		return rdf.NewDouble(-f), nil
	}
	return rdf.Term{}, fmt.Errorf("eval: unsupported unary %q", x.Op)
}

func evalBinary(e *Evaluator, x sparql.ExprBinary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "&&":
		l, err := evalEBV(e, x.L, b)
		if err == nil && !l {
			return rdf.NewBoolean(false), nil
		}
		r, rerr := evalEBV(e, x.R, b)
		if rerr == nil && !r {
			return rdf.NewBoolean(false), nil
		}
		if err != nil {
			return rdf.Term{}, err
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBoolean(true), nil
	case "||":
		l, err := evalEBV(e, x.L, b)
		if err == nil && l {
			return rdf.NewBoolean(true), nil
		}
		r, rerr := evalEBV(e, x.R, b)
		if rerr == nil && r {
			return rdf.NewBoolean(true), nil
		}
		if err != nil {
			return rdf.Term{}, err
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBoolean(false), nil
	}

	l, err := evalExpr(e, x.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := evalExpr(e, x.R, b)
	if err != nil {
		return rdf.Term{}, err
	}

	switch x.Op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if x.Op == "!=" {
			eq = !eq
		}
		return rdf.NewBoolean(eq), nil
	case "<", "<=", ">", ">=":
		c, err := compareTerms(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch x.Op {
		case "<":
			v = c < 0
		case "<=":
			v = c <= 0
		case ">":
			v = c > 0
		case ">=":
			v = c >= 0
		}
		return rdf.NewBoolean(v), nil
	case "+", "-", "*", "/":
		lf, lok := l.Numeric()
		rf, rok := r.Numeric()
		if !lok || !rok {
			return rdf.Term{}, errExpr
		}
		var v float64
		switch x.Op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, errExpr
			}
			v = lf / rf
		}
		if v == float64(int64(v)) && l.Datatype == rdf.XSDInteger && r.Datatype == rdf.XSDInteger && x.Op != "/" {
			return rdf.NewInteger(int64(v)), nil
		}
		return rdf.NewDouble(v), nil
	}
	return rdf.Term{}, fmt.Errorf("eval: unsupported binary op %q", x.Op)
}

// termsEqual implements SPARQL '=' semantics: numeric value comparison for
// numeric literals, term equality otherwise.
func termsEqual(l, r rdf.Term) (bool, error) {
	if lf, ok := l.Numeric(); ok && l.Datatype != "" {
		if rf, ok := r.Numeric(); ok && r.Datatype != "" {
			return lf == rf, nil
		}
	}
	return l == r, nil
}

// compareTerms orders two terms for </<=/>/>=: numerics by value, strings by
// code point; comparing across kinds is an error.
func compareTerms(l, r rdf.Term) (int, error) {
	if lf, ok := l.Numeric(); ok {
		if rf, ok := r.Numeric(); ok {
			switch {
			case lf < rf:
				return -1, nil
			case lf > rf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if l.Kind == rdf.Literal && r.Kind == rdf.Literal {
		return strings.Compare(l.Value, r.Value), nil
	}
	if l.Kind == rdf.IRI && r.Kind == rdf.IRI {
		return strings.Compare(l.Value, r.Value), nil
	}
	return 0, errExpr
}

var (
	regexCacheMu sync.Mutex
	regexCache   = map[string]*regexp.Regexp{}
)

func compileRegex(pattern, flags string) (*regexp.Regexp, error) {
	key := flags + "\x00" + pattern
	regexCacheMu.Lock()
	defer regexCacheMu.Unlock()
	if re, ok := regexCache[key]; ok {
		return re, nil
	}
	p := pattern
	if strings.Contains(flags, "i") {
		p = "(?i)" + p
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, errExpr
	}
	if len(regexCache) > 1024 {
		regexCache = map[string]*regexp.Regexp{}
	}
	regexCache[key] = re
	return re, nil
}

func evalCall(e *Evaluator, x sparql.ExprCall, b Binding) (rdf.Term, error) {
	arg := func(i int) (rdf.Term, error) {
		if i >= len(x.Args) {
			return rdf.Term{}, errExpr
		}
		return evalExpr(e, x.Args[i], b)
	}
	switch x.Func {
	case "BOUND":
		if len(x.Args) != 1 {
			return rdf.Term{}, errExpr
		}
		v, ok := x.Args[0].(sparql.ExprVar)
		if !ok {
			return rdf.Term{}, errExpr
		}
		_, bound := b[v.Name]
		return rdf.NewBoolean(bound), nil
	case "STR":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(t.Value), nil
	case "LANG":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		if t.Kind != rdf.Literal {
			return rdf.Term{}, errExpr
		}
		return rdf.NewLiteral(t.Lang), nil
	case "DATATYPE":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		if t.Kind != rdf.Literal {
			return rdf.Term{}, errExpr
		}
		dt := t.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt), nil
	case "ISIRI", "ISURI":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(t.Kind == rdf.IRI), nil
	case "ISLITERAL":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(t.Kind == rdf.Literal), nil
	case "ISBLANK":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(t.Kind == rdf.Blank), nil
	case "STRLEN":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewInteger(int64(len([]rune(t.Value)))), nil
	case "UCASE":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(strings.ToUpper(t.Value)), nil
	case "LCASE":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(strings.ToLower(t.Value)), nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		t1, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		t2, err := arg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch x.Func {
		case "CONTAINS":
			v = strings.Contains(t1.Value, t2.Value)
		case "STRSTARTS":
			v = strings.HasPrefix(t1.Value, t2.Value)
		case "STRENDS":
			v = strings.HasSuffix(t1.Value, t2.Value)
		}
		return rdf.NewBoolean(v), nil
	case "REGEX":
		t, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		pat, err := arg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		flags := ""
		if len(x.Args) >= 3 {
			f, err := arg(2)
			if err != nil {
				return rdf.Term{}, err
			}
			flags = f.Value
		}
		re, err := compileRegex(pat.Value, flags)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(re.MatchString(t.Value)), nil
	case "SAMETERM":
		t1, err := arg(0)
		if err != nil {
			return rdf.Term{}, err
		}
		t2, err := arg(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(t1 == t2), nil
	}
	return rdf.Term{}, fmt.Errorf("eval: unsupported function %s", x.Func)
}

// FilterBinding evaluates a filter expression against a standalone binding,
// outside any store context. EXISTS blocks see an empty graph. It is used
// by federated engines to apply global (cross-subquery) filters to joined
// intermediate results. Per SPARQL semantics, an erroring expression counts
// as false.
func FilterBinding(x sparql.Expr, b map[string]rdf.Term) bool {
	ok, err := evalEBV(emptyEvaluator, x, Binding(b))
	return err == nil && ok
}

// ErrNonConst is returned by ConstEval and ConstEBV for expressions that
// reference variables or EXISTS blocks: their value depends on the binding
// or the graph, so they cannot be folded at plan time.
var ErrNonConst = fmt.Errorf("eval: expression is not constant")

// ConstEval evaluates a ground expression — one with no variable references
// and no EXISTS blocks — to a constant term, using the same semantics the
// engine applies at run time. Static analysis (internal/sparql/sema) uses
// it for constant folding, so folded filters cannot diverge from what
// execution would have computed. A non-ErrNonConst error is a SPARQL
// expression error: in FILTER position it removes every row.
func ConstEval(x sparql.Expr) (rdf.Term, error) {
	if !exprIsConst(x) {
		return rdf.Term{}, ErrNonConst
	}
	return evalExpr(emptyEvaluator, x, Binding{})
}

// ConstEBV is ConstEval followed by the effective-boolean-value conversion
// a FILTER applies to its constraint.
func ConstEBV(x sparql.Expr) (bool, error) {
	if !exprIsConst(x) {
		return false, ErrNonConst
	}
	return evalEBV(emptyEvaluator, x, Binding{})
}

// exprIsConst reports whether the expression is ground: no variables and no
// EXISTS blocks (EXISTS depends on the graph even when it mentions no
// outer variables). All supported builtins are deterministic, so ground
// implies constant.
func exprIsConst(x sparql.Expr) bool {
	switch x := x.(type) {
	case sparql.ExprTerm:
		return true
	case sparql.ExprVar:
		return false
	case sparql.ExprExists:
		return false
	case sparql.ExprUnary:
		return exprIsConst(x.X)
	case sparql.ExprBinary:
		return exprIsConst(x.L) && exprIsConst(x.R)
	case sparql.ExprCall:
		for _, a := range x.Args {
			if !exprIsConst(a) {
				return false
			}
		}
		return true
	}
	return false
}
