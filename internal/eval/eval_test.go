package eval

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func testStore() *store.Store {
	// A tiny university-like graph.
	return store.NewFromTriples([]rdf.Triple{
		{S: iri("kim"), P: iri("advisor"), O: iri("joy")},
		{S: iri("kim"), P: iri("advisor"), O: iri("tim")},
		{S: iri("lee"), P: iri("advisor"), O: iri("ben")},
		{S: iri("kim"), P: iri("takesCourse"), O: iri("db")},
		{S: iri("lee"), P: iri("takesCourse"), O: iri("os")},
		{S: iri("joy"), P: iri("teacherOf"), O: iri("db")},
		{S: iri("tim"), P: iri("teacherOf"), O: iri("db")},
		{S: iri("ben"), P: iri("teacherOf"), O: iri("os")},
		{S: iri("kim"), P: rdf.NewIRI(rdf.RDFType), O: iri("Student")},
		{S: iri("lee"), P: rdf.NewIRI(rdf.RDFType), O: iri("Student")},
		{S: iri("joy"), P: rdf.NewIRI(rdf.RDFType), O: iri("Prof")},
		{S: iri("kim"), P: iri("age"), O: rdf.NewInteger(24)},
		{S: iri("lee"), P: iri("age"), O: rdf.NewInteger(29)},
		{S: iri("joy"), P: iri("name"), O: rdf.NewLangLiteral("Joy", "en")},
		{S: iri("tim"), P: iri("name"), O: rdf.NewLiteral("Tim Smith")},
	})
}

func mustRows(t *testing.T, st *store.Store, q string) *sparql.Results {
	t.Helper()
	res, err := New(st).QueryString(q)
	if err != nil {
		t.Fatalf("QueryString(%s): %v", q, err)
	}
	return res
}

func sortedValues(res *sparql.Results, v string) []string {
	var out []string
	for _, t := range res.Column(v) {
		out = append(out, t.Value)
	}
	sort.Strings(out)
	return out
}

func TestSingleSolutionPattern(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/takesCourse> <http://ex/db> }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/kim"}) {
		t.Errorf("got %v", got)
	}
}

func TestBGPJoin(t *testing.T) {
	// Students taking a course taught by their advisor.
	res := mustRows(t, testStore(), `SELECT ?s ?p WHERE {
		?s <http://ex/advisor> ?p .
		?p <http://ex/teacherOf> ?c .
		?s <http://ex/takesCourse> ?c .
	}`)
	got := map[string]bool{}
	for i := range res.Rows {
		b := res.Binding(i)
		got[b["s"].Value+"|"+b["p"].Value] = true
	}
	want := map[string]bool{
		"http://ex/kim|http://ex/joy": true,
		"http://ex/kim|http://ex/tim": true,
		"http://ex/lee|http://ex/ben": true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSharedVariableWithinPattern(t *testing.T) {
	st := store.NewFromTriples([]rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("a")},
		{S: iri("a"), P: iri("p"), O: iri("b")},
	})
	res := mustRows(t, st, `SELECT ?x WHERE { ?x <http://ex/p> ?x }`)
	if got := sortedValues(res, "x"); !reflect.DeepEqual(got, []string{"http://ex/a"}) {
		t.Errorf("self-join pattern got %v", got)
	}
}

func TestFilterNumeric(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/age> ?a . FILTER(?a > 25) }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/lee"}) {
		t.Errorf("got %v", got)
	}
}

func TestFilterAppliesAtGroupEnd(t *testing.T) {
	// FILTER written before the pattern that binds ?a must still see it.
	res := mustRows(t, testStore(), `SELECT ?s WHERE { FILTER(?a > 25) ?s <http://ex/age> ?a . }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/lee"}) {
		t.Errorf("got %v", got)
	}
}

func TestFilterStringFunctions(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/name> ?n . FILTER CONTAINS(STR(?n), "Smith") }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/tim"}) {
		t.Errorf("got %v", got)
	}
	res = mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/name> ?n . FILTER(LANG(?n) = "en") }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/joy"}) {
		t.Errorf("got %v", got)
	}
}

func TestFilterRegex(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/name> ?n . FILTER REGEX(STR(?n), "^tim", "i") }`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/tim"}) {
		t.Errorf("got %v", got)
	}
}

func TestOptional(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?n WHERE {
		?s a <http://ex/Student> .
		OPTIONAL { ?s <http://ex/name> ?n }
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// Neither student has a name; ?n must be unbound but rows retained.
	for i := range res.Rows {
		if _, ok := res.Binding(i)["n"]; ok {
			t.Error("?n should be unbound")
		}
	}
}

func TestOptionalBinds(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?p ?n WHERE {
		?p <http://ex/teacherOf> ?c .
		OPTIONAL { ?p <http://ex/name> ?n }
	}`)
	withName := 0
	for i := range res.Rows {
		if _, ok := res.Binding(i)["n"]; ok {
			withName++
		}
	}
	if withName != 2 { // joy (lang) and tim (plain)... tim teaches db, joy teaches db, ben teaches os
		t.Errorf("rows with name = %d, want 2", withName)
	}
}

func TestUnion(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?x WHERE {
		{ ?x <http://ex/teacherOf> <http://ex/db> } UNION { ?x <http://ex/takesCourse> <http://ex/db> }
	}`)
	got := sortedValues(res, "x")
	want := []string{"http://ex/joy", "http://ex/kim", "http://ex/tim"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestValuesJoin(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?a WHERE {
		?s <http://ex/age> ?a .
		VALUES ?s { <http://ex/kim> <http://ex/nobody> }
	}`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/kim"}) {
		t.Errorf("got %v", got)
	}
}

func TestValuesUndef(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?a WHERE {
		?s <http://ex/age> ?a .
		VALUES (?s ?a) { (<http://ex/kim> UNDEF) }
	}`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Binding(0)["a"] != rdf.NewInteger(24) {
		t.Errorf("a = %v", res.Binding(0)["a"])
	}
}

func TestNotExists(t *testing.T) {
	// Professors who teach nothing... everyone with a name who is not a teacher.
	res := mustRows(t, testStore(), `SELECT ?s WHERE {
		?s <http://ex/name> ?n .
		FILTER NOT EXISTS { ?s <http://ex/teacherOf> ?c }
	}`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0 (both named people teach)", len(res.Rows))
	}
	res = mustRows(t, testStore(), `SELECT ?s WHERE {
		?s a <http://ex/Student> .
		FILTER NOT EXISTS { ?s <http://ex/takesCourse> <http://ex/os> }
	}`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/kim"}) {
		t.Errorf("got %v", got)
	}
}

func TestExists(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE {
		?s a <http://ex/Student> .
		FILTER EXISTS { ?s <http://ex/takesCourse> <http://ex/db> }
	}`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/kim"}) {
		t.Errorf("got %v", got)
	}
}

func TestNotExistsWithSubSelect(t *testing.T) {
	// The exact Lusail check-query shape (paper Figure 5): find a ?p that has
	// an advisee but (locally) teaches nothing.
	st := testStore()
	st.Add(rdf.Triple{S: iri("zoe"), P: iri("advisor"), O: iri("ann")})
	q := `SELECT ?p WHERE {
		?s <http://ex/advisor> ?p .
		FILTER NOT EXISTS { SELECT ?p WHERE { ?p <http://ex/teacherOf> ?c } }
	} LIMIT 1`
	res := mustRows(t, st, q)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (ann advises but teaches nothing)", len(res.Rows))
	}
	if res.Binding(0)["p"] != iri("ann") {
		t.Errorf("p = %v, want ann", res.Binding(0)["p"])
	}
}

func TestSubSelectJoin(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?c WHERE {
		?s <http://ex/takesCourse> ?c .
		{ SELECT ?c WHERE { <http://ex/joy> <http://ex/teacherOf> ?c } }
	}`)
	if got := sortedValues(res, "s"); !reflect.DeepEqual(got, []string{"http://ex/kim"}) {
		t.Errorf("got %v", got)
	}
}

func TestAsk(t *testing.T) {
	res := mustRows(t, testStore(), `ASK { ?s <http://ex/advisor> <http://ex/tim> }`)
	if !res.IsBoolean || !res.Boolean {
		t.Errorf("ASK = %+v, want true", res)
	}
	res = mustRows(t, testStore(), `ASK { ?s <http://ex/advisor> <http://ex/nobody> }`)
	if res.Boolean {
		t.Error("ASK should be false")
	}
}

func TestCount(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT (COUNT(*) AS ?c) WHERE { ?s <http://ex/advisor> ?p }`)
	if res.Rows[0][0] != rdf.NewInteger(3) {
		t.Errorf("COUNT(*) = %v", res.Rows[0][0])
	}
	res = mustRows(t, testStore(), `SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s <http://ex/advisor> ?p }`)
	if res.Rows[0][0] != rdf.NewInteger(2) {
		t.Errorf("COUNT(DISTINCT ?s) = %v", res.Rows[0][0])
	}
}

func TestMinMaxSumAvg(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SUM(?a) AS ?sum) (AVG(?a) AS ?avg) WHERE { ?s <http://ex/age> ?a }`)
	b := res.Binding(0)
	check := func(v string, want float64) {
		f, ok := b[v].Numeric()
		if !ok || f != want {
			t.Errorf("%s = %v, want %v", v, b[v], want)
		}
	}
	check("lo", 24)
	check("hi", 29)
	check("sum", 53)
	check("avg", 26.5)
}

func TestDistinctLimitOffsetOrder(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT DISTINCT ?c WHERE { ?p <http://ex/teacherOf> ?c } ORDER BY ?c`)
	if got := len(res.Rows); got != 2 {
		t.Fatalf("distinct rows = %d", got)
	}
	if res.Rows[0][0] != iri("db") || res.Rows[1][0] != iri("os") {
		t.Errorf("order wrong: %v", res.Rows)
	}
	res = mustRows(t, testStore(), `SELECT ?c WHERE { ?p <http://ex/teacherOf> ?c } ORDER BY DESC(?c) LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0] != iri("os") {
		t.Errorf("desc limit wrong: %v", res.Rows)
	}
	res = mustRows(t, testStore(), `SELECT ?c WHERE { ?p <http://ex/teacherOf> ?c } ORDER BY ?c OFFSET 2`)
	if len(res.Rows) != 1 {
		t.Errorf("offset wrong: %v", res.Rows)
	}
}

func TestBindExpression(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?n2 WHERE {
		?s <http://ex/age> ?a .
		BIND(?a + 1 AS ?n2)
	} ORDER BY ?n2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Binding(0)["n2"].Numeric(); f != 25 {
		t.Errorf("n2 = %v", res.Binding(0)["n2"])
	}
}

func TestBoundAndBang(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE {
		?s a <http://ex/Student> .
		OPTIONAL { ?s <http://ex/name> ?n }
		FILTER(!BOUND(?n))
	}`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (students have no names)", len(res.Rows))
	}
}

func TestEmptyResult(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s WHERE { ?s <http://ex/unknownPredicate> ?o }`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	data, err := res.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	back, err := sparql.ParseResultsJSON(data)
	if err != nil {
		t.Fatalf("ParseResultsJSON: %v", err)
	}
	res.Sort()
	back.Sort()
	if !reflect.DeepEqual(res, back) {
		t.Errorf("round trip mismatch:\n %+v\n %+v", res, back)
	}
}

func TestAskJSONRoundTrip(t *testing.T) {
	res := sparql.BoolResults(true)
	data, _ := res.MarshalJSON()
	back, err := sparql.ParseResultsJSON(data)
	if err != nil {
		t.Fatalf("ParseResultsJSON: %v", err)
	}
	if !back.IsBoolean || !back.Boolean {
		t.Errorf("back = %+v", back)
	}
}

func TestUnboundVarJSON(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?s ?n WHERE {
		?s a <http://ex/Student> . OPTIONAL { ?s <http://ex/name> ?n }
	}`)
	data, _ := res.MarshalJSON()
	back, err := sparql.ParseResultsJSON(data)
	if err != nil {
		t.Fatalf("ParseResultsJSON: %v", err)
	}
	for i := range back.Rows {
		if !back.Rows[i][back.VarIndex("n")].IsZero() {
			t.Error("unbound var should stay unbound through JSON")
		}
	}
}

// The evaluator must agree with a naive brute-force join on random BGPs.
func TestBGPAgainstBruteForce(t *testing.T) {
	st := testStore()
	queries := []string{
		`SELECT ?s ?p ?c WHERE { ?s <http://ex/advisor> ?p . ?p <http://ex/teacherOf> ?c }`,
		`SELECT ?a ?b WHERE { ?a <http://ex/takesCourse> ?x . ?b <http://ex/teacherOf> ?x }`,
		`SELECT ?x ?y ?z WHERE { ?x <http://ex/advisor> ?y . ?x <http://ex/age> ?z }`,
	}
	for _, q := range queries {
		res := mustRows(t, st, q)
		brute := bruteForce(t, st, q)
		res.Sort()
		brute.Sort()
		if !reflect.DeepEqual(res.Rows, brute.Rows) {
			t.Errorf("query %s:\n engine: %v\n brute:  %v", q, res.Rows, brute.Rows)
		}
	}
}

// bruteForce evaluates a pure-BGP SELECT by cross-producting all triples.
func bruteForce(t *testing.T, st *store.Store, q string) *sparql.Results {
	t.Helper()
	parsed, err := sparql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	pats := parsed.Where.TriplePatterns()
	all := st.Triples()
	rows := []Binding{{}}
	for _, tp := range pats {
		var next []Binding
		for _, b := range rows {
			for _, tri := range all {
				if nb := tryExtend(b, tp, tri); nb != nil {
					next = append(next, nb)
				}
			}
		}
		rows = next
	}
	vars := parsed.ProjectedVars()
	res := sparql.NewResults(vars)
	for _, b := range rows {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func tryExtend(b Binding, tp sparql.TriplePattern, tri rdf.Triple) Binding {
	nb := cloneBinding(b)
	for _, pair := range [3]struct {
		pt  sparql.PatternTerm
		val rdf.Term
	}{{tp.S, tri.S}, {tp.P, tri.P}, {tp.O, tri.O}} {
		if pair.pt.IsVar() {
			if ex, ok := nb[pair.pt.Var]; ok {
				if ex != pair.val {
					return nil
				}
			} else {
				nb[pair.pt.Var] = pair.val
			}
		} else if pair.pt.Term != pair.val {
			return nil
		}
	}
	return nb
}

func TestVariablePredicate(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?p WHERE { <http://ex/kim> ?p ?o }`)
	got := sortedValues(res, "p")
	want := []string{rdf.RDFType, "http://ex/advisor", "http://ex/age", "http://ex/takesCourse"}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLargerJoinOrdering(t *testing.T) {
	// Build a store where a bad join order would be quadratic; just verify
	// correctness of the result on a chain query.
	st := store.New()
	for i := 0; i < 50; i++ {
		st.Add(rdf.Triple{S: iri(fmt.Sprintf("a%d", i)), P: iri("p1"), O: iri(fmt.Sprintf("b%d", i))})
		st.Add(rdf.Triple{S: iri(fmt.Sprintf("b%d", i)), P: iri("p2"), O: iri(fmt.Sprintf("c%d", i))})
		st.Add(rdf.Triple{S: iri(fmt.Sprintf("c%d", i)), P: iri("p3"), O: iri(fmt.Sprintf("d%d", i))})
	}
	res := mustRows(t, st, `SELECT ?a ?d WHERE { ?a <http://ex/p1> ?b . ?b <http://ex/p2> ?c . ?c <http://ex/p3> ?d }`)
	if len(res.Rows) != 50 {
		t.Errorf("rows = %d, want 50", len(res.Rows))
	}
}

func TestGroupByCount(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?p (COUNT(?s) AS ?n) WHERE {
		?s <http://ex/advisor> ?p
	} GROUP BY ?p ORDER BY ?p`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3 (ben, joy, tim)", len(res.Rows))
	}
	for i := range res.Rows {
		b := res.Binding(i)
		if b["n"] != rdf.NewInteger(1) {
			t.Errorf("group %v count = %v, want 1", b["p"], b["n"])
		}
	}
}

func TestGroupByMultipleAggregates(t *testing.T) {
	st := store.New()
	for i := 0; i < 10; i++ {
		dept := iri(fmt.Sprintf("dept%d", i%2))
		emp := iri(fmt.Sprintf("emp%d", i))
		st.Add(rdf.Triple{S: emp, P: iri("dept"), O: dept})
		st.Add(rdf.Triple{S: emp, P: iri("salary"), O: rdf.NewInteger(int64(1000 + i*100))})
	}
	res := mustRows(t, st, `SELECT ?d (COUNT(?e) AS ?n) (MAX(?sal) AS ?top) WHERE {
		?e <http://ex/dept> ?d .
		?e <http://ex/salary> ?sal .
	} GROUP BY ?d ORDER BY ?d`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	b0 := res.Binding(0)
	if b0["n"] != rdf.NewInteger(5) {
		t.Errorf("dept0 count = %v", b0["n"])
	}
	if f, _ := b0["top"].Numeric(); f != 1800 {
		t.Errorf("dept0 max = %v", b0["top"])
	}
}

func TestGroupByRejectsUngroupedVariable(t *testing.T) {
	_, err := New(testStore()).QueryString(`SELECT ?s (COUNT(?p) AS ?n) WHERE {
		?s <http://ex/advisor> ?p
	} GROUP BY ?p`)
	if err == nil {
		t.Error("projecting an ungrouped variable should error")
	}
}

func TestGroupByLimitOrder(t *testing.T) {
	res := mustRows(t, testStore(), `SELECT ?p (COUNT(?s) AS ?n) WHERE {
		?s <http://ex/advisor> ?p
	} GROUP BY ?p ORDER BY DESC(?p) LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Binding(0)["p"] != iri("tim") {
		t.Errorf("first group = %v, want tim (desc)", res.Binding(0)["p"])
	}
}

func TestGroupBySerializeRoundTrip(t *testing.T) {
	in := `SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s <http://ex/advisor> ?p . } GROUP BY ?p`
	q, err := sparql.Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "p" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	q2, err := sparql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(q2.GroupBy) != 1 || q2.GroupBy[0] != "p" {
		t.Errorf("round-trip GroupBy = %v", q2.GroupBy)
	}
}
