package eval

import (
	"fmt"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Construct evaluates a CONSTRUCT query: the WHERE clause's solutions
// instantiate the template, and the resulting triples are returned with
// duplicates removed. Template patterns whose positions remain unbound in
// a solution (or would bind a literal subject/predicate) are skipped for
// that solution, per the SPARQL spec.
func (e *Evaluator) Construct(q *sparql.Query) ([]rdf.Triple, error) {
	if q.Form != sparql.ConstructForm {
		return nil, fmt.Errorf("eval: Construct requires a CONSTRUCT query")
	}
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	return InstantiateTemplate(q.Template, rowsToMaps(rows)), nil
}

func rowsToMaps(rows []Binding) []map[string]rdf.Term {
	out := make([]map[string]rdf.Term, len(rows))
	for i, b := range rows {
		out[i] = b
	}
	return out
}

// InstantiateTemplate substitutes each solution into the template and
// collects the valid, deduplicated triples. It is shared by the local
// evaluator and the federated engines.
func InstantiateTemplate(template []sparql.TriplePattern, solutions []map[string]rdf.Term) []rdf.Triple {
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	for _, b := range solutions {
		for _, tp := range template {
			t, ok := instantiate(tp, b)
			if !ok || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func instantiate(tp sparql.TriplePattern, b map[string]rdf.Term) (rdf.Triple, bool) {
	bind := func(pt sparql.PatternTerm) (rdf.Term, bool) {
		if !pt.IsVar() {
			return pt.Term, true
		}
		t, ok := b[pt.Var]
		return t, ok && !t.IsZero()
	}
	s, ok := bind(tp.S)
	if !ok || s.IsLiteral() {
		return rdf.Triple{}, false
	}
	p, ok := bind(tp.P)
	if !ok || !p.IsIRI() {
		return rdf.Triple{}, false
	}
	o, ok := bind(tp.O)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}
