package eval

import (
	"strings"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// evalFilter runs a query with the given filter over a one-row binding of
// convenience values and reports whether the row survives.
func evalFilter(t *testing.T, filter string) bool {
	t.Helper()
	st := store.NewFromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/int"), O: rdf.NewInteger(10)},
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/str"), O: rdf.NewLiteral("Hello World")},
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/lang"), O: rdf.NewLangLiteral("bonjour", "fr")},
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/dbl"), O: rdf.NewDouble(2.5)},
	})
	q := `SELECT ?s WHERE {
		?s <http://ex/int> ?i .
		?s <http://ex/str> ?t .
		?s <http://ex/lang> ?l .
		?s <http://ex/dbl> ?d .
		FILTER(` + filter + `)
	}`
	res, err := New(st).QueryString(q)
	if err != nil {
		t.Fatalf("filter %q: %v", filter, err)
	}
	return len(res.Rows) == 1
}

func TestArithmetic(t *testing.T) {
	keep := []string{
		`?i + 5 = 15`,
		`?i - 5 = 5`,
		`?i * 2 = 20`,
		`?i / 4 = 2.5`,
		`?d * 4 = ?i`,
		`-?i = -10`,
		`?i + ?d > 12 && ?i + ?d < 13`,
	}
	drop := []string{
		`?i / 0 = 1`,  // division by zero errors → row removed
		`?t + 1 = 2`,  // non-numeric arithmetic errors
		`?i + 5 = 14`, // plain false
	}
	for _, f := range keep {
		if !evalFilter(t, f) {
			t.Errorf("filter %q should keep the row", f)
		}
	}
	for _, f := range drop {
		if evalFilter(t, f) {
			t.Errorf("filter %q should drop the row", f)
		}
	}
}

func TestStringBuiltins(t *testing.T) {
	keep := []string{
		`STRLEN(?t) = 11`,
		`UCASE(?t) = "HELLO WORLD"`,
		`LCASE(?t) = "hello world"`,
		`STRSTARTS(?t, "Hello")`,
		`STRENDS(?t, "World")`,
		`CONTAINS(?t, "lo Wo")`,
		`SAMETERM(?t, "Hello World")`,
		`!SAMETERM(?t, ?l)`,
		`LANG(?l) = "fr"`,
		`LANG(?t) = ""`,
		`DATATYPE(?i) = <http://www.w3.org/2001/XMLSchema#integer>`,
		`DATATYPE(?t) = <http://www.w3.org/2001/XMLSchema#string>`,
		`ISLITERAL(?t) && ISIRI(?s) && !ISBLANK(?s)`,
		`REGEX(?t, "^hello", "i")`,
	}
	for _, f := range keep {
		if !evalFilter(t, f) {
			t.Errorf("filter %q should keep the row", f)
		}
	}
	if evalFilter(t, `REGEX(?t, "([")`) {
		t.Error("invalid regex should error out the row")
	}
	if evalFilter(t, `NOSUCHFUNC(?t)`) {
		t.Error("unknown function should error out the row")
	}
}

func TestBooleanLogicThreeValued(t *testing.T) {
	// SPARQL's || recovers from an error when the other side is true; &&
	// recovers when the other side is false.
	keep := []string{
		`?missing > 1 || ?i = 10`,
		`?i = 10 || ?missing > 1`,
		`!(?missing > 1 && ?i = 99)`, // && with false side is false; negated true
	}
	for _, f := range keep {
		if !evalFilter(t, f) {
			t.Errorf("filter %q should keep the row", f)
		}
	}
	drop := []string{
		`?missing > 1 && ?i = 10`, // error && true = error
		`?missing > 1 || ?i = 99`, // error || false = error
	}
	for _, f := range drop {
		if evalFilter(t, f) {
			t.Errorf("filter %q should drop the row", f)
		}
	}
}

func TestComparisonSemantics(t *testing.T) {
	keep := []string{
		`?i = 10.0`, // numeric cross-type equality
		`?t != "other"`,
		`"abc" < "abd"`,
		`?s = <http://ex/s>`, // IRI equality
		`?i >= 10 && ?i <= 10`,
	}
	for _, f := range keep {
		if !evalFilter(t, f) {
			t.Errorf("filter %q should keep the row", f)
		}
	}
	// IRI vs number comparison is a type error.
	if evalFilter(t, `?s < 5`) {
		t.Error("IRI < number should error")
	}
}

func TestEBVRules(t *testing.T) {
	keep := []string{
		`?i`, // non-zero numeric
		`?t`, // non-empty string
		`true`,
	}
	drop := []string{
		`?i - 10`, // zero
		`""`,      // empty string
		`false`,
	}
	for _, f := range keep {
		if !evalFilter(t, f) {
			t.Errorf("EBV of %q should be true", f)
		}
	}
	for _, f := range drop {
		if evalFilter(t, f) {
			t.Errorf("EBV of %q should be false", f)
		}
	}
	// IRIs have no EBV: error → row dropped.
	if evalFilter(t, `?s`) {
		t.Error("EBV of an IRI should error")
	}
}

func TestFilterBindingStandalone(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?s <http://p> ?x . FILTER(?x > 3 && CONTAINS(STR(?s), "ex")) }`)
	var f sparql.Expr
	for _, el := range q.Where.Elements {
		if ff, ok := el.(sparql.Filter); ok {
			f = ff.Expr
		}
	}
	b := map[string]rdf.Term{"s": rdf.NewIRI("http://ex/a"), "x": rdf.NewInteger(5)}
	if !FilterBinding(f, b) {
		t.Error("binding should pass the filter")
	}
	b["x"] = rdf.NewInteger(1)
	if FilterBinding(f, b) {
		t.Error("binding should fail the filter")
	}
	if FilterBinding(f, map[string]rdf.Term{}) {
		t.Error("empty binding should error → false")
	}
}

func TestSubSelectMemoInvalidation(t *testing.T) {
	st := store.NewFromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/a"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/t1")},
	})
	e := New(st)
	q := sparql.MustParse(`SELECT ?x WHERE {
		?x <http://ex/p> ?o .
		FILTER EXISTS { SELECT ?x WHERE { ?x <http://ex/p> <http://ex/t1> } }
	}`)
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Mutate the store: the memoized sub-select must be invalidated.
	st.Add(rdf.Triple{S: rdf.NewIRI("http://ex/b"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/t1")})
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("after mutation rows = %d, want 2 (stale memo?)", len(res.Rows))
	}
}

func TestStreamLimitStopsEarly(t *testing.T) {
	st := store.New()
	for i := 0; i < 1000; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI("http://ex/s" + string(rune('a'+i%26))),
			P: rdf.NewIRI("http://ex/p"),
			O: rdf.NewInteger(int64(i)),
		})
	}
	e := New(st)
	res, err := e.QueryString(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// LIMIT larger than result set returns everything.
	res, err = e.QueryString(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } LIMIT 5000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1000 {
		t.Errorf("rows = %d, want 1000", len(res.Rows))
	}
	// LIMIT 0 is a valid, empty query.
	res, err = e.QueryString(`SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 0`)
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("LIMIT 0: rows=%d err=%v", len(res.Rows), err)
	}
}

func TestStreamEquivalentToMaterialized(t *testing.T) {
	// The streaming path (LIMIT, filters at leaves) must agree with full
	// evaluation on a query whose filter rejects most rows.
	st := testStore()
	limited, err := New(st).QueryString(`SELECT ?s WHERE {
		?s <http://ex/age> ?a . FILTER(?a > 25) } LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(st).QueryString(`SELECT ?s WHERE {
		?s <http://ex/age> ?a . FILTER(?a > 25) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != len(full.Rows) {
		t.Errorf("stream %d rows, materialized %d", len(limited.Rows), len(full.Rows))
	}
}

func TestResultsJSONUnknownTermType(t *testing.T) {
	bad := `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"alien","value":"?"}}]}}`
	if _, err := sparql.ParseResultsJSON([]byte(bad)); err == nil || !strings.Contains(err.Error(), "unknown term type") {
		t.Errorf("err = %v", err)
	}
	// Virtuoso-style "typed-literal" is accepted.
	ok := `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"typed-literal","value":"5","datatype":"http://www.w3.org/2001/XMLSchema#integer"}}]}}`
	res, err := sparql.ParseResultsJSON([]byte(ok))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Datatype == "" {
		t.Error("typed-literal lost its datatype")
	}
}
