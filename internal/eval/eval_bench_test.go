package eval

import (
	"fmt"
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/store"
)

func benchUniversity(students int) *store.Store {
	st := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < students; i++ {
		stu := iri(fmt.Sprintf("s%d", i))
		prof := iri(fmt.Sprintf("p%d", i%20))
		course := iri(fmt.Sprintf("c%d", i%20))
		st.AddAll([]rdf.Triple{
			{S: stu, P: typ, O: iri("Student")},
			{S: stu, P: iri("advisor"), O: prof},
			{S: stu, P: iri("takesCourse"), O: course},
			{S: prof, P: iri("teacherOf"), O: course},
		})
	}
	return st
}

func BenchmarkBGPTriangleJoin(b *testing.B) {
	st := benchUniversity(2000)
	e := New(st)
	q := `SELECT ?s ?p ?c WHERE {
		?s <http://ex/advisor> ?p .
		?p <http://ex/teacherOf> ?c .
		?s <http://ex/takesCourse> ?c .
	}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.QueryString(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkAsk(b *testing.B) {
	st := benchUniversity(2000)
	e := New(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryString(`ASK { ?s <http://ex/advisor> ?p }`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountAggregate(b *testing.B) {
	st := benchUniversity(2000)
	e := New(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryString(`SELECT (COUNT(*) AS ?c) WHERE { ?s <http://ex/advisor> ?p }`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterNotExists(b *testing.B) {
	st := benchUniversity(1000)
	e := New(st)
	q := `SELECT ?p WHERE {
		?s <http://ex/advisor> ?p .
		FILTER NOT EXISTS { SELECT ?p WHERE { ?p <http://ex/teacherOf> ?c } }
	} LIMIT 1`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.QueryString(q); err != nil {
			b.Fatal(err)
		}
	}
}
