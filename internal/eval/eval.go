// Package eval evaluates SPARQL queries (in the subset defined by package
// sparql) against an in-memory triple store. It is the query engine behind
// each endpoint in the simulated federation, standing in for Jena Fuseki /
// Virtuoso in the paper's experimental setup.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// Binding is one solution mapping from variable names to terms. Variables
// absent from the map are unbound.
type Binding map[string]rdf.Term

// Evaluator executes queries against a single graph backend (the in-memory
// store or the disk-backed store).
type Evaluator struct {
	st store.Graph

	// memo caches sub-select results within the current store version, so
	// FILTER (NOT) EXISTS { SELECT ... } blocks — the shape of Lusail's
	// locality check queries — evaluate their inner query once instead of
	// once per candidate row.
	memoMu   sync.Mutex
	memo     map[*sparql.Query]memoEntry
	memoSets map[*sparql.Query]map[rdf.Term]bool
}

type memoEntry struct {
	version int64
	res     *sparql.Results
}

// New returns an evaluator over the given graph backend.
func New(st store.Graph) *Evaluator {
	return &Evaluator{
		st:       st,
		memo:     map[*sparql.Query]memoEntry{},
		memoSets: map[*sparql.Query]map[rdf.Term]bool{},
	}
}

// singleVarSubSelect matches a group of the form { SELECT ?v WHERE ... }
// with exactly one projected variable.
func singleVarSubSelect(g *sparql.GroupPattern) (*sparql.Query, string, bool) {
	if len(g.Elements) != 1 {
		return nil, "", false
	}
	ss, ok := g.Elements[0].(sparql.SubSelect)
	if !ok {
		return nil, "", false
	}
	vars := ss.Query.ProjectedVars()
	if len(vars) != 1 {
		return nil, "", false
	}
	return ss.Query, vars[0], true
}

// subSelectSet returns the set of bound values of v in the memoized
// sub-select results.
func (e *Evaluator) subSelectSet(q *sparql.Query, v string) (map[rdf.Term]bool, error) {
	res, err := e.subSelect(q)
	if err != nil {
		return nil, err
	}
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	if set, ok := e.memoSets[q]; ok {
		return set, nil
	}
	idx := res.VarIndex(v)
	set := make(map[rdf.Term]bool, len(res.Rows))
	if idx >= 0 {
		for _, row := range res.Rows {
			if !row[idx].IsZero() {
				set[row[idx]] = true
			}
		}
	}
	if len(e.memoSets) > 256 {
		e.memoSets = map[*sparql.Query]map[rdf.Term]bool{}
	}
	e.memoSets[q] = set
	return set, nil
}

// subSelect evaluates a nested SELECT, memoized per store version.
func (e *Evaluator) subSelect(q *sparql.Query) (*sparql.Results, error) {
	v := e.st.Version()
	e.memoMu.Lock()
	if ent, ok := e.memo[q]; ok && ent.version == v {
		e.memoMu.Unlock()
		return ent.res, nil
	}
	e.memoMu.Unlock()
	res, err := e.Query(q)
	if err != nil {
		return nil, err
	}
	e.memoMu.Lock()
	if len(e.memo) > 256 {
		e.memo = map[*sparql.Query]memoEntry{}
		e.memoSets = map[*sparql.Query]map[rdf.Term]bool{}
	}
	e.memo[q] = memoEntry{version: v, res: res}
	delete(e.memoSets, q) // the derived value set is stale
	e.memoMu.Unlock()
	return res, nil
}

// Store returns the underlying graph backend.
func (e *Evaluator) Store() store.Graph { return e.st }

// QueryString parses and evaluates a query.
func (e *Evaluator) QueryString(q string) (*sparql.Results, error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	return e.Query(parsed)
}

// Query evaluates a parsed query and returns its results. ASK queries yield
// a boolean result set.
//
// ASK queries and plain LIMIT queries over streamable groups (triple
// patterns plus filters only) are evaluated with an early-terminating
// depth-first search instead of full materialization; Lusail's LIMIT 1
// check queries depend on this stopping at the first witness.
func (e *Evaluator) Query(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.ConstructForm {
		return nil, fmt.Errorf("eval: use Construct for CONSTRUCT queries")
	}
	if hint := limitHint(q); hint >= 0 && streamable(q.Where) {
		rows, err := e.evalStreamLimited(q.Where, hint)
		if err != nil {
			return nil, err
		}
		if q.Form == sparql.AskForm {
			return sparql.BoolResults(len(rows) > 0), nil
		}
		return e.finishSelect(q, rows)
	}
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if q.Form == sparql.AskForm {
		return sparql.BoolResults(len(rows) > 0), nil
	}
	return e.finishSelect(q, rows)
}

// limitHint returns the number of solutions after which evaluation may
// stop, or -1 when every solution is needed.
func limitHint(q *sparql.Query) int {
	if q.Form == sparql.AskForm {
		return 1
	}
	if q.Limit >= 0 && !q.Distinct && len(q.OrderBy) == 0 && !q.HasAggregates() &&
		len(q.GroupBy) == 0 && q.Offset == 0 {
		return q.Limit
	}
	return -1
}

// streamable reports whether the group consists solely of triple patterns
// and filters, so depth-first enumeration with leaf-level filtering is
// equivalent to full evaluation.
func streamable(g *sparql.GroupPattern) bool {
	for _, el := range g.Elements {
		switch el.(type) {
		case sparql.TriplePattern, sparql.Filter:
		default:
			return false
		}
	}
	return true
}

// evalStreamLimited enumerates solutions depth-first, applying filters at
// each complete assignment, and stops once limit rows are produced.
func (e *Evaluator) evalStreamLimited(g *sparql.GroupPattern, limit int) ([]Binding, error) {
	patterns := g.TriplePatterns()
	var filters []sparql.Expr
	for _, el := range g.Elements {
		if f, ok := el.(sparql.Filter); ok {
			filters = append(filters, f.Expr)
		}
	}
	var out []Binding
	var evalErr error
	if limit == 0 {
		return nil, nil
	}
	e.stream(patterns, Binding{}, func(b Binding) bool {
		for _, f := range filters {
			ok, err := evalEBV(e, f, b)
			if err != nil {
				return true // filter error removes the row; keep searching
			}
			if !ok {
				return true
			}
		}
		out = append(out, b)
		return len(out) < limit
	}, &evalErr)
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// stream recursively extends the binding one pattern at a time, choosing
// the most selective pattern at each depth. emit returns false to stop the
// whole enumeration.
func (e *Evaluator) stream(remaining []sparql.TriplePattern, b Binding, emit func(Binding) bool, evalErr *error) bool {
	if len(remaining) == 0 {
		return emit(b)
	}
	bound := map[string]bool{}
	for v := range b {
		bound[v] = true
	}
	best, bestScore := 0, -1<<30
	for i, tp := range remaining {
		if score := patternScore(tp, bound, e.st); score > bestScore {
			best, bestScore = i, score
		}
	}
	tp := remaining[best]
	rest := make([]sparql.TriplePattern, 0, len(remaining)-1)
	rest = append(rest, remaining[:best]...)
	rest = append(rest, remaining[best+1:]...)

	cont := true
	e.st.Match(resolve(tp.S, b), resolve(tp.P, b), resolve(tp.O, b), func(t rdf.Triple) bool {
		nb := extendBinding(b, tp, t)
		if nb != nil {
			cont = e.stream(rest, nb, emit, evalErr)
		}
		return cont
	})
	return cont
}

// finishSelect applies aggregation, projection, DISTINCT, ORDER BY, and
// LIMIT/OFFSET to the raw solution rows.
func (e *Evaluator) finishSelect(q *sparql.Query, rows []Binding) (*sparql.Results, error) {
	if len(q.GroupBy) > 0 {
		return GroupAggregate(q, rows)
	}
	if q.HasAggregates() {
		return aggregate(q, rows)
	}
	vars := q.ProjectedVars()
	res := sparql.NewResults(vars)
	res.Rows = make([][]rdf.Term, 0, len(rows))
	for _, b := range rows {
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			row[i] = b[v] // zero Term if unbound
		}
		res.Rows = append(res.Rows, row)
	}
	if len(q.OrderBy) > 0 {
		orderRows(res, q.OrderBy)
	}
	if q.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	applyLimitOffset(res, q.Limit, q.Offset)
	return res, nil
}

func orderRows(res *sparql.Results, conds []sparql.OrderCond) {
	idx := make([]int, 0, len(conds))
	desc := make([]bool, 0, len(conds))
	for _, c := range conds {
		if i := res.VarIndex(c.Var); i >= 0 {
			idx = append(idx, i)
			desc = append(desc, c.Desc)
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, i := range idx {
			c := res.Rows[a][i].Compare(res.Rows[b][i])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func dedupeRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		key := rowKey(row)
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
	}
	return out
}

func rowKey(row []rdf.Term) string {
	var b []byte
	for _, t := range row {
		b = append(b, t.String()...)
		b = append(b, 0)
	}
	return string(b)
}

func applyLimitOffset(res *sparql.Results, limit, offset int) {
	if offset > 0 {
		if offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[offset:]
		}
	}
	if limit >= 0 && limit < len(res.Rows) {
		res.Rows = res.Rows[:limit]
	}
}

func aggregate(q *sparql.Query, rows []Binding) (*sparql.Results, error) {
	vars := make([]string, len(q.Projection))
	out := make([]rdf.Term, len(q.Projection))
	for i, p := range q.Projection {
		vars[i] = p.Var
		if p.Agg == nil {
			return nil, fmt.Errorf("eval: mixing plain variables and aggregates without GROUP BY is unsupported")
		}
		v, err := evalAggregate(p.Agg, rows)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	res := sparql.NewResults(vars)
	res.Rows = [][]rdf.Term{out}
	return res, nil
}

// GroupAggregate implements GROUP BY: rows are partitioned by the grouping
// variables and each projection is either a grouping variable or an
// aggregate over the partition. It is exported for the federated engines,
// which apply grouping to the joined global relation.
func GroupAggregate(q *sparql.Query, rows []Binding) (*sparql.Results, error) {
	grouped := map[string][]Binding{}
	var order []string
	for _, b := range rows {
		key := groupKey(q.GroupBy, b)
		if _, ok := grouped[key]; !ok {
			order = append(order, key)
		}
		grouped[key] = append(grouped[key], b)
	}
	groupVars := map[string]bool{}
	for _, v := range q.GroupBy {
		groupVars[v] = true
	}
	vars := make([]string, len(q.Projection))
	for i, p := range q.Projection {
		vars[i] = p.Var
		if p.Agg == nil && !groupVars[p.Var] {
			return nil, fmt.Errorf("eval: projected variable ?%s is neither grouped nor aggregated", p.Var)
		}
	}
	if len(vars) == 0 {
		// SELECT * with GROUP BY projects the grouping variables.
		vars = append([]string(nil), q.GroupBy...)
	}
	res := sparql.NewResults(vars)
	for _, key := range order {
		group := grouped[key]
		row := make([]rdf.Term, len(vars))
		for i, v := range vars {
			var p *sparql.Projection
			if i < len(q.Projection) {
				p = &q.Projection[i]
			}
			if p != nil && p.Agg != nil {
				val, err := evalAggregate(p.Agg, group)
				if err != nil {
					return nil, err
				}
				row[i] = val
				continue
			}
			row[i] = group[0][v] // constant within the group
		}
		res.Rows = append(res.Rows, row)
	}
	if len(q.OrderBy) > 0 {
		orderRows(res, q.OrderBy)
	}
	applyLimitOffset(res, q.Limit, q.Offset)
	return res, nil
}

func groupKey(vars []string, b Binding) string {
	var buf []byte
	for _, v := range vars {
		t := b[v]
		buf = append(buf, t.String()...)
		buf = append(buf, 0)
	}
	return string(buf)
}

func evalAggregate(a *sparql.Aggregate, rows []Binding) (rdf.Term, error) {
	switch a.Func {
	case "COUNT":
		if a.Var == "" {
			return rdf.NewInteger(int64(len(rows))), nil
		}
		if a.Distinct {
			seen := map[rdf.Term]bool{}
			for _, b := range rows {
				if t, ok := b[a.Var]; ok {
					seen[t] = true
				}
			}
			return rdf.NewInteger(int64(len(seen))), nil
		}
		n := 0
		for _, b := range rows {
			if _, ok := b[a.Var]; ok {
				n++
			}
		}
		return rdf.NewInteger(int64(n)), nil
	case "SUM", "AVG", "MIN", "MAX":
		var vals []float64
		for _, b := range rows {
			if t, ok := b[a.Var]; ok {
				if f, ok := t.Numeric(); ok {
					vals = append(vals, f)
				}
			}
		}
		if len(vals) == 0 {
			return rdf.NewInteger(0), nil
		}
		agg := vals[0]
		for _, v := range vals[1:] {
			switch a.Func {
			case "SUM", "AVG":
				agg += v
			case "MIN":
				if v < agg {
					agg = v
				}
			case "MAX":
				if v > agg {
					agg = v
				}
			}
		}
		if a.Func == "AVG" {
			agg /= float64(len(vals))
		}
		return rdf.NewDouble(agg), nil
	}
	return rdf.Term{}, fmt.Errorf("eval: unsupported aggregate %s", a.Func)
}

// evalGroup evaluates a group graph pattern seeded with the given solutions.
// Filters are collected and applied at the end of the group, per SPARQL
// scoping rules.
func (e *Evaluator) evalGroup(g *sparql.GroupPattern, input []Binding) ([]Binding, error) {
	rows := input
	// Hoist VALUES blocks to the front: joining the inline data first seeds
	// the basic graph pattern with bound variables, so bound subqueries
	// (Lusail's and FedX's VALUES-based bound joins) evaluate with index
	// lookups instead of scanning and post-filtering. Join is commutative,
	// so this is semantics-preserving.
	for _, el := range g.Elements {
		if d, ok := el.(sparql.InlineData); ok {
			rows = joinWithValues(rows, d)
		}
	}
	var filters []sparql.Expr
	var bgp []sparql.TriplePattern

	flushBGP := func() {
		if len(bgp) > 0 {
			rows = e.evalBGP(bgp, rows)
			bgp = nil
		}
	}

	for _, el := range g.Elements {
		switch el := el.(type) {
		case sparql.TriplePattern:
			bgp = append(bgp, el)
		case sparql.Filter:
			filters = append(filters, el.Expr)
		case sparql.Optional:
			flushBGP()
			next := make([]Binding, 0, len(rows))
			for _, b := range rows {
				ext, err := e.evalGroup(el.Group, []Binding{b})
				if err != nil {
					return nil, err
				}
				if len(ext) == 0 {
					next = append(next, b)
				} else {
					next = append(next, ext...)
				}
			}
			rows = next
		case sparql.Union:
			flushBGP()
			var next []Binding
			for _, br := range el.Branches {
				out, err := e.evalGroup(br, rows)
				if err != nil {
					return nil, err
				}
				next = append(next, out...)
			}
			rows = next
		case sparql.SubSelect:
			flushBGP()
			sub, err := e.subSelect(el.Query)
			if err != nil {
				return nil, err
			}
			rows = joinWithResults(rows, sub)
		case sparql.InlineData:
			// Already joined in the hoisting pass above.
		case sparql.Bind:
			flushBGP()
			for i, b := range rows {
				if v, err := evalExpr(e, el.Expr, b); err == nil && !v.IsZero() {
					nb := cloneBinding(b)
					nb[el.Var] = v
					rows[i] = nb
				}
			}
		default:
			return nil, fmt.Errorf("eval: unsupported group element %T", el)
		}
		if len(rows) == 0 && len(bgp) == 0 {
			// Short-circuit: no solutions can come back (filters can only
			// remove rows).
			break
		}
	}
	flushBGP()
	for _, f := range filters {
		kept := rows[:0]
		for _, b := range rows {
			ok, err := evalEBV(e, f, b)
			if err == nil && ok {
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	return rows, nil
}

// evalBGP evaluates a basic graph pattern by joining its triple patterns
// into the current solutions. Patterns are chosen greedily: at each step,
// pick the pattern with the most positions bound (by constants or
// already-bound variables), breaking ties by smaller predicate cardinality.
func (e *Evaluator) evalBGP(patterns []sparql.TriplePattern, rows []Binding) []Binding {
	remaining := append([]sparql.TriplePattern(nil), patterns...)
	bound := map[string]bool{}
	if len(rows) > 0 {
		for v := range rows[0] {
			bound[v] = true
		}
		// Variables bound in *any* seed row count as bound for ordering
		// purposes; correctness does not depend on this, only efficiency.
		for _, r := range rows {
			for v := range r {
				bound[v] = true
			}
		}
	}
	for len(remaining) > 0 && len(rows) > 0 {
		best := 0
		bestScore := -1 << 30
		for i, tp := range remaining {
			score := patternScore(tp, bound, e.st)
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		rows = e.joinPattern(tp, rows)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
	}
	if len(rows) == 0 {
		return nil
	}
	return rows
}

// patternScore ranks a pattern for greedy join ordering: more bound
// positions first, then rarer predicates. The predicate statistic comes
// through the Graph interface, so both the in-memory and the disk backend
// order joins identically on identical data.
func patternScore(tp sparql.TriplePattern, bound map[string]bool, st store.Graph) int {
	score := 0
	for _, pt := range []sparql.PatternTerm{tp.S, tp.P, tp.O} {
		if !pt.IsVar() || bound[pt.Var] {
			score += 1000
		}
	}
	if !tp.P.IsVar() {
		// Prefer selective predicates: subtract (bounded) predicate count.
		c := st.PredicateCount(tp.P.Term)
		if c > 999 {
			c = 999
		}
		score -= c
	}
	return score
}

// joinPattern extends every solution with matches of the pattern.
func (e *Evaluator) joinPattern(tp sparql.TriplePattern, rows []Binding) []Binding {
	var out []Binding
	for _, b := range rows {
		s := resolve(tp.S, b)
		p := resolve(tp.P, b)
		o := resolve(tp.O, b)
		e.st.Match(s, p, o, func(t rdf.Triple) bool {
			nb := extendBinding(b, tp, t)
			if nb != nil {
				out = append(out, nb)
			}
			return true
		})
	}
	return out
}

// resolve turns a pattern position into a concrete match term: nil for an
// unbound variable (wildcard), the bound value for a bound variable, or the
// constant.
func resolve(pt sparql.PatternTerm, b Binding) *rdf.Term {
	if pt.IsVar() {
		if t, ok := b[pt.Var]; ok {
			return &t
		}
		return nil
	}
	t := pt.Term
	return &t
}

// extendBinding binds the pattern's unbound variables from the matched
// triple. It returns nil when the same variable would need two different
// values (e.g. pattern ?x p ?x matching a triple with s != o).
func extendBinding(b Binding, tp sparql.TriplePattern, t rdf.Triple) Binding {
	nb := cloneBinding(b)
	for _, pair := range [3]struct {
		pt  sparql.PatternTerm
		val rdf.Term
	}{{tp.S, t.S}, {tp.P, t.P}, {tp.O, t.O}} {
		if !pair.pt.IsVar() {
			continue
		}
		if existing, ok := nb[pair.pt.Var]; ok {
			if existing != pair.val {
				return nil
			}
			continue
		}
		nb[pair.pt.Var] = pair.val
	}
	return nb
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+2)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// joinWithResults joins current solutions with a materialized result set on
// their shared variables (used for sub-selects).
func joinWithResults(rows []Binding, sub *sparql.Results) []Binding {
	var out []Binding
	for _, b := range rows {
		for i := range sub.Rows {
			sb := sub.Binding(i)
			if nb := mergeCompatible(b, sb); nb != nil {
				out = append(out, nb)
			}
		}
	}
	return out
}

// joinWithValues joins current solutions with a VALUES block; UNDEF cells
// impose no constraint.
func joinWithValues(rows []Binding, d sparql.InlineData) []Binding {
	var out []Binding
	for _, b := range rows {
		for _, vr := range d.Rows {
			nb := cloneBinding(b)
			ok := true
			for i, v := range d.Vars {
				if vr[i].IsZero() {
					continue
				}
				if existing, bound := nb[v]; bound {
					if existing != vr[i] {
						ok = false
						break
					}
					continue
				}
				nb[v] = vr[i]
			}
			if ok {
				out = append(out, nb)
			}
		}
	}
	return out
}

// mergeCompatible merges two bindings when they agree on shared variables,
// returning nil otherwise.
func mergeCompatible(a, b Binding) Binding {
	nb := cloneBinding(a)
	for k, v := range b {
		if existing, ok := nb[k]; ok {
			if existing != v {
				return nil
			}
			continue
		}
		nb[k] = v
	}
	return nb
}
