package eval

import (
	"testing"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

func TestConstructBasic(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://ex/>
		CONSTRUCT { ?s ex:taughtBy ?p }
		WHERE { ?s ex:advisor ?p . ?p ex:teacherOf ?c . ?s ex:takesCourse ?c }`)
	triples, err := New(testStore()).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 3 {
		t.Fatalf("triples = %d, want 3", len(triples))
	}
	for _, tr := range triples {
		if tr.P.Value != "http://ex/taughtBy" {
			t.Errorf("predicate = %v", tr.P)
		}
	}
}

func TestConstructMultiPatternTemplateAndDedup(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://ex/>
		CONSTRUCT {
			?p a ex:Teacher .
			?c a ex:TaughtCourse .
		}
		WHERE { ?p ex:teacherOf ?c }`)
	triples, err := New(testStore()).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	// 3 teachers + 2 distinct courses (db taught twice → deduplicated).
	if len(triples) != 5 {
		t.Errorf("triples = %d, want 5: %v", len(triples), triples)
	}
}

func TestConstructSkipsInvalidInstantiations(t *testing.T) {
	// ?n binds literals: a template using it as subject must skip those
	// solutions; optional leaves ?m unbound.
	q := sparql.MustParse(`
		PREFIX ex: <http://ex/>
		CONSTRUCT { ?n ex:p ?s . ?s ex:q ?m }
		WHERE { ?s ex:name ?n . OPTIONAL { ?s ex:missing ?m } }`)
	triples, err := New(testStore()).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 0 {
		t.Errorf("invalid instantiations kept: %v", triples)
	}
}

func TestConstructRoundTripSerialization(t *testing.T) {
	in := `CONSTRUCT { ?s <http://ex/p> ?o . } WHERE { ?s <http://ex/q> ?o . }`
	q := sparql.MustParse(in)
	if q.Form != sparql.ConstructForm || len(q.Template) != 1 {
		t.Fatalf("parsed %+v", q)
	}
	q2, err := sparql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(q2.Template) != 1 || q2.Template[0] != q.Template[0] {
		t.Errorf("template round trip: %v vs %v", q2.Template, q.Template)
	}
}

func TestQueryRejectsConstruct(t *testing.T) {
	q := sparql.MustParse(`CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://p> ?o }`)
	if _, err := New(testStore()).Query(q); err == nil {
		t.Error("Query should reject CONSTRUCT form")
	}
}

func TestConstructTemplateWithConstants(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX ex: <http://ex/>
		CONSTRUCT { ex:summary ex:studentCount ?s }
		WHERE { ?s a ex:Student }`)
	triples, err := New(testStore()).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 2 {
		t.Errorf("triples = %d", len(triples))
	}
	if triples[0].S != rdf.NewIRI("http://ex/summary") {
		t.Errorf("subject = %v", triples[0].S)
	}
}
