package lint

import (
	"fmt"
	"go/ast"
)

const obsPath = "lusail/internal/obs"

var analyzerSpanend = &Analyzer{
	Name: "spanend",
	Doc: `enforce that every obs span is ended on all return paths. A span
started via obs.StartSpan, (*Span).StartChild, or obs.NewSpan that misses
its End() on an early return stays open forever: EXPLAIN shows a
zero-duration phase, SumByName undercounts it, and the trace tree lies
about where the query spent its time. Prefer "defer sp.End()"; a span
handed off to another function, struct, or closure is that holder's
responsibility. Built on the shared resource-lifecycle engine
(lifecycle.go).`,
	Run: runSpanend,
}

func runSpanend(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			checkSpansIn(pass, fn)
		}
	}
}

// spanResultIndex reports whether call creates a span, and which result is
// the span (StartSpan returns (ctx, span); the others return the span).
func spanResultIndex(pass *Pass, call *ast.CallExpr) (int, bool) {
	obj := calleeOf(pass.Pkg, call)
	switch {
	case isFunc(obj, obsPath, "StartSpan"):
		return 1, true
	case isFunc(obj, obsPath, "NewSpan"):
		return 0, true
	case isMethod(obj, obsPath, "Span", "StartChild"):
		return 0, true
	}
	return 0, false
}

func checkSpansIn(pass *Pass, fn funcNode) {
	parents := parentMap(fn.body)
	walkShallow(fn.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		idx, ok := spanResultIndex(pass, call)
		if !ok || idx >= len(asg.Lhs) {
			return true
		}
		target, ok := ast.Unparen(asg.Lhs[idx]).(*ast.Ident)
		if !ok {
			return true // assigned to a field/element: handed off
		}
		if target.Name == "_" {
			pass.Reportf(call.Pos(), "span discarded: the result of %s can never be ended; bind it and defer End()", exprText(call.Fun))
			return true
		}
		obj := assignedObj(pass.Pkg, target)
		if obj == nil {
			return true
		}
		deferred, escaped, ends := classifyResourceUses(pass.Pkg, fn.body, parents, obj, "End")
		if deferred || escaped {
			return true
		}
		name := target.Name
		checkReleasePaths(pass, pass.Pkg, fn.body, parents,
			resource{pos: call.Pos(), end: asg.End()}, false, ends,
			fmt.Sprintf("span %s is never ended: add defer %s.End() after creation", name, name),
			func(retLine int) string {
				return fmt.Sprintf("span %s may leak on the return at line %d: End() is not reached on that path; prefer defer %s.End()",
					name, retLine, name)
			})
		return true
	})
}
