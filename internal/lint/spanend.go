package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const obsPath = "lusail/internal/obs"

var analyzerSpanend = &Analyzer{
	Name: "spanend",
	Doc: `enforce that every obs span is ended on all return paths. A span
started via obs.StartSpan, (*Span).StartChild, or obs.NewSpan that misses
its End() on an early return stays open forever: EXPLAIN shows a
zero-duration phase, SumByName undercounts it, and the trace tree lies
about where the query spent its time. Prefer "defer sp.End()"; a span
handed off to another function, struct, or closure is that holder's
responsibility.`,
	Run: runSpanend,
}

// spanCreation is one tracked span-producing assignment.
type spanCreation struct {
	obj  types.Object // the local span variable
	name string
	pos  token.Pos
	end  token.Pos // end of the creating statement
}

func runSpanend(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			checkSpansIn(pass, fn)
		}
	}
}

// spanResultIndex reports whether call creates a span, and which result is
// the span (StartSpan returns (ctx, span); the others return the span).
func spanResultIndex(pass *Pass, call *ast.CallExpr) (int, bool) {
	obj := calleeOf(pass, call)
	switch {
	case isFunc(obj, obsPath, "StartSpan"):
		return 1, true
	case isFunc(obj, obsPath, "NewSpan"):
		return 0, true
	case isMethod(obj, obsPath, "Span", "StartChild"):
		return 0, true
	}
	return 0, false
}

func checkSpansIn(pass *Pass, fn funcNode) {
	var creations []spanCreation
	walkShallow(fn.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		idx, ok := spanResultIndex(pass, call)
		if !ok || idx >= len(asg.Lhs) {
			return true
		}
		target, ok := ast.Unparen(asg.Lhs[idx]).(*ast.Ident)
		if !ok {
			return true // assigned to a field/element: handed off
		}
		if target.Name == "_" {
			pass.Reportf(call.Pos(), "span discarded: the result of %s can never be ended; bind it and defer End()", exprText(call.Fun))
			return true
		}
		obj := pass.Pkg.Info.Defs[target]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[target] // plain = assignment
		}
		if obj != nil {
			creations = append(creations, spanCreation{obj: obj, name: target.Name, pos: call.Pos(), end: asg.End()})
		}
		return true
	})
	if len(creations) == 0 {
		return
	}

	parents := parentMap(fn.body)
	returns := returnsOf(fn.body)
	for _, c := range creations {
		deferred, escaped, ends := classifySpanUses(pass, fn.body, parents, c)
		if deferred || escaped {
			continue
		}
		if len(ends) == 0 {
			pass.Reportf(c.pos, "span %s is never ended: add defer %s.End() after creation", c.name, c.name)
			continue
		}
		block := enclosingBlock(fn.body, c.pos)
		for _, ret := range returns {
			if ret.Pos() <= c.end || ret.Pos() < block.Pos() || ret.End() > block.End() {
				continue
			}
			ended := false
			for _, e := range ends {
				if e > c.end && e < ret.Pos() {
					ended = true
					break
				}
			}
			if !ended {
				pass.Reportf(c.pos, "span %s may leak on the return at line %d: End() is not reached on that path; prefer defer %s.End()",
					c.name, pass.Fset.Position(ret.Pos()).Line, c.name)
			}
		}
	}
}

// classifySpanUses inspects every reference to the span variable and sorts
// them into: a deferred End, an escape (handed off to a call, return,
// assignment, closure, or composite), or a plain End call position.
func classifySpanUses(pass *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, c spanCreation) (deferred, escaped bool, ends []token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[id] != c.obj {
			return true
		}
		// A reference inside a nested closure hands responsibility to the
		// closure (deferred cleanup funcs, goroutines).
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				escaped = true
				return true
			}
		}
		parent := parents[ast.Node(id)]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
			if call, ok := parents[ast.Node(sel)].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
				if sel.Sel.Name == "End" {
					if _, isDefer := parents[ast.Node(call)].(*ast.DeferStmt); isDefer {
						deferred = true
					} else {
						ends = append(ends, call.Pos())
					}
					return true
				}
				// SetAttr/Attr/Children/...: a plain receiver use.
				return true
			}
			// Method value or field access: conservative handoff.
			escaped = true
			return true
		}
		// Any other use (argument, return value, re-assignment, composite
		// literal, channel send, comparison...) counts as a handoff, except
		// the defining identifier itself.
		if pass.Pkg.Info.Defs[id] == c.obj {
			return true
		}
		escaped = true
		return true
	})
	return deferred, escaped, ends
}
