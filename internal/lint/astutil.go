package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeOf resolves a call expression to the object it invokes (a
// *types.Func for functions and methods, a *types.Var for calls through
// function-typed values), or nil for type conversions and unresolvable
// callees.
func calleeOf(pkg *Package, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	}
	return nil
}

// isFunc reports whether obj is the function or method pkgPath.name.
func isFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// recvTypeName returns the bare name of a method's receiver type ("Manager"
// for func (m *Manager) ...), or "" for non-methods.
func recvTypeName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isMethod reports whether obj is the method pkgPath.(recv).name, with the
// receiver matched by bare type name.
func isMethod(obj types.Object, pkgPath, recv, name string) bool {
	return isFunc(obj, pkgPath, name) && recvTypeName(obj) == recv
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isErrorExpr reports whether the expression's static type satisfies error
// and the expression is not the nil literal.
func isErrorExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return implementsError(tv.Type)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcNode is one function body to analyze: a declaration or a literal.
// Nested literals are separate funcNodes, so per-function analyses (return
// paths, lock regions) never leak across closure boundaries.
type funcNode struct {
	name string // declared name, or "func literal"
	decl *ast.FuncDecl
	body *ast.BlockStmt
}

// functionsIn collects every function body in the file, outermost first.
func functionsIn(f *ast.File) []funcNode {
	var out []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcNode{name: fn.Name.Name, decl: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcNode{name: "func literal", body: fn.Body})
		}
		return true
	})
	return out
}

// walkShallow visits the nodes of a function body without descending into
// nested function literals.
func walkShallow(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// returnsOf lists the return statements belonging to this function body
// (not to nested literals), in source order.
func returnsOf(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	walkShallow(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// enclosingBlock returns the innermost *ast.BlockStmt of body that strictly
// contains pos (body itself when no nested block does).
func enclosingBlock(body *ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	best := body
	walkShallow(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && b.Pos() <= pos && pos < b.End() {
			if best == nil || (b.Pos() >= best.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
		return true
	})
	return best
}

// identObj resolves an identifier expression to its object, or nil.
func identObj(pkg *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// exprText renders a small expression (identifier / selector chain) for
// diagnostics; other shapes collapse to "<expr>".
func exprText(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	case *ast.UnaryExpr:
		return v.Op.String() + exprText(v.X)
	}
	return "<expr>"
}

// usesObject reports whether any identifier under n (descending into
// nested literals too) resolves to obj.
func usesObject(pkg *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
