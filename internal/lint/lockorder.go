package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

var analyzerLockorder = &Analyzer{
	Name:   "lockorder",
	Module: true,
	Doc: `statically detect deadlocks: build the lock-ordering graph for every
sync.Mutex/RWMutex in the tree — including acquisitions reached through
calls, via the interprocedural summaries — and report (1) a lock
re-acquired while already held (a guaranteed self-deadlock, possibly
through a helper that locks again), and (2) cycles between lock classes
(function f takes A then B, function g takes B then A: two goroutines
interleaving deadlock both). Locks are classed by owning type and field
("server.PlanCache.mu") or package-level variable; distinct instances of
one class are not ordered against each other. The held-lock tracking is
shared with nolockio.`,
	Run: runLockorder,
}

// lockEdge is one observed ordering: "to" was acquired while "from" was
// held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	// via describes how the second acquisition was reached ("" for a
	// direct Lock, "via call to pkg.F" for a summarized one).
	via string
}

func runLockorder(pass *Pass) {
	prog := pass.Prog
	edges := map[string]map[string]lockEdge{} // from -> to -> first witness

	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == "" || to == "" || from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = map[string]lockEdge{}
			edges[from] = m
		}
		if old, ok := m[to]; !ok || pos < old.pos {
			m[to] = lockEdge{from: from, to: to, pos: pos, via: via}
		}
	}

	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, fn := range functionsIn(f) {
				recv := funcRecvObj(pkg, fn)
				hooks := lockHooks{
					acquire: func(ref lockRef, held map[string]lockRef) {
						for _, h := range sortedHeld(held) {
							if h.key == ref.key || (h.class != "" && h.class == ref.class && classIsVar(ref.class)) {
								pass.Reportf(ref.pos,
									"%s acquired while already held (locked at line %d): guaranteed self-deadlock",
									ref.key, pass.Fset.Position(h.pos).Line)
								continue
							}
							addEdge(h.class, ref.class, ref.pos, "")
						}
					},
					call: func(call *ast.CallExpr, held map[string]lockRef) {
						callee := prog.FuncOf(pkg, call)
						if callee == nil {
							return
						}
						via := "via call to " + shortFuncID(callee.ID)
						// Instantiate receiver-rooted acquisitions against
						// this call's receiver: same expression text means
						// the same instance — a definite relock.
						recvText := ""
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
							recvText = exprText(sel.X)
						}
						for _, field := range sortedKeys(callee.Summary.RecvAcquires) {
							fpos := callee.Summary.RecvAcquires[field]
							instKey := recvText + "." + field
							if h, ok := held[instKey]; ok {
								pass.Reportf(call.Pos(),
									"calling %s while holding %s (locked at line %d): the callee locks %s again (at %s) — guaranteed self-deadlock",
									shortFuncID(callee.ID), instKey, pass.Fset.Position(h.pos).Line,
									instKey, shortPos(pass.Fset, fpos))
							}
						}
						for _, class := range sortedKeys(callee.Summary.Acquires) {
							cpos := callee.Summary.Acquires[class]
							for _, h := range sortedHeld(held) {
								if h.class == class && classIsVar(class) {
									pass.Reportf(call.Pos(),
										"calling %s while holding %s (locked at line %d): the callee locks the same package-level mutex again (at %s) — guaranteed self-deadlock",
										shortFuncID(callee.ID), h.key, pass.Fset.Position(h.pos).Line,
										shortPos(pass.Fset, cpos))
									continue
								}
								addEdge(h.class, class, call.Pos(), via)
							}
						}
					},
				}
				scanLockFlow(pkg, recv, fn.body.List, map[string]lockRef{}, hooks)
			}
		}
	}

	reportLockCycles(pass, edges)
}

// reportLockCycles finds strongly connected components of the lock-class
// digraph and reports one diagnostic per cyclic component, anchored at its
// earliest witness edge.
func reportLockCycles(pass *Pass, edges map[string]map[string]lockEdge) {
	nodes := map[string]bool{}
	for from, m := range edges {
		nodes[from] = true
		for to := range m {
			nodes[to] = true
		}
	}
	ids := make([]string, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Strings(ids)

	// Tarjan over lock classes.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strong(id)
		}
	}

	for _, comp := range comps {
		in := map[string]bool{}
		for _, c := range comp {
			in[c] = true
		}
		cycle := shortestCycle(edges, comp, in)
		if len(cycle) == 0 {
			continue
		}
		// Anchor at the earliest witness so the diagnostic is stable and
		// suppressible at one acquisition site.
		anchor := cycle[0]
		for _, e := range cycle {
			if e.pos < anchor.pos {
				anchor = e
			}
		}
		var parts []string
		for _, e := range cycle {
			step := fmt.Sprintf("%s -> %s (%s", shortClass(e.from), shortClass(e.to), shortPos(pass.Fset, e.pos))
			if e.via != "" {
				step += ", " + e.via
			}
			step += ")"
			parts = append(parts, step)
		}
		pass.Reportf(anchor.pos, "lock-order cycle: %s; acquisitions must follow one global order or two goroutines interleaving these paths deadlock",
			strings.Join(parts, "; "))
	}
}

// shortestCycle finds a minimal cycle inside one strongly connected
// component by BFS from its smallest node back to itself.
func shortestCycle(edges map[string]map[string]lockEdge, comp []string, in map[string]bool) []lockEdge {
	sort.Strings(comp)
	start := comp[0]
	type pathNode struct {
		at   string
		path []lockEdge
	}
	queue := []pathNode{{at: start}}
	seen := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		tos := make([]string, 0, len(edges[cur.at]))
		for to := range edges[cur.at] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !in[to] {
				continue
			}
			e := edges[cur.at][to]
			path := append(append([]lockEdge{}, cur.path...), e)
			if to == start {
				return path
			}
			if !seen[to] {
				seen[to] = true
				queue = append(queue, pathNode{at: to, path: path})
			}
		}
	}
	return nil
}

// funcRecvObj resolves the receiver object of a funcNode's declaration,
// nil for plain functions and literals.
func funcRecvObj(pkg *Package, fn funcNode) types.Object {
	if fn.decl == nil {
		return nil
	}
	return recvObjOf(pkg, fn.decl)
}

// classIsVar reports whether a lock class names a package-level variable
// ("pkg/path.mu", one dot after the last slash) rather than a type field
// ("pkg/path.Type.mu", two). Package-level locks are singletons, so class
// identity is instance identity.
func classIsVar(class string) bool {
	tail := class
	if i := strings.LastIndex(class, "/"); i >= 0 {
		tail = class[i+1:]
	}
	return strings.Count(tail, ".") == 1
}

// shortClass trims the module path prefix for readable diagnostics:
// "lusail/internal/server.PlanCache.mu" -> "server.PlanCache.mu".
func shortClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

// shortFuncID trims the package path of a FuncID the same way.
func shortFuncID(id FuncID) string {
	s := string(id)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// shortPos renders "file.go:line" with the bare file name, keeping
// diagnostics machine-independent for golden tests.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// sortedKeys returns a map's keys in order, for deterministic reports.
func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedHeld returns the held locks ordered by key for deterministic
// reports.
func sortedHeld(held map[string]lockRef) []lockRef {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, held[k])
	}
	return out
}
