// Package streamclose is a lusail-vet testdata package: every marked line
// must produce exactly one streamclose diagnostic. The stream types are
// local — detection is by method shape, not import path — so the package
// mirrors how core.RowStream, *core.Rows, and sparql.RowReader present to
// the analyzer without depending on them.
package streamclose

import "errors"

var errBoom = errors.New("boom")

// rowStream has the cursor shape: Next() bool, Err() error, Close() error.
type rowStream struct{ done bool }

func (s *rowStream) Next() bool   { return !s.done }
func (s *rowStream) Err() error   { return nil }
func (s *rowStream) Row() []int   { return nil }
func (s *rowStream) Close() error { s.done = true; return nil }

// rowReader has the decoder shape: Vars(), Read() (T, error), Close() error.
type rowReader struct{}

func (r *rowReader) Vars() []string       { return nil }
func (r *rowReader) Read() ([]int, error) { return nil, nil }
func (r *rowReader) Close() error         { return nil }

func open() (*rowStream, error)       { return &rowStream{}, nil }
func openReader() (*rowReader, error) { return &rowReader{}, nil }

// neverClosed drains the stream but never releases it.
func neverClosed() error {
	s, err := open() // want: never closed
	if err != nil {
		return err
	}
	for s.Next() {
	}
	return s.Err()
}

// discarded throws the stream away at the assignment.
func discarded() {
	_, _ = open() // want: discarded
}

// earlyReturn closes on the happy path but leaks on the guard.
func earlyReturn(fail bool) error {
	s, err := open() // want: may leak on the return
	if err != nil {
		return err
	}
	if fail {
		return errBoom
	}
	s.Close()
	return nil
}

// readerLeak exercises the reader shape.
func readerLeak() error {
	rd, err := openReader() // want: never closed
	if err != nil {
		return err
	}
	_, rerr := rd.Read()
	return rerr
}

// deferredOK is the clean shape: the error-guarded return is exempt, the
// deferred Close covers everything after it.
func deferredOK() error {
	s, err := open()
	if err != nil {
		return err
	}
	defer s.Close()
	for s.Next() {
	}
	return s.Err()
}

// explicitOK closes before every unguarded return.
func explicitOK() error {
	s, err := open()
	if err != nil {
		return err
	}
	for s.Next() {
	}
	rerr := s.Err()
	if cerr := s.Close(); rerr == nil {
		rerr = cerr
	}
	return rerr
}

// handoffOK passes the stream to a holder; closing becomes its job.
func handoffOK() (*rowStream, error) {
	s, err := open()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// closureOK hands the stream to a function literal.
func closureOK() func() {
	s, _ := open()
	return func() { s.Close() }
}
