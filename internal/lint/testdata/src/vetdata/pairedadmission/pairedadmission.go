// Package pairedadmission is a lusail-vet testdata package: every marked
// line must produce exactly one pairedadmission diagnostic. The shapes
// mirror the PR 3 incident, where a claimed half-open trial slot was never
// recorded and the breaker wedged.
package pairedadmission

import (
	"errors"
	"time"

	"lusail/internal/resilience"
)

var errDown = errors.New("endpoint down")

// unpaired claims an admission and never records the outcome.
func unpaired(m *resilience.Manager, ep string) error {
	if err := m.Allow(ep); err != nil { // want: no matching Record
		return err
	}
	return query(ep)
}

// leakyReturn records on the happy path but leaks the slot on the error
// return — the exact wedge shape.
func leakyReturn(m *resilience.Manager, ep string) error {
	if err := m.Allow(ep); err != nil { // want: unpaired on early return
		return err
	}
	start := time.Now()
	if err := query(ep); err != nil {
		return err
	}
	m.Record(ep, time.Since(start), nil)
	return nil
}

// deferred is the clean shape: Record runs on every path.
func deferred(m *resilience.Manager, ep string) error {
	if err := m.Allow(ep); err != nil {
		return err
	}
	start := time.Now()
	var qerr error
	defer func() { m.Record(ep, time.Since(start), qerr) }()
	qerr = query(ep)
	return qerr
}

// recordedBeforeEveryReturn pairs the claim explicitly on both paths.
func recordedBeforeEveryReturn(m *resilience.Manager, ep string) error {
	err := m.Allow(ep)
	if err != nil {
		return err
	}
	start := time.Now()
	if qerr := query(ep); qerr != nil {
		m.Record(ep, time.Since(start), qerr)
		return qerr
	}
	m.Record(ep, time.Since(start), nil)
	return nil
}

// passThrough forwards the claim to its caller, which owns the pairing.
func passThrough(m *resilience.Manager, ep string) error {
	return m.Allow(ep)
}

func query(ep string) error {
	if ep == "" {
		return errDown
	}
	return nil
}
