// Package suppressed is a lusail-vet testdata package exercising the
// suppression directive machinery: justified directives silence their
// diagnostic, while malformed, unknown-analyzer, and unused directives are
// themselves reported under the "directive" pseudo-analyzer.
package suppressed

import "context"

// daemonRoot is a legitimate context root: its directive (line above the
// flagged line) must silence ctxflow and produce no output.
func daemonRoot() context.Context {
	//lint:lusail-vet ctxflow -- detached daemon loop rooted on its own stop channel
	return context.Background()
}

// sameLine suppresses with the directive trailing the flagged line itself.
func sameLine() context.Context {
	return context.TODO() //lint:lusail-vet ctxflow -- placeholder root for a stubbed transport
}

// missingJustification keeps the violation visible: a directive without
// " -- why" is malformed, so both the ctxflow diagnostic and a directive
// diagnostic must appear.
func missingJustification() context.Context {
	//lint:lusail-vet ctxflow
	return context.Background() // want: ctxflow (directive above is malformed)
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer() context.Context {
	//lint:lusail-vet nosuchcheck -- typo in the analyzer name
	return context.Background() // want: ctxflow (directive names no real analyzer)
}

// cleanButSuppressed carries a directive with nothing to suppress: the
// unused directive itself is the diagnostic.
func cleanButSuppressed(ctx context.Context) error {
	//lint:lusail-vet ctxflow -- stale justification left behind by a refactor
	return ctx.Err()
}

// multiName suppresses two analyzers on one line; only ctxflow fires here,
// and naming errwrapdiscipline too must still count the directive as used.
func multiName() context.Context {
	//lint:lusail-vet ctxflow,errwrapdiscipline -- shared root for a test harness stub
	return context.Background()
}

// spinSuppressed silences the Module-analyzer diagnostic: spawnjoin is
// interprocedural, so its directive must be honored through the global
// suppression pass, not the per-package one.
func spinSuppressed() {
	//lint:lusail-vet spawnjoin -- burn-in harness goroutine, killed with the process
	go func() {
		for {
		}
	}()
}

// unusedNewName carries a directive for a new analyzer with nothing to
// suppress: the unused-directive diagnostic must fire for the
// interprocedural analyzer names too.
func unusedNewName() {
	//lint:lusail-vet lockorder -- stale note about a lock that was removed
	spinHelper()
}

// malformedNewName is malformed (no justification) while naming a new
// analyzer, so the directive diagnostic and the spawnjoin diagnostic both
// appear.
func malformedNewName() {
	//lint:lusail-vet budgetbound,spawnjoin
	go spinHelper() // want: spawnjoin (directive above is malformed)
}

func spinHelper() {
	for {
	}
}
