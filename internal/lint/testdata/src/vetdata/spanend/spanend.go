// Package spanend is a lusail-vet testdata package: every marked line must
// produce exactly one spanend diagnostic. The package spans two files to
// exercise multi-file analysis.
package spanend

import (
	"context"
	"errors"

	"lusail/internal/obs"
)

var errBoom = errors.New("boom")

// neverEnded creates a span and forgets about it entirely.
func neverEnded(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "query") // want: never ended
	sp.SetAttr("q", "SELECT")
	return nil
}

// discarded throws the span away at the assignment.
func discarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "probe") // want: discarded
}

// earlyReturn ends the span on the happy path only.
func earlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "exec") // want: may leak on early return
	if fail {
		return errBoom
	}
	sp.End()
	return nil
}

// deferred is the clean shape.
func deferred(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "exec")
	defer sp.End()
	if fail {
		return errBoom
	}
	return nil
}

// handedOff gives the span to another holder: their problem, no report.
func handedOff(ctx context.Context) *obs.Span {
	_, sp := obs.StartSpan(ctx, "outer")
	return sp
}
