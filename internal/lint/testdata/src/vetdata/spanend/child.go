package spanend

import "lusail/internal/obs"

// childLeak forgets a StartChild span in the second file of the package.
func childLeak(parent *obs.Span) {
	child := parent.StartChild("analysis") // want: never ended
	child.SetAttr("phase", "lade")
}

// rootLeak forgets an obs.NewSpan root.
func rootLeak() {
	root := obs.NewSpan("session") // want: never ended
	root.SetAttr("kind", "root")
}

// childOK ends the child before every return.
func childOK(parent *obs.Span) {
	child := parent.StartChild("execution")
	child.SetAttr("phase", "sape")
	child.End()
}
