// Package ctxflow is a lusail-vet testdata package: every marked line must
// produce exactly one ctxflow diagnostic.
package ctxflow

import (
	"context"
	"time"
)

// background manufactures a root context in library code.
func background() error {
	ctx := context.Background() // want: outside main/tests
	<-ctx.Done()
	return ctx.Err()
}

// todo does the same with the TODO spelling.
func todo() time.Time {
	deadline, _ := context.TODO().Deadline() // want: outside main/tests
	return deadline
}

// ignored accepts a context and drops it on the floor.
func ignored(ctx context.Context, n int) int { // want: unused parameter
	return n * 2
}

// threaded is the clean shape: the caller's context reaches the callee.
func threaded(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return background2(sub)
}

func background2(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// anonymous is exempt by name: an interface fixes the signature.
func anonymous(_ context.Context, n int) int {
	return n + 1
}
