// Package workers holds goroutine bodies whose termination evidence is
// only visible through call-graph summaries.
package workers

// Pump loops forever in its own frame; its termination path is inside
// step, whose channel receive ends the loop when the caller closes ch.
func Pump(ch chan int) {
	for {
		if !step(ch) {
			return
		}
	}
}

func step(ch chan int) bool {
	_, ok := <-ch
	return ok
}
