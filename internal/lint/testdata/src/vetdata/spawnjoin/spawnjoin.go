// Package spawnjoin plants goroutines with and without statically
// evident termination paths. The bad ones loop forever with no
// cancellation signal; the good ones select on a context, drain a closed
// channel, join a WaitGroup, or inherit evidence from a callee — in one
// case a callee in another package, exercising summary propagation.
package spawnjoin

import (
	"context"
	"sync"

	"vetdata/spawnjoin/workers"
)

func work() {}

// Spinner leaks: the goroutine loops forever with no exit signal.
func Spinner() {
	go func() { // no termination path
		for {
			work()
		}
	}()
}

// NamedSpinner leaks through a named callee: spin has the unbounded loop
// and no evidence of its own.
func NamedSpinner() {
	go spin() // no termination path
}

func spin() {
	for {
		work()
	}
}

// CtxLoop is fine: the loop selects on ctx.Done.
func CtxLoop(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// Joined is fine: the goroutine signals a WaitGroup the caller waits on.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			work()
		}
	}()
	wg.Wait()
}

// ClosedChannel is fine: ranging over a channel ends when the caller
// closes it.
func ClosedChannel() chan int {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	return ch
}

// RemoteEvidence is fine interprocedurally: workers.Pump has no loop
// evidence of its own frame beyond a call to a step function (in the same
// package) whose channel receive carries the termination evidence
// through its summary.
func RemoteEvidence(ch chan int) {
	go workers.Pump(ch)
}

// Bounded is fine without any signal: the loop has a condition, so the
// body runs to completion on its own.
func Bounded() {
	go func() {
		for i := 0; i < 100; i++ {
			work()
		}
	}()
}

// StraightLine is fine: no loop at all.
func StraightLine() {
	go func() {
		work()
	}()
}
