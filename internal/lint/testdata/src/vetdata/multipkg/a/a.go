// Package a misuses errors defined in the sibling package b: the errwrap
// diagnostics here require the loader to type-check b and resolve its
// exported objects across the package boundary.
package a

import (
	"errors"
	"fmt"

	"vetdata/multipkg/b"
)

// eqForeignSentinel compares a wrapped chain against b's sentinel with ==.
func eqForeignSentinel(err error) bool {
	return err == b.ErrUnreachable // want: use errors.Is
}

// assertForeignType asserts on b's typed error directly.
func assertForeignType(err error) int {
	if re, ok := err.(*b.RetryError); ok { // want: use errors.As
		return re.Attempts
	}
	return 0
}

// wrapForeign severs the chain to b's error with %v.
func wrapForeign(err error) error {
	return fmt.Errorf("contacting endpoint: %v", err) // want: use %w
}

// clean threads b's errors through the chain correctly.
func clean(err error) (int, bool) {
	if errors.Is(err, b.ErrUnreachable) {
		return 0, true
	}
	var re *b.RetryError
	if errors.As(err, &re) {
		return re.Attempts, true
	}
	return 0, false
}
