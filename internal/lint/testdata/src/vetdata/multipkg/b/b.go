// Package b exports the sentinel and typed errors that package a misuses:
// the pair exercises cross-package type resolution in the lint loader.
package b

import "errors"

// ErrUnreachable is the sentinel package a compares against.
var ErrUnreachable = errors.New("endpoint unreachable")

// RetryError is the typed error package a type-asserts on.
type RetryError struct {
	Attempts int
}

func (e *RetryError) Error() string { return "retries exhausted" }
