// Package errwrap is a lusail-vet testdata package: every marked line must
// produce exactly one errwrap diagnostic.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

// ErrOverloaded is a sentinel error for the tests below.
var ErrOverloaded = errors.New("endpoint overloaded")

// QueryError is a typed error carrying the failing endpoint.
type QueryError struct {
	Endpoint string
	Err      error
}

func (e *QueryError) Error() string { return e.Endpoint + ": " + e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// eqSentinel compares a possibly wrapped error with ==.
func eqSentinel(err error) bool {
	return err == ErrOverloaded // want: use errors.Is
}

// neqSentinel compares with != in a guard.
func neqSentinel(err error) error {
	if err != ErrOverloaded { // want: use errors.Is
		return err
	}
	return nil
}

// typeAssert peels a typed error with a type assertion.
func typeAssert(err error) string {
	if qe, ok := err.(*QueryError); ok { // want: use errors.As
		return qe.Endpoint
	}
	return ""
}

// typeSwitch dispatches on the dynamic error type.
func typeSwitch(err error) string {
	switch e := err.(type) { // want: use errors.As
	case *QueryError:
		return e.Endpoint
	default:
		return "unknown"
	}
}

// verbV wraps the cause with %v, severing the chain.
func verbV(err error) error {
	return fmt.Errorf("executing subquery: %v", err) // want: use %w
}

// textMatch greps the error text instead of the chain.
func textMatch(err error) bool {
	return strings.Contains(err.Error(), "overloaded") // want: match typed errors
}

// wrapped is the clean shape end to end.
func wrapped(err error) error {
	if err == nil {
		return nil
	}
	we := fmt.Errorf("executing subquery: %w", err)
	if errors.Is(we, ErrOverloaded) {
		return we
	}
	var qe *QueryError
	if errors.As(we, &qe) {
		return fmt.Errorf("endpoint %s: %w", qe.Endpoint, we)
	}
	return we
}

// switchSentinel dispatches on sentinel identity with a switch.
func switchSentinel(err error) string {
	switch err { // want: use errors.Is
	case ErrOverloaded:
		return "overloaded"
	default:
		return "other"
	}
}

// textEq compares rendered error text for equality.
func textEq(err error) bool {
	return err.Error() == "endpoint overloaded" // want: match typed errors
}
