// Package nolockio is a lusail-vet testdata package: every marked line must
// produce exactly one nolockio diagnostic.
package nolockio

import (
	"context"
	"sync"
	"time"

	"lusail/internal/client"
)

type cache struct {
	mu      sync.Mutex
	entries map[string]int
	wake    chan struct{}
}

// sleepUnderLock holds the mutex across a timed wait.
func (c *cache) sleepUnderLock() {
	c.mu.Lock()
	time.Sleep(10 * time.Millisecond) // want: blocking under c.mu
	c.mu.Unlock()
}

// queryUnderDeferredLock holds the mutex (via defer) across a network call.
func (c *cache) queryUnderDeferredLock(ctx context.Context, ep client.Endpoint) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ok, err := client.Ask(ctx, ep, "ASK { ?s ?p ?o }") // want: blocking under c.mu
	if err != nil {
		return 0, err
	}
	if ok {
		c.entries["count"] = 1
	}
	return c.entries["count"], nil
}

// sendUnderLock performs an unbuffered channel send while locked.
func (c *cache) sendUnderLock() {
	c.mu.Lock()
	c.wake <- struct{}{} // want: channel send under c.mu
	c.mu.Unlock()
}

// unlockFirst is the clean shape: drop the lock, then do the slow thing.
func (c *cache) unlockFirst(ctx context.Context, ep client.Endpoint) (int, error) {
	c.mu.Lock()
	cached, ok := c.entries["count"]
	c.mu.Unlock()
	if ok {
		return cached, nil
	}
	found, err := client.Ask(ctx, ep, "ASK { ?s ?p ?o }")
	if err != nil {
		return 0, err
	}
	n := 0
	if found {
		n = 1
	}
	c.mu.Lock()
	c.entries["count"] = n
	c.mu.Unlock()
	return n, nil
}

// selectWake is exempt: channel ops inside a select cannot wedge.
func (c *cache) selectWake() {
	c.mu.Lock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	c.mu.Unlock()
}
