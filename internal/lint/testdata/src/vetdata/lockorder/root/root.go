// Package root closes the interprocedural loops: it holds one lock while
// calling down through mid into leaf, where the second acquisition —
// and in the bad cases, the deadlock — happens two packages away.
package root

import (
	"vetdata/lockorder/leaf"
	"vetdata/lockorder/mid"
)

// IndexThenStore holds Index.Mu while, two call layers down,
// mid.Restock -> leaf.TouchStore acquires Store.Mu. Together with
// leaf.StoreThenIndex's opposite order this is a lock-order cycle.
func IndexThenStore(ix *leaf.Index, s *leaf.Store) {
	ix.Mu.Lock()
	defer ix.Mu.Unlock()
	mid.Restock(s)
}

// BadReg holds the package-level leaf.Reg while calling a chain that
// locks it again: package-level locks are singletons, so this is a
// guaranteed self-deadlock regardless of instances.
func BadReg() {
	leaf.Reg.Lock()
	mid.Audit() // leaf.AddReg locks Reg again
	leaf.Reg.Unlock()
}

// FineDisjoint holds Index.Mu around a call chain that takes no locks at
// all; no edge, no report.
func FineDisjoint(ix *leaf.Index) {
	ix.Mu.Lock()
	ix.Mu.Unlock()
	nop()
}

func nop() {}
