// Package leaf owns the lock-bearing types and the helpers that lock
// them; mid and root reach these locks only through calls, so every
// diagnostic in this tree depends on the interprocedural summaries.
package leaf

import "sync"

// Store and Index each guard a counter with their own mutex; the
// lock-order cycle closed in root is between these two lock classes.
type Store struct {
	Mu sync.Mutex
	n  int
}

type Index struct {
	Mu sync.Mutex
	n  int
}

// Reg is a package-level mutex: a singleton, so class identity is
// instance identity.
var Reg sync.Mutex

var regCount int

// TouchIndex is the helper two packages away from root's hold-and-call
// path: its Index.Mu acquisition flows up through mid.
func TouchIndex(ix *Index) {
	ix.Mu.Lock()
	ix.n++
	ix.Mu.Unlock()
}

// TouchStore gives the reverse path its Store.Mu acquisition.
func TouchStore(s *Store) {
	s.Mu.Lock()
	s.n++
	s.Mu.Unlock()
}

// AddReg locks the package-level mutex; callers already holding Reg
// self-deadlock.
func AddReg() {
	Reg.Lock()
	regCount++
	Reg.Unlock()
}

// lockedHelper locks its receiver's mutex.
func (s *Store) lockedHelper() {
	s.Mu.Lock()
	s.n++
	s.Mu.Unlock()
}

// Bad re-locks the same instance through a same-receiver helper call: the
// summary's receiver-rooted acquisition instantiates against s.
func (s *Store) Bad() {
	s.Mu.Lock()
	s.lockedHelper() // the callee locks s.Mu again: self-deadlock
	s.Mu.Unlock()
}

// DoubleLock is the direct self-relock.
func DoubleLock(s *Store) {
	s.Mu.Lock()
	s.Mu.Lock() // guaranteed self-deadlock
	s.n++
	s.Mu.Unlock()
	s.Mu.Unlock()
}

// StoreThenIndex takes the two classes in Store-then-Index order; on its
// own this direction is fine — root's reverse path makes it a cycle.
func StoreThenIndex(s *Store, ix *Index) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	TouchIndex(ix)
}
