// Package mid is the pass-through layer: it takes no locks of its own,
// so any lock effect root sees through it comes from summary
// propagation, not syntax.
package mid

import "vetdata/lockorder/leaf"

// Refresh forwards to the leaf helper; its summary carries Index.mu.
func Refresh(ix *leaf.Index) {
	leaf.TouchIndex(ix)
}

// Restock forwards the Store side.
func Restock(s *leaf.Store) {
	leaf.TouchStore(s)
}

// Audit forwards the package-level mutex acquisition.
func Audit() {
	leaf.AddReg()
}
