// Package budgetbound plants decoder- and reader-fed accumulation loops.
// The bad ones grow without any bound; the good ones compare the
// accumulated size against a budget — inline, in the loop condition, or
// inside a helper in another package whose comparison is only visible
// through its budget-guard summary.
package budgetbound

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"

	"vetdata/budgetbound/guard"
)

// Rows is the cursor shape streamclose tracks (Next/Err/Close).
type Rows struct{}

func (r *Rows) Next() bool   { return false }
func (r *Rows) Err() error   { return nil }
func (r *Rows) Close() error { return nil }
func (r *Rows) Row() []byte  { return nil }

// DecodeAll grows out from a json.Decoder with no budget: the remote side
// controls the size.
func DecodeAll(dec *json.Decoder) ([]string, error) {
	var out []string
	for dec.More() { // unbudgeted decoder loop
		var v string
		if err := dec.Decode(&v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// DrainRows grows from a cursor with no budget.
func DrainRows(r *Rows) [][]byte {
	var rows [][]byte
	for r.Next() { // unbudgeted cursor drain
		rows = append(rows, r.Row())
	}
	return rows
}

// BufferAll grows a bytes.Buffer from a bufio.Reader with no budget.
func BufferAll(br *bufio.Reader) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	for { // unbudgeted buffered read
		b, err := br.ReadByte()
		if err == io.EOF {
			return &buf, nil
		}
		if err != nil {
			return nil, err
		}
		buf.WriteByte(b)
	}
}

// DecodeBudgeted is fine: the loop checks the accumulated length inline.
func DecodeBudgeted(dec *json.Decoder, max int) ([]string, error) {
	var out []string
	for dec.More() {
		if len(out) >= max {
			return out, nil
		}
		var v string
		if err := dec.Decode(&v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// DrainCounted is fine: a byte counter written in the loop is compared in
// the loop condition.
func DrainCounted(r *Rows, budget int) [][]byte {
	var rows [][]byte
	n := 0
	for n < budget && r.Next() {
		row := r.Row()
		n += len(row)
		rows = append(rows, row)
	}
	return rows
}

// DrainChecked is fine interprocedurally: the comparison lives in
// guard.Check, another package; only its budget-guard summary says the
// forwarded size is bounded.
func DrainChecked(r *Rows, budget int) ([][]byte, error) {
	var rows [][]byte
	for r.Next() {
		rows = append(rows, r.Row())
		if err := guard.Check(len(rows), budget); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// LocalSlice is fine: ranging over an in-memory slice is not reader-fed.
func LocalSlice(vals []string) []string {
	var out []string
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}
