// Package guard is the budget-check wrapper: callers forward a size and
// a limit, and only this package's comparison enforces the bound — the
// caller-side loop is clean only through the budget-guard summary.
package guard

import "errors"

// ErrOverBudget reports a size past its limit.
var ErrOverBudget = errors.New("guard: over budget")

// Check fails when n exceeds limit.
func Check(n, limit int) error {
	if n > limit {
		return ErrOverBudget
	}
	return nil
}
