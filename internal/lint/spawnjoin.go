package lint

import (
	"go/ast"
)

var analyzerSpawnjoin = &Analyzer{
	Name:   "spawnjoin",
	Module: true,
	Doc: `require every goroutine to have a statically evident termination
path — the static twin of the runtime leakcheck. A spawned body that loops
must be able to stop: a select or receive on a cancellation/stop channel,
a ctx.Done()/ctx.Err() check, a WaitGroup join or close() completion
signal, or a call that passes a context onward (cancellable work). The
check is interprocedural: "go worker(ctx)" is fine when worker — or
anything it calls — selects on that context. A goroutine with none of
these outlives the query that spawned it: it is exactly the shape the
runtime leak checker catches in tests, caught here before it runs.`,
	Run: runSpawnjoin,
}

func runSpawnjoin(pass *Pass) {
	prog := pass.Prog
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkSpawn(pass, pkg, g)
				return true
			})
		}
	}
}

// checkSpawn verifies one go statement. The spawned body is the literal's
// body for "go func(){...}()", or the named callee's declaration for
// "go worker(...)"; unresolvable callees (interface methods, function
// values) are skipped — the analyzer under-approximates rather than guess.
func checkSpawn(pass *Pass, pkg *Package, g *ast.GoStmt) {
	var body *ast.BlockStmt
	bodyPkg := pkg
	what := "goroutine"
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fi := pass.Prog.FuncOf(pkg, g.Call); fi != nil {
		body = fi.Decl.Body
		bodyPkg = fi.Pkg
		what = "goroutine " + shortFuncID(fi.ID)
	} else {
		return
	}

	// Direct evidence in the spawned frame, or transitive evidence through
	// any call it makes.
	if directTermEvidence(bodyPkg, body) || calleeTermEvidence(pass.Prog, bodyPkg, body) {
		return
	}
	// A body with no unbounded loop runs to completion on its own; only
	// loop-forever bodies with no exit signal are leaks.
	if !hasUnboundedLoop(body) {
		return
	}
	pass.Reportf(g.Pos(),
		"%s has no statically evident termination path: it loops without a ctx.Done/stop-channel select, WaitGroup join, or close signal, so it outlives the work that spawned it (join it, or select on cancellation in the loop)",
		what)
}

// calleeTermEvidence reports whether any statically resolved call under
// body (outside nested go statements) carries termination evidence in its
// summary.
func calleeTermEvidence(prog *Program, pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a further goroutine's evidence is not this frame's
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fi := prog.FuncOf(pkg, call); fi != nil && fi.Summary.TermEvidence {
			found = true
		}
		return !found
	})
	return found
}

// hasUnboundedLoop reports whether body contains a for-statement with no
// condition (or a constant-true one) in its own frame. Conditioned and
// range loops are treated as bounded: their exit is the condition itself.
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if v.Cond == nil || isTrueLiteral(v.Cond) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTrueLiteral matches the literal "true" (possibly parenthesized).
func isTrueLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true" && id.Obj == nil
}
