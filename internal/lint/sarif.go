package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output for GitHub code scanning. Only the slice of the
// format code scanning reads is emitted: one run, one rule per analyzer,
// one result per diagnostic with a physical location. Kept stdlib-only
// like the rest of the suite — the structures below are hand-written
// against the SARIF 2.1.0 schema, and TestSARIFStructure holds them to it.

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
	Help             sarifMessage `json:"help"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RenderSARIF serializes diagnostics as a SARIF 2.1.0 log under the
// lusail-vet driver name. moduleDir, when non-empty, is stripped from file
// paths so URIs are repository-relative — what code scanning needs to
// annotate files. Every analyzer in the run is emitted as a rule even when
// it found nothing, so the rule set is stable across pushes.
func RenderSARIF(diags []Diagnostic, analyzers []*Analyzer, moduleDir string) ([]byte, error) {
	return RenderSARIFTool(diags, analyzers, moduleDir, "lusail-vet")
}

// RenderSARIFTool is RenderSARIF with an explicit driver name, so other
// diagnostic producers (lusail-check's query analysis) share one renderer
// and one validator. A caller whose directive semantics differ from the Go
// suite's should pass its own "directive" rule in analyzers; the default
// Go-suite wording is only added when absent.
func RenderSARIFTool(diags []Diagnostic, analyzers []*Analyzer, moduleDir, tool string) ([]byte, error) {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	addRule := func(name, doc string) {
		if _, ok := ruleIndex[name]; ok {
			return
		}
		ruleIndex[name] = len(rules)
		short := doc
		if i := strings.IndexAny(short, ".\n"); i >= 0 {
			short = short[:i]
		}
		rules = append(rules, sarifRule{
			ID:               name,
			ShortDescription: sarifMessage{Text: tool + ": " + name},
			FullDescription:  sarifMessage{Text: short},
			Help:             sarifMessage{Text: doc},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule(DirectiveAnalyzer, "malformed or unused //lint:lusail-vet suppression directive")

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if _, ok := ruleIndex[d.Analyzer]; !ok {
			addRule(d.Analyzer, "")
		}
		uri := d.Pos.Filename
		if moduleDir != "" {
			if rel, err := filepath.Rel(moduleDir, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// ValidateSARIF structurally checks rendered SARIF output against the
// invariants code scanning relies on: required top-level fields, the exact
// version, a driver name, well-formed rule references, and a physical
// location with a positive start line on every result. It is the
// stdlib-only stand-in for a JSON-schema validator and is exercised by CI
// on the real tree's output.
func ValidateSARIF(data []byte) error {
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex *int   `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&log); err != nil {
		return sarifErrf("decode: %v", err)
	}
	if log.Version != sarifVersion {
		return sarifErrf("version %q, want %q", log.Version, sarifVersion)
	}
	if log.Schema == "" {
		return sarifErrf("missing $schema")
	}
	if len(log.Runs) != 1 {
		return sarifErrf("%d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name == "" {
		return sarifErrf("missing tool.driver.name")
	}
	ruleIDs := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			return sarifErrf("rule %d has empty id", i)
		}
		ruleIDs[r.ID] = i
	}
	for i, res := range run.Results {
		idx, ok := ruleIDs[res.RuleID]
		if !ok {
			return sarifErrf("result %d references unknown rule %q", i, res.RuleID)
		}
		if res.RuleIndex == nil || *res.RuleIndex != idx {
			return sarifErrf("result %d ruleIndex does not match rule %q", i, res.RuleID)
		}
		if res.Message.Text == "" {
			return sarifErrf("result %d has empty message", i)
		}
		if len(res.Locations) == 0 {
			return sarifErrf("result %d has no location", i)
		}
		for _, loc := range res.Locations {
			if loc.PhysicalLocation.ArtifactLocation.URI == "" {
				return sarifErrf("result %d has empty artifact uri", i)
			}
			if loc.PhysicalLocation.Region.StartLine < 1 {
				return sarifErrf("result %d has non-positive startLine", i)
			}
		}
	}
	return nil
}

type sarifError string

func (e sarifError) Error() string { return "sarif: " + string(e) }

func sarifErrf(format string, args ...any) error {
	return sarifError(fmt.Sprintf(format, args...))
}
