package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var analyzerNoLockIO = &Analyzer{
	Name: "nolockio",
	Doc: `forbid blocking calls while holding a sync.Mutex/RWMutex: endpoint
requests, resilience Do/DoHedged, ERH pool waits, WaitGroup/Cond waits,
time.Sleep, and unbuffered channel operations outside a select. The
engine's hot structures (breakers, span trees, caches, the metrics
registry) are mutex-guarded and touched by every in-flight request; one
network call under such a lock serializes the whole federation behind the
slowest endpoint.`,
	Run: runNoLockIO,
}

func runNoLockIO(pass *Pass) {
	hooks := lockHooks{
		blocked: func(n ast.Node, held map[string]lockRef) {
			checkBlocking(pass, n, held)
		},
	}
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			var recv types.Object
			if fn.decl != nil {
				recv = recvObjOf(pass.Pkg, fn.decl)
			}
			scanLockFlow(pass.Pkg, recv, fn.body.List, map[string]lockRef{}, hooks)
		}
	}
}

// lockCallKey classifies a call as sync lock/unlock and returns the lock
// expression's text key ("s.mu").
func lockCallKey(pkg *Package, call *ast.CallExpr) (key string, lock, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	obj := calleeOf(pkg, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := recvTypeName(obj)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return exprText(sel.X), true, false
	case "Unlock", "RUnlock":
		return exprText(sel.X), false, true
	}
	return "", false, false
}

// blockingCallName classifies calls that can block on the network, on
// other goroutines, or on time, returning a display name.
func blockingCallName(pkg *Package, call *ast.CallExpr) (string, bool) {
	obj := calleeOf(pkg, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	switch obj.Pkg().Path() {
	case "lusail/internal/client":
		// Every context-taking entry point of the endpoint layer performs
		// a (possibly remote) request: Endpoint.Query, Ask, Count, ...
		if fnTakesContext(obj) {
			return exprText(call.Fun), true
		}
	case resiliencePath:
		if name == "Do" || name == "DoHedged" {
			return exprText(call.Fun), true
		}
	case "lusail/internal/erh":
		if name == "ForEach" || name == "ForEachGated" || name == "Map" {
			return exprText(call.Fun), true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "ListenAndServe", "Serve":
			return exprText(call.Fun), true
		}
	case "sync":
		if name == "Wait" { // WaitGroup.Wait, Cond.Wait
			return exprText(call.Fun), true
		}
	case "time":
		if name == "Sleep" {
			return exprText(call.Fun), true
		}
	}
	return "", false
}

// fnTakesContext reports whether the function's first parameter (after any
// receiver) is a context.Context.
func fnTakesContext(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// checkBlocking reports blocking calls, channel sends, and bare channel
// receives under n (skipping nested function literals) while any lock is
// held.
func checkBlocking(pass *Pass, n ast.Node, held map[string]lockRef) {
	if len(held) == 0 || n == nil {
		return
	}
	if send, ok := n.(*ast.SendStmt); ok {
		reportHeld(pass, send.Pos(), "channel send", held)
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := blockingCallName(pass.Pkg, v); ok {
				reportHeld(pass, v.Pos(), "blocking call "+name, held)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				reportHeld(pass, v.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

func reportHeld(pass *Pass, pos token.Pos, what string, held map[string]lockRef) {
	keys := make([]string, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		pass.Reportf(pos, "%s while holding %s (locked at line %d): the lock serializes every request touching this structure",
			what, key, pass.Fset.Position(held[key].pos).Line)
	}
}
