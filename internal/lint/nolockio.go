package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var analyzerNoLockIO = &Analyzer{
	Name: "nolockio",
	Doc: `forbid blocking calls while holding a sync.Mutex/RWMutex: endpoint
requests, resilience Do/DoHedged, ERH pool waits, WaitGroup/Cond waits,
time.Sleep, and unbuffered channel operations outside a select. The
engine's hot structures (breakers, span trees, caches, the metrics
registry) are mutex-guarded and touched by every in-flight request; one
network call under such a lock serializes the whole federation behind the
slowest endpoint.`,
	Run: runNoLockIO,
}

func runNoLockIO(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			scanLockRegions(pass, fn.body.List, map[string]token.Pos{})
		}
	}
}

// lockCallKey classifies a call as sync lock/unlock and returns the lock
// expression's text key ("s.mu").
func lockCallKey(pass *Pass, call *ast.CallExpr) (key string, lock, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := recvTypeName(obj)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return exprText(sel.X), true, false
	case "Unlock", "RUnlock":
		return exprText(sel.X), false, true
	}
	return "", false, false
}

// blockingCallName classifies calls that can block on the network, on
// other goroutines, or on time, returning a display name.
func blockingCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	switch obj.Pkg().Path() {
	case "lusail/internal/client":
		// Every context-taking entry point of the endpoint layer performs
		// a (possibly remote) request: Endpoint.Query, Ask, Count, ...
		if fnTakesContext(obj) {
			return exprText(call.Fun), true
		}
	case resiliencePath:
		if name == "Do" || name == "DoHedged" {
			return exprText(call.Fun), true
		}
	case "lusail/internal/erh":
		if name == "ForEach" || name == "ForEachGated" || name == "Map" {
			return exprText(call.Fun), true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "ListenAndServe", "Serve":
			return exprText(call.Fun), true
		}
	case "sync":
		if name == "Wait" { // WaitGroup.Wait, Cond.Wait
			return exprText(call.Fun), true
		}
	case "time":
		if name == "Sleep" {
			return exprText(call.Fun), true
		}
	}
	return "", false
}

// fnTakesContext reports whether the function's first parameter (after any
// receiver) is a context.Context.
func fnTakesContext(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// scanLockRegions walks a statement list in source order tracking which
// mutexes are held, recursing into nested control flow with a copy of the
// held set. Function literals are skipped: they run on their own stack
// (often their own goroutine) where the caller's locks are not held — or
// are, in which case the literal's body is scanned when it is visited as
// its own funcNode with an empty held set, an accepted approximation.
func scanLockRegions(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, lock, unlock := lockCallKey(pass, call); lock || unlock {
					if lock {
						held[key] = call.Pos()
					} else {
						delete(held, key)
					}
					continue
				}
			}
			checkBlocking(pass, s.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function; defer of anything else runs after returns, where
			// lock order is out of scope for this lexical check.
			continue
		case *ast.SendStmt:
			reportHeld(pass, s.Pos(), "channel send", held)
			checkBlocking(pass, s.Value, held)
		case *ast.GoStmt:
			// The goroutine body runs without the caller's locks; spawning
			// itself does not block.
			continue
		case *ast.SelectStmt:
			// Channel operations inside select clauses are non-blocking by
			// construction (some case, or default, proceeds).
			for _, clause := range s.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					scanLockRegions(pass, comm.Body, copyHeld(held))
				}
			}
		case *ast.BlockStmt:
			scanLockRegions(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				checkBlocking(pass, s.Init, held)
			}
			checkBlocking(pass, s.Cond, held)
			scanLockRegions(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanLockRegions(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				checkBlocking(pass, s.Cond, held)
			}
			scanLockRegions(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkBlocking(pass, s.X, held)
			scanLockRegions(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				checkBlocking(pass, s.Tag, held)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockRegions(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockRegions(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanLockRegions(pass, []ast.Stmt{s.Stmt}, held)
		default:
			// Assignments, declarations, returns: scan contained
			// expressions for blocking calls and receives.
			checkBlocking(pass, stmt, held)
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkBlocking reports blocking calls and bare channel receives under n
// (skipping nested function literals) while any lock is held.
func checkBlocking(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := blockingCallName(pass, v); ok {
				reportHeld(pass, v.Pos(), "blocking call "+name, held)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				reportHeld(pass, v.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

func reportHeld(pass *Pass, pos token.Pos, what string, held map[string]token.Pos) {
	keys := make([]string, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		pass.Reportf(pos, "%s while holding %s (locked at line %d): the lock serializes every request touching this structure",
			what, key, pass.Fset.Position(held[key]).Line)
	}
}
