package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

var analyzerErrwrap = &Analyzer{
	Name: "errwrapdiscipline",
	Doc: `enforce the typed-error discipline the resilience layer depends on:
errors are wrapped with %w (never flattened through %v/%s), tested with
errors.Is/As (never == or type assertion), and never matched by message
text. Degrade-mode decisions dispatch on EndpointError/ErrBreakerOpen
through wrapped chains; one fmt.Errorf("%v") in the middle severs the
chain and silently turns partial-results handling into fail-fast.`,
	Run: runErrwrap,
}

func runErrwrap(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(pass, v)
			case *ast.TypeAssertExpr:
				checkErrAssertion(pass, parents, v)
			case *ast.CallExpr:
				checkErrorfWrap(pass, v)
				checkStringMatch(pass, v)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, v)
			}
			return true
		})
	}
}

// checkErrComparison flags ==/!= where either side is an error value
// (nil comparisons stay idiomatic).
func checkErrComparison(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorExpr(pass.Pkg, b.X) && isErrorExpr(pass.Pkg, b.Y) {
		pass.Reportf(b.OpPos, "errors compared with %s: use errors.Is so wrapped chains (EndpointError, retries, %%w) still match", b.Op)
	}
	// x.Error() == "..." — message-text matching.
	if (errTextCall(pass, b.X) && isStringy(pass, b.Y)) || (errTextCall(pass, b.Y) && isStringy(pass, b.X)) {
		pass.Reportf(b.OpPos, "error matched by message text: compare with errors.Is/As against typed errors instead")
	}
}

// errTextCall reports whether e is a call to the Error() method of an
// error value.
func errTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(pass.Pkg, sel.X)
}

func isStringy(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkErrAssertion flags err.(*T) and "switch err.(type)" outside
// Is/As/Unwrap method implementations, where the raw assertion is the
// documented support pattern.
func checkErrAssertion(pass *Pass, parents map[ast.Node]ast.Node, ta *ast.TypeAssertExpr) {
	if !isErrorExpr(pass.Pkg, ta.X) {
		return
	}
	if inErrorSupportMethod(parents, ta) {
		return
	}
	if ta.Type == nil {
		pass.Reportf(ta.Pos(), "type switch on an error: use errors.As so wrapped chains still match")
		return
	}
	pass.Reportf(ta.Pos(), "type assertion on an error: use errors.As so wrapped chains still match")
}

// inErrorSupportMethod reports whether the node sits inside a method named
// Is, As, or Unwrap — the errors-package support methods whose contracts
// require raw assertions on their argument.
func inErrorSupportMethod(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if fd, ok := p.(*ast.FuncDecl); ok {
			name := fd.Name.Name
			return fd.Recv != nil && (name == "Is" || name == "As" || name == "Unwrap")
		}
	}
	return false
}

// checkErrSwitch flags "switch err { case ErrFoo: }" sentinel dispatch.
func checkErrSwitch(pass *Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorExpr(pass.Pkg, s.Tag) {
		return
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isErrorExpr(pass.Pkg, e) {
				pass.Reportf(e.Pos(), "switch compares errors with ==: use if/else with errors.Is so wrapped chains still match")
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// with a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isFunc(calleeOf(pass.Pkg, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%[") {
		return // indexed verbs: out of scope
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb != 'w' && isErrorExpr(pass.Pkg, call.Args[argIdx]) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error wrapped with %%%c: use %%w so errors.Is/As see the cause (Degrade-mode dispatch depends on the chain)", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order, counting * width/precision markers as consuming an argument.
func formatVerbs(format string) []rune {
	var out []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# .0123456789", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		out = append(out, rune(format[i]))
	}
	return out
}

// checkStringMatch flags strings.Contains/HasPrefix/... applied to
// err.Error() text.
func checkStringMatch(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass.Pkg, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" {
		return
	}
	switch obj.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if errTextCall(pass, arg) {
			pass.Reportf(call.Pos(), "error matched by message text (strings.%s on err.Error()): use errors.Is/As against typed errors instead", obj.Name())
			return
		}
	}
}
