package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared resource-lifecycle engine behind spanend,
// streamclose, and pairedadmission. All three enforce the same shape of
// invariant — an acquisition must reach its release on every return path —
// and previously each carried its own copy of the use-classification and
// return-path walks. The engine owns both; the analyzers supply what an
// acquisition is, what the release is called, and how to word the
// diagnostics.

// resource is one tracked acquisition inside a function body.
type resource struct {
	// pos anchors diagnostics: the acquiring call.
	pos token.Pos
	// end is the end of the acquiring statement; only returns after it are
	// obligated.
	end token.Pos
	// exemptLo/exemptHi bound a source range whose returns are exempt (the
	// rejection branch of a failed admission); zero when unused.
	exemptLo, exemptHi token.Pos
	// errObj is the error bound by the acquiring assignment, if any;
	// returns guarded by a check of it are exempt (the resource was never
	// created on that path).
	errObj types.Object
}

// classifyResourceUses inspects every reference to a resource variable and
// sorts them into: a deferred release (obj.release inside a defer), an
// escape (the resource handed to a call, return, assignment, closure, or
// composite — the holder owns the release from there), or a plain release
// call position. Other method calls on the receiver are ordinary uses and
// constrain nothing.
func classifyResourceUses(pkg *Package, body *ast.BlockStmt, parents map[ast.Node]ast.Node, obj types.Object, releaseName string) (deferred, escaped bool, releases []token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != obj {
			return true
		}
		// A reference inside a nested closure hands responsibility to the
		// closure (deferred cleanup funcs, goroutines).
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				escaped = true
				return true
			}
		}
		parent := parents[ast.Node(id)]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
			if call, ok := parents[ast.Node(sel)].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
				if sel.Sel.Name == releaseName {
					if _, isDefer := parents[ast.Node(call)].(*ast.DeferStmt); isDefer {
						deferred = true
					} else {
						releases = append(releases, call.Pos())
					}
					return true
				}
				// Any other method on the receiver: a plain use.
				return true
			}
			// Method value or field access: conservative handoff.
			escaped = true
			return true
		}
		// Any other use (argument, return value, re-assignment, composite
		// literal, channel send, comparison...) counts as a handoff, except
		// the defining identifier itself.
		if pkg.Info.Defs[id] == obj {
			return true
		}
		escaped = true
		return true
	})
	return deferred, escaped, releases
}

// checkReleasePaths walks every return path after the acquisition and
// reports the ones that miss a release. neverMsg is the diagnostic when no
// release exists anywhere; leakMsg renders the diagnostic for one escaping
// return line. A deferred release discharges every path at once.
func checkReleasePaths(pass *Pass, pkg *Package, body *ast.BlockStmt, parents map[ast.Node]ast.Node, r resource, deferred bool, releases []token.Pos, neverMsg string, leakMsg func(retLine int) string) {
	if deferred {
		return
	}
	if len(releases) == 0 {
		pass.Reportf(r.pos, "%s", neverMsg)
		return
	}
	block := enclosingBlock(body, r.pos)
	for _, ret := range returnsOf(body) {
		if ret.Pos() <= r.end || ret.Pos() < block.Pos() || ret.End() > block.End() {
			continue
		}
		if r.exemptLo.IsValid() && ret.Pos() >= r.exemptLo && ret.End() <= r.exemptHi {
			continue
		}
		if guardedByErr(pkg, parents, ret, r.errObj) {
			continue // the resource is nil on the creation-failed path
		}
		released := false
		for _, e := range releases {
			if e > r.end && e < ret.Pos() {
				released = true
				break
			}
		}
		if !released {
			pass.Reportf(r.pos, "%s", leakMsg(pass.Fset.Position(ret.Pos()).Line))
		}
	}
}

// guardedByErr reports whether ret sits inside an if statement whose
// condition tests the acquisition's error variable — the canonical
// "if err != nil { return ... }" path, where the resource was never
// created.
func guardedByErr(pkg *Package, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for p := parents[ast.Node(ret)]; p != nil; p = parents[p] {
		if ifs, ok := p.(*ast.IfStmt); ok && usesObject(pkg, ifs.Cond, errObj) {
			return true
		}
	}
	return false
}

// assignedObj resolves the object a target identifier binds: a fresh
// definition for :=, the used variable for plain assignment.
func assignedObj(pkg *Package, target *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[target]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[target]
}
