package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var analyzerBudgetbound = &Analyzer{
	Name:   "budgetbound",
	Module: true,
	Doc: `require a byte-budget check on loops that accumulate decoder or
network output. A loop that appends rows, grows a bytes.Buffer, or
concatenates strings from a result reader, json.Decoder, bufio reader, or
raw io.Reader is sized by the remote endpoint, not by this process —
exactly what MaxResponseBytes and JoinSpillBytes exist to bound. Such a
loop must contain (or be conditioned on) an ordering comparison against
the accumulated length or a loop-carried counter, or hand the size to a
helper that performs the comparison (recognized interprocedurally via the
budget-guard summary). Loops bounded by an index or a local-slice range
need no budget: their trip count is not attacker-controlled.`,
	Run: runBudgetbound,
}

// growthTarget is one loop-carried accumulator fed inside a loop.
type growthTarget struct {
	obj  types.Object
	name string
	what string // "append", "buffer write", "string concat"
}

func runBudgetbound(pass *Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, fn := range functionsIn(f) {
				checkBudgetLoops(pass, pkg, fn)
			}
		}
	}
}

// checkBudgetLoops flags every reader-fed growth loop in fn that lacks a
// budget guard. Only the outermost qualifying loop is reported: nested
// loops share its guard obligation.
func checkBudgetLoops(pass *Pass, pkg *Package, fn funcNode) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			// Literals are visited as their own funcNode.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if checkOneLoop(pass, pkg, n) {
				return false // reported: don't re-flag inner loops
			}
		}
		return true
	})
}

// checkOneLoop reports (and returns true) when loop is fed by a decoder or
// network reader, grows an accumulator that outlives it, and carries no
// budget guard.
func checkOneLoop(pass *Pass, pkg *Package, loop ast.Node) bool {
	src := readerSource(pkg, loop)
	if src == "" {
		return false
	}
	grown := growthTargets(pkg, loop)
	if len(grown) == 0 {
		return false
	}
	if budgetGuarded(pass.Prog, pkg, loop, grown) {
		return false
	}
	g := grown[0]
	pass.Reportf(loop.Pos(),
		"loop grows %s (%s) from %s with no byte-budget check: the remote side controls the size; compare len(%s) or a byte counter against a budget (MaxResponseBytes / JoinSpillBytes discipline), or route the growth through a budget-checking helper",
		g.name, g.what, src, g.name)
	return true
}

// readerSource reports what decoder/reader feeds the loop ("" if none):
// a result stream or reader (by streamclose's shape classes), a
// json.Decoder, a bufio Reader/Scanner, or anything with io.Reader's
// Read([]byte) (int, error).
func readerSource(pkg *Package, loop ast.Node) string {
	src := ""
	ast.Inspect(loop, func(n ast.Node) bool {
		if src != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		tv, ok := pkg.Info.Types[sel.X]
		if !ok {
			return true
		}
		if kind, ok := streamKind(tv.Type); ok {
			if (kind == "stream" && name == "Next") || (kind == "reader" && name == "Read") {
				src = exprText(sel.X)
			}
			return true
		}
		if named, ok := derefType(tv.Type).(*types.Named); ok && named.Obj().Pkg() != nil {
			switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
			case "encoding/json.Decoder":
				if name == "Decode" || name == "Token" {
					src = exprText(sel.X)
				}
				return true
			case "bufio.Reader":
				src = exprText(sel.X)
				return true
			case "bufio.Scanner":
				if name == "Scan" {
					src = exprText(sel.X)
				}
				return true
			}
		}
		if name == "Read" && hasIOReaderRead(calleeOf(pkg, call)) {
			src = exprText(sel.X)
		}
		return true
	})
	return src
}

// hasIOReaderRead matches io.Reader's method shape:
// Read(p []byte) (n int, err error).
func hasIOReaderRead(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	sl, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte &&
		isIntegerType(sig.Results().At(0).Type()) &&
		implementsError(sig.Results().At(1).Type())
}

// growthTargets collects accumulators grown inside loop that are declared
// outside it: x = append(x, ...) (x a variable or a field path rooted at
// one), buf.Write*/WriteString on a bytes.Buffer/strings.Builder, and
// s += on strings.
func growthTargets(pkg *Package, loop ast.Node) []growthTarget {
	var out []growthTarget
	outlives := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < loop.Pos() || obj.Pos() >= loop.End())
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
				return true
			}
			// The accumulator's identity for budget matching is the root
			// variable: "res" in "res.Rows = append(res.Rows, row)".
			root := identObj(pkg, rootExpr(v.Lhs[0]))
			if !outlives(root) {
				return true
			}
			name := exprText(v.Lhs[0])
			switch v.Tok {
			case token.ASSIGN:
				if call, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr); ok {
					if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" && pkg.Info.Uses[fn] != nil && pkg.Info.Uses[fn].Pkg() == nil {
						if len(call.Args) > 0 && exprText(call.Args[0]) == name {
							out = append(out, growthTarget{obj: root, name: name, what: "append"})
						}
					}
				}
			case token.ADD_ASSIGN:
				obj := identObj(pkg, v.Lhs[0])
				if obj == nil {
					return true
				}
				switch u := obj.Type().Underlying().(type) {
				case *types.Slice:
					out = append(out, growthTarget{obj: root, name: name, what: "append"})
				case *types.Basic:
					if u.Info()&types.IsString != 0 {
						out = append(out, growthTarget{obj: root, name: name, what: "string concat"})
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune":
			default:
				return true
			}
			tv, ok := pkg.Info.Types[sel.X]
			if !ok {
				return true
			}
			named, ok := derefType(tv.Type).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full != "bytes.Buffer" && full != "strings.Builder" {
				return true
			}
			if obj := identObj(pkg, rootExpr(sel.X)); outlives(obj) {
				out = append(out, growthTarget{obj: obj, name: exprText(sel.X), what: "buffer write"})
			}
		}
		return true
	})
	return out
}

// rootExpr unwraps selectors to the base identifier expression: the obj of
// "s.buf" for escape checks is "s".
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		default:
			return e
		}
	}
}

// budgetGuarded reports whether the loop carries a budget check: an
// ordering comparison over len(accumulator) or a loop-written integer
// counter — anywhere in the loop, including its condition — or a call
// handing one of those to a callee whose summary says it compares an
// integer parameter against a bound.
func budgetGuarded(prog *Program, pkg *Package, loop ast.Node, grown []growthTarget) bool {
	grownObjs := map[types.Object]bool{}
	for _, g := range grown {
		grownObjs[g.obj] = true
	}
	counters := loopWrittenInts(pkg, loop)

	// mentionsBudget: does expr reference len(grown) or a loop counter?
	mentionsBudget := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch v := n.(type) {
			case *ast.CallExpr:
				if fn, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && fn.Name == "len" {
					for _, arg := range v.Args {
						if grownObjs[identObj(pkg, arg)] || grownObjs[identObj(pkg, rootExpr(arg))] {
							found = true
						}
					}
				}
			case *ast.Ident:
				if obj := pkg.Info.Uses[v]; obj != nil && counters[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	guarded := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if guarded {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if isOrderingOp(v.Op) && (mentionsBudget(v.X) || mentionsBudget(v.Y)) {
				guarded = true
			}
		case *ast.CallExpr:
			fi := prog.FuncOf(pkg, v)
			if fi == nil || !fi.Summary.BudgetGuard {
				return true
			}
			for _, arg := range v.Args {
				if mentionsBudget(arg) {
					guarded = true
				}
			}
		}
		return !guarded
	})
	return guarded
}

// loopWrittenInts collects integer variables assigned or incremented
// inside the loop (including a for-statement's init and post): the byte
// counters a budget is compared against.
func loopWrittenInts(pkg *Package, loop ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(e ast.Expr) {
		var obj types.Object
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = identObj(pkg, e)
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[v.Sel] // counters held in fields ("s.buildBytes")
		}
		if obj != nil && isIntegerType(obj.Type()) {
			out[obj] = true
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(v.X)
		}
		return true
	})
	return out
}
