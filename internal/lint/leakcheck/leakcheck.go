// Package leakcheck is a standard-library-only goroutine-leak detector for
// lifecycle tests: snapshot the goroutine count before the scenario, verify
// the count returns to the baseline after it. It guards the same invariants
// lusail-vet checks statically — a pool shutdown, breaker heal cycle, or
// hedged-probe cancellation that strands a goroutine is a cancellation-flow
// bug even when every call site looks well-formed.
//
// Typical use in a test:
//
//	func TestPoolShutdown(t *testing.T) {
//		leakcheck.Check(t)
//		... exercise the lifecycle ...
//	}
//
// Verification retries until the grace period expires: goroutines unwinding
// from a cancelled context need a moment to exit, and that teardown latency
// is not a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// DefaultGrace is how long Check waits for goroutine counts to return to
// the baseline before declaring a leak.
const DefaultGrace = 5 * time.Second

// Snapshot is a goroutine-count baseline.
type Snapshot struct {
	count int
}

// Take records the current goroutine count.
func Take() Snapshot {
	return Snapshot{count: runtime.NumGoroutine()}
}

// Verify blocks until the goroutine count has returned to (or below) the
// baseline, or until grace expires — in which case it returns an error
// carrying a full stack dump of every live goroutine.
func Verify(base Snapshot, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= base.count {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return fmt.Errorf("leakcheck: %d goroutine(s) leaked (baseline %d, now %d, waited %v); live stacks:\n%s",
		now-base.count, base.count, now, grace, buf[:n])
}

// Check snapshots now and registers a cleanup that fails the test if the
// goroutine count has not returned to the baseline by the end of the test
// (after DefaultGrace). Call it before starting the lifecycle under test.
func Check(t testing.TB) {
	t.Helper()
	base := Take()
	t.Cleanup(func() {
		if err := Verify(base, DefaultGrace); err != nil {
			t.Error(err)
		}
	})
}
