package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestVerifyCleanAfterExit(t *testing.T) {
	base := Take()
	done := make(chan struct{})
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			<-stop
			done <- struct{}{}
		}()
	}
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}
	if err := Verify(base, DefaultGrace); err != nil {
		t.Errorf("Verify after goroutines exited: %v", err)
	}
}

func TestVerifyReportsLeak(t *testing.T) {
	base := Take()
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }()
	err := Verify(base, 50*time.Millisecond)
	if err == nil {
		t.Fatal("Verify missed a live goroutine")
	}
	if !strings.Contains(err.Error(), "goroutine(s) leaked") {
		t.Errorf("error lacks leak summary: %v", err)
	}
	if !strings.Contains(err.Error(), "leakcheck_test.go") {
		t.Errorf("error lacks the leaking stack: %v", err)
	}
}
