package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file holds the held-lock flow machinery shared by nolockio (what
// blocks while a lock is held) and lockorder (what locks while a lock is
// held): a source-order walk over a function body that tracks which
// mutexes are held on each path, recursing into control flow with a copy
// of the held set.

// lockRef identifies one mutex acquisition.
type lockRef struct {
	// key is the instance-ish identity: the rendered lock expression
	// ("s.mu"). Two acquisitions with the same key in one function are the
	// same lock.
	key string
	// class is the cross-function lock class: "pkg/path.Type.field" for a
	// field lock, "pkg/path.var" for a package-level lock, "" for locals
	// and shapes the resolver cannot name.
	class string
	// recvField is the field path rooted at the enclosing method's
	// receiver ("mu", "cache.mu"), or "" when the lock is not
	// receiver-rooted. Call sites use it to instantiate a callee's
	// acquisitions against a concrete receiver.
	recvField string
	pos       token.Pos
}

// lockHooks receives the walker's events. Nil hooks are skipped.
type lockHooks struct {
	// acquire fires on every Lock/RLock with the locks held so far; ref is
	// the new acquisition, not yet in held (so relocks are visible).
	acquire func(ref lockRef, held map[string]lockRef)
	// blocked fires for expression trees evaluated while locks are held
	// (nolockio scans these for blocking calls and receives).
	blocked func(n ast.Node, held map[string]lockRef)
	// call fires for every call expression evaluated while locks are held
	// (lockorder propagates callee acquisitions); lock/unlock calls
	// themselves are not reported.
	call func(call *ast.CallExpr, held map[string]lockRef)
}

// lockAcquire classifies call as a mutex Lock/RLock and resolves its
// lockRef. recvObj is the enclosing method's receiver variable (nil for
// plain functions) for receiver-rooted classification.
func lockAcquire(pkg *Package, call *ast.CallExpr, recvObj types.Object) (lockRef, bool) {
	key, lock, _ := lockCallKey(pkg, call)
	if !lock {
		return lockRef{}, false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr) // lockCallKey guarantees the shape
	ref := lockRef{key: key, pos: call.Pos()}
	ref.class = lockClassOf(pkg, sel.X)
	if recvObj != nil {
		if rest, ok := strings.CutPrefix(key, recvObj.Name()+"."); ok {
			ref.recvField = rest
		}
	}
	return ref, true
}

// lockClassOf names the cross-function class of a lock expression: the
// named type owning the field for "x.f" shapes, the package-qualified name
// for package-level vars, "" otherwise.
func lockClassOf(pkg *Package, lockExpr ast.Expr) string {
	switch e := ast.Unparen(lockExpr).(type) {
	case *ast.SelectorExpr:
		// Package-qualified var: "leaf.Reg" where leaf is a package name.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + e.Sel.Name
			}
		}
		tv, ok := pkg.Info.Types[e.X]
		if !ok {
			return ""
		}
		named, ok := derefType(tv.Type).(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := identObj(pkg, e)
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		// Package-level vars sit directly in the package scope.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// scanLockFlow walks stmts in source order with the held set, firing
// hooks. Function literals are skipped: they run on their own stack (often
// their own goroutine) where the caller's locks are not held — or are, in
// which case the literal's body is scanned when it is visited as its own
// funcNode with an empty held set, an accepted approximation.
func scanLockFlow(pkg *Package, recvObj types.Object, stmts []ast.Stmt, held map[string]lockRef, h lockHooks) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, lock, unlock := lockCallKey(pkg, call); lock || unlock {
					if lock {
						ref, _ := lockAcquire(pkg, call, recvObj)
						if h.acquire != nil {
							h.acquire(ref, held)
						}
						held[key] = ref
					} else {
						delete(held, key)
					}
					continue
				}
			}
			scanHeldExpr(pkg, s.X, held, h)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function; defer of anything else runs after returns, where
			// held-lock order is out of scope for this lexical walk.
			continue
		case *ast.SendStmt:
			// The blocked hook sees the whole send (the send itself can
			// block) plus any calls inside the sent value.
			scanHeldExpr(pkg, s, held, h)
		case *ast.GoStmt:
			// The goroutine body runs without the caller's locks; spawning
			// itself does not block.
			continue
		case *ast.SelectStmt:
			// Channel operations inside select clauses are non-blocking by
			// construction (some case, or default, proceeds).
			for _, clause := range s.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					scanLockFlow(pkg, recvObj, comm.Body, copyHeldRefs(held), h)
				}
			}
		case *ast.BlockStmt:
			scanLockFlow(pkg, recvObj, s.List, copyHeldRefs(held), h)
		case *ast.IfStmt:
			if s.Init != nil {
				scanHeldExpr(pkg, s.Init, held, h)
			}
			scanHeldExpr(pkg, s.Cond, held, h)
			scanLockFlow(pkg, recvObj, s.Body.List, copyHeldRefs(held), h)
			if s.Else != nil {
				scanLockFlow(pkg, recvObj, []ast.Stmt{s.Else}, copyHeldRefs(held), h)
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				scanHeldExpr(pkg, s.Cond, held, h)
			}
			scanLockFlow(pkg, recvObj, s.Body.List, copyHeldRefs(held), h)
		case *ast.RangeStmt:
			scanHeldExpr(pkg, s.X, held, h)
			scanLockFlow(pkg, recvObj, s.Body.List, copyHeldRefs(held), h)
		case *ast.SwitchStmt:
			if s.Tag != nil {
				scanHeldExpr(pkg, s.Tag, held, h)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockFlow(pkg, recvObj, cc.Body, copyHeldRefs(held), h)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanLockFlow(pkg, recvObj, cc.Body, copyHeldRefs(held), h)
				}
			}
		case *ast.LabeledStmt:
			scanLockFlow(pkg, recvObj, []ast.Stmt{s.Stmt}, held, h)
		default:
			// Assignments, declarations, returns: scan contained
			// expressions.
			scanHeldExpr(pkg, stmt, held, h)
		}
	}
}

// scanHeldExpr fires the blocked hook for the whole tree and the call hook
// for every contained call (skipping nested function literals and
// lock/unlock calls themselves). Only fires while locks are held.
func scanHeldExpr(pkg *Package, n ast.Node, held map[string]lockRef, h lockHooks) {
	if n == nil || len(held) == 0 {
		return
	}
	if h.blocked != nil {
		h.blocked(n, held)
	}
	if h.call == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, lock, unlock := lockCallKey(pkg, v); !lock && !unlock {
				h.call(v, held)
			}
		}
		return true
	})
}

func copyHeldRefs(held map[string]lockRef) map[string]lockRef {
	out := make(map[string]lockRef, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
