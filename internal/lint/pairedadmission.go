package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

const resiliencePath = "lusail/internal/resilience"

var analyzerPairedAdmission = &Analyzer{
	Name: "pairedadmission",
	Doc: `enforce the circuit breaker's single-shot admission pairing: every
claiming admission — resilience.(*Manager).Allow or (*breaker).allow —
must reach exactly one Record/record on every path that follows a
successful claim, including error and cancellation returns. A successful
Allow may hold the endpoint's half-open trial slot; a path that returns
without Record leaks the slot and wedges the breaker in half-open forever
(the PR 3 incident). The rejection return inside the "if err :=
m.Allow(...); err != nil" check is the one exempt path. Pool gates must
use the non-claiming Manager.Gate() view, never Allow. Built on the
shared resource-lifecycle engine (lifecycle.go).`,
	Run: runPairedAdmission,
}

func runPairedAdmission(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			checkAdmissionsIn(pass, fn)
		}
	}
}

// isClaimingAllow matches resilience.(*Manager).Allow and the internal
// (*breaker).allow — the two operations that can take a half-open trial
// slot. Gate.Allow only peeks and is exempt by design.
func isClaimingAllow(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeOf(pass.Pkg, call)
	return isMethod(obj, resiliencePath, "Manager", "Allow") ||
		isMethod(obj, resiliencePath, "breaker", "allow")
}

// isRecord matches resilience.(*Manager).Record and (*breaker).record.
func isRecord(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeOf(pass.Pkg, call)
	return isMethod(obj, resiliencePath, "Manager", "Record") ||
		isMethod(obj, resiliencePath, "breaker", "record")
}

func checkAdmissionsIn(pass *Pass, fn funcNode) {
	type allowSite struct {
		call *ast.CallExpr
		// exempt is the source range of the rejection branch: the body of
		// the if statement that checks Allow's error. Returns inside it
		// happen when nothing was claimed.
		exemptLo, exemptHi token.Pos
	}
	var allows []allowSite
	var records []token.Pos
	deferRecord := false

	parents := parentMap(fn.body)
	walkShallow(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRecord(pass, call) {
			records = append(records, call.Pos())
			if _, isDefer := parents[ast.Node(call)].(*ast.DeferStmt); isDefer {
				deferRecord = true
			}
			return true
		}
		if !isClaimingAllow(pass, call) {
			return true
		}
		// A pass-through wrapper ("return br.allow()") forwards the claim
		// to its caller, which then owns the pairing — the shape of
		// Manager.Allow itself.
		for p := parents[ast.Node(call)]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.ReturnStmt); ok {
				return true
			}
			if _, ok := p.(ast.Stmt); ok {
				break
			}
		}
		site := allowSite{call: call}
		// Recognize the canonical rejection check in either form:
		//	if err := m.Allow(x); err != nil { return ... }
		// or
		//	err := m.Allow(x)
		//	if err != nil { return ... }
		if ifStmt := enclosingIfWithInit(parents, call); ifStmt != nil {
			site.exemptLo, site.exemptHi = ifStmt.Body.Pos(), ifStmt.Body.End()
		} else if ifStmt := followingErrCheck(pass, parents, call); ifStmt != nil {
			site.exemptLo, site.exemptHi = ifStmt.Body.Pos(), ifStmt.Body.End()
		}
		allows = append(allows, site)
		return true
	})
	// A deferred closure containing Record (defer func() { ...Record... }())
	// also discharges the pairing on every path.
	if !deferRecord {
		ast.Inspect(fn.body, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			ast.Inspect(d.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isRecord(pass, call) {
					deferRecord = true
				}
				return !deferRecord
			})
			return !deferRecord
		})
	}

	for _, site := range allows {
		checkReleasePaths(pass, pass.Pkg, fn.body, parents,
			resource{pos: site.call.Pos(), end: site.call.End(), exemptLo: site.exemptLo, exemptHi: site.exemptHi},
			deferRecord, records,
			"claiming breaker admission has no matching Record in this function: a successful Allow may hold the half-open trial slot, and only Record releases it",
			func(retLine int) string {
				return fmt.Sprintf("breaker admission is not paired with Record on the return at line %d: the half-open trial slot leaks and wedges the breaker (use defer, or Record before every return)",
					retLine)
			})
	}
}

// enclosingIfWithInit returns the if statement whose Init assignment
// contains the call ("if err := m.Allow(x); err != nil { ... }"), or nil.
func enclosingIfWithInit(parents map[ast.Node]ast.Node, call *ast.CallExpr) *ast.IfStmt {
	for p := parents[ast.Node(call)]; p != nil; p = parents[p] {
		if ifStmt, ok := p.(*ast.IfStmt); ok {
			if ifStmt.Init != nil && ifStmt.Init.Pos() <= call.Pos() && call.End() <= ifStmt.Init.End() {
				return ifStmt
			}
			return nil
		}
		// The walk passes through the init assignment itself; any other
		// enclosing statement or block means the call is not in an if-init.
		if _, ok := p.(*ast.BlockStmt); ok {
			return nil
		}
	}
	return nil
}

// followingErrCheck matches "err := m.Allow(x)" immediately followed by an
// "if err != nil { ... }" sibling, returning that if statement.
func followingErrCheck(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) *ast.IfStmt {
	asg, ok := parents[ast.Node(call)].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 {
		return nil
	}
	errIdent, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	errObj := assignedObj(pass.Pkg, errIdent)
	if errObj == nil {
		return nil
	}
	block, ok := parents[ast.Node(asg)].(*ast.BlockStmt)
	if !ok {
		return nil
	}
	for i, stmt := range block.List {
		if stmt == ast.Stmt(asg) && i+1 < len(block.List) {
			ifStmt, ok := block.List[i+1].(*ast.IfStmt)
			if ok && ifStmt.Init == nil && usesObject(pass.Pkg, ifStmt.Cond, errObj) {
				return ifStmt
			}
			return nil
		}
	}
	return nil
}
