package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

var analyzerStreamclose = &Analyzer{
	Name: "streamclose",
	Doc: `enforce that every row stream reaches Close on all paths. A pull
stream obtained from a call — a core.RowStream operator, a *core.Rows
cursor, a sparql.RowReader — owns goroutines, HTTP response bodies, pool
admissions, and spill files until Close releases them; a path that
returns without closing leaks all of that until the surrounding context
dies. Detection is by shape, not by name: any call result with
Next() bool / Err() error / Close() error (a cursor) or
Vars() / Read() (T, error) / Close() error (a reader) is tracked.
Prefer "defer s.Close()"; a stream handed to another function, struct,
or closure is that holder's responsibility, and a return guarded by the
creation's own error check is exempt (the stream is nil there). Built on
the shared resource-lifecycle engine (lifecycle.go).`,
	Run: runStreamclose,
}

func runStreamclose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			checkStreamsIn(pass, fn)
		}
	}
}

// methodSig looks name up in t's method set — including the pointer method
// set, so addressable values of named types count — and returns its
// signature, or nil.
func methodSig(t types.Type, name string) *types.Signature {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				sig, _ := ms.At(i).Type().(*types.Signature)
				return sig
			}
		}
	}
	return nil
}

func isNiladic(sig *types.Signature, results int) bool {
	return sig != nil && sig.Params().Len() == 0 && !sig.Variadic() && sig.Results().Len() == results
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// streamKind classifies t by method shape: "stream" for pull cursors
// (Next() bool, Err() error, Close() error — RowStream operators,
// *core.Rows), "reader" for incremental result decoders (Vars(),
// Read() (T, error), Close() error — sparql.RowReader implementations).
// io.ReadCloser does not match: its Read takes a buffer argument.
func streamKind(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	cl := methodSig(t, "Close")
	if !isNiladic(cl, 1) || !implementsError(cl.Results().At(0).Type()) {
		return "", false
	}
	next, errm := methodSig(t, "Next"), methodSig(t, "Err")
	if isNiladic(next, 1) && isBoolType(next.Results().At(0).Type()) &&
		isNiladic(errm, 1) && implementsError(errm.Results().At(0).Type()) {
		return "stream", true
	}
	read, vars := methodSig(t, "Read"), methodSig(t, "Vars")
	if isNiladic(read, 2) && implementsError(read.Results().At(1).Type()) && isNiladic(vars, 1) {
		return "reader", true
	}
	return "", false
}

func checkStreamsIn(pass *Pass, fn funcNode) {
	parents := parentMap(fn.body)
	walkShallow(fn.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[call]
		if !ok {
			return true
		}
		var results []types.Type
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				results = append(results, tup.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(asg.Lhs) {
			return true
		}
		var errObj types.Object
		for i, rt := range results {
			if implementsError(rt) && !isErrorProducer(rt) {
				errObj = identObj(pass.Pkg, asg.Lhs[i])
			}
		}
		for i, rt := range results {
			kind, ok := streamKind(rt)
			if !ok {
				continue
			}
			target, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !ok {
				continue // assigned to a field/element: handed off
			}
			if target.Name == "_" {
				pass.Reportf(call.Pos(), "%s discarded: the result of %s can never be closed; bind it and defer Close()", kind, exprText(call.Fun))
				continue
			}
			obj := assignedObj(pass.Pkg, target)
			if obj == nil {
				continue
			}
			deferred, escaped, closes := classifyResourceUses(pass.Pkg, fn.body, parents, obj, "Close")
			if deferred || escaped {
				continue
			}
			name := target.Name
			checkReleasePaths(pass, pass.Pkg, fn.body, parents,
				resource{pos: call.Pos(), end: asg.End(), errObj: errObj}, false, closes,
				fmt.Sprintf("%s %s is never closed: add defer %s.Close() after the error check", kind, name, name),
				func(retLine int) string {
					return fmt.Sprintf("%s %s may leak on the return at line %d: Close() is not reached on that path; prefer defer %s.Close()",
						kind, name, retLine, name)
				})
		}
		return true
	})
}

// isErrorProducer keeps a stream that itself satisfies error (none do
// today) from being mistaken for the creation's error result.
func isErrorProducer(t types.Type) bool {
	_, ok := streamKind(t)
	return ok
}
