package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var analyzerStreamclose = &Analyzer{
	Name: "streamclose",
	Doc: `enforce that every row stream reaches Close on all paths. A pull
stream obtained from a call — a core.RowStream operator, a *core.Rows
cursor, a sparql.RowReader — owns goroutines, HTTP response bodies, pool
admissions, and spill files until Close releases them; a path that
returns without closing leaks all of that until the surrounding context
dies. Detection is by shape, not by name: any call result with
Next() bool / Err() error / Close() error (a cursor) or
Vars() / Read() (T, error) / Close() error (a reader) is tracked.
Prefer "defer s.Close()"; a stream handed to another function, struct,
or closure is that holder's responsibility, and a return guarded by the
creation's own error check is exempt (the stream is nil there).`,
	Run: runStreamclose,
}

// streamCreation is one tracked stream-producing assignment.
type streamCreation struct {
	obj    types.Object // the local stream variable
	errObj types.Object // error bound in the same assignment, if any
	name   string
	kind   string // "stream" or "reader", for diagnostics
	pos    token.Pos
	end    token.Pos // end of the creating statement
}

func runStreamclose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, fn := range functionsIn(f) {
			checkStreamsIn(pass, fn)
		}
	}
}

// methodSig looks name up in t's method set — including the pointer method
// set, so addressable values of named types count — and returns its
// signature, or nil.
func methodSig(t types.Type, name string) *types.Signature {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				sig, _ := ms.At(i).Type().(*types.Signature)
				return sig
			}
		}
	}
	return nil
}

func isNiladic(sig *types.Signature, results int) bool {
	return sig != nil && sig.Params().Len() == 0 && !sig.Variadic() && sig.Results().Len() == results
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// streamKind classifies t by method shape: "stream" for pull cursors
// (Next() bool, Err() error, Close() error — RowStream operators,
// *core.Rows), "reader" for incremental result decoders (Vars(),
// Read() (T, error), Close() error — sparql.RowReader implementations).
// io.ReadCloser does not match: its Read takes a buffer argument.
func streamKind(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	cl := methodSig(t, "Close")
	if !isNiladic(cl, 1) || !implementsError(cl.Results().At(0).Type()) {
		return "", false
	}
	next, errm := methodSig(t, "Next"), methodSig(t, "Err")
	if isNiladic(next, 1) && isBoolType(next.Results().At(0).Type()) &&
		isNiladic(errm, 1) && implementsError(errm.Results().At(0).Type()) {
		return "stream", true
	}
	read, vars := methodSig(t, "Read"), methodSig(t, "Vars")
	if isNiladic(read, 2) && implementsError(read.Results().At(1).Type()) && isNiladic(vars, 1) {
		return "reader", true
	}
	return "", false
}

func checkStreamsIn(pass *Pass, fn funcNode) {
	var creations []streamCreation
	walkShallow(fn.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[call]
		if !ok {
			return true
		}
		var results []types.Type
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				results = append(results, tup.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(asg.Lhs) {
			return true
		}
		var errObj types.Object
		for i, rt := range results {
			if implementsError(rt) && !isErrorProducer(rt) {
				errObj = identObj(pass, asg.Lhs[i])
			}
		}
		for i, rt := range results {
			kind, ok := streamKind(rt)
			if !ok {
				continue
			}
			target, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !ok {
				continue // assigned to a field/element: handed off
			}
			if target.Name == "_" {
				pass.Reportf(call.Pos(), "%s discarded: the result of %s can never be closed; bind it and defer Close()", kind, exprText(call.Fun))
				continue
			}
			obj := pass.Pkg.Info.Defs[target]
			if obj == nil {
				obj = pass.Pkg.Info.Uses[target] // plain = assignment
			}
			if obj != nil {
				creations = append(creations, streamCreation{
					obj: obj, errObj: errObj, name: target.Name, kind: kind,
					pos: call.Pos(), end: asg.End(),
				})
			}
		}
		return true
	})
	if len(creations) == 0 {
		return
	}

	parents := parentMap(fn.body)
	returns := returnsOf(fn.body)
	for _, c := range creations {
		deferred, escaped, closes := classifyStreamUses(pass, fn.body, parents, c)
		if deferred || escaped {
			continue
		}
		if len(closes) == 0 {
			pass.Reportf(c.pos, "%s %s is never closed: add defer %s.Close() after the error check", c.kind, c.name, c.name)
			continue
		}
		block := enclosingBlock(fn.body, c.pos)
		for _, ret := range returns {
			if ret.Pos() <= c.end || ret.Pos() < block.Pos() || ret.End() > block.End() {
				continue
			}
			if guardedByErr(pass, parents, ret, c.errObj) {
				continue // the stream is nil on the creation-failed path
			}
			closed := false
			for _, e := range closes {
				if e > c.end && e < ret.Pos() {
					closed = true
					break
				}
			}
			if !closed {
				pass.Reportf(c.pos, "%s %s may leak on the return at line %d: Close() is not reached on that path; prefer defer %s.Close()",
					c.kind, c.name, pass.Fset.Position(ret.Pos()).Line, c.name)
			}
		}
	}
}

// isErrorProducer keeps a stream that itself satisfies error (none do
// today) from being mistaken for the creation's error result.
func isErrorProducer(t types.Type) bool {
	_, ok := streamKind(t)
	return ok
}

// guardedByErr reports whether ret sits inside an if statement whose
// condition tests the creation's error variable — the canonical
// "if err != nil { return ... }" path, where the stream was never created.
func guardedByErr(pass *Pass, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for p := parents[ast.Node(ret)]; p != nil; p = parents[p] {
		if ifs, ok := p.(*ast.IfStmt); ok && usesObject(pass, ifs.Cond, errObj) {
			return true
		}
	}
	return false
}

// classifyStreamUses inspects every reference to the stream variable and
// sorts them into: a deferred Close, an escape (handed off to a call,
// return, assignment, closure, or composite), or a plain Close position.
// Other method calls on the receiver (Next, Err, Row, Read...) are
// ordinary uses and constrain nothing.
func classifyStreamUses(pass *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, c streamCreation) (deferred, escaped bool, closes []token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[id] != c.obj {
			return true
		}
		// A reference inside a nested closure hands responsibility to the
		// closure (deferred cleanup funcs, goroutines).
		for p := parents[ast.Node(id)]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.FuncLit); ok {
				escaped = true
				return true
			}
		}
		parent := parents[ast.Node(id)]
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
			if call, ok := parents[ast.Node(sel)].(*ast.CallExpr); ok && call.Fun == ast.Expr(sel) {
				if sel.Sel.Name == "Close" {
					if _, isDefer := parents[ast.Node(call)].(*ast.DeferStmt); isDefer {
						deferred = true
					} else {
						closes = append(closes, call.Pos())
					}
					return true
				}
				// Next/Err/Row/Read/Vars/...: a plain receiver use.
				return true
			}
			// Method value or field access: conservative handoff.
			escaped = true
			return true
		}
		// Any other use (argument, return value, re-assignment, composite
		// literal, channel send, comparison...) counts as a handoff, except
		// the defining identifier itself.
		if pass.Pkg.Info.Defs[id] == c.obj {
			return true
		}
		escaped = true
		return true
	})
	return deferred, escaped, closes
}
