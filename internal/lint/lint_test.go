package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lusail/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// vetdataDir is the root of the testdata source tree, addressed under the
// synthetic import prefix "vetdata".
const vetdataDir = "testdata/src/vetdata"

// newTestLoader returns a loader for the lusail module with the vetdata
// prefix mapped in. Loaders are cheap; the expensive standard-library
// type-checking is memoized per loader, so each test pays it once.
func newTestLoader(t *testing.T) *lint.Loader {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	vetdata, err := filepath.Abs(vetdataDir)
	if err != nil {
		t.Fatal(err)
	}
	loader.Extra = map[string]string{"vetdata": vetdata}
	return loader
}

// runOn loads one vetdata package and runs the named analyzers (all when
// names is nil), returning the rendered diagnostics with positions made
// relative to the testdata root so goldens are machine-independent.
func runOn(t *testing.T, loader *lint.Loader, relPkg string, names []string) []string {
	t.Helper()
	return runOnTree(t, loader, []string{relPkg}, names)
}

// runOnTree loads several vetdata packages into a single lint.Run, so
// Module analyzers build their call graph over the whole set — the shape
// interprocedural goldens need (leaf helpers, wrapper packages, and the
// roots that reach through them).
func runOnTree(t *testing.T, loader *lint.Loader, relPkgs []string, names []string) []string {
	t.Helper()
	var pkgs []*lint.Package
	for _, relPkg := range relPkgs {
		importPath := "vetdata/" + relPkg
		loaded, err := loader.LoadDir(filepath.Join(vetdataDir, relPkg), importPath)
		if err != nil {
			t.Fatalf("loading %s: %v", importPath, err)
		}
		for _, pkg := range loaded {
			for _, terr := range pkg.TypeErrors {
				t.Errorf("type error in %s: %v", importPath, terr)
			}
		}
		pkgs = append(pkgs, loaded...)
	}
	analyzers := lint.All()
	if names != nil {
		var err error
		analyzers, err = lint.ByName(names)
		if err != nil {
			t.Fatal(err)
		}
	}
	abs, err := filepath.Abs(vetdataDir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range lint.Run(pkgs, analyzers, loader.Fset) {
		s := d.String()
		if rel, err := filepath.Rel(abs, d.Pos.Filename); err == nil {
			s = filepath.ToSlash(rel) + strings.TrimPrefix(s, d.Pos.Filename)
		}
		out = append(out, s)
	}
	return out
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	text := strings.Join(got, "\n")
	if len(got) > 0 {
		text += "\n"
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if string(want) != text {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, text, want)
	}
}

// TestAnalyzerGoldens runs each analyzer against its violation package and
// asserts the exact file:line:col diagnostics. One shared loader keeps the
// stdlib type-checking cost to a single pass.
func TestAnalyzerGoldens(t *testing.T) {
	loader := newTestLoader(t)
	for _, tc := range []struct {
		pkg   string
		names []string
	}{
		{"ctxflow", []string{"ctxflow"}},
		{"spanend", []string{"spanend"}},
		{"pairedadmission", []string{"pairedadmission"}},
		{"nolockio", []string{"nolockio"}},
		{"errwrap", []string{"errwrapdiscipline"}},
		{"streamclose", []string{"streamclose"}},
	} {
		t.Run(tc.pkg, func(t *testing.T) {
			got := runOn(t, loader, tc.pkg, tc.names)
			if len(got) == 0 {
				t.Errorf("violation package %s produced no diagnostics", tc.pkg)
			}
			checkGolden(t, tc.pkg, got)
		})
	}
}

// TestInterproceduralGoldens runs each Module analyzer over its multi-
// package violation tree and asserts the exact diagnostics: a lock-order
// cycle closed through a helper two packages away, a goroutine whose
// termination evidence lives in a callee's summary, and a budget check
// performed by a wrapper in another package.
func TestInterproceduralGoldens(t *testing.T) {
	loader := newTestLoader(t)
	for _, tc := range []struct {
		name  string
		pkgs  []string
		names []string
	}{
		{"lockorder", []string{"lockorder/leaf", "lockorder/mid", "lockorder/root"}, []string{"lockorder"}},
		{"spawnjoin", []string{"spawnjoin", "spawnjoin/workers"}, []string{"spawnjoin"}},
		{"budgetbound", []string{"budgetbound", "budgetbound/guard"}, []string{"budgetbound"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runOnTree(t, loader, tc.pkgs, tc.names)
			if len(got) == 0 {
				t.Errorf("violation tree %s produced no diagnostics", tc.name)
			}
			checkGolden(t, tc.name, got)
		})
	}
}

// TestSuppression checks the directive machinery end to end: justified
// directives silence findings, while malformed, unknown, and unused ones
// surface as "directive" diagnostics alongside the unsuppressed originals.
func TestSuppression(t *testing.T) {
	loader := newTestLoader(t)
	got := runOn(t, loader, "suppressed", nil)
	checkGolden(t, "suppressed", got)

	for _, line := range got {
		if strings.Contains(line, "daemonRoot") || strings.Contains(line, "sameLine") {
			t.Errorf("justified suppression leaked a diagnostic: %s", line)
		}
	}
	wantSubstrings := []string{
		"suppression without justification",
		"unknown analyzer",
		"unused suppression directive",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, line := range got {
			if strings.Contains(line, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q in:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

// TestMultiPackage loads the two multipkg units: the diagnostics in a
// depend on resolving the errors b exports, across the package boundary.
func TestMultiPackage(t *testing.T) {
	loader := newTestLoader(t)
	gotB := runOn(t, loader, "multipkg/b", []string{"errwrapdiscipline"})
	if len(gotB) != 0 {
		t.Errorf("multipkg/b should be clean, got:\n%s", strings.Join(gotB, "\n"))
	}
	gotA := runOn(t, loader, "multipkg/a", []string{"errwrapdiscipline"})
	if len(gotA) == 0 {
		t.Error("multipkg/a produced no diagnostics: cross-package type resolution failed")
	}
	checkGolden(t, "multipkg", gotA)
}

// TestSARIF renders a real run as SARIF and holds it to the structural
// validator: version/schema fields, a rule per analyzer, and a physical
// location with repository-relative URI on every result. Tampered logs
// must fail.
func TestSARIF(t *testing.T) {
	loader := newTestLoader(t)
	pkgs, err := loader.LoadDir(filepath.Join(vetdataDir, "ctxflow"), "vetdata/ctxflow")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.All()
	diags := lint.Run(pkgs, analyzers, loader.Fset)
	if len(diags) == 0 {
		t.Fatal("ctxflow testdata produced no diagnostics to render")
	}
	abs, err := filepath.Abs(vetdataDir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := lint.RenderSARIF(diags, analyzers, abs)
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.ValidateSARIF(data); err != nil {
		t.Fatalf("rendered SARIF fails validation: %v\n%s", err, data)
	}
	text := string(data)
	if !strings.Contains(text, `"version": "2.1.0"`) {
		t.Error("missing SARIF 2.1.0 version")
	}
	// URIs must be vetdata-relative (no absolute paths leak into uploads).
	if strings.Contains(text, filepath.ToSlash(abs)) {
		t.Error("absolute paths leaked into SARIF artifact URIs")
	}
	for _, a := range analyzers {
		if !strings.Contains(text, `"id": "`+a.Name+`"`) {
			t.Errorf("no rule for analyzer %s in SARIF output", a.Name)
		}
	}
	// Tampering must fail validation.
	if err := lint.ValidateSARIF([]byte(strings.Replace(text, `"2.1.0"`, `"9.9"`, 1))); err == nil {
		t.Error("wrong version passed validation")
	}
	if err := lint.ValidateSARIF([]byte(strings.Replace(text, `"ruleId": "ctxflow"`, `"ruleId": "bogus"`, 1))); err == nil {
		t.Error("unknown ruleId passed validation")
	}
	if err := lint.ValidateSARIF([]byte(`{"version":"2.1.0","runs":[]}`)); err == nil {
		t.Error("run-less log passed validation")
	}
}

// TestRegistryMatchesDocs pins the analyzer registry: the nine documented
// analyzers, in suite order, each carrying a Doc — and every name must
// appear in README.md's static-analysis section, so the registry and the
// docs cannot drift apart.
func TestRegistryMatchesDocs(t *testing.T) {
	want := []string{
		"ctxflow", "spanend", "pairedadmission", "nolockio",
		"errwrapdiscipline", "streamclose", "lockorder", "spawnjoin",
		"budgetbound",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, a.Name, want[i])
		}
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
	for _, file := range []string{"../../README.md", "../../DESIGN.md"} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range want {
			if !strings.Contains(string(data), name) {
				t.Errorf("%s does not mention analyzer %s", file, name)
			}
		}
	}
}

// TestRealTreeClean is the dogfood gate: the analyzers must exit clean on
// the repository itself (true positives fixed, deliberate roots carrying
// justified directives). Skipped under -short: it type-checks the whole
// module including its standard-library imports.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped under -short")
	}
	loader := newTestLoader(t)
	pkgs, err := loader.LoadAll(loader.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, terr)
		}
	}
	for _, d := range lint.Run(pkgs, lint.All(), loader.Fset) {
		t.Errorf("unexpected diagnostic on the real tree: %s", d)
	}
}
