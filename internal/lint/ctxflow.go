package lint

import (
	"go/ast"
)

var analyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc: `enforce that cancellation flows from the caller: no context.Background()/
context.TODO() outside package main, tests, and justified roots, and no
dead context.Context parameters. Every remote request and goroutine the
engine issues must be cancellable from the query that caused it; a context
fabricated mid-stack detaches that subtree from cancellation and leaks
work past query teardown.`,
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		// Rule 1: context fabricated mid-stack.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(pass.Pkg, call)
			for _, name := range []string{"Background", "TODO"} {
				if isFunc(obj, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() outside main/tests: accept and thread the caller's context.Context (suppress with %s ctxflow -- <why> for a true root)",
						name, directivePrefix)
				}
			}
			return true
		})
		// Rule 2: a context.Context parameter that is never used — the
		// function promises cancellation flow but drops it on the floor.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.Pkg.Info.Defs[name]
					if obj == nil || !isContextType(obj.Type()) {
						continue
					}
					if !usesObject(pass.Pkg, fd.Body, obj) {
						pass.Reportf(name.Pos(),
							"context.Context parameter %q is unused: thread it to callees, or rename it to _ if the signature is fixed by an interface",
							name.Name)
					}
				}
			}
		}
	}
}
