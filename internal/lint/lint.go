// Package lint is lusail's project-specific static-analysis suite: a set
// of analyzers over go/ast + go/types that machine-check the concurrency
// and resilience invariants the engine's correctness rests on. The
// invariants are ones the compiler cannot see and review has already
// missed once (PR 3 shipped circuit breakers that wedged in half-open
// because an admission was claimed twice); each analyzer encodes one such
// rule so it is re-checked on every push instead of re-discovered in
// production. See DESIGN.md "Machine-checked invariants".
//
// The suite is built only on the standard library (go/parser, go/types,
// go/importer) to preserve the repo's zero-third-party-dependency
// property. Run it with:
//
//	go run ./cmd/lusail-vet ./...
//
// A diagnostic on deliberate code is suppressed with a justified inline
// directive on, or on the line above, the flagged line:
//
//	//lint:lusail-vet ctxflow -- detached background loop with own stop channel
//
// The justification after " -- " is mandatory; malformed or unused
// directives are themselves diagnostics, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the identifier used in output and suppression directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Module marks whole-program analyzers: Run is invoked once with
	// Pass.Prog set (and Pkg nil) instead of once per package. These are
	// the interprocedural checks that need call-graph summaries.
	Module bool
	// Run reports the analyzer's findings through the pass: over one
	// package (Pass.Pkg) for per-package analyzers, over the whole program
	// (Pass.Prog) for Module analyzers.
	Run func(*Pass)
}

// Pass carries one analyzer's view of the code under analysis.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis; nil for Module analyzers.
	Pkg *Package
	// Prog is the module-wide call-graph view; set for Module analyzers
	// (and for everyone else when any Module analyzer is in the run).
	Prog *Program
	Fset *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in output order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerCtxflow,
		analyzerSpanend,
		analyzerPairedAdmission,
		analyzerNoLockIO,
		analyzerErrwrap,
		analyzerStreamclose,
		analyzerLockorder,
		analyzerSpawnjoin,
		analyzerBudgetbound,
	}
}

// ByName returns the named analyzers from All, preserving suite order, or
// an error naming the first unknown entry.
func ByName(names []string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("lint: unknown analyzer %q", n)
	}
	return out, nil
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:lusail-vet"

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed and
// unused suppression directives are reported. It cannot be suppressed.
const DirectiveAnalyzer = "directive"

// directive is one parsed suppression comment.
type directive struct {
	pos       token.Position
	analyzers []string
	bad       string // non-empty: malformed, with reason
	used      bool
}

// parseDirectives extracts suppression directives from a package's
// comments, validating analyzer names against the analyzers being run.
func parseDirectives(pkg *Package, fset *token.FileSet, running map[string]bool) []*directive {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				d := &directive{pos: fset.Position(c.Pos())}
				out = append(out, d)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					d.bad = "malformed directive: expected \"" + directivePrefix + " <analyzer>[,<analyzer>] -- <justification>\""
					continue
				}
				names, justification, found := strings.Cut(rest, " -- ")
				if !found || strings.TrimSpace(justification) == "" {
					d.bad = "suppression without justification: append \" -- <why this is safe>\""
					continue
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					if !known[n] {
						d.bad = fmt.Sprintf("unknown analyzer %q in suppression", n)
						break
					}
					if running[n] {
						d.analyzers = append(d.analyzers, n)
					} else {
						// The analyzer is not part of this run; the
						// directive cannot be marked used, so don't hold
						// it to the unused check.
						d.used = true
					}
				}
				if d.bad == "" && len(d.analyzers) == 0 && !d.used {
					d.bad = "suppression names no analyzer"
				}
			}
		}
	}
	return out
}

// covers reports whether the directive suppresses the given diagnostic: the
// analyzer matches and the diagnostic is on the directive's line or the
// line immediately below (directive-above-statement style).
func (d *directive) covers(diag Diagnostic) bool {
	if d.bad != "" || diag.Pos.Filename != d.pos.Filename {
		return false
	}
	if diag.Pos.Line != d.pos.Line && diag.Pos.Line != d.pos.Line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == diag.Analyzer {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped, and
// malformed or unused suppression directives are reported under the
// "directive" pseudo-analyzer.
//
// Per-package analyzers run once per package; Module analyzers run once
// over a Program built from all the packages. Suppression directives are
// matched globally, because a Module analyzer's diagnostics land in any
// package's files.
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers, fset)
	return diags
}

// AnalyzerTiming is one analyzer's wall-clock cost over a whole run, for
// the -timings report: the suite grows, and a regressing analyzer should be
// visible before CI minutes are.
type AnalyzerTiming struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// RunTimed is Run, also returning per-analyzer wall-clock timings in
// analyzer order. Program construction for interprocedural analyzers is
// charged to the first Module analyzer that needs it (it would not have
// been built otherwise).
func RunTimed(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) ([]Diagnostic, []AnalyzerTiming) {
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var prog *Program
	var raw []Diagnostic
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		t0 := time.Now()
		if a.Module {
			if prog == nil {
				prog = BuildProgram(pkgs, fset)
			}
			a.Run(&Pass{Analyzer: a, Prog: prog, Fset: fset, diags: &raw})
		} else {
			for _, pkg := range pkgs {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, Fset: fset, diags: &raw})
			}
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: time.Since(t0)})
	}

	var dirs []*directive
	for _, pkg := range pkgs {
		dirs = append(dirs, parseDirectives(pkg, fset, running)...)
	}
	var out []Diagnostic
	for _, diag := range raw {
		suppressed := false
		for _, d := range dirs {
			if d.covers(diag) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range dirs {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{Analyzer: DirectiveAnalyzer, Pos: d.pos, Message: d.bad})
		case !d.used:
			out = append(out, Diagnostic{Analyzer: DirectiveAnalyzer, Pos: d.pos,
				Message: "unused suppression directive: nothing to suppress here; delete it"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, timings
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
