package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer: a module-wide call graph over
// every declared function in the analyzed packages, plus per-function
// summaries computed bottom-up over strongly connected components. The
// intra-procedural analyzers see one body at a time; the summaries are how
// lockorder, spawnjoin, and budgetbound see through a call — a helper that
// locks again, a worker that selects on its context, a wrapper that
// enforces the byte budget.
//
// The graph covers statically resolved calls to declared functions and
// methods of the analyzed packages. Calls through function values,
// interface methods, and packages outside the analysis set resolve to
// nothing and contribute empty summaries — a deliberate under-
// approximation: the analyzers stay quiet rather than guess.

// FuncID names a declared function across the program:
// "pkg/path.Name" for functions, "pkg/path.(Recv).Name" for methods.
// String-keyed (not object-keyed) so identities survive the loader
// rebuilding a package with test files folded in.
type FuncID string

// funcID derives the FuncID for a function object, or "" when obj is not a
// declared function of a named package.
func funcID(obj types.Object) FuncID {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if recv := recvTypeName(fn); recv != "" {
		return FuncID(fn.Pkg().Path() + ".(" + recv + ")." + fn.Name())
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// callSite is one statically resolved call out of a function body.
type callSite struct {
	callee FuncID
	call   *ast.CallExpr
	// recvText is the rendered receiver expression for method calls
	// ("s.cache"), used to instantiate the callee's receiver-rooted lock
	// acquisitions at this site.
	recvText string
	// inGo marks calls lexically inside a `go func(){...}` literal: they
	// run on another stack, so lock and termination effects do not
	// propagate to the spawning function.
	inGo bool
}

// Summary is one function's bottom-up effect summary. All fields are
// transitive over the call graph except where noted.
type Summary struct {
	// Acquires maps lock classes this function may acquire — directly or
	// through any call path — to a witness position.
	Acquires map[string]token.Pos
	// RecvAcquires maps receiver-rooted lock field paths ("mu",
	// "cache.mu") that a method may lock on its own receiver, directly or
	// via same-receiver calls. Call sites instantiate these against the
	// concrete receiver expression to catch same-instance relocks.
	RecvAcquires map[string]token.Pos
	// TermEvidence: the function exhibits a statically evident
	// termination path for goroutine bodies — a ctx.Done()/ctx.Err() use,
	// a channel receive/range/select, a WaitGroup.Done or close() join
	// signal, or a call that passes a context onward.
	TermEvidence bool
	// BudgetGuard: the function compares one of its integer parameters
	// against a bound — the shape of a budget-check wrapper.
	BudgetGuard bool
}

// FuncInfo is one declared function in the program.
type FuncInfo struct {
	ID      FuncID
	Decl    *ast.FuncDecl
	Pkg     *Package
	RecvObj types.Object // receiver variable, nil for plain functions
	Calls   []callSite
	Summary Summary
}

// Program is the module-wide interprocedural view handed to Module
// analyzers.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[FuncID]*FuncInfo
	// order lists functions callees-first (reverse topological over SCCs);
	// mutually recursive groups are contiguous.
	order []*FuncInfo
}

// FuncOf resolves a call expression (in pkg) to the FuncInfo it invokes,
// or nil for unresolved callees.
func (prog *Program) FuncOf(pkg *Package, call *ast.CallExpr) *FuncInfo {
	obj := calleeOf(pkg, call)
	if obj == nil {
		return nil
	}
	return prog.Funcs[funcID(obj)]
}

// BuildProgram constructs the call graph and computes summaries for every
// function declared in pkgs.
func BuildProgram(pkgs []*Package, fset *token.FileSet) *Program {
	prog := &Program{Fset: fset, Pkgs: pkgs, Funcs: map[FuncID]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				id := funcID(obj)
				if id == "" {
					continue
				}
				fi := &FuncInfo{ID: id, Decl: fd, Pkg: pkg, RecvObj: recvObjOf(pkg, fd)}
				fi.Calls = collectCalls(pkg, fd.Body)
				prog.Funcs[id] = fi
			}
		}
	}
	prog.order = prog.sccOrder()
	prog.computeSummaries()
	return prog
}

// recvObjOf returns the object of the method's receiver variable, or nil.
func recvObjOf(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// collectCalls gathers the statically resolved calls under body, tracking
// whether each sits inside a go-statement function literal.
func collectCalls(pkg *Package, body *ast.BlockStmt) []callSite {
	var out []callSite
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.GoStmt:
				// The spawned call itself, and everything inside a spawned
				// literal, runs on another stack.
				walk(v.Call, true)
				return false
			case *ast.CallExpr:
				obj := calleeOf(pkg, v)
				if id := funcID(obj); id != "" {
					site := callSite{callee: id, call: v, inGo: inGo}
					if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && recvTypeName(obj) != "" {
						site.recvText = exprText(sel.X)
					}
					out = append(out, site)
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// sccOrder returns every function callees-first: Tarjan's strongly
// connected components emitted in reverse topological order, so by the
// time a function is summarized its callees (outside its own recursion
// group) already are.
func (prog *Program) sccOrder() []*FuncInfo {
	ids := make([]FuncID, 0, len(prog.Funcs))
	for id := range prog.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index := map[FuncID]int{}
	low := map[FuncID]int{}
	onStack := map[FuncID]bool{}
	var stack []FuncID
	var order []*FuncInfo
	next := 0

	var strong func(id FuncID)
	strong = func(id FuncID) {
		index[id] = next
		low[id] = next
		next++
		stack = append(stack, id)
		onStack[id] = true
		for _, cs := range prog.Funcs[id].Calls {
			w := cs.callee
			if prog.Funcs[w] == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[id] {
					low[id] = low[w]
				}
			} else if onStack[w] && index[w] < low[id] {
				low[id] = index[w]
			}
		}
		if low[id] == index[id] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				order = append(order, prog.Funcs[w])
				if w == id {
					break
				}
			}
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strong(id)
		}
	}
	return order
}

// computeSummaries seeds each function's direct effects, then propagates
// callee summaries in callees-first order, iterating to a fixpoint so
// mutually recursive groups converge (every field only grows).
func (prog *Program) computeSummaries() {
	for _, fi := range prog.order {
		seedSummary(fi)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.order {
			if prog.propagate(fi) {
				changed = true
			}
		}
	}
}

// propagate folds callee summaries into fi's, reporting whether anything
// grew.
func (prog *Program) propagate(fi *FuncInfo) bool {
	changed := false
	recvName := ""
	if fi.RecvObj != nil {
		recvName = fi.RecvObj.Name()
	}
	for _, cs := range fi.Calls {
		callee := prog.Funcs[cs.callee]
		if callee == nil || cs.inGo {
			continue
		}
		for class, pos := range callee.Summary.Acquires {
			if _, ok := fi.Summary.Acquires[class]; !ok {
				fi.Summary.Acquires[class] = pos
				changed = true
			}
		}
		for field, pos := range callee.Summary.RecvAcquires {
			// A same-receiver call (c.inner() from a method on c) keeps the
			// acquisition receiver-rooted in the caller too.
			if recvName != "" && cs.recvText == recvName {
				if _, ok := fi.Summary.RecvAcquires[field]; !ok {
					fi.Summary.RecvAcquires[field] = pos
					changed = true
				}
			}
			// Class-level effect regardless of instance.
			if class := classOfRecvField(callee, field); class != "" {
				if _, ok := fi.Summary.Acquires[class]; !ok {
					fi.Summary.Acquires[class] = pos
					changed = true
				}
			}
		}
		if callee.Summary.TermEvidence && !fi.Summary.TermEvidence {
			fi.Summary.TermEvidence = true
			changed = true
		}
		if callee.Summary.BudgetGuard && callPassesIntParam(fi, cs.call) && !fi.Summary.BudgetGuard {
			fi.Summary.BudgetGuard = true
			changed = true
		}
	}
	return changed
}

// classOfRecvField renders the lock class of a receiver-rooted field path
// on the callee's receiver type ("pkg.Type.mu").
func classOfRecvField(callee *FuncInfo, field string) string {
	recv := recvTypeName(callee.Pkg.Info.Defs[callee.Decl.Name])
	if recv == "" {
		return ""
	}
	// Only single-segment paths name a field of the receiver type itself;
	// deeper paths ("cache.mu") belong to the nested type's class, which
	// the callee's own Acquires entry already covers.
	if strings.Contains(field, ".") {
		return ""
	}
	return callee.Pkg.Path + "." + recv + "." + field
}

// callPassesIntParam reports whether any argument of call mentions an
// integer-typed parameter of the enclosing function — the budget value
// being forwarded into a guard wrapper.
func callPassesIntParam(fi *FuncInfo, call *ast.CallExpr) bool {
	params := map[types.Object]bool{}
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil && isIntegerType(obj.Type()) {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && params[fi.Pkg.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// seedSummary computes fi's direct (non-transitive) effects.
func seedSummary(fi *FuncInfo) {
	fi.Summary.Acquires = map[string]token.Pos{}
	fi.Summary.RecvAcquires = map[string]token.Pos{}
	pkg := fi.Pkg

	// Direct lock acquisitions, skipping go-statement literals (another
	// stack) but descending into ordinary and deferred literals, which run
	// in this frame.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if ref, ok := lockAcquire(pkg, v, fi.RecvObj); ok {
					if _, seen := fi.Summary.Acquires[ref.class]; !seen && ref.class != "" {
						fi.Summary.Acquires[ref.class] = v.Pos()
					}
					if ref.recvField != "" {
						if _, seen := fi.Summary.RecvAcquires[ref.recvField]; !seen {
							fi.Summary.RecvAcquires[ref.recvField] = v.Pos()
						}
					}
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body)

	fi.Summary.TermEvidence = directTermEvidence(pkg, fi.Decl.Body)
	fi.Summary.BudgetGuard = directBudgetGuard(fi)
}

// directTermEvidence reports whether body itself exhibits a termination
// path: ctx.Done()/ctx.Err(), a channel receive/range/select, a
// WaitGroup.Done or close() signal, or a context handed to a callee.
// Go-statement literals are excluded — evidence inside a further goroutine
// says nothing about this frame.
func directTermEvidence(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch v := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					found = true
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[v.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			case *ast.CallExpr:
				obj := calleeOf(pkg, v)
				switch {
				case isMethod(obj, "sync", "WaitGroup", "Done"):
					found = true
				case obj != nil && obj.Name() == "close" && obj.Pkg() == nil:
					found = true
				case isCtxMethodCall(pkg, v):
					found = true
				default:
					for _, arg := range v.Args {
						if tv, ok := pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
							found = true
						}
					}
				}
			}
			return !found
		})
	}
	walk(body)
	return found
}

// isCtxMethodCall matches ctx.Done() and ctx.Err() on a context value.
func isCtxMethodCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// directBudgetGuard reports whether the function compares one of its
// integer parameters against a bound.
func directBudgetGuard(fi *FuncInfo) bool {
	params := map[types.Object]bool{}
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil && isIntegerType(obj.Type()) {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || !isOrderingOp(b.Op) {
			return !found
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && params[fi.Pkg.Info.Uses[id]] {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isOrderingOp(op token.Token) bool {
	return op == token.LSS || op == token.LEQ || op == token.GTR || op == token.GEQ
}
