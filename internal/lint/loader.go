package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit of Go code: the parsed files of a single
// directory plus full go/types information. In-package _test.go files are
// folded into the unit when the loader's IncludeTests is set; external
// (package foo_test) files form a separate unit with path "<path>_test".
type Package struct {
	// Path is the unit's import path ("lusail/internal/erh").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-check errors. Analyzers still run on a
	// partially checked package, but lusail-vet reports these and fails.
	TypeErrors []error
}

// Loader parses and type-checks packages of the lusail module using only
// the standard library: module-internal imports are resolved against the
// module tree, everything else is delegated to a standard-library
// importer. The fast path reads compiled export data out of the Go build
// cache (one "go list -export std" resolves the file per package), so warm
// runs — and CI jobs sharing the build cache — skip re-type-checking the
// standard library; when the go tool is unavailable the loader falls back
// to the go/importer source importer, which type-checks the standard
// library from GOROOT source. This deliberately avoids golang.org/x/tools
// to preserve the repo's zero-third-party-dependency property.
//
// The loader is not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleDir locate the module ("lusail" at the repo
	// root).
	ModulePath string
	ModuleDir  string
	// IncludeTests folds _test.go files into loaded target units. Imports
	// of a package from another package always resolve to its test-free
	// unit, so test-only import cycles cannot deadlock the loader.
	IncludeTests bool
	// Extra maps additional import-path prefixes to directories; the lint
	// tests use it to address testdata trees ("vetdata" ->
	// internal/lint/testdata/src/vetdata).
	Extra map[string]string

	std     types.ImporterFrom
	pkgs    map[string]*Package // test-free units, by import path
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleDir, reading the module path
// from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleDir)
	}
	// The source importer consults go/build; with cgo enabled it would try
	// to run the cgo tool on packages like net. The pure-Go fallbacks are
	// all we need for type checking.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, err := stdExportImporter(fset)
	if err != nil {
		std, _ = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	}
	if std == nil {
		return nil, fmt.Errorf("lint: no standard-library importer available")
	}
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  abs,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// stdExportImporter builds a gc-export-data importer over the standard
// library: one "go list -export std" maps every std import path to its
// compiled export file in the build cache (compiling on a cold cache), and
// the gc importer reads those files through the lookup. Reading export
// data is an order of magnitude cheaper than re-type-checking GOROOT
// source, and the build cache persists across runs and CI jobs.
func stdExportImporter(fset *token.FileSet) (types.ImporterFrom, error) {
	out, err := exec.Command("go", "list", "-export", "-f", "{{.ImportPath}}={{.Export}}", "std").Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list -export std: %w", err)
	}
	exports := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok && file != "" {
			exports[path] = file
		}
	}
	if len(exports) == 0 {
		return nil, fmt.Errorf("lint: go list -export std produced no export files")
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp, _ := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if imp == nil {
		return nil, fmt.Errorf("lint: gc importer unavailable")
	}
	return imp, nil
}

// dirFor resolves an import path to a directory, or "" when the path is not
// module-local (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	for prefix, dir := range l.Extra {
		if path == prefix {
			return dir
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Import implements types.Importer for the type-checker: module-local
// paths load recursively (without test files), everything else goes to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir, false)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return pkg.Types, fmt.Errorf("lint: %s has type errors: %w", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// goFiles lists the unit's file names in dir: (base, inTest, extTest).
func goFiles(dir string) (base, inTest, extTest []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			// Split in-package from external tests by package clause.
			src, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.PackageClauseOnly)
			if err != nil || strings.HasSuffix(src.Name.Name, "_test") {
				extTest = append(extTest, name)
			} else {
				inTest = append(inTest, name)
			}
			continue
		}
		base = append(base, name)
	}
	sort.Strings(base)
	sort.Strings(inTest)
	sort.Strings(extTest)
	return base, inTest, extTest, nil
}

// load parses and type-checks the package in dir under the given import
// path. Test-free units are memoized; units with tests are rebuilt per
// call (they are only built for analysis targets, once each).
func (l *Loader) load(path, dir string, withTests bool) (*Package, error) {
	if !withTests {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg, nil
		}
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
	}
	base, inTest, _, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	names := base
	if withTests {
		names = append(append([]string{}, base...), inTest...)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.check(path, dir, names)
	if err != nil {
		return nil, err
	}
	if !withTests {
		l.pkgs[path] = pkg
	}
	return pkg, nil
}

// check parses the named files and runs the type checker.
func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	return pkg, nil
}

// LoadDir loads the package in dir (which must map to importPath) as an
// analysis target, including test files when IncludeTests is set. When the
// directory also holds an external test package and IncludeTests is set,
// it is returned as a second unit.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	pkg, err := l.load(importPath, dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	out := []*Package{pkg}
	if l.IncludeTests {
		_, _, extTest, err := goFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(extTest) > 0 {
			ext, err := l.check(importPath+"_test", dir, extTest)
			if err != nil {
				return nil, err
			}
			out = append(out, ext)
		}
	}
	return out, nil
}

// LoadAll walks root (a directory inside the module) and loads every
// package under it, skipping testdata, vendor, and hidden directories.
func (l *Loader) LoadAll(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var out []*Package
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		base, inTest, extTest, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(base) == 0 && (!l.IncludeTests || len(inTest)+len(extTest) == 0) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkgs, err := l.LoadDir(p, importPath)
		if err != nil {
			return err
		}
		out = append(out, pkgs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
