package diskstore_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"lusail/internal/diskstore"
	"lusail/internal/rdf"
	"lusail/internal/store"
	"lusail/internal/store/storetest"
)

// tinyCache is small enough that every suite exercises eviction and
// re-decoding, not just the warm-cache path.
const tinyCache = 1 << 20

func buildStore(t *testing.T, triples []rdf.Triple) *diskstore.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.lds")
	// Tiny block sizes + a tiny sort budget force multi-block files and
	// external merge runs even for test-sized data.
	err := diskstore.Build(path, triples, diskstore.BuildOptions{
		DictBlockSize:   4,
		TripleBlockSize: 8,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ds, err := diskstore.Open(path, diskstore.Options{CacheBytes: tinyCache})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := ds.Err(); err != nil {
			t.Errorf("store reported corruption: %v", err)
		}
		ds.Close()
	})
	return ds
}

// TestConformance runs the shared store.Graph suite against the
// disk-backed store.
func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, triples []rdf.Triple) store.Graph {
		return buildStore(t, triples)
	})
}

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func randomTriples(rng *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rdf.NewTriple(
			iri(fmt.Sprintf("s%d", rng.Intn(300))),
			iri(fmt.Sprintf("p%d", rng.Intn(12))),
			iri(fmt.Sprintf("o%d", rng.Intn(400))),
		))
	}
	return out
}

// TestDiskMatchesMemory checks row-identical results between the two
// backends across every bind pattern of many probes — the acceptance bar
// for serving either backend behind the same endpoint.
func TestDiskMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randomTriples(rng, 4000)
	mem := store.NewFromTriples(data)
	disk := buildStore(t, data)

	if mem.Len() != disk.Len() {
		t.Fatalf("Len: memory %d, disk %d", mem.Len(), disk.Len())
	}
	if !reflect.DeepEqual(collect(mem, nil, nil, nil), collect(disk, nil, nil, nil)) {
		t.Fatal("full scans differ")
	}
	for _, p := range mem.Predicates() {
		if mem.PredicateCount(p) != disk.PredicateCount(p) {
			t.Fatalf("PredicateCount(%v): memory %d, disk %d", p, mem.PredicateCount(p), disk.PredicateCount(p))
		}
	}
	if !reflect.DeepEqual(mem.Predicates(), disk.Predicates()) {
		t.Fatal("Predicates() differ")
	}
	all := mem.Triples()
	for i := 0; i < 300; i++ {
		probe := all[rng.Intn(len(all))]
		s, p, o := probe.S, probe.P, probe.O
		for mask := 0; mask < 8; mask++ {
			var ps, pp, po *rdf.Term
			if mask&4 != 0 {
				ps = &s
			}
			if mask&2 != 0 {
				pp = &p
			}
			if mask&1 != 0 {
				po = &o
			}
			mg, dg := collect(mem, ps, pp, po), collect(disk, ps, pp, po)
			if !reflect.DeepEqual(mg, dg) {
				t.Fatalf("pattern mask %03b on %v: memory %d rows, disk %d rows", mask, probe, len(mg), len(dg))
			}
		}
	}
}

func collect(g store.Graph, s, p, o *rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	g.Match(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := a.S.Compare(b.S); c != 0 {
			return c < 0
		}
		if c := a.P.Compare(b.P); c != 0 {
			return c < 0
		}
		return a.O.Compare(b.O) < 0
	})
	return out
}

// TestLoaderBoundedMemory loads through the streaming Loader with a
// deliberately minimal sort budget, forcing spills and multi-run merges,
// then verifies the result byte-exactly against the in-memory store.
func TestLoaderBoundedMemory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.lds")
	l, err := diskstore.NewLoader(path, diskstore.BuildOptions{
		DictBlockSize:   8,
		TripleBlockSize: 64,
		MemoryBudget:    1, // clamped up internally; still forces spilling
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := randomTriples(rng, 30000)
	for _, tr := range data {
		if err := l.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := l.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	mem := store.NewFromTriples(data)
	if stats.Triples != int64(mem.Len()) {
		t.Fatalf("loader stored %d triples, memory store has %d", stats.Triples, mem.Len())
	}
	if stats.Terms != int64(mem.TermCount()) {
		t.Fatalf("loader stored %d terms, memory store has %d", stats.Terms, mem.TermCount())
	}
	ds, err := diskstore.Open(path, diskstore.Options{CacheBytes: tinyCache})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !reflect.DeepEqual(collect(mem, nil, nil, nil), collect(ds, nil, nil, nil)) {
		t.Fatal("loader output differs from memory store")
	}
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedFileFailsOpen simulates a crash mid-write: any truncation
// of a valid store must be rejected at Open, never served silently.
func TestTruncatedFileFailsOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.lds")
	data := randomTriples(rand.New(rand.NewSource(3)), 500)
	if err := diskstore.Build(path, data, diskstore.BuildOptions{DictBlockSize: 4, TripleBlockSize: 8}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at several points: inside the header, the dictionary, the
	// middle, and just shy of the footer's end.
	cuts := []int{0, 4, len(whole) / 4, len(whole) / 2, len(whole) - 1}
	for _, cut := range cuts {
		p := filepath.Join(dir, fmt.Sprintf("trunc-%d.lds", cut))
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if ds, err := diskstore.Open(p, diskstore.Options{}); err == nil {
			ds.Close()
			t.Fatalf("Open accepted a file truncated to %d of %d bytes", cut, len(whole))
		}
	}
}

// TestCrashLeavesNoPartialStore aborts a build mid-stream and checks that
// neither the target path nor a .tmp file survives as an openable store.
func TestCrashLeavesNoPartialStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.lds")
	l, err := diskstore.NewLoader(path, diskstore.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range randomTriples(rand.New(rand.NewSource(5)), 100) {
		if err := l.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort() // simulated crash before Finish
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted build left %s behind (err=%v)", path, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("aborted build left temp files: %v", entries)
	}
	// A fresh build over the same path must succeed.
	if err := diskstore.Build(path, randomTriples(rand.New(rand.NewSource(6)), 100), diskstore.BuildOptions{}); err != nil {
		t.Fatalf("rebuild after abort: %v", err)
	}
	ds, err := diskstore.Open(path, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
}

// TestOpenRejectsGarbage covers non-store files.
func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.lds": nil,
		"short.lds": []byte("LUSDSK01"),
		"junk.lds":  []byte("this is definitely not a lusail disk store, but it is long enough to contain a header and a footer if it were one"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if ds, err := diskstore.Open(p, diskstore.Options{}); err == nil {
			ds.Close()
			t.Fatalf("Open accepted %s", name)
		}
	}
}

// TestCacheBound checks that a store scanned end to end keeps its decoded
// blocks within the configured budget.
func TestCacheBound(t *testing.T) {
	data := randomTriples(rand.New(rand.NewSource(8)), 20000)
	path := filepath.Join(t.TempDir(), "graph.lds")
	if err := diskstore.Build(path, data, diskstore.BuildOptions{TripleBlockSize: 256}); err != nil {
		t.Fatal(err)
	}
	budget := int64(1 << 20)
	ds, err := diskstore.Open(path, diskstore.Options{CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	n := 0
	ds.Match(nil, nil, nil, func(rdf.Triple) bool { n++; return true })
	if n != ds.Len() {
		t.Fatalf("full scan returned %d of %d triples", n, ds.Len())
	}
	if _, _, used := ds.CacheStats(); used > budget {
		t.Fatalf("cache residency %d exceeds budget %d", used, budget)
	}
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}
}
