package diskstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"

	"lusail/internal/rdf"
	"lusail/internal/store"
)

// Options tunes a store at open time.
type Options struct {
	// CacheBytes bounds the memory spent on decoded dictionary and triple
	// blocks. Defaults to 64 MiB; values below 1 MiB are raised to 1 MiB
	// so a store always has room for a working set of blocks.
	CacheBytes int64
}

const (
	defaultCacheBytes = 64 << 20
	minCacheBytes     = 1 << 20
	// resolveCacheMax bounds the term -> id memo; when full it is reset
	// (hot terms re-warm within a few lookups).
	resolveCacheMax = 8192
)

// Store is a read-only, disk-backed triple store implementing store.Graph.
// It is safe for concurrent readers.
type Store struct {
	f    *os.File
	path string
	ft   footer

	dict  dictReader
	dirs  [permCount][]blockMeta
	cache *blockCache

	predCount map[uint32]int64
	predIDs   []uint32 // ascending

	resolveMu sync.Mutex
	resolve   map[rdf.Term]resolveEntry

	corruptMu sync.Mutex
	corrupt   error
}

var _ store.Graph = (*Store)(nil)

type resolveEntry struct {
	id uint32
	ok bool
}

// Open maps a store file built by the bulk loader. The file is validated
// structurally (footer checksum, section bounds); a truncated or
// corrupted file fails here rather than at query time.
func Open(path string, opts Options) (*Store, error) {
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = defaultCacheBytes
	}
	if opts.CacheBytes < minCacheBytes {
		opts.CacheBytes = minCacheBytes
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s, err := open(f, path, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func open(f *os.File, path string, opts Options) (*Store, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	size := info.Size()
	if size < int64(len(headerMagic)+footerSize) {
		return nil, fmt.Errorf("diskstore: %s: file too small to be a store (%d bytes)", path, size)
	}
	hdr := make([]byte, len(headerMagic))
	if err := readFullAt(f, hdr, 0); err != nil {
		return nil, err
	}
	if string(hdr) != headerMagic {
		return nil, fmt.Errorf("diskstore: %s: bad header magic (not a lusail disk store)", path)
	}
	s := &Store{f: f, path: path, cache: newBlockCache(opts.CacheBytes),
		resolve: make(map[rdf.Term]resolveEntry)}
	fbuf := make([]byte, footerSize)
	if err := readFullAt(f, fbuf, size-int64(footerSize)); err != nil {
		return nil, err
	}
	if err := s.ft.unmarshal(fbuf); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	if err := s.ft.validate(size); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}

	// Resident metadata: dictionary block offsets, the three block
	// directories, and the predicate statistics.
	idx := make([]byte, s.ft.dictBlocks*8)
	if err := readFullAt(f, idx, int64(s.ft.dictIdxOff)); err != nil {
		return nil, err
	}
	offsets := make([]uint64, s.ft.dictBlocks)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint64(idx[i*8:])
	}
	s.dict = dictReader{
		r: f, offsets: offsets,
		dictEnd:   s.ft.dictOff + s.ft.dictLen,
		blockSize: int(s.ft.dictBlockSize),
		termCount: s.ft.termCount,
		hashOff:   s.ft.hashOff, hashCount: s.ft.hashCount,
		cache: s.cache,
	}
	for p := 0; p < permCount; p++ {
		reg := s.ft.perms[p]
		raw := make([]byte, reg.dirCount*dirEntrySize)
		if err := readFullAt(f, raw, int64(reg.dirOff)); err != nil {
			return nil, err
		}
		dir := make([]blockMeta, reg.dirCount)
		for i := range dir {
			dir[i] = unmarshalDirEntry(raw[i*dirEntrySize:])
		}
		s.dirs[p] = dir
	}
	raw := make([]byte, s.ft.statsCount*statEntrySize)
	if err := readFullAt(f, raw, int64(s.ft.statsOff)); err != nil {
		return nil, err
	}
	s.predCount = make(map[uint32]int64, s.ft.statsCount)
	s.predIDs = make([]uint32, s.ft.statsCount)
	for i := uint64(0); i < s.ft.statsCount; i++ {
		pid := binary.LittleEndian.Uint32(raw[i*statEntrySize:])
		n := binary.LittleEndian.Uint64(raw[i*statEntrySize+4:])
		s.predCount[pid] = int64(n)
		s.predIDs[i] = pid
	}
	return s, nil
}

// Close releases the underlying file. Queries must not be in flight.
func (s *Store) Close() error { return s.f.Close() }

// Path returns the store file's path.
func (s *Store) Path() string { return s.path }

// Len returns the number of triples in the store.
func (s *Store) Len() int { return int(s.ft.tripleCount) }

// TermCount returns the number of distinct terms in the dictionary.
func (s *Store) TermCount() int { return int(s.ft.termCount) }

// Version implements store.Graph. The store is immutable, so the version
// is the constant recorded at build time.
func (s *Store) Version() int64 { return int64(s.ft.version) }

// CacheStats reports block-cache hits, misses, and resident bytes.
func (s *Store) CacheStats() (hits, misses, usedBytes int64) { return s.cache.stats() }

// Err returns the first corruption detected while decoding blocks, if any.
// Structural damage is caught at Open; Err covers mid-file bit corruption
// discovered during scans (after which the affected scans stop early).
func (s *Store) Err() error {
	s.corruptMu.Lock()
	defer s.corruptMu.Unlock()
	return s.corrupt
}

func (s *Store) setCorrupt(err error) {
	s.corruptMu.Lock()
	if s.corrupt == nil {
		s.corrupt = err
	}
	s.corruptMu.Unlock()
}

// resolveTerm returns the dictionary id of t, memoized.
func (s *Store) resolveTerm(t rdf.Term) (uint32, bool) {
	s.resolveMu.Lock()
	if e, ok := s.resolve[t]; ok {
		s.resolveMu.Unlock()
		return e.id, e.ok
	}
	s.resolveMu.Unlock()
	id, ok, err := s.dict.lookup(encodeTerm(nil, t))
	if err != nil {
		s.setCorrupt(err)
		return 0, false
	}
	s.resolveMu.Lock()
	if len(s.resolve) >= resolveCacheMax {
		s.resolve = make(map[rdf.Term]resolveEntry, resolveCacheMax)
	}
	s.resolve[t] = resolveEntry{id: id, ok: ok}
	s.resolveMu.Unlock()
	return id, ok
}

// PredicateCount implements store.Graph.
func (s *Store) PredicateCount(p rdf.Term) int {
	id, ok := s.resolveTerm(p)
	if !ok {
		return 0
	}
	return int(s.predCount[id])
}

// Predicates implements store.Graph.
func (s *Store) Predicates() []rdf.Term {
	out := make([]rdf.Term, 0, len(s.predIDs))
	for _, id := range s.predIDs {
		t, err := s.dict.term(id)
		if err != nil {
			s.setCorrupt(err)
			return out
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// permToSPO maps a permuted triple back to (s, p, o) ids.
func permToSPO(perm int, t tripleID) (sub, pred, obj uint32) {
	switch perm {
	case permSPO:
		return t[0], t[1], t[2]
	case permPOS: // x=p y=o z=s
		return t[2], t[0], t[1]
	default: // permOSP: x=o y=s z=p
		return t[1], t[2], t[0]
	}
}

// emit materializes the permuted id-triple and delivers it to fn.
func (s *Store) emit(perm int, t tripleID, fn func(rdf.Triple) bool) bool {
	sid, pid, oid := permToSPO(perm, t)
	sub, err := s.dict.term(sid)
	if err != nil {
		s.setCorrupt(err)
		return false
	}
	pred, err := s.dict.term(pid)
	if err != nil {
		s.setCorrupt(err)
		return false
	}
	obj, err := s.dict.term(oid)
	if err != nil {
		s.setCorrupt(err)
		return false
	}
	return fn(rdf.Triple{S: sub, P: pred, O: obj})
}

// Match implements store.Graph with the same index-selection rule as the
// in-memory store: the permutation whose sort prefix covers the bound
// positions, scanned over a binary-searched block range.
func (s *Store) Match(sub, pred, obj *rdf.Term, fn func(rdf.Triple) bool) {
	var sid, pid, oid uint32
	var sOK, pOK, oOK bool
	resolve := func(t *rdf.Term) (uint32, bool, bool) {
		if t == nil {
			return 0, false, true
		}
		id, ok := s.resolveTerm(*t)
		return id, true, ok
	}
	var present bool
	if sid, sOK, present = resolve(sub); !present {
		return
	}
	if pid, pOK, present = resolve(pred); !present {
		return
	}
	if oid, oOK, present = resolve(obj); !present {
		return
	}
	switch {
	case sOK: // SPO: x=s, y=p, z=o
		s.scan(permSPO, sid, pid, pOK, oid, oOK, fn)
	case pOK: // POS: x=p, y=o, z=s (s unbound here)
		s.scan(permPOS, pid, oid, oOK, 0, false, fn)
	case oOK: // OSP: x=o, y=s, z=p (s and p unbound here)
		s.scan(permOSP, oid, 0, false, 0, false, fn)
	default:
		s.scanAll(fn)
	}
}

func tripleLess(a, b tripleID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// scan walks the permutation's blocks over the range where the bound
// prefix (vx; optionally vy; optionally vz) matches, mirroring the
// in-memory store's scan semantics exactly.
func (s *Store) scan(perm int, vx uint32, vy uint32, yOK bool, vz uint32, zOK bool, fn func(rdf.Triple) bool) {
	dir := s.dirs[perm]
	seek := tripleID{vx, 0, 0}
	if yOK {
		seek[1] = vy
		if zOK {
			seek[2] = vz
		}
	}
	// First block whose first triple is >= the seek point may be preceded
	// by a block that still contains the start of the range.
	i := sort.Search(len(dir), func(i int) bool { return !tripleLess(dir[i].first, seek) })
	if i > 0 {
		i--
	}
	upper := tripleID{vx, ^uint32(0), ^uint32(0)}
	if yOK {
		upper[1] = vy
		if zOK {
			upper[2] = vz
		}
	}
	for ; i < len(dir); i++ {
		if tripleLess(upper, dir[i].first) {
			return // block starts past the bound range
		}
		blk, ok := s.tripleBlock(perm, i)
		if !ok {
			return
		}
		for _, t := range blk {
			if t[0] != vx {
				if t[0] > vx {
					return
				}
				continue
			}
			if yOK && t[1] != vy {
				if t[1] > vy {
					return // sorted: past the (x,y) range
				}
				continue
			}
			if zOK && t[2] != vz {
				if yOK && t[2] > vz {
					return // sorted by z within the (x,y) prefix
				}
				continue
			}
			if !s.emit(perm, t, fn) {
				return
			}
		}
	}
}

// scanAll streams every triple in SPO order.
func (s *Store) scanAll(fn func(rdf.Triple) bool) {
	for i := range s.dirs[permSPO] {
		blk, ok := s.tripleBlock(permSPO, i)
		if !ok {
			return
		}
		for _, t := range blk {
			if !s.emit(permSPO, t, fn) {
				return
			}
		}
	}
}

// tripleBlock loads and decodes one block through the cache.
func (s *Store) tripleBlock(perm, i int) ([]tripleID, bool) {
	key := cacheKey{kind: cacheSPO + cacheKind(perm), idx: uint64(i)}
	if v, ok := s.cache.get(key); ok {
		return v.([]tripleID), true
	}
	m := s.dirs[perm][i]
	raw := make([]byte, m.length)
	if err := readFullAt(s.f, raw, int64(m.offset)); err != nil {
		s.setCorrupt(err)
		return nil, false
	}
	blk, err := decodeTripleBlock(raw)
	if err != nil {
		s.setCorrupt(fmt.Errorf("%w (permutation %d block %d)", err, perm, i))
		return nil, false
	}
	s.cache.put(key, blk, int64(len(blk))*12)
	return blk, true
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sub, pred, obj *rdf.Term) int {
	n := 0
	s.Match(sub, pred, obj, func(rdf.Triple) bool { n++; return true })
	return n
}

// Contains reports whether at least one triple matches the pattern.
func (s *Store) Contains(sub, pred, obj *rdf.Term) bool {
	found := false
	s.Match(sub, pred, obj, func(rdf.Triple) bool { found = true; return false })
	return found
}

// Triples returns all triples in SPO order (intended for tests and small
// stores; it materializes the whole dataset).
func (s *Store) Triples() []rdf.Triple {
	var out []rdf.Triple
	s.Match(nil, nil, nil, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// dictReader resolves ids to terms and terms to ids against the on-disk
// dictionary. It is shared by the open store and the bulk loader (which
// resolves triples against the dictionary it just wrote).
type dictReader struct {
	r         interface{ ReadAt([]byte, int64) (int, error) }
	offsets   []uint64 // absolute file offset per block
	dictEnd   uint64
	blockSize int
	termCount uint64
	hashOff   uint64
	hashCount uint64
	cache     *blockCache
}

// dictBlock holds one decoded dictionary block in both representations:
// canonical encodings (for lookups) and decoded terms (for emission).
type dictBlock struct {
	encs  [][]byte
	terms []rdf.Term
}

func (d *dictReader) block(i int) (*dictBlock, error) {
	key := cacheKey{kind: cacheDict, idx: uint64(i)}
	if v, ok := d.cache.get(key); ok {
		return v.(*dictBlock), nil
	}
	end := d.dictEnd
	if i+1 < len(d.offsets) {
		end = d.offsets[i+1]
	}
	raw := make([]byte, end-d.offsets[i])
	if err := readFullAt(d.r, raw, int64(d.offsets[i])); err != nil {
		return nil, err
	}
	encs, err := decodeDictBlock(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (dictionary block %d)", err, i)
	}
	blk := &dictBlock{encs: encs, terms: make([]rdf.Term, len(encs))}
	size := int64(0)
	for j, enc := range encs {
		t, err := decodeTerm(enc)
		if err != nil {
			return nil, fmt.Errorf("%w (dictionary block %d)", err, i)
		}
		blk.terms[j] = t
		size += int64(2*len(enc)) + 64
	}
	d.cache.put(key, blk, size)
	return blk, nil
}

// term returns the term with the given dictionary id.
func (d *dictReader) term(id uint32) (rdf.Term, error) {
	if uint64(id) >= d.termCount {
		return rdf.Term{}, fmt.Errorf("diskstore: term id %d out of range (%d terms)", id, d.termCount)
	}
	blk, err := d.block(int(id) / d.blockSize)
	if err != nil {
		return rdf.Term{}, err
	}
	j := int(id) % d.blockSize
	if j >= len(blk.terms) {
		return rdf.Term{}, fmt.Errorf("diskstore: term id %d beyond its dictionary block", id)
	}
	return blk.terms[j], nil
}

// lookup finds the id of a canonically encoded term via the sorted hash
// index: binary search to the first entry with the term's hash, then
// verify each same-hash candidate against the dictionary.
func (d *dictReader) lookup(enc []byte) (uint32, bool, error) {
	h := hashTerm(enc)
	lo, hi := uint64(0), d.hashCount
	var buf [hashEntrySize]byte
	probe := func(i uint64) (uint64, uint32, error) {
		if err := readFullAt(d.r, buf[:], int64(d.hashOff+i*hashEntrySize)); err != nil {
			return 0, 0, err
		}
		return binary.BigEndian.Uint64(buf[:8]), binary.BigEndian.Uint32(buf[8:]), nil
	}
	for lo < hi {
		mid := (lo + hi) / 2
		eh, _, err := probe(mid)
		if err != nil {
			return 0, false, err
		}
		if eh < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < d.hashCount; i++ {
		eh, id, err := probe(i)
		if err != nil {
			return 0, false, err
		}
		if eh != h {
			break
		}
		blk, err := d.block(int(id) / d.blockSize)
		if err != nil {
			return 0, false, err
		}
		j := int(id) % d.blockSize
		if j < len(blk.encs) && bytes.Equal(blk.encs[j], enc) {
			return id, true, nil
		}
	}
	return 0, false, nil
}
