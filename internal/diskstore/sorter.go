package diskstore

import (
	"bytes"
	"bufio"
	"container/heap"
	"io"
)

// Sorter is the exported, pull-based face of the external sorter: an
// arbitrarily large stream of byte-string records is added under a byte
// budget, spilled to sorted run files when the budget is exceeded, and
// read back in globally sorted, deduplicated order through an iterator
// instead of a callback. It exists for consumers that need to interleave
// the sorted stream with other work — the engine's spill-to-disk hash
// join merges two sorted sides record by record, which the callback-style
// merge() cannot express. Records compare with bytes.Compare, so a
// length-prefixed join key groups equal keys contiguously.
//
// Run files are created in dir (the process temp dir when empty) and
// unlinked immediately, so nothing survives a crash.
type Sorter struct {
	s      *extSorter
	sealed bool
}

// NewSorter returns a sorter spilling to dir with the given in-memory
// byte budget (minimum 1 MiB, enforced).
func NewSorter(dir, prefix string, budgetBytes int64) *Sorter {
	return &Sorter{s: newExtSorter(dir, prefix, budgetBytes)}
}

// Add buffers one record (copied), spilling a sorted run when over
// budget. Add must not be called after Iter.
func (s *Sorter) Add(rec []byte) error { return s.s.add(rec) }

// Spilled reports whether any run file has been written so far.
func (s *Sorter) Spilled() bool { return len(s.s.runs) > 0 }

// Iter seals the sorter and returns an iterator over every distinct
// record in sorted order. The sorter must not be reused; Close the
// iterator to release the run files.
func (s *Sorter) Iter() (*SortIter, error) {
	s.sealed = true
	if len(s.s.runs) == 0 {
		// Everything fit in memory: sort and walk the buffer directly.
		s.s.sortBuf()
		return &SortIter{s: s.s, mem: s.s.buf}, nil
	}
	if err := s.s.spill(); err != nil {
		s.s.close()
		return nil, err
	}
	h := make(mergeHeap, 0, len(s.s.runs))
	for _, f := range s.s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			s.s.close()
			return nil, err
		}
		rr := &runReader{r: bufio.NewReaderSize(f, 1<<20)}
		if err := rr.next(); err != nil {
			s.s.close()
			return nil, err
		}
		if !rr.eof {
			h = append(h, rr)
		}
	}
	heap.Init(&h)
	return &SortIter{s: s.s, h: h, disk: true}, nil
}

// Close releases the sorter's buffers and run files. Needed only when the
// sorter is abandoned before Iter; afterwards the iterator owns them.
func (s *Sorter) Close() {
	if !s.sealed {
		s.s.close()
		s.sealed = true
	}
}

// SortIter streams the sorted, deduplicated records. Next returns io.EOF
// after the last record; the returned slice is only valid until the next
// call. Close releases the run files and is idempotent.
type SortIter struct {
	s *extSorter

	// In-memory path.
	mem [][]byte
	i   int

	// Disk path.
	disk     bool
	h        mergeHeap
	prev     []byte
	havePrev bool

	closed bool
}

// Next returns the next distinct record in sorted order, or io.EOF.
func (it *SortIter) Next() ([]byte, error) {
	if it.closed {
		return nil, io.EOF
	}
	if !it.disk {
		if it.i >= len(it.mem) {
			return nil, io.EOF
		}
		rec := it.mem[it.i]
		it.i++
		return rec, nil
	}
	for it.h.Len() > 0 {
		rr := it.h[0]
		cur := rr.cur
		emit := !it.havePrev || !bytes.Equal(cur, it.prev)
		if emit {
			it.prev = append(it.prev[:0], cur...)
			it.havePrev = true
		}
		if err := rr.next(); err != nil {
			return nil, err
		}
		if rr.eof {
			heap.Pop(&it.h)
		} else {
			heap.Fix(&it.h, 0)
		}
		if emit {
			return it.prev, nil
		}
	}
	return nil, io.EOF
}

// Close releases the run files and buffers.
func (it *SortIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.mem = nil
	it.h = nil
	it.s.close()
}
