package diskstore

import (
	"container/list"
	"sync"
)

// cacheKind namespaces cache keys per section.
type cacheKind uint8

const (
	cacheDict cacheKind = iota // decoded dictionary block -> []rdf.Term
	cacheSPO                   // decoded triple block -> []tripleID
	cachePOS
	cacheOSP
)

type cacheKey struct {
	kind cacheKind
	idx  uint64
}

type cacheEntry struct {
	key  cacheKey
	size int64
	val  any
}

// blockCache is a byte-budgeted LRU over decoded blocks. It bounds the
// store's read-time memory: however large the file, at most maxBytes of
// decoded blocks are resident (plus the small always-resident directories).
type blockCache struct {
	mu       sync.Mutex
	maxBytes int64
	used     int64
	ll       *list.List // front = most recently used; values are *cacheEntry
	items    map[cacheKey]*list.Element

	hits, misses int64
}

func newBlockCache(maxBytes int64) *blockCache {
	return &blockCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

func (c *blockCache) get(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *blockCache) put(k cacheKey, val any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Another reader decoded the same block concurrently; keep the
		// resident copy.
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, size: size, val: val})
	c.used += size
	for c.used > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.size
	}
}

// Stats reports cache hit/miss counters and current residency.
func (c *blockCache) stats() (hits, misses, usedBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
