package diskstore

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// extSorter sorts an arbitrarily large stream of byte-string records in
// bounded memory: records accumulate in a buffer up to a byte budget, each
// full buffer is sorted, deduplicated, and spilled to a run file, and
// merge() streams the global order with a k-way heap merge over the runs.
// Records compare with bytes.Compare, so fixed-width big-endian encodings
// sort numerically.
type extSorter struct {
	dir    string
	prefix string
	budget int64

	buf      [][]byte
	arena    []byte // backing storage for buf records, reused across spills
	bufBytes int64
	runs     []*os.File
	seq      int
}

func newExtSorter(dir, prefix string, budget int64) *extSorter {
	if budget < 1<<20 {
		budget = 1 << 20
	}
	return &extSorter{dir: dir, prefix: prefix, budget: budget}
}

// add buffers one record (copied), spilling a sorted run when over budget.
func (s *extSorter) add(rec []byte) error {
	n := len(s.arena)
	s.arena = append(s.arena, rec...)
	s.buf = append(s.buf, s.arena[n:len(s.arena):len(s.arena)])
	s.bufBytes += int64(len(rec)) + 24
	if s.bufBytes >= s.budget {
		return s.spill()
	}
	return nil
}

func (s *extSorter) sortBuf() {
	sort.Slice(s.buf, func(i, j int) bool { return bytes.Compare(s.buf[i], s.buf[j]) < 0 })
	// Dedup within the run: shrinks spills and the merge's work.
	out := s.buf[:0]
	for i, r := range s.buf {
		if i == 0 || !bytes.Equal(r, s.buf[i-1]) {
			out = append(out, r)
		}
	}
	s.buf = out
}

// spill writes the sorted buffer as one run file (uvarint length framing).
func (s *extSorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	f, err := os.CreateTemp(s.dir, s.prefix+"-run-*")
	if err != nil {
		return fmt.Errorf("diskstore: spilling sort run: %w", err)
	}
	// Unlink immediately: the open handle keeps it alive, and a crash
	// leaves nothing to clean up.
	os.Remove(f.Name())
	w := bufio.NewWriterSize(f, 1<<20)
	var lenBuf [binary.MaxVarintLen64]byte
	for _, r := range s.buf {
		n := binary.PutUvarint(lenBuf[:], uint64(len(r)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(r); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	s.runs = append(s.runs, f)
	s.seq++
	s.buf = s.buf[:0]
	s.arena = s.arena[:0]
	s.bufBytes = 0
	return nil
}

// runReader streams records back from one spilled run.
type runReader struct {
	r   *bufio.Reader
	cur []byte
	eof bool
}

func (rr *runReader) next() error {
	n, err := binary.ReadUvarint(rr.r)
	if errors.Is(err, io.EOF) {
		rr.eof = true
		rr.cur = nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("diskstore: reading sort run: %w", err)
	}
	if uint64(cap(rr.cur)) < n {
		rr.cur = make([]byte, n)
	}
	rr.cur = rr.cur[:n]
	if _, err := io.ReadFull(rr.r, rr.cur); err != nil {
		return fmt.Errorf("diskstore: reading sort run: %w", err)
	}
	return nil
}

// mergeHeap orders run readers by their current record.
type mergeHeap []*runReader

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return bytes.Compare(h[i].cur, h[j].cur) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)         { *h = append(*h, x.(*runReader)) }
func (h *mergeHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// merge streams every distinct record in sorted order, then releases all
// run files. The sorter must not be reused afterwards.
func (s *extSorter) merge(emit func(rec []byte) error) error {
	defer s.close()
	if len(s.runs) == 0 {
		// Everything fit in memory: sort and emit directly.
		s.sortBuf()
		for _, r := range s.buf {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.spill(); err != nil {
		return err
	}
	h := make(mergeHeap, 0, len(s.runs))
	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		rr := &runReader{r: bufio.NewReaderSize(f, 1<<20)}
		if err := rr.next(); err != nil {
			return err
		}
		if !rr.eof {
			h = append(h, rr)
		}
	}
	heap.Init(&h)
	var prev []byte
	havePrev := false
	for h.Len() > 0 {
		rr := h[0]
		if !havePrev || !bytes.Equal(rr.cur, prev) {
			if err := emit(rr.cur); err != nil {
				return err
			}
			prev = append(prev[:0], rr.cur...)
			havePrev = true
		}
		if err := rr.next(); err != nil {
			return err
		}
		if rr.eof {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return nil
}

// close releases the run files (already unlinked; closing frees the disk).
func (s *extSorter) close() {
	for _, f := range s.runs {
		f.Close()
	}
	s.runs = nil
	s.buf = nil
	s.arena = nil
	s.bufBytes = 0
}
