package diskstore

import (
	"encoding/binary"
	"fmt"

	"lusail/internal/rdf"
)

// tripleID is one triple as three dictionary ids, already in the order of
// the permutation it belongs to (x, y, z).
type tripleID [3]uint32

// encodeTerm renders a term as a canonical byte string:
//
//	kind byte | uvarint len(Value) Value | uvarint len(Lang) Lang |
//	uvarint len(Datatype) Datatype
//
// The dictionary sorts terms by these bytes; the order is internal to the
// file format and deliberately independent of rdf.Term.Compare (which
// compares some literals numerically and is not a prefix-respecting byte
// order).
func encodeTerm(dst []byte, t rdf.Term) []byte {
	dst = append(dst, byte(t.Kind))
	dst = binary.AppendUvarint(dst, uint64(len(t.Value)))
	dst = append(dst, t.Value...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Lang)))
	dst = append(dst, t.Lang...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Datatype)))
	dst = append(dst, t.Datatype...)
	return dst
}

// decodeTerm parses the encoding produced by encodeTerm.
func decodeTerm(b []byte) (rdf.Term, error) {
	if len(b) < 1 {
		return rdf.Term{}, fmt.Errorf("diskstore: empty term encoding")
	}
	t := rdf.Term{Kind: rdf.Kind(b[0])}
	rest := b[1:]
	next := func() (string, error) {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return "", fmt.Errorf("diskstore: malformed term encoding")
		}
		s := string(rest[sz : sz+int(n)])
		rest = rest[sz+int(n):]
		return s, nil
	}
	var err error
	if t.Value, err = next(); err != nil {
		return rdf.Term{}, err
	}
	if t.Lang, err = next(); err != nil {
		return rdf.Term{}, err
	}
	if t.Datatype, err = next(); err != nil {
		return rdf.Term{}, err
	}
	return t, nil
}

// lcp returns the length of the longest common prefix of a and b.
func lcp(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// encodeDictBlock front-codes a run of dictionary terms (their canonical
// encodings, in sorted order): the first term is stored whole, every later
// term as (shared-prefix length with its predecessor, suffix).
func encodeDictBlock(dst []byte, terms [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	var prev []byte
	for i, enc := range terms {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(len(enc)))
			dst = append(dst, enc...)
		} else {
			p := lcp(prev, enc)
			dst = binary.AppendUvarint(dst, uint64(p))
			dst = binary.AppendUvarint(dst, uint64(len(enc)-p))
			dst = append(dst, enc[p:]...)
		}
		prev = enc
	}
	return dst
}

// decodeDictBlock reverses encodeDictBlock, returning the canonical term
// encodings stored in the block.
func decodeDictBlock(b []byte) ([][]byte, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("diskstore: malformed dictionary block header")
	}
	b = b[sz:]
	malformed := fmt.Errorf("diskstore: malformed dictionary block")
	out := make([][]byte, 0, count)
	var prev []byte
	for i := uint64(0); i < count; i++ {
		var enc []byte
		if i == 0 {
			n, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < n {
				return nil, malformed
			}
			enc = append([]byte(nil), b[sz:sz+int(n)]...)
			b = b[sz+int(n):]
		} else {
			p, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, malformed
			}
			b = b[sz:]
			n, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < n || p > uint64(len(prev)) {
				return nil, malformed
			}
			enc = make([]byte, 0, p+n)
			enc = append(enc, prev[:p]...)
			enc = append(enc, b[sz:sz+int(n)]...)
			b = b[sz+int(n):]
		}
		out = append(out, enc)
		prev = enc
	}
	return out, nil
}

// encodeTripleBlock delta-compresses a sorted run of permuted id-triples:
// the first triple is stored whole; each later triple encodes only the
// components that changed, as deltas on the first changed position.
func encodeTripleBlock(dst []byte, triples []tripleID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(triples)))
	var prev tripleID
	for i, t := range triples {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(t[0]))
			dst = binary.AppendUvarint(dst, uint64(t[1]))
			dst = binary.AppendUvarint(dst, uint64(t[2]))
		} else {
			dx := t[0] - prev[0]
			dst = binary.AppendUvarint(dst, uint64(dx))
			if dx != 0 {
				dst = binary.AppendUvarint(dst, uint64(t[1]))
				dst = binary.AppendUvarint(dst, uint64(t[2]))
			} else {
				dy := t[1] - prev[1]
				dst = binary.AppendUvarint(dst, uint64(dy))
				if dy != 0 {
					dst = binary.AppendUvarint(dst, uint64(t[2]))
				} else {
					dst = binary.AppendUvarint(dst, uint64(t[2]-prev[2]))
				}
			}
		}
		prev = t
	}
	return dst
}

// decodeTripleBlock reverses encodeTripleBlock.
func decodeTripleBlock(b []byte) ([]tripleID, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("diskstore: malformed triple block header")
	}
	b = b[sz:]
	malformed := fmt.Errorf("diskstore: malformed triple block")
	read := func() (uint32, bool) {
		v, sz := binary.Uvarint(b)
		if sz <= 0 || v > 0xFFFFFFFF {
			return 0, false
		}
		b = b[sz:]
		return uint32(v), true
	}
	out := make([]tripleID, 0, count)
	var prev tripleID
	for i := uint64(0); i < count; i++ {
		var t tripleID
		if i == 0 {
			var ok0, ok1, ok2 bool
			t[0], ok0 = read()
			t[1], ok1 = read()
			t[2], ok2 = read()
			if !ok0 || !ok1 || !ok2 {
				return nil, malformed
			}
		} else {
			dx, ok := read()
			if !ok {
				return nil, malformed
			}
			t[0] = prev[0] + dx
			switch {
			case dx != 0:
				var ok1, ok2 bool
				t[1], ok1 = read()
				t[2], ok2 = read()
				if !ok1 || !ok2 {
					return nil, malformed
				}
			default:
				dy, ok := read()
				if !ok {
					return nil, malformed
				}
				t[1] = prev[1] + dy
				if dy != 0 {
					if t[2], ok = read(); !ok {
						return nil, malformed
					}
				} else {
					dz, ok := read()
					if !ok {
						return nil, malformed
					}
					t[2] = prev[2] + dz
				}
			}
		}
		out = append(out, t)
		prev = t
	}
	return out, nil
}

// hashTerm is FNV-64a over the canonical term encoding; the dictionary's
// hash index stores (hashTerm, id) pairs sorted by hash.
func hashTerm(enc []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range enc {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
