// Package diskstore implements a read-optimized, disk-backed, compressed
// RDF triple store: the substrate that lets a lusail-endpoint serve the
// paper's data magnitudes (10⁶–10⁹ triples) in bounded memory, where the
// in-memory store caps out at what fits in RAM.
//
// # File format
//
// One self-contained file, written strictly sequentially by the bulk
// loader (see builder.go) and immutable afterwards:
//
//	header   8 B   magic "LUSDSK01"
//	dict     front-coded blocks of dictBlockSize canonical term encodings,
//	         sorted; term id = position in the sorted order
//	dictIdx  one uint64 file offset per dictionary block (loaded into
//	         memory at Open: 8 B per dictBlockSize terms)
//	hash     (uint64 FNV-64a hash, uint32 id) entries sorted by hash, for
//	         term -> id lookup by on-disk binary search
//	3 × perm varint-delta-compressed blocks of up to tripleBlockSize
//	         sorted id-triples in SPO, POS, and OSP permutation order,
//	         each followed by a directory (first triple + offset + length
//	         per block, loaded into memory at Open: 24 B per block)
//	stats    (uint32 predicate id, uint64 triple count) entries, the
//	         per-predicate statistic both backends must agree on
//	footer   fixed-size section table + counts, its own magic and CRC32
//
// Memory at read time is bounded: the dictionary block offsets, the three
// block directories, and the predicate stats are resident (a few MB at 10⁸
// triples); everything else is fetched on demand through a byte-budgeted
// LRU cache of decoded blocks. A crash while loading leaves no store file
// behind (the loader builds into a temp file and renames on success), and
// a truncated or corrupted file fails Open via the footer checks.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	headerMagic = "LUSDSK01"
	footerMagic = "LUSDFTR1"

	// defaultDictBlockSize is how many terms share one front-coded block.
	defaultDictBlockSize = 16
	// defaultTripleBlockSize is how many id-triples one compressed block
	// holds (decoded: 12 B each, so a block is ~48 KB in cache).
	defaultTripleBlockSize = 4096

	hashEntrySize = 12 // uint64 hash + uint32 id
	dirEntrySize  = 24 // 3 × uint32 first triple + uint64 offset + uint32 length
	statEntrySize = 12 // uint32 predicate id + uint64 count
)

// permutation indexes into footer.perms and Store.dirs.
const (
	permSPO = iota
	permPOS
	permOSP
	permCount
)

// permRegion locates one permutation's blocks and directory.
type permRegion struct {
	blocksOff, blocksLen uint64
	dirOff, dirCount     uint64
}

// footer is the section table at the end of the file.
type footer struct {
	dictOff, dictLen       uint64
	dictIdxOff             uint64
	dictBlocks             uint64
	hashOff, hashCount     uint64
	perms                  [permCount]permRegion
	statsOff, statsCount   uint64
	termCount, tripleCount uint64
	version                uint64
	dictBlockSize          uint64
	tripleBlockSize        uint64
}

// footerSize is the on-disk size of the footer: the fields above as
// little-endian uint64s, then footerMagic, then a CRC32 of those bytes.
const footerFields = 6 + 4*permCount + 2 + 2 + 3
const footerSize = footerFields*8 + len(footerMagic) + 4

func (f *footer) fields() []*uint64 {
	out := []*uint64{
		&f.dictOff, &f.dictLen, &f.dictIdxOff, &f.dictBlocks,
		&f.hashOff, &f.hashCount,
	}
	for i := range f.perms {
		p := &f.perms[i]
		out = append(out, &p.blocksOff, &p.blocksLen, &p.dirOff, &p.dirCount)
	}
	out = append(out, &f.statsOff, &f.statsCount,
		&f.termCount, &f.tripleCount,
		&f.version, &f.dictBlockSize, &f.tripleBlockSize)
	return out
}

// marshal renders the footer including magic and checksum.
func (f *footer) marshal() []byte {
	buf := make([]byte, 0, footerSize)
	for _, p := range f.fields() {
		buf = binary.LittleEndian.AppendUint64(buf, *p)
	}
	buf = append(buf, footerMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// unmarshal parses and validates a footer read from the last footerSize
// bytes of the file.
func (f *footer) unmarshal(buf []byte) error {
	if len(buf) != footerSize {
		return fmt.Errorf("diskstore: short footer (%d bytes)", len(buf))
	}
	body := buf[:footerSize-4]
	sum := binary.LittleEndian.Uint32(buf[footerSize-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("diskstore: footer checksum mismatch (truncated or corrupted file)")
	}
	if string(body[len(body)-len(footerMagic):]) != footerMagic {
		return fmt.Errorf("diskstore: bad footer magic")
	}
	for i, p := range f.fields() {
		*p = binary.LittleEndian.Uint64(body[i*8:])
	}
	if f.dictBlockSize == 0 || f.tripleBlockSize == 0 {
		return fmt.Errorf("diskstore: zero block size in footer")
	}
	return nil
}

// validate checks that every section lies inside the file.
func (f *footer) validate(fileSize int64) error {
	check := func(name string, off, length uint64) error {
		if off > uint64(fileSize) || off+length > uint64(fileSize) {
			return fmt.Errorf("diskstore: %s section [%d,+%d) outside file of %d bytes (truncated file?)", name, off, length, fileSize)
		}
		return nil
	}
	if err := check("dictionary", f.dictOff, f.dictLen); err != nil {
		return err
	}
	if err := check("dictionary index", f.dictIdxOff, f.dictBlocks*8); err != nil {
		return err
	}
	if err := check("hash index", f.hashOff, f.hashCount*hashEntrySize); err != nil {
		return err
	}
	for i, p := range f.perms {
		if err := check(fmt.Sprintf("permutation %d blocks", i), p.blocksOff, p.blocksLen); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("permutation %d directory", i), p.dirOff, p.dirCount*dirEntrySize); err != nil {
			return err
		}
	}
	return check("stats", f.statsOff, f.statsCount*statEntrySize)
}

// blockMeta is one in-memory directory entry for a triple block.
type blockMeta struct {
	first  tripleID
	offset uint64
	length uint32
}

// marshalDirEntry appends one directory entry.
func marshalDirEntry(dst []byte, m blockMeta) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, m.first[0])
	dst = binary.LittleEndian.AppendUint32(dst, m.first[1])
	dst = binary.LittleEndian.AppendUint32(dst, m.first[2])
	dst = binary.LittleEndian.AppendUint64(dst, m.offset)
	dst = binary.LittleEndian.AppendUint32(dst, m.length)
	return dst
}

func unmarshalDirEntry(b []byte) blockMeta {
	return blockMeta{
		first: tripleID{
			binary.LittleEndian.Uint32(b),
			binary.LittleEndian.Uint32(b[4:]),
			binary.LittleEndian.Uint32(b[8:]),
		},
		offset: binary.LittleEndian.Uint64(b[12:]),
		length: binary.LittleEndian.Uint32(b[20:]),
	}
}

// readFullAt reads exactly len(buf) bytes at off.
func readFullAt(r io.ReaderAt, buf []byte, off int64) error {
	n, err := r.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("diskstore: reading %d bytes at offset %d: %w", len(buf), off, err)
}
