package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lusail/internal/rdf"
	"lusail/internal/store"
)

// BuildOptions tunes the bulk loader.
type BuildOptions struct {
	// DictBlockSize is the number of terms per front-coded dictionary
	// block (default 16).
	DictBlockSize int
	// TripleBlockSize is the number of id-triples per compressed block
	// (default 4096).
	TripleBlockSize int
	// MemoryBudget bounds the loader's sort buffers in bytes (default
	// 64 MiB). The loader's total memory use is this budget plus small
	// fixed overheads, independent of dataset size.
	MemoryBudget int64
	// TempDir holds spill files during the build (default: the output
	// file's directory).
	TempDir string
}

func (o *BuildOptions) fill(path string) {
	if o.DictBlockSize <= 0 {
		o.DictBlockSize = defaultDictBlockSize
	}
	if o.TripleBlockSize <= 0 {
		o.TripleBlockSize = defaultTripleBlockSize
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 64 << 20
	}
	if o.TempDir == "" {
		o.TempDir = filepath.Dir(path)
	}
}

// BuildStats summarizes a completed build.
type BuildStats struct {
	TriplesAdded int64 // triples passed to Add, duplicates included
	Triples      int64 // distinct triples stored
	Terms        int64 // distinct terms in the dictionary
	FileBytes    int64 // size of the finished store file
}

// Loader streams triples into a new disk store in bounded memory. Usage:
//
//	l, _ := NewLoader(path, opts)
//	for each triple { l.Add(t) }
//	stats, err := l.Finish()
//
// Triples spill to temp files as they arrive; Finish runs the external
// merge sorts and writes the store to path+".tmp", renaming to path only
// on success, so a crash at any point leaves no partial store behind.
type Loader struct {
	path string
	opts BuildOptions

	raw   *os.File // spill of raw encoded triples, replayed during resolve
	raww  *bufio.Writer
	terms *extSorter
	added int64
	enc   []byte
	err   error
}

// NewLoader starts a build targeting path.
func NewLoader(path string, opts BuildOptions) (*Loader, error) {
	opts.fill(path)
	raw, err := os.CreateTemp(opts.TempDir, "lusail-load-raw-*")
	if err != nil {
		return nil, fmt.Errorf("diskstore: creating spill file: %w", err)
	}
	// Unlinked immediately: the handle keeps it alive and a crash leaves
	// nothing behind.
	os.Remove(raw.Name())
	return &Loader{
		path:  path,
		opts:  opts,
		raw:   raw,
		raww:  bufio.NewWriterSize(raw, 1<<20),
		terms: newExtSorter(opts.TempDir, "lusail-load-terms", opts.MemoryBudget/2),
	}, nil
}

// Add appends one triple. Duplicates are deduplicated by the build.
func (l *Loader) Add(t rdf.Triple) error {
	if l.err != nil {
		return l.err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, term := range []rdf.Term{t.S, t.P, t.O} {
		l.enc = encodeTerm(l.enc[:0], term)
		if err := l.terms.add(l.enc); err != nil {
			return l.fail(err)
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(l.enc)))
		if _, err := l.raww.Write(lenBuf[:n]); err != nil {
			return l.fail(err)
		}
		if _, err := l.raww.Write(l.enc); err != nil {
			return l.fail(err)
		}
	}
	l.added++
	return nil
}

func (l *Loader) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return l.err
}

// Abort discards the build. Safe to call after Finish (then a no-op).
func (l *Loader) Abort() {
	if l.raw != nil {
		l.raw.Close()
		l.raw = nil
	}
	if l.terms != nil {
		l.terms.close()
		l.terms = nil
	}
}

// countingWriter tracks the absolute file offset of sequential writes.
type countingWriter struct {
	w *bufio.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// Finish runs the merge phases and writes the store file.
func (l *Loader) Finish() (BuildStats, error) {
	defer l.Abort()
	if l.err != nil {
		return BuildStats{}, l.err
	}
	if err := l.raww.Flush(); err != nil {
		return BuildStats{}, l.fail(err)
	}

	tmpPath := l.path + ".tmp"
	out, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return BuildStats{}, l.fail(fmt.Errorf("diskstore: %w", err))
	}
	defer func() {
		if out != nil {
			out.Close()
			os.Remove(tmpPath)
		}
	}()
	cw := &countingWriter{w: bufio.NewWriterSize(out, 1<<20)}
	var ft footer
	ft.version = 1
	ft.dictBlockSize = uint64(l.opts.DictBlockSize)
	ft.tripleBlockSize = uint64(l.opts.TripleBlockSize)

	if _, err := cw.Write([]byte(headerMagic)); err != nil {
		return BuildStats{}, l.fail(err)
	}

	// Phase 1: merge the distinct terms in sorted order into front-coded
	// dictionary blocks; ids are positions in that order. Hash-index
	// entries spill through their own sorter (records are fixed-width
	// big-endian, so byte order is (hash, id) order).
	ft.dictOff = cw.n
	hashes := newExtSorter(l.opts.TempDir, "lusail-load-hash", l.opts.MemoryBudget/2)
	var (
		dictOffsets []uint64
		batch       [][]byte
		blockBuf    []byte
		nextID      uint32
		hashRec     [hashEntrySize]byte
	)
	flushDict := func() error {
		if len(batch) == 0 {
			return nil
		}
		dictOffsets = append(dictOffsets, cw.n)
		blockBuf = encodeDictBlock(blockBuf[:0], batch)
		if _, err := cw.Write(blockBuf); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	err = l.terms.merge(func(rec []byte) error {
		binary.BigEndian.PutUint64(hashRec[:8], hashTerm(rec))
		binary.BigEndian.PutUint32(hashRec[8:], nextID)
		nextID++
		if err := hashes.add(hashRec[:]); err != nil {
			return err
		}
		batch = append(batch, append([]byte(nil), rec...))
		if len(batch) == l.opts.DictBlockSize {
			return flushDict()
		}
		return nil
	})
	if err == nil {
		err = flushDict()
	}
	if err != nil {
		hashes.close()
		return BuildStats{}, l.fail(err)
	}
	ft.termCount = uint64(nextID)
	ft.dictLen = cw.n - ft.dictOff
	ft.dictBlocks = uint64(len(dictOffsets))

	ft.dictIdxOff = cw.n
	for _, off := range dictOffsets {
		if err := binary.Write(cw, binary.LittleEndian, off); err != nil {
			hashes.close()
			return BuildStats{}, l.fail(err)
		}
	}

	ft.hashOff = cw.n
	err = hashes.merge(func(rec []byte) error {
		_, werr := cw.Write(rec)
		return werr
	})
	if err != nil {
		return BuildStats{}, l.fail(err)
	}
	ft.hashCount = ft.termCount

	// Phase 2: replay the raw triple spill, resolving terms to ids
	// against the dictionary just written (read back through a dedicated
	// small cache), and sort the id-triples.
	if err := cw.w.Flush(); err != nil {
		return BuildStats{}, l.fail(err)
	}
	dict := &dictReader{
		r: out, offsets: dictOffsets,
		dictEnd:   ft.dictOff + ft.dictLen,
		blockSize: l.opts.DictBlockSize,
		termCount: ft.termCount,
		hashOff:   ft.hashOff, hashCount: ft.hashCount,
		cache: newBlockCache(8 << 20),
	}
	memo := make(map[string]uint32, 1<<15)
	resolve := func(enc []byte) (uint32, error) {
		if id, ok := memo[string(enc)]; ok {
			return id, nil
		}
		id, ok, err := dict.lookup(enc)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("diskstore: internal error: term missing from freshly built dictionary")
		}
		if len(memo) >= 1<<16 {
			memo = make(map[string]uint32, 1<<15)
		}
		memo[string(enc)] = id
		return id, nil
	}
	if _, err := l.raw.Seek(0, io.SeekStart); err != nil {
		return BuildStats{}, l.fail(err)
	}
	spo := newExtSorter(l.opts.TempDir, "lusail-load-spo", l.opts.MemoryBudget)
	rr := bufio.NewReaderSize(l.raw, 1<<20)
	var termBuf []byte
	var idRec [12]byte
	for i := int64(0); i < l.added; i++ {
		for j := 0; j < 3; j++ {
			n, err := binary.ReadUvarint(rr)
			if err != nil {
				spo.close()
				return BuildStats{}, l.fail(fmt.Errorf("diskstore: reading triple spill: %w", err))
			}
			if uint64(cap(termBuf)) < n {
				termBuf = make([]byte, n)
			}
			termBuf = termBuf[:n]
			if _, err := io.ReadFull(rr, termBuf); err != nil {
				spo.close()
				return BuildStats{}, l.fail(fmt.Errorf("diskstore: reading triple spill: %w", err))
			}
			id, err := resolve(termBuf)
			if err != nil {
				spo.close()
				return BuildStats{}, l.fail(err)
			}
			binary.BigEndian.PutUint32(idRec[j*4:], id)
		}
		if err := spo.add(idRec[:]); err != nil {
			return BuildStats{}, l.fail(err)
		}
	}

	// Phase 3: merged SPO order becomes the SPO permutation's blocks; the
	// deduplicated stream also spills to a replay file feeding the POS
	// and OSP sorts.
	dedup, err := os.CreateTemp(l.opts.TempDir, "lusail-load-dedup-*")
	if err != nil {
		spo.close()
		return BuildStats{}, l.fail(fmt.Errorf("diskstore: %w", err))
	}
	os.Remove(dedup.Name())
	defer dedup.Close()
	dedupw := bufio.NewWriterSize(dedup, 1<<20)

	var dirs [permCount][]blockMeta
	var tripleBatch []tripleID
	writeBlocks := func(perm int, t tripleID) error {
		tripleBatch = append(tripleBatch, t)
		if len(tripleBatch) < l.opts.TripleBlockSize {
			return nil
		}
		return flushTripleBatch(cw, &dirs[perm], &tripleBatch, &blockBuf)
	}
	finishBlocks := func(perm int) error {
		if len(tripleBatch) == 0 {
			return nil
		}
		return flushTripleBatch(cw, &dirs[perm], &tripleBatch, &blockBuf)
	}

	ft.perms[permSPO].blocksOff = cw.n
	err = spo.merge(func(rec []byte) error {
		ft.tripleCount++
		if _, werr := dedupw.Write(rec); werr != nil {
			return werr
		}
		return writeBlocks(permSPO, decodeIDRec(rec))
	})
	if err == nil {
		err = finishBlocks(permSPO)
	}
	if err == nil {
		err = dedupw.Flush()
	}
	if err != nil {
		return BuildStats{}, l.fail(err)
	}
	ft.perms[permSPO].blocksLen = cw.n - ft.perms[permSPO].blocksOff
	if err := writeDir(cw, &ft.perms[permSPO], dirs[permSPO]); err != nil {
		return BuildStats{}, l.fail(err)
	}

	// Phases 4 and 5: re-sort the deduplicated triples in POS and OSP
	// order. The POS stream's leading component is the predicate, so the
	// per-predicate statistics fall out of it with a running counter.
	var stats []byte
	var statCount uint64
	var curPred uint32
	var curCount uint64
	haveCur := false
	flushStat := func() {
		if !haveCur {
			return
		}
		stats = binary.LittleEndian.AppendUint32(stats, curPred)
		stats = binary.LittleEndian.AppendUint64(stats, curCount)
		statCount++
	}
	permute := func(perm int, onTriple func(t tripleID) error) error {
		srt := newExtSorter(l.opts.TempDir, "lusail-load-perm", l.opts.MemoryBudget)
		if _, err := dedup.Seek(0, io.SeekStart); err != nil {
			srt.close()
			return err
		}
		dr := bufio.NewReaderSize(dedup, 1<<20)
		var rec [12]byte
		for i := uint64(0); i < ft.tripleCount; i++ {
			if _, err := io.ReadFull(dr, rec[:]); err != nil {
				srt.close()
				return fmt.Errorf("diskstore: reading dedup spill: %w", err)
			}
			t := decodeIDRec(rec[:])
			var p tripleID
			if perm == permPOS {
				p = tripleID{t[1], t[2], t[0]} // x=p y=o z=s
			} else {
				p = tripleID{t[2], t[0], t[1]} // x=o y=s z=p
			}
			binary.BigEndian.PutUint32(rec[0:], p[0])
			binary.BigEndian.PutUint32(rec[4:], p[1])
			binary.BigEndian.PutUint32(rec[8:], p[2])
			if err := srt.add(rec[:]); err != nil {
				return err
			}
		}
		ft.perms[perm].blocksOff = cw.n
		err := srt.merge(func(rec []byte) error {
			t := decodeIDRec(rec)
			if onTriple != nil {
				if err := onTriple(t); err != nil {
					return err
				}
			}
			return writeBlocks(perm, t)
		})
		if err == nil {
			err = finishBlocks(perm)
		}
		if err != nil {
			return err
		}
		ft.perms[perm].blocksLen = cw.n - ft.perms[perm].blocksOff
		return writeDir(cw, &ft.perms[perm], dirs[perm])
	}
	err = permute(permPOS, func(t tripleID) error {
		if haveCur && t[0] == curPred {
			curCount++
			return nil
		}
		flushStat()
		curPred, curCount, haveCur = t[0], 1, true
		return nil
	})
	if err != nil {
		return BuildStats{}, l.fail(err)
	}
	flushStat()
	if err := permute(permOSP, nil); err != nil {
		return BuildStats{}, l.fail(err)
	}

	ft.statsOff = cw.n
	ft.statsCount = statCount
	if _, err := cw.Write(stats); err != nil {
		return BuildStats{}, l.fail(err)
	}

	if _, err := cw.Write(ft.marshal()); err != nil {
		return BuildStats{}, l.fail(err)
	}
	if err := cw.w.Flush(); err != nil {
		return BuildStats{}, l.fail(err)
	}
	if err := out.Sync(); err != nil {
		return BuildStats{}, l.fail(err)
	}
	if err := out.Close(); err != nil {
		out = nil
		os.Remove(tmpPath)
		return BuildStats{}, l.fail(err)
	}
	out = nil
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return BuildStats{}, l.fail(fmt.Errorf("diskstore: %w", err))
	}
	return BuildStats{
		TriplesAdded: l.added,
		Triples:      int64(ft.tripleCount),
		Terms:        int64(ft.termCount),
		FileBytes:    int64(cw.n),
	}, nil
}

func decodeIDRec(rec []byte) tripleID {
	return tripleID{
		binary.BigEndian.Uint32(rec[0:]),
		binary.BigEndian.Uint32(rec[4:]),
		binary.BigEndian.Uint32(rec[8:]),
	}
}

func flushTripleBatch(cw *countingWriter, dir *[]blockMeta, batch *[]tripleID, buf *[]byte) error {
	b := *batch
	*buf = encodeTripleBlock((*buf)[:0], b)
	*dir = append(*dir, blockMeta{first: b[0], offset: cw.n, length: uint32(len(*buf))})
	if _, err := cw.Write(*buf); err != nil {
		return err
	}
	*batch = b[:0]
	return nil
}

func writeDir(cw *countingWriter, reg *permRegion, dir []blockMeta) error {
	reg.dirOff = cw.n
	reg.dirCount = uint64(len(dir))
	var buf []byte
	for _, m := range dir {
		buf = marshalDirEntry(buf[:0], m)
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Build writes a disk store containing the given triples: the in-memory
// convenience path over Loader for tests and small datasets.
func Build(path string, triples []rdf.Triple, opts BuildOptions) error {
	l, err := NewLoader(path, opts)
	if err != nil {
		return err
	}
	for _, t := range triples {
		if err := l.Add(t); err != nil {
			l.Abort()
			return err
		}
	}
	_, err = l.Finish()
	return err
}

// BuildFromGraph snapshots any store.Graph into a disk store.
func BuildFromGraph(path string, g store.Graph, opts BuildOptions) error {
	l, err := NewLoader(path, opts)
	if err != nil {
		return err
	}
	var addErr error
	g.Match(nil, nil, nil, func(t rdf.Triple) bool {
		addErr = l.Add(t)
		return addErr == nil
	})
	if addErr != nil {
		l.Abort()
		return addErr
	}
	_, err = l.Finish()
	return err
}
