// Package endpoint serves an RDF dataset over HTTP using the SPARQL 1.1
// protocol. Together with package store and package eval it plays the role
// of the SPARQL servers (Jena Fuseki, Virtuoso) that host each dataset in
// the paper's federations.
package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/sparql"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/eval"
	"lusail/internal/store"
)

// Handler is an http.Handler implementing the SPARQL protocol for one
// dataset: GET with ?query=, POST with form-encoded query, or POST with
// Content-Type application/sparql-query. Results are returned in the
// SPARQL 1.1 JSON results format.
type Handler struct {
	name string
	ev   *eval.Evaluator
	logf func(format string, args ...any)

	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// NewHandler returns a SPARQL protocol handler over the given graph
// backend (in-memory or disk-backed). The
// handler reports request counts, error counts, and request latency into
// the default obs registry under the endpoint's name, so /metrics shows the
// series (including empty latency histograms) as soon as the server starts.
func NewHandler(name string, st store.Graph) *Handler {
	reg := obs.Default()
	label := obs.L("endpoint", name)
	return &Handler{
		name:     name,
		ev:       eval.New(st),
		logf:     func(string, ...any) {},
		requests: reg.Counter(obs.MetricHTTPRequests, "SPARQL protocol requests served", label),
		errors:   reg.Counter(obs.MetricHTTPErrors, "SPARQL protocol requests rejected", label),
		latency:  reg.Histogram(obs.MetricHTTPRequestSeconds, "SPARQL protocol request latency", obs.LatencyBuckets, label),
	}
}

// SetLogger directs request logging to logf (default: silent).
func (h *Handler) SetLogger(logf func(format string, args ...any)) { h.logf = logf }

// fail rejects a request, counting it as an error.
func (h *Handler) fail(w http.ResponseWriter, msg string, code int) {
	h.errors.Inc()
	http.Error(w, msg, code)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Inc()
	start := time.Now()
	defer func() { h.latency.Observe(time.Since(start).Seconds()) }()

	query, err := extractQuery(r)
	if err != nil {
		h.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if query == "" {
		h.fail(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	parsed, err := sparql.Parse(query)
	if err != nil {
		h.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	if parsed.Form == sparql.ConstructForm {
		triples, err := h.ev.Construct(parsed)
		if err != nil {
			h.logf("endpoint %s: construct error: %v", h.name, err)
			h.fail(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples; charset=utf-8")
		if err := rdf.WriteNTriples(w, triples); err != nil {
			h.logf("endpoint %s: write error: %v", h.name, err)
		}
		return
	}
	res, err := h.ev.Query(parsed)
	if err != nil {
		h.logf("endpoint %s: query error: %v", h.name, err)
		h.fail(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Content negotiation per the SPARQL 1.1 protocol: JSON (default),
	// CSV, or TSV.
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := res.WriteCSV(w); err != nil {
			h.logf("endpoint %s: write error: %v", h.name, err)
		}
	case strings.Contains(accept, "application/sparql-results+xml") || strings.Contains(accept, "application/xml"):
		w.Header().Set("Content-Type", "application/sparql-results+xml; charset=utf-8")
		if err := res.WriteXML(w); err != nil {
			h.logf("endpoint %s: write error: %v", h.name, err)
		}
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		if err := res.WriteTSV(w); err != nil {
			h.logf("endpoint %s: write error: %v", h.name, err)
		}
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		if err := res.WriteJSON(w); err != nil {
			h.logf("endpoint %s: write error: %v", h.name, err)
		}
	}
}

func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
			if err != nil {
				return "", fmt.Errorf("reading query body: %w", err)
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", fmt.Errorf("parsing form: %w", err)
		}
		return r.PostForm.Get("query"), nil
	}
	return "", fmt.Errorf("method %s not allowed", r.Method)
}

// summaryHandler serves the endpoint's own catalog summary as JSON on
// /summary, so a federation catalog can be assembled by fetching one
// document per member instead of scanning each dataset over the SPARQL
// protocol. The summary is built on first request and memoized — the
// served stores are immutable once a server is up.
type summaryHandler struct {
	name string
	st   store.Graph

	once sync.Once
	sum  *catalog.Summary
	err  error
}

func (s *summaryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.once.Do(func() {
		// Deliberately not r.Context(): a canceled first request must not
		// memoize a spurious error for every later caller.
		//lint:lusail-vet ctxflow -- sync.Once memoization must outlive the first request's context
		s.sum, s.err = catalog.BuildSummary(context.Background(), client.NewInProcess(s.name, s.st))
	})
	if s.err != nil {
		http.Error(w, s.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.sum); err != nil {
		log.Printf("endpoint %s: writing summary: %v", s.name, err)
	}
}

// Server is a running SPARQL endpoint on a local TCP port.
type Server struct {
	Name string
	URL  string
	srv  *http.Server
	ln   net.Listener
}

// Serve starts an HTTP SPARQL endpoint on addr (e.g. "127.0.0.1:0") and
// returns once the listener is ready. Close releases it. Besides the SPARQL
// protocol on /sparql (and /), the server exposes the process-wide obs
// registry as Prometheus text on /metrics, a JSON snapshot on
// /debug/federation, and its own catalog data summary on /summary.
func Serve(name, addr string, st store.Graph) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %w", name, err)
	}
	h := NewHandler(name, st)
	mux := http.NewServeMux()
	mux.Handle("/sparql", h)
	mux.Handle("/summary", &summaryHandler{name: name, st: st})
	mux.Handle("/metrics", obs.Default().MetricsHandler())
	mux.Handle("/debug/federation", obs.Default().DebugHandler())
	mux.Handle("/", h)
	srv := &http.Server{Handler: mux}
	s := &Server{
		Name: name,
		URL:  fmt.Sprintf("http://%s/sparql", ln.Addr().String()),
		srv:  srv,
		ln:   ln,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("endpoint %s: serve: %v", name, err)
		}
	}()
	return s, nil
}

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
