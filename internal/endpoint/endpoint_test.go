package endpoint

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/rdf"
	"lusail/internal/store"
)

func testStore() *store.Store {
	return store.NewFromTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/a"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/b")},
		{S: rdf.NewIRI("http://ex/a"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral("lit")},
		{S: rdf.NewIRI("http://ex/c"), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLangLiteral("x", "en")},
	})
}

func TestHTTPEndpointSelect(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	ep := client.NewHTTP("ep1", ts.URL)
	res, err := ep.Query(context.Background(), `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
}

func TestHTTPEndpointAsk(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	ep := client.NewHTTP("ep1", ts.URL)
	ok, err := client.Ask(context.Background(), ep, `ASK { <http://ex/a> <http://ex/p> ?o }`)
	if err != nil || !ok {
		t.Errorf("Ask = %v, %v; want true", ok, err)
	}
	ok, err = client.Ask(context.Background(), ep, `ASK { <http://ex/zzz> ?p ?o }`)
	if err != nil || ok {
		t.Errorf("Ask = %v, %v; want false", ok, err)
	}
}

func TestHTTPGetBinding(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "?query=" + url.QueryEscape(`ASK { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestHTTPRawQueryBody(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "application/sparql-query",
		strings.NewReader(`SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("raw query status = %d", resp.StatusCode)
	}
}

func TestHTTPBadQuery(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	ep := client.NewHTTP("ep1", ts.URL)
	if _, err := ep.Query(context.Background(), `SELECT WHERE`); err == nil {
		t.Error("bad query should error")
	}
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query status = %d, want 400", resp.StatusCode)
	}
}

// HTTP and in-process endpoints must return identical results.
func TestHTTPMatchesInProcess(t *testing.T) {
	st := testStore()
	ts := httptest.NewServer(NewHandler("ep1", st))
	defer ts.Close()
	httpEP := client.NewHTTP("ep1", ts.URL)
	localEP := client.NewInProcess("ep1", st)

	queries := []string{
		`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s ?o WHERE { ?s <http://ex/q> ?o }`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }`,
		`ASK { <http://ex/c> ?p ?o }`,
	}
	for _, q := range queries {
		a, err := httpEP.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("http %s: %v", q, err)
		}
		b, err := localEP.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("local %s: %v", q, err)
		}
		a.Sort()
		b.Sort()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %s: http %+v != local %+v", q, a, b)
		}
	}
}

func TestServeLifecycle(t *testing.T) {
	s, err := Serve("ep1", "127.0.0.1:0", testStore())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	ep := client.NewHTTP(s.Name, s.URL)
	ok, err := client.Ask(context.Background(), ep, `ASK { ?s ?p ?o }`)
	if err != nil || !ok {
		t.Errorf("Ask over Serve = %v, %v", ok, err)
	}
}

func TestContentNegotiation(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	get := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"?query="+url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`), nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.Header.Get("Content-Type"), string(body)
	}

	ct, body := get("text/csv")
	if !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv content type = %q", ct)
	}
	if !strings.HasPrefix(body, "s,o\n") {
		t.Errorf("csv body = %q", body)
	}

	ct, body = get("text/tab-separated-values")
	if !strings.HasPrefix(ct, "text/tab-separated-values") {
		t.Errorf("tsv content type = %q", ct)
	}
	if !strings.HasPrefix(body, "?s\t?o\n") || !strings.Contains(body, "<http://ex/a>") {
		t.Errorf("tsv body = %q", body)
	}

	ct, _ = get("application/sparql-results+json")
	if !strings.HasPrefix(ct, "application/sparql-results+json") {
		t.Errorf("json content type = %q", ct)
	}
}

func TestConstructOverHTTP(t *testing.T) {
	ts := httptest.NewServer(NewHandler("ep1", testStore()))
	defer ts.Close()
	q := `CONSTRUCT { ?s <http://ex/copy> ?o } WHERE { ?s <http://ex/p> ?o }`
	resp, err := http.Get(ts.URL + "?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/n-triples") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	triples, err := rdf.ParseNTriples(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("response is not N-Triples: %v\n%s", err, body)
	}
	if len(triples) != 2 {
		t.Errorf("triples = %d, want 2", len(triples))
	}
}

func TestSummaryRoute(t *testing.T) {
	srv, err := Serve("ep1", "127.0.0.1:0", testStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := strings.TrimSuffix(srv.URL, "/sparql")
	for i := 0; i < 2; i++ { // second hit exercises the memoized path
		resp, err := http.Get(base + "/summary")
		if err != nil {
			t.Fatal(err)
		}
		var sum catalog.Summary
		err = json.NewDecoder(resp.Body).Decode(&sum)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /summary: %v", err)
		}
		if sum.Endpoint != "ep1" {
			t.Errorf("summary endpoint = %q, want ep1", sum.Endpoint)
		}
		if sum.Triples != 3 {
			t.Errorf("summary triples = %d, want 3", sum.Triples)
		}
		if _, ok := sum.Predicates["http://ex/p"]; !ok {
			t.Errorf("summary lacks predicate http://ex/p: %v", sum.Predicates)
		}
		if sum.Capabilities.Truncated {
			t.Error("summary of a fully scanned store marked truncated")
		}
	}
}
