package core

import (
	"errors"

	"context"
	"io"
	"strings"
	"sync"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// boundJoinStream evaluates a delayed subquery as a pipelined bound join:
// instead of waiting for the complete upstream relation, it pulls one
// VALUES-block worth of upstream rows at a time, ships the block's distinct
// shared-variable tuples to the subquery's (refined) sources, and joins the
// responses back against the block. Downstream operators see joined rows
// after the first block round-trips — the core of SAPE's delay mechanism
// without SAPE's materialization barrier.
//
// The builder guarantees at least one shared variable (a delayed subquery
// with no overlap is planned as an unbound scan plus hash join instead).
// Upstream rows whose shared variables are unbound are dropped, matching
// inner-join key semantics (qplan.JoinKey).
//
// Endpoint responses are decoded inside the pool slot: block tasks append
// to an in-memory buffer under a mutex and never block on a consumer, so
// holding the slot cannot deadlock the pool.
type boundJoinStream struct {
	e   *Engine
	src RowStream
	sq  *Subquery

	vars      []string
	shared    []string
	srcKeyIdx []int // shared positions in src vars
	sqKeyIdx  []int // shared positions in sq vars
	extraIdx  []int // sq positions appended after the src row

	outBuf [][]rdf.Term
	obi    int
	row    []rdf.Term
	err    error
	closed bool
	srcEOF bool

	ctx     context.Context
	parent  *obs.Span
	span    *obs.Span
	blocks  int
	tuples  int
	rows    int64
	refined []string // refined sources, resolved once on the first block
}

func (e *Engine) newBoundJoinStream(ctx context.Context, src RowStream, sq *Subquery) *boundJoinStream {
	s := &boundJoinStream{e: e, src: src, sq: sq, ctx: ctx, parent: obs.FromContext(ctx)}
	s.vars = append([]string(nil), src.Vars()...)
	srcPos := make(map[string]int, len(s.vars))
	for i, v := range s.vars {
		srcPos[v] = i
	}
	for j, v := range sq.Vars() {
		if i, ok := srcPos[v]; ok {
			s.shared = append(s.shared, v)
			s.srcKeyIdx = append(s.srcKeyIdx, i)
			s.sqKeyIdx = append(s.sqKeyIdx, j)
		} else {
			s.vars = append(s.vars, v)
			s.extraIdx = append(s.extraIdx, j)
		}
	}
	return s
}

func (s *boundJoinStream) Vars() []string  { return s.vars }
func (s *boundJoinStream) Row() []rdf.Term { return s.row }
func (s *boundJoinStream) Err() error      { return s.err }

func (s *boundJoinStream) Next() bool {
	if s.closed || s.err != nil {
		return false
	}
	for {
		if s.obi < len(s.outBuf) {
			s.row = s.outBuf[s.obi]
			s.obi++
			s.rows++
			return true
		}
		s.outBuf, s.obi = s.outBuf[:0], 0
		if s.srcEOF {
			return false
		}
		block := s.pullBlock()
		if len(block) == 0 {
			s.srcEOF = true
			if err := s.src.Err(); err != nil {
				s.err = err
			}
			return false
		}
		if err := s.evalBlock(block); err != nil {
			s.err = err
			return false
		}
	}
}

func (s *boundJoinStream) pullBlock() [][]rdf.Term {
	var block [][]rdf.Term
	for len(block) < s.e.opts.ValuesBlockSize && s.src.Next() {
		block = append(block, copyRow(s.src.Row()))
	}
	return block
}

// evalBlock ships one block's bindings to every refined source and joins
// the responses into outBuf.
func (s *boundJoinStream) evalBlock(block [][]rdf.Term) error {
	if s.span == nil {
		s.span = s.parent.StartChild("bound-join")
		s.span.SetAttr("vars", strings.Join(s.shared, ","))
	}
	s.blocks++

	// Index the block by join key; rows with unbound shared vars drop.
	table := make(map[string][]int, len(block))
	for i, row := range block {
		if key, ok := qplan.JoinKey(row, s.srcKeyIdx); ok {
			table[key] = append(table[key], i)
		}
	}
	if len(table) == 0 {
		return nil
	}
	blockRel := sparql.NewResults(append([]string(nil), s.src.Vars()...))
	blockRel.Rows = block
	tuples := qplan.ProjectDistinct(blockRel, s.shared)
	s.tuples += len(tuples)

	if s.refined == nil {
		sources, err := s.e.refineSources(s.ctx, s.sq, s.shared, tuples)
		if err != nil {
			return err
		}
		s.refined = sources
	}

	queryText := s.sq.Query(&sparql.InlineData{Vars: s.shared, Rows: tuples}).String()
	sqVars := s.sq.Vars()
	var mu sync.Mutex
	return s.e.pool.ForEachGated(s.ctx, s.refined, s.e.gate(),
		s.e.onRejectDegrade(s.ctx, client.PhaseBoundJoin, s.refined), func(i int) error {
			name := s.refined[i]
			sp := s.span.StartChild("batch")
			defer sp.End()
			sp.SetAttr("endpoint", name)
			sp.SetAttr("values", len(tuples))
			rd, err := s.e.streamEndpoint(s.ctx, client.PhaseBoundJoin, name, queryText)
			if err != nil {
				if s.e.degrade(s.ctx, client.PhaseBoundJoin, name, err) {
					sp.SetAttr("degraded", true)
					return nil
				}
				return err
			}
			defer rd.Close()
			idx := varIndexes(sqVars, rd.Vars())
			n := 0
			for {
				resp, err := rd.Read()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					if client.AsEndpointError(err) == nil {
						err = &client.EndpointError{Endpoint: name, Phase: client.PhaseBoundJoin, Err: err}
					}
					if s.e.degrade(s.ctx, client.PhaseBoundJoin, name, err) {
						sp.SetAttr("degraded", true)
						return nil
					}
					return err
				}
				aligned := make([]rdf.Term, len(sqVars))
				for j, t := range resp {
					if k := idx[j]; k >= 0 {
						aligned[k] = t
					}
				}
				key, ok := qplan.JoinKey(aligned, s.sqKeyIdx)
				if !ok {
					continue
				}
				matched := table[key]
				mu.Lock()
				for _, bi := range matched {
					out := make([]rdf.Term, len(s.vars))
					copy(out, block[bi])
					for k, pos := range s.extraIdx {
						out[len(block[bi])+k] = aligned[pos]
					}
					s.outBuf = append(s.outBuf, out)
				}
				mu.Unlock()
				n += len(matched)
			}
			sp.SetAttr("rows", n)
			return nil
		})
}

func (s *boundJoinStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.src.Close()
	if s.span != nil {
		s.span.SetAttr("blocks", s.blocks)
		s.span.SetAttr("bindings", s.tuples)
		s.span.SetAttr("rows", int(s.rows))
		s.span.End()
	}
	return err
}

// leftJoinStream applies one OPTIONAL block to the stream flowing through
// it, blockwise: each block of upstream rows is extended by the optional
// subquery's solutions (bound to the block's shared variables when there
// are any), with unmatched rows kept and zero-extended — streaming
// left-join semantics identical to qplan.LeftJoin over the whole relation,
// which it delegates to per block.
type leftJoinStream struct {
	e   *Engine
	src RowStream
	ob  *optionalPlan

	vars   []string
	shared []string

	unboundRel *sparql.Results // cached optional relation when evaluated unbound

	outBuf [][]rdf.Term
	obi    int
	row    []rdf.Term
	err    error
	closed bool
	srcEOF bool

	ctx    context.Context
	parent *obs.Span
	span   *obs.Span
	rows   int64
}

func (e *Engine) newLeftJoinStream(ctx context.Context, src RowStream, ob *optionalPlan) *leftJoinStream {
	s := &leftJoinStream{e: e, src: src, ob: ob, ctx: ctx, parent: obs.FromContext(ctx)}
	s.vars = append([]string(nil), src.Vars()...)
	srcPos := make(map[string]bool, len(s.vars))
	for _, v := range s.vars {
		srcPos[v] = true
	}
	for _, v := range ob.sq.Vars() {
		if srcPos[v] {
			s.shared = append(s.shared, v)
		} else {
			s.vars = append(s.vars, v)
		}
	}
	return s
}

func (s *leftJoinStream) Vars() []string  { return s.vars }
func (s *leftJoinStream) Row() []rdf.Term { return s.row }
func (s *leftJoinStream) Err() error      { return s.err }

func (s *leftJoinStream) Next() bool {
	if s.closed || s.err != nil {
		return false
	}
	for {
		if s.obi < len(s.outBuf) {
			s.row = s.outBuf[s.obi]
			s.obi++
			s.rows++
			return true
		}
		s.outBuf, s.obi = s.outBuf[:0], 0
		if s.srcEOF {
			return false
		}
		var block [][]rdf.Term
		for len(block) < s.e.opts.ValuesBlockSize && s.src.Next() {
			block = append(block, copyRow(s.src.Row()))
		}
		if len(block) == 0 {
			s.srcEOF = true
			if err := s.src.Err(); err != nil {
				s.err = err
			}
			return false
		}
		if err := s.evalBlock(block); err != nil {
			s.err = err
			return false
		}
	}
}

func (s *leftJoinStream) evalBlock(block [][]rdf.Term) error {
	if s.span == nil {
		s.span = s.parent.StartChild("optional")
		s.span.SetAttr("sources", strings.Join(s.ob.sq.Sources, ","))
	}
	// No relevant endpoint: the optional never extends any row.
	if len(s.ob.sq.Sources) == 0 {
		for _, row := range block {
			out := make([]rdf.Term, len(s.vars))
			copy(out, row)
			s.outBuf = append(s.outBuf, out)
		}
		return nil
	}
	blockRel := sparql.NewResults(append([]string(nil), s.src.Vars()...))
	blockRel.Rows = block

	rel, err := s.optionalRel(blockRel)
	if err != nil {
		return err
	}
	joined := qplan.LeftJoin(blockRel, rel)
	// LeftJoin's output vars are blockRel.Vars + rel extras, the same
	// construction as s.vars, so rows carry over positionally.
	s.outBuf = append(s.outBuf, joined.Rows...)
	return nil
}

// optionalRel returns the optional subquery's relation for one block:
// bound to the block's shared-variable tuples when the block binds any,
// otherwise the unbound relation evaluated once and cached.
func (s *leftJoinStream) optionalRel(blockRel *sparql.Results) (*sparql.Results, error) {
	sq := s.ob.sq
	tuples := [][]rdf.Term(nil)
	if len(s.shared) > 0 {
		tuples = qplan.ProjectDistinct(blockRel, s.shared)
	}
	if len(s.shared) == 0 {
		if s.unboundRel == nil {
			rel, err := s.drainUnbound()
			if err != nil {
				return nil, err
			}
			s.unboundRel = rel
		}
		return s.unboundRel, nil
	}
	if len(tuples) == 0 {
		return qplan.EmptyRelation(sq.Vars()), nil
	}
	block := sparql.InlineData{Vars: s.shared, Rows: tuples}
	partial := make([]*sparql.Results, len(sq.Sources))
	err := s.e.pool.ForEachGated(s.ctx, sq.Sources, s.e.gate(),
		s.e.onRejectDegrade(s.ctx, client.PhaseOptional, sq.Sources), func(i int) error {
			res, err := s.e.queryEndpoint(s.ctx, client.PhaseOptional, sq.Sources[i], sq.Query(&block).String())
			if err != nil {
				if s.e.degrade(s.ctx, client.PhaseOptional, sq.Sources[i], err) {
					return nil
				}
				return err
			}
			partial[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	rel := qplan.EmptyRelation(sq.Vars())
	for _, p := range partial {
		if p != nil {
			rel = qplan.UnionRelations(rel, p)
		}
	}
	rel.Rows = qplan.DistinctRows(rel.Rows)
	return qplan.ApplyFilters(rel, s.ob.residual), nil
}

// drainUnbound evaluates the optional subquery unbound at all its sources
// through a scan stream, materializing the (deduplicated, filtered)
// relation once for reuse across blocks.
func (s *leftJoinStream) drainUnbound() (*sparql.Results, error) {
	scan := s.e.newScanStream(s.ctx, s.ob.sq, client.PhaseOptional, nil)
	rel := sparql.NewResults(append([]string(nil), scan.Vars()...))
	//lint:lusail-vet budgetbound -- each upstream response is capped by client.MaxResponseBytes, so the union is bounded by sources x cap
	for scan.Next() {
		rel.Rows = append(rel.Rows, copyRow(scan.Row()))
	}
	err := scan.Err()
	if cerr := scan.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	rel.Rows = qplan.DistinctRows(rel.Rows)
	return qplan.ApplyFilters(rel, s.ob.residual), nil
}

func (s *leftJoinStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.src.Close()
	if s.span != nil {
		s.span.SetAttr("rows", int(s.rows))
		s.span.End()
	}
	return err
}
