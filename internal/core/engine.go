package core

import (
	"context"
	"fmt"
	"time"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/eval"
	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// ThresholdMode selects the delay rule SAPE applies to estimated subquery
// cardinalities (the paper's Section 5.4 sensitivity experiment).
type ThresholdMode int

const (
	// ThresholdMuSigma delays subqueries with cardinality > μ+σ (the
	// paper's default: "μ+σ consistently performs well").
	ThresholdMuSigma ThresholdMode = iota
	// ThresholdMu delays subqueries with cardinality > μ.
	ThresholdMu
	// ThresholdMu2Sigma delays subqueries with cardinality > μ+2σ.
	ThresholdMu2Sigma
	// ThresholdOutliers delays only Chauvenet-rejected outliers.
	ThresholdOutliers
)

// String returns the label used in figures.
func (m ThresholdMode) String() string {
	switch m {
	case ThresholdMu:
		return "mu"
	case ThresholdMuSigma:
		return "mu+sigma"
	case ThresholdMu2Sigma:
		return "mu+2sigma"
	case ThresholdOutliers:
		return "outliers"
	}
	return "unknown"
}

// FailureMode selects what the engine does when an endpoint request fails
// during query execution.
type FailureMode int

const (
	// FailFast aborts the query on the first endpoint failure (the
	// historical behavior, and the zero value).
	FailFast FailureMode = iota
	// Degrade continues past endpoint failures wherever a sound partial
	// answer exists: the failed endpoint's contribution is excluded
	// (subqueries, bound joins, optionals), its cardinalities stay unknown
	// (COUNT probes), and locality checks fall back to conservatively
	// global decomposition. Every absorbed failure is recorded as a
	// structured Profile.Warnings entry. The answer is complete over the
	// endpoints that responded; rows that needed the failed endpoint are
	// missing.
	Degrade
)

// String returns the CLI flag spelling of the mode.
func (m FailureMode) String() string {
	if m == Degrade {
		return "degrade"
	}
	return "fail"
}

// Options configures a Lusail engine. Fields are grouped by the subsystem
// they tune; the zero value of every field is a safe default (DefaultOptions
// sets the configuration used in the paper's main experiments).
type Options struct {
	// --- Decomposition (source selection + LADE analysis) ---

	// CacheSources enables the ASK source-selection cache (default on via
	// DefaultOptions; turning it off re-probes per query, as in the
	// paper's cache on/off profiling).
	CacheSources bool
	// CacheChecks enables the LADE check-query cache.
	CacheChecks bool
	// Catalog installs the probe-free tier: fresh endpoint summaries answer
	// source selection without ASK probes and constant-predicate
	// cardinalities without COUNT probes, falling back to live probes for
	// whatever the catalog cannot decide. nil (the default) keeps the pure
	// probe-based protocol of the paper.
	Catalog *catalog.Store
	// CatalogOnly forbids live probes during planning: endpoints the
	// catalog cannot decide are conservatively treated as relevant, and
	// cardinalities it cannot answer stay unknown, instead of issuing
	// ASK/COUNT probes. Requires Catalog; useful when planning must not
	// touch the network.
	CatalogOnly bool

	// --- SAPE (selectivity-aware parallel execution) ---

	// PoolSize bounds concurrent endpoint requests; <=0 uses NumCPU
	// (the ERH sizing rule from the paper).
	PoolSize int
	// Threshold is the SAPE delay rule (default μ+σ).
	Threshold ThresholdMode
	// ValuesBlockSize is the number of binding rows per VALUES block in
	// bound joins (default 500; larger blocks trade request count for
	// request size, the balance SAPE aims for).
	ValuesBlockSize int
	// DisableSAPE turns off selectivity-aware execution: no subqueries are
	// delayed and results are joined in input order. Used for the LADE-only
	// ablation (paper Figure 14).
	DisableSAPE bool
	// JoinSpillBytes bounds the in-memory build side of each streaming
	// hash join: a build relation whose estimated footprint exceeds the
	// budget spills both join sides to disk and the join finishes as an
	// external sort-merge. <=0 uses the 64 MiB default; it cannot be
	// disabled — unbounded build sides would defeat the pipeline's bounded
	// memory guarantee.
	JoinSpillBytes int64

	// --- Static query analysis (package sema) ---

	// DisableSemaChecks skips the static semantic vet that otherwise runs
	// before planning. With checks on (the default), error-tier findings —
	// queries that cannot mean what they say, like a FILTER over a variable
	// the group never binds — reject the query with a *sparql.SemaError
	// before any endpoint traffic; warning-tier findings thread into
	// Profile.Warnings under client.PhaseSema.
	DisableSemaChecks bool
	// DisableQueryRewrite skips the sema rewrite pass (constant folding,
	// dead FILTER/OPTIONAL elimination, duplicate-pattern removal, FILTER
	// pushdown into UNION branches). Every rewrite is row-multiset
	// preserving, so this is an ablation/debugging switch, not a
	// correctness one. Applied rewrites are listed in Profile.RewriteNotes.
	DisableQueryRewrite bool

	// --- Resilience (fault tolerance against flaky endpoints) ---

	// OnEndpointFailure selects FailFast (abort the query on the first
	// endpoint failure; the default) or Degrade (exclude the failing
	// endpoint's contribution and record a Profile warning).
	OnEndpointFailure FailureMode
	// Resilience tunes circuit breakers and hedged probes. The zero value
	// disables both; resilience.DefaultConfig() enables the recommended
	// settings. Independent of OnEndpointFailure: breakers and hedging
	// shape how requests are issued, OnEndpointFailure decides what a
	// failure means.
	Resilience resilience.Config

	// --- Observability ---

	// Trace records a hierarchical span tree per query (source-selection
	// ASKs, check queries, COUNT probes, subqueries, bound-join batches,
	// joins) in Profile.Trace, for EXPLAIN output and trace export. Off by
	// default: tracing costs one small allocation per remote request.
	Trace bool
}

// DefaultOptions returns the configuration used in the paper's main
// experiments.
func DefaultOptions() Options {
	return Options{
		Threshold:       ThresholdMuSigma,
		ValuesBlockSize: 500,
		JoinSpillBytes:  64 << 20,
		CacheSources:    true,
		CacheChecks:     true,
	}
}

// Validate rejects configurations that cannot mean anything. New calls it,
// so an engine never runs with an inconsistent configuration; callers that
// assemble Options from flags can call it earlier for better error
// placement.
func (o Options) Validate() error {
	if o.ValuesBlockSize < 0 {
		return fmt.Errorf("lusail: negative ValuesBlockSize %d", o.ValuesBlockSize)
	}
	if o.Threshold < ThresholdMuSigma || o.Threshold > ThresholdOutliers {
		return fmt.Errorf("lusail: unknown ThresholdMode %d", o.Threshold)
	}
	if o.OnEndpointFailure != FailFast && o.OnEndpointFailure != Degrade {
		return fmt.Errorf("lusail: unknown FailureMode %d", o.OnEndpointFailure)
	}
	if o.CatalogOnly && o.Catalog == nil {
		return fmt.Errorf("lusail: CatalogOnly requires a Catalog")
	}
	if err := o.Resilience.Validate(); err != nil {
		return err
	}
	return nil
}

// Profile reports per-phase timings and work counters for one query, the
// measurements behind the paper's Figure 12.
type Profile struct {
	SourceSelection time.Duration // ASK-based source selection
	Analysis        time.Duration // LADE: COUNT probes, GJV checks, decomposition
	Execution       time.Duration // SAPE: subquery evaluation + global join
	Total           time.Duration

	GJVs          []string // detected global join variables
	Subqueries    int      // number of subqueries after decomposition
	Delayed       int      // subqueries evaluated with bound joins
	ChecksIssued  int      // check-query requests sent to endpoints
	CheckCacheHit int      // check queries answered from cache
	CountProbes   int      // COUNT statistics queries sent
	CatalogHits   int      // cardinalities answered by the catalog (probes avoided)
	Decomposition []string // human-readable subquery forms

	// SubqueryStats pairs the cost model's estimates with the measured
	// cardinalities of subqueries evaluated unbound, for the q-error
	// analysis of Section 4.1.
	SubqueryStats []SubqueryStat

	// Trace is the query's span tree when Options.Trace is set (nil
	// otherwise). Render it with obs.WriteExplain or export it with
	// obs.WriteJSONL / obs.WriteChromeTrace; sum phase spans with
	// obs.SumByName.
	Trace *obs.Span

	// Warnings lists the endpoint failures absorbed by Degrade mode (one
	// structured entry per degraded decision; always empty under FailFast,
	// where a failure aborts the query instead) plus any warning-tier
	// findings from the static query analysis, under client.PhaseSema.
	Warnings []resilience.Warning

	// RewriteNotes lists the sema rewrites applied to the query before
	// planning (empty with DisableQueryRewrite, or when nothing applied).
	// The rewritten query is what was decomposed and executed.
	RewriteNotes []string
}

// Degraded reports whether the answer excludes any endpoint's contribution.
// Sema findings are advisory — they describe the query, not the answer —
// so they do not count.
func (p *Profile) Degraded() bool {
	for _, w := range p.Warnings {
		if w.Phase != client.PhaseSema {
			return true
		}
	}
	return false
}

// SubqueryStat is one (estimate, actual) cardinality observation.
type SubqueryStat struct {
	Patterns  int     // triple patterns in the subquery
	Estimated float64 // cost-model estimate
	Actual    int     // materialized result rows
}

// Engine is the Lusail federated query processor over a fixed federation.
type Engine struct {
	fed    *federation.Federation
	pool   *erh.Pool
	sel    *federation.SourceSelector
	checks *checkCache
	cat    *catalog.Store
	res    *resilience.Manager
	opts   Options

	catCardHits      *obs.Counter
	catCardFallbacks *obs.Counter
	degraded         *obs.Counter
	semaErrors       *obs.Counter
	semaWarnings     *obs.Counter
	semaRewrites     *obs.Counter
}

// New returns an engine over the federation, or an error when opts fails
// Validate.
func New(fed *federation.Federation, opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.ValuesBlockSize <= 0 {
		opts.ValuesBlockSize = 500
	}
	if opts.JoinSpillBytes <= 0 {
		opts.JoinSpillBytes = 64 << 20
	}
	pool := erh.New(opts.PoolSize)
	reg := obs.Default()
	res := resilience.NewManager(opts.Resilience, reg)
	sel := federation.NewSourceSelector(fed, pool)
	if opts.Catalog != nil {
		sel.SetCatalog(opts.Catalog)
	}
	sel.SetResilience(res)
	sel.SetCatalogOnly(opts.CatalogOnly)
	return &Engine{
		fed:              fed,
		pool:             pool,
		sel:              sel,
		checks:           newCheckCache(),
		cat:              opts.Catalog,
		res:              res,
		opts:             opts,
		catCardHits:      reg.Counter(obs.MetricCatalogCardHits, "cardinalities answered by the catalog instead of COUNT probes"),
		catCardFallbacks: reg.Counter(obs.MetricCatalogCardFallbacks, "COUNT probes issued because the catalog could not answer"),
		degraded:         reg.Counter(obs.MetricDegradedFailures, "endpoint failures absorbed by partial-results mode"),
		semaErrors:       reg.Counter(obs.MetricSemaErrors, "queries rejected by static analysis before planning"),
		semaWarnings:     reg.Counter(obs.MetricSemaWarnings, "warning-tier static-analysis findings"),
		semaRewrites:     reg.Counter(obs.MetricSemaRewrites, "sema rewrites applied before planning"),
	}, nil
}

// MustNew is New but panics on invalid options; for tests and benchmarks
// that construct options programmatically.
func MustNew(fed *federation.Federation, opts Options) *Engine {
	e, err := New(fed, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// SemaChecksEnabled reports whether the engine runs the static query vet
// before planning. Serving layers consult it so an edge rejection (lusaild's
// structured 400) happens exactly when the engine itself would reject.
func (e *Engine) SemaChecksEnabled() bool { return !e.opts.DisableSemaChecks }

// Resilience returns the engine's resilience manager (nil when the
// configuration enables neither breakers nor hedging). Exposed for
// benchmarks and diagnostics that observe breaker state or probe latency.
func (e *Engine) Resilience() *resilience.Manager { return e.res }

// Federation returns the engine's federation.
func (e *Engine) Federation() *federation.Federation { return e.fed }

// ClearCaches drops the source-selection and check-query caches, as if the
// engine had just started (used by the cache on/off experiments).
func (e *Engine) ClearCaches() {
	e.sel.ClearCache()
	e.checks.clear()
}

// QueryString parses and executes a federated query.
func (e *Engine) QueryString(ctx context.Context, query string) (*sparql.Results, *Profile, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	return e.Query(ctx, q)
}

// Query executes a parsed federated query: source selection, LADE
// decomposition, and SAPE evaluation, returning the final results and a
// per-phase profile. It is the plan-then-execute convenience over
// Engine.Plan and Engine.ExecutePlan; a serving layer that sees the same
// query shape repeatedly should cache the Plan and call ExecutePlan
// directly.
func (e *Engine) Query(ctx context.Context, q *sparql.Query) (*sparql.Results, *Profile, error) {
	ctx, prof, start := e.startQuery(ctx)
	p, err := e.plan(ctx, q, prof)
	if err != nil {
		finishProfile(ctx, prof, start)
		if prof.Trace != nil {
			prof.Trace.End()
		}
		return nil, nil, err
	}
	res, err := e.runPlan(ctx, p, prof, start)
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// Construct executes a federated CONSTRUCT query: the WHERE clause is
// evaluated across the federation like a SELECT over all its variables,
// and the solutions instantiate the template into a deduplicated RDF graph.
func (e *Engine) Construct(ctx context.Context, q *sparql.Query) ([]rdf.Triple, *Profile, error) {
	if q.Form != sparql.ConstructForm {
		return nil, nil, fmt.Errorf("lusail: Construct requires a CONSTRUCT query")
	}
	sel := &sparql.Query{
		Form:  sparql.SelectForm,
		Star:  true,
		Where: q.Where,
		Limit: -1,
	}
	res, prof, err := e.Query(ctx, sel)
	if err != nil {
		return nil, nil, err
	}
	solutions := make([]map[string]rdf.Term, res.Len())
	for i := range res.Rows {
		solutions[i] = res.Binding(i)
	}
	return eval.InstantiateTemplate(q.Template, solutions), prof, nil
}

// ConstructString parses and executes a federated CONSTRUCT query.
func (e *Engine) ConstructString(ctx context.Context, query string) ([]rdf.Triple, *Profile, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	return e.Construct(ctx, q)
}
