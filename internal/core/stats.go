package core

import (
	"context"
	"math"
	"sync"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/sparql"
)

// queryStats holds the lightweight runtime statistics SAPE collects during
// query analysis: per-triple-pattern, per-endpoint cardinalities obtained
// with SELECT COUNT probes (Section 4.1) or, when the engine has a fresh
// catalog, from its precomputed summaries.
type queryStats struct {
	// card[i][ep] is the number of solutions of pattern i at endpoint ep.
	// Absence means the cardinality is unknown: the probe returned a
	// malformed result, or it was never issued. Unknown is deliberately not
	// zero — zero claims the pattern is free, and the delay heuristics
	// would then eagerly evaluate a subquery nobody measured.
	card        []map[string]float64
	probes      int // COUNT queries issued
	catalogHits int // cardinalities answered by the catalog (probes avoided)
	malformed   int // probes whose result was unusable
}

// collectStats resolves one cardinality per (pattern, relevant endpoint):
// from the catalog when it can answer (constant-predicate pattern, fresh
// non-truncated summary, no filters to account for), otherwise with a
// SELECT COUNT probe. Filters whose variables are fully covered by a
// pattern are pushed into its probe for better estimates, as the paper
// describes; a pattern with pushed filters never uses the catalog, whose
// counts ignore filters.
func (e *Engine) collectStats(ctx context.Context, br *qplan.Branch, sources [][]string) (*queryStats, error) {
	st := &queryStats{card: make([]map[string]float64, len(br.Patterns))}
	type task struct {
		pattern int
		source  string
	}
	var tasks []task
	for i, srcs := range sources {
		st.card[i] = make(map[string]float64, len(srcs))
		tp := br.Patterns[i]
		filters := pushableFilters(tp, br.Filters)
		for _, s := range srcs {
			if e.cat != nil && len(filters) == 0 {
				if n, ok := e.cat.Cardinality(tp, s); ok {
					st.card[i][s] = n
					st.catalogHits++
					continue
				}
			}
			tasks = append(tasks, task{pattern: i, source: s})
		}
	}
	if st.catalogHits > 0 {
		e.catCardHits.Add(int64(st.catalogHits))
	}
	if e.opts.CatalogOnly {
		// Planning must not touch the network: cardinalities the catalog
		// could not answer stay unknown, and the delay heuristics treat
		// their subqueries conservatively.
		return st, nil
	}
	if e.cat != nil && len(tasks) > 0 {
		e.catCardFallbacks.Add(int64(len(tasks)))
	}

	names := make([]string, len(tasks))
	for k, t := range tasks {
		names[k] = t.source
	}
	var mu sync.Mutex
	err := e.pool.ForEachGated(ctx, names, e.gate(),
		e.onRejectDegrade(ctx, client.PhaseCount, names), func(k int) error {
			t := tasks[k]
			sp := obs.FromContext(ctx).StartChild("count-probe")
			defer sp.End()
			sp.SetAttr("endpoint", t.source)
			tp := br.Patterns[t.pattern]
			q := countQuery(tp, pushableFilters(tp, br.Filters))
			res, err := e.probeEndpoint(ctx, client.PhaseCount, t.source, q)
			if err != nil {
				if e.degrade(ctx, client.PhaseCount, t.source, err) {
					// The cardinality stays unknown; the endpoint is still
					// queried during execution.
					sp.SetAttr("degraded", true)
					return nil
				}
				return err
			}
			n, ok := client.ScalarCount(res)
			if !ok {
				// Malformed COUNT (wrong shape, non-numeric, negative): the
				// cardinality stays unknown rather than becoming zero.
				sp.SetAttr("malformed", true)
				mu.Lock()
				st.malformed++
				mu.Unlock()
				return nil
			}
			sp.SetAttr("count", int(n))
			mu.Lock()
			st.card[t.pattern][t.source] = n
			mu.Unlock()
			return nil
		})
	st.probes = len(tasks)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// known reports whether every (pattern, source) cardinality of the
// subquery was resolved, i.e. its estimate rests on complete information.
func (st *queryStats) known(patternIdx []int, sources []string) bool {
	for _, pi := range patternIdx {
		for _, ep := range sources {
			if _, ok := st.card[pi][ep]; !ok {
				return false
			}
		}
	}
	return true
}

// countQuery builds `SELECT (COUNT(*) AS ?c) WHERE { tp . filters }`.
func countQuery(tp sparql.TriplePattern, filters []sparql.Expr) string {
	q := &sparql.Query{
		Form:  sparql.SelectForm,
		Limit: -1,
		Projection: []sparql.Projection{
			{Var: "lusail_c", Agg: &sparql.Aggregate{Func: "COUNT"}},
		},
		Where: &sparql.GroupPattern{Elements: []sparql.Element{tp}},
	}
	for _, f := range filters {
		q.Where.Elements = append(q.Where.Elements, sparql.Filter{Expr: f})
	}
	return q.String()
}

// pushableFilters returns the branch filters whose variables are all bound
// by the single pattern (safe to push into its COUNT probe and subquery).
func pushableFilters(tp sparql.TriplePattern, filters []sparql.Expr) []sparql.Expr {
	tpVars := map[string]bool{}
	for _, v := range tp.Vars() {
		tpVars[v] = true
	}
	var out []sparql.Expr
	for _, f := range filters {
		if _, isExists := f.(sparql.ExprExists); isExists {
			continue
		}
		ok := true
		for _, v := range sparql.ExprVars(f) {
			if !tpVars[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f)
		}
	}
	return out
}

// varCardinality estimates C(sq, v): for each endpoint, the minimum count
// among the subquery's patterns that bind v (join upper bound), summed over
// the subquery's sources (the paper's cost model).
func (st *queryStats) varCardinality(sq *Subquery, patternIdx []int, v string, patterns []sparql.TriplePattern) float64 {
	total := 0.0
	for _, ep := range sq.Sources {
		min := math.Inf(1)
		for _, pi := range patternIdx {
			if !patterns[pi].HasVar(v) {
				continue
			}
			if c, ok := st.card[pi][ep]; ok && c < min {
				min = c
			}
		}
		if !math.IsInf(min, 1) {
			total += min
		}
	}
	return total
}

// subqueryCardinality estimates C(sq) as the maximum cardinality over the
// subquery's projected variables.
func (st *queryStats) subqueryCardinality(sq *Subquery, patternIdx []int, patterns []sparql.TriplePattern) float64 {
	max := 0.0
	for _, v := range sq.Vars() {
		if c := st.varCardinality(sq, patternIdx, v, patterns); c > max {
			max = c
		}
	}
	return max
}

// meanStddev returns the mean and population standard deviation.
func meanStddev(xs []float64) (mu, sigma float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mu += x
	}
	mu /= float64(len(xs))
	for _, x := range xs {
		d := x - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(xs)))
	return mu, sigma
}

// chauvenetReject applies Chauvenet's criterion: a sample is rejected when
// the expected number of samples as extreme as it (under the fitted normal)
// is below 1/2. Returns the kept samples and a parallel "rejected" mask.
func chauvenetReject(xs []float64) (kept []float64, rejected []bool) {
	rejected = make([]bool, len(xs))
	if len(xs) < 3 {
		return append([]float64(nil), xs...), rejected
	}
	mu, sigma := meanStddev(xs)
	if sigma == 0 {
		return append([]float64(nil), xs...), rejected
	}
	n := float64(len(xs))
	for i, x := range xs {
		z := math.Abs(x-mu) / sigma
		// Two-sided tail probability of |Z| >= z for a standard normal.
		p := math.Erfc(z / math.Sqrt2)
		if n*p < 0.5 {
			rejected[i] = true
		} else {
			kept = append(kept, x)
		}
	}
	if len(kept) == 0 {
		// Degenerate: keep everything rather than divide by zero downstream.
		return append([]float64(nil), xs...), make([]bool, len(xs))
	}
	return kept, rejected
}

// delayDecisions marks subqueries to delay: Chauvenet-rejected outliers are
// always delayed; among the rest, those whose cardinality (or number of
// relevant endpoints) exceeds the mode's threshold are delayed (Figure 7).
//
// known masks the cardinality samples (nil: all known). Unknown
// cardinalities are excluded from the μ/σ statistics — a made-up value
// would distort the thresholds for everyone else — and their subqueries
// are conservatively delayed: evaluating an unmeasured subquery unbound
// risks shipping a huge relation, while a bound join is never worse than
// proportional to the bindings found so far.
func delayDecisions(cards, numEPs []float64, known []bool, mode ThresholdMode) []bool {
	delayed := make([]bool, len(cards))
	mark := func(idx []int, xs []float64) {
		keptVals, rejectedMask := chauvenetReject(xs)
		if mode == ThresholdOutliers {
			for k, r := range rejectedMask {
				if r {
					delayed[idx[k]] = true
				}
			}
			return
		}
		mu, sigma := meanStddev(keptVals)
		var threshold float64
		switch mode {
		case ThresholdMu:
			threshold = mu
		case ThresholdMu2Sigma:
			threshold = mu + 2*sigma
		default: // ThresholdMuSigma
			threshold = mu + sigma
		}
		for k, x := range xs {
			if rejectedMask[k] || x > threshold {
				delayed[idx[k]] = true
			}
		}
	}

	var idx []int
	var knownCards []float64
	for i, c := range cards {
		if known != nil && !known[i] {
			delayed[i] = true
			continue
		}
		idx = append(idx, i)
		knownCards = append(knownCards, c)
	}
	mark(idx, knownCards)

	all := make([]int, len(numEPs))
	for i := range all {
		all[i] = i
	}
	mark(all, numEPs)
	return delayed
}
