package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"lusail/internal/catalog"
	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// malformedCounts wraps an endpoint and answers every COUNT probe with a
// non-numeric scalar, simulating a remote server that replies with an
// error page where a count was expected.
type malformedCounts struct{ inner client.Endpoint }

func (e *malformedCounts) Name() string { return e.inner.Name() }
func (e *malformedCounts) Query(ctx context.Context, query string) (*sparql.Results, error) {
	if strings.Contains(query, "COUNT(") {
		res := sparql.NewResults([]string{"lusail_c"})
		res.Rows = [][]rdf.Term{{rdf.NewLiteral("service unavailable")}}
		return res, nil
	}
	return e.inner.Query(ctx, query)
}

func TestMalformedCountsAreUnknownNotZero(t *testing.T) {
	eps, _ := paperFederation(false)
	fed := federation.MustNew(&malformedCounts{eps[0]}, &malformedCounts{eps[1]})
	e := MustNew(fed, DefaultOptions())

	q, err := sparql.Parse(qa)
	if err != nil {
		t.Fatal(err)
	}
	branches, err := qplan.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	br := branches[0]
	sources := make([][]string, len(br.Patterns))
	for i := range br.Patterns {
		if sources[i], err = e.sel.RelevantSources(context.Background(), br.Patterns[i]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := e.collectStats(context.Background(), br, sources)
	if err != nil {
		t.Fatal(err)
	}
	if st.malformed == 0 {
		t.Fatal("no malformed probes recorded; fixture broken")
	}
	for i, m := range st.card {
		if len(m) != 0 {
			t.Errorf("pattern %d: malformed counts stored as cardinalities %v, want unknown (absent)", i, m)
		}
	}

	// The estimates must be marked unknown, not silently zero — zero would
	// make every subquery look free and eagerly evaluated.
	gjv, err := e.detectGJVs(context.Background(), br.Patterns, sources)
	if err != nil {
		t.Fatal(err)
	}
	for _, sq := range e.decompose(br, sources, gjv, st) {
		if sq.CardKnown {
			t.Errorf("subquery %s claims a known cardinality from malformed probes", sq)
		}
	}
}

func TestMalformedCountsStillAnswerCorrectly(t *testing.T) {
	// End to end: an engine whose COUNT probes are all garbage must return
	// exactly the same rows as a healthy one — statistics steer scheduling,
	// never results.
	eps, _ := paperFederation(true)
	healthy := newEngine(t, eps, DefaultOptions())
	broken := MustNew(federation.MustNew(&malformedCounts{eps[0]}, &malformedCounts{eps[1]}), DefaultOptions())

	ctx := context.Background()
	want, _, err := healthy.QueryString(ctx, qa)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := broken.QueryString(ctx, qa)
	if err != nil {
		t.Fatal(err)
	}
	want.Sort()
	got.Sort()
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("rows diverge under malformed counts:\n got %v\nwant %v", got.Rows, want.Rows)
	}
}

func TestCatalogAnswersStatsWithoutProbes(t *testing.T) {
	eps, _ := paperFederation(true)
	var m client.Metrics
	var list []client.Endpoint
	for _, ep := range eps {
		list = append(list, client.NewInstrumented(ep, &m))
	}
	fed := federation.MustNew(list...)

	st := catalog.NewStore("", time.Hour)
	if err := catalog.Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Catalog = st
	e := MustNew(fed, opts)

	m.Reset()
	res, prof, err := e.QueryString(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	if prof.CountProbes != 0 {
		t.Errorf("CountProbes = %d, want 0 (all cardinalities from the catalog)", prof.CountProbes)
	}
	if prof.CatalogHits == 0 {
		t.Error("CatalogHits = 0, want > 0")
	}
	if asks := m.Snapshot().Asks; asks != 0 {
		t.Errorf("ASK probes = %d, want 0 (source selection from the catalog)", asks)
	}

	// Same rows as the probe-based engine.
	probe := MustNew(fed, DefaultOptions())
	want, wprof, err := probe.QueryString(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	if wprof.CountProbes == 0 {
		t.Error("probe-based engine issued no COUNT probes; fixture broken")
	}
	res.Sort()
	want.Sort()
	if !reflect.DeepEqual(res.Rows, want.Rows) {
		t.Errorf("catalog-on rows differ from probe path:\n got %v\nwant %v", res.Rows, want.Rows)
	}
}

func TestStaleCatalogFallsBackToProbes(t *testing.T) {
	eps, _ := paperFederation(false)
	var list []client.Endpoint
	for _, ep := range eps {
		list = append(list, ep)
	}
	fed := federation.MustNew(list...)

	st := catalog.NewStore("", time.Nanosecond)
	if err := catalog.Build(context.Background(), fed, erh.New(4), st); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the nanosecond TTL lapse

	opts := DefaultOptions()
	opts.Catalog = st
	e := MustNew(fed, opts)
	res, prof, err := e.QueryString(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	if prof.CatalogHits != 0 {
		t.Errorf("stale catalog answered %d cardinalities, want 0", prof.CatalogHits)
	}
	if prof.CountProbes == 0 {
		t.Error("stale catalog should fall back to COUNT probes")
	}

	want, _, err := MustNew(fed, DefaultOptions()).QueryString(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	want.Sort()
	if !reflect.DeepEqual(res.Rows, want.Rows) {
		t.Errorf("stale-catalog rows differ from probe path")
	}
}
