package core

import (
	"math"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	mu, sigma := meanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mu != 5 {
		t.Errorf("mu = %v, want 5", mu)
	}
	if sigma != 2 {
		t.Errorf("sigma = %v, want 2", sigma)
	}
	mu, sigma = meanStddev(nil)
	if mu != 0 || sigma != 0 {
		t.Errorf("empty input: mu=%v sigma=%v", mu, sigma)
	}
}

func TestChauvenetRejectsExtremeOutlier(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 1e6}
	kept, rejected := chauvenetReject(xs)
	if !rejected[len(xs)-1] {
		t.Error("extreme outlier not rejected")
	}
	if len(kept) != len(xs)-1 {
		t.Errorf("kept %d, want %d", len(kept), len(xs)-1)
	}
	for i := 0; i < len(xs)-1; i++ {
		if rejected[i] {
			t.Errorf("sample %d wrongly rejected", i)
		}
	}
}

func TestChauvenetKeepsHomogeneous(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	kept, rejected := chauvenetReject(xs)
	if len(kept) != len(xs) {
		t.Error("homogeneous data should all be kept")
	}
	for _, r := range rejected {
		if r {
			t.Error("no sample should be rejected")
		}
	}
}

func TestChauvenetSmallSamples(t *testing.T) {
	xs := []float64{1, 100}
	kept, _ := chauvenetReject(xs)
	if len(kept) != 2 {
		t.Error("fewer than 3 samples must never be rejected")
	}
}

func TestDelayDecisionsMuSigma(t *testing.T) {
	// Homogeneous cardinalities with one huge subquery: only the huge one
	// crosses μ+σ after Chauvenet removes it from the statistics.
	cards := []float64{10, 10, 10, 10, 100000}
	eps := []float64{2, 2, 2, 2, 2}
	delayed := delayDecisions(cards, eps, nil, ThresholdMuSigma)
	want := []bool{false, false, false, false, true}
	for i := range want {
		if delayed[i] != want[i] {
			t.Errorf("delayed[%d] = %v, want %v (cards=%v)", i, delayed[i], want[i], cards)
		}
	}
}

func TestDelayDecisionsMuDelaysMore(t *testing.T) {
	cards := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	eps := make([]float64, len(cards))
	muDelayed := delayDecisions(cards, eps, nil, ThresholdMu)
	muSigmaDelayed := delayDecisions(cards, eps, nil, ThresholdMuSigma)
	countMu, countMuSigma := 0, 0
	for i := range cards {
		if muDelayed[i] {
			countMu++
		}
		if muSigmaDelayed[i] {
			countMuSigma++
		}
	}
	if countMu <= countMuSigma {
		t.Errorf("μ should delay more than μ+σ: %d vs %d", countMu, countMuSigma)
	}
}

func TestDelayDecisionsOutliersOnly(t *testing.T) {
	cards := []float64{10, 12, 11, 13, 1e6}
	eps := make([]float64, len(cards))
	delayed := delayDecisions(cards, eps, nil, ThresholdOutliers)
	for i := 0; i < 4; i++ {
		if delayed[i] {
			t.Errorf("non-outlier %d delayed in outliers-only mode", i)
		}
	}
	if !delayed[4] {
		t.Error("outlier not delayed")
	}
}

func TestDelayDecisionsByEndpointCount(t *testing.T) {
	// Same cardinalities, but one subquery touches far more endpoints.
	cards := []float64{10, 10, 10, 10, 10}
	eps := []float64{2, 2, 2, 2, 200}
	delayed := delayDecisions(cards, eps, nil, ThresholdMuSigma)
	if !delayed[4] {
		t.Error("subquery touching many endpoints should be delayed")
	}
	for i := 0; i < 4; i++ {
		if delayed[i] {
			t.Errorf("subquery %d wrongly delayed", i)
		}
	}
}

func TestEnsureNonDelayed(t *testing.T) {
	sqs := []*Subquery{
		{EstCard: 50, Delayed: true},
		{EstCard: 10, Delayed: true},
		{EstCard: 70, Delayed: true},
	}
	ensureNonDelayed(sqs)
	if sqs[1].Delayed {
		t.Error("most selective subquery should be promoted")
	}
	if !sqs[0].Delayed || !sqs[2].Delayed {
		t.Error("other subqueries should stay delayed")
	}
}

func TestEstimateJoinSizeMonotone(t *testing.T) {
	if estimateJoinSize(10, 1000) != estimateJoinSize(1000, 10) {
		t.Error("join size estimate should be symmetric")
	}
	if math.IsInf(estimateJoinSize(0, 5), 0) {
		t.Error("zero input should not blow up")
	}
}
