package core

import (
	"context"
	"math"

	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// join2 hash-joins two relations, parallelizing the probe phase over the
// ERH pool when the probe side is large (the paper's parallel in-memory
// hash join, Section 4.2).
func (e *Engine) join2(ctx context.Context, a, b *sparql.Results) *sparql.Results {
	const parallelThreshold = 4096
	if len(a.Rows) < parallelThreshold && len(b.Rows) < parallelThreshold {
		return qplan.HashJoin(a, b)
	}
	return e.parallelHashJoin(ctx, a, b)
}

func (e *Engine) parallelHashJoin(ctx context.Context, a, b *sparql.Results) *sparql.Results {
	if len(a.Rows) > len(b.Rows) {
		a, b = b, a // build on the smaller relation
	}
	shared := qplan.SharedVars(a, b)
	if len(shared) == 0 {
		return qplan.HashJoin(a, b) // cross products are not worth parallelizing
	}
	outVars := append([]string(nil), a.Vars...)
	var bExtraIdx []int
	for i, v := range b.Vars {
		if a.VarIndex(v) < 0 {
			outVars = append(outVars, v)
			bExtraIdx = append(bExtraIdx, i)
		}
	}
	aIdx := make([]int, len(shared))
	bIdx := make([]int, len(shared))
	for i, v := range shared {
		aIdx[i] = a.VarIndex(v)
		bIdx[i] = b.VarIndex(v)
	}
	table := make(map[string][][]rdf.Term, len(a.Rows))
	for _, ra := range a.Rows {
		if k, ok := qplan.JoinKey(ra, aIdx); ok {
			table[k] = append(table[k], ra)
		}
	}
	// Probe in parallel chunks; each worker emits into its own slice.
	workers := e.pool.Limit()
	chunk := (len(b.Rows) + workers - 1) / workers
	parts := make([][][]rdf.Term, workers)
	_ = e.pool.ForEach(ctx, workers, func(w int) error {
		lo := w * chunk
		if lo >= len(b.Rows) {
			return nil
		}
		hi := lo + chunk
		if hi > len(b.Rows) {
			hi = len(b.Rows)
		}
		var out [][]rdf.Term
		for _, rb := range b.Rows[lo:hi] {
			k, ok := qplan.JoinKey(rb, bIdx)
			if !ok {
				continue
			}
			for _, ra := range table[k] {
				nr := make([]rdf.Term, 0, len(outVars))
				nr = append(nr, ra...)
				for _, i := range bExtraIdx {
					nr = append(nr, rb[i])
				}
				out = append(out, nr)
			}
		}
		parts[w] = out
		return nil
	})
	res := sparql.NewResults(outVars)
	for _, p := range parts {
		res.Rows = append(res.Rows, p...)
	}
	return res
}

// joinConnected repeatedly joins relations that share variables until each
// connected component is a single relation. Join order within the pass is
// chosen by the DP planner.
func (e *Engine) joinConnected(ctx context.Context, rels []*sparql.Results) []*sparql.Results {
	rels = append([]*sparql.Results(nil), rels...)
	for {
		merged := false
		for i := 0; i < len(rels) && !merged; i++ {
			for j := i + 1; j < len(rels); j++ {
				if len(qplan.SharedVars(rels[i], rels[j])) == 0 {
					continue
				}
				group := []*sparql.Results{rels[i], rels[j]}
				// Pull in everything transitively connected to the pair.
				rest := append(append([]*sparql.Results(nil), rels[:i]...), rels[i+1:j]...)
				rest = append(rest, rels[j+1:]...)
				changed := true
				for changed {
					changed = false
					for k := 0; k < len(rest); k++ {
						for _, gr := range group {
							if len(qplan.SharedVars(rest[k], gr)) > 0 {
								group = append(group, rest[k])
								rest = append(rest[:k], rest[k+1:]...)
								changed = true
								k--
								break
							}
						}
						if changed {
							break
						}
					}
				}
				joined := e.joinGroup(ctx, group)
				rels = append(rest, joined)
				merged = true
				break
			}
		}
		if !merged {
			return rels
		}
	}
}

// joinAll joins every relation into one, using connected joins first and
// cross products last.
func (e *Engine) joinAll(ctx context.Context, rels []*sparql.Results) *sparql.Results {
	if len(rels) == 0 {
		return qplan.EmptyRelation(nil)
	}
	rels = e.joinConnected(ctx, rels)
	out := rels[0]
	for _, r := range rels[1:] {
		out = e.join2(ctx, out, r) // cross product between disjoint components
	}
	return out
}

// joinGroup joins a var-connected set of relations using the DP join-order
// enumeration (Moerkotte/Neumann-style subset DP, as cited by the paper)
// when the group is small, and a greedy smallest-pair order otherwise.
func (e *Engine) joinGroup(ctx context.Context, rels []*sparql.Results) *sparql.Results {
	switch {
	case len(rels) == 1:
		return rels[0]
	case len(rels) == 2:
		return e.join2(ctx, rels[0], rels[1])
	case len(rels) <= 12:
		return e.dpJoin(ctx, rels)
	default:
		return e.greedyJoin(ctx, rels)
	}
}

// dpState tracks the best plan found for one subset of relations.
type dpState struct {
	cost  float64 // accumulated JoinCost
	size  float64 // estimated result cardinality
	left  int     // submask of the last join's left input (0 for leaves)
	right int
}

// dpJoin enumerates join orders over connected subsets with dynamic
// programming. Plan cost follows the paper's model — hashing the smaller
// input plus probing the larger, normalized by the worker count — and
// subplan sizes are estimated with the standard distinct-value formula over
// the materialized base relations.
func (e *Engine) dpJoin(ctx context.Context, rels []*sparql.Results) *sparql.Results {
	n := len(rels)
	threads := float64(e.pool.Limit())
	full := (1 << n) - 1
	best := make(map[int]*dpState, 1<<n)
	varsOf := make([]map[string]bool, 1<<n)
	for i, r := range rels {
		m := 1 << i
		best[m] = &dpState{cost: 0, size: float64(len(r.Rows))}
		vs := map[string]bool{}
		for _, v := range r.Vars {
			vs[v] = true
		}
		varsOf[m] = vs
	}
	unionVars := func(a, b map[string]bool) map[string]bool {
		out := make(map[string]bool, len(a)+len(b))
		for v := range a {
			out[v] = true
		}
		for v := range b {
			out[v] = true
		}
		return out
	}
	connected := func(a, b map[string]bool) bool {
		for v := range a {
			if b[v] {
				return true
			}
		}
		return false
	}
	// Enumerate subsets in increasing popcount by iterating masks in order:
	// any proper submask is numerically smaller, so best[sub] is ready.
	for mask := 1; mask <= full; mask++ {
		if best[mask] != nil {
			continue // leaf
		}
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			ls, rs := best[sub], best[other]
			if ls == nil || rs == nil {
				continue
			}
			if varsOf[sub] == nil || varsOf[other] == nil {
				continue
			}
			if !connected(varsOf[sub], varsOf[other]) {
				continue // avoid cross products inside a connected group
			}
			small, large := ls.size, rs.size
			if small > large {
				small, large = large, small
			}
			cost := ls.cost + rs.cost + small/threads + large/threads
			if cur := best[mask]; cur == nil || cost < cur.cost {
				best[mask] = &dpState{
					cost:  cost,
					size:  estimateJoinSize(ls.size, rs.size),
					left:  sub,
					right: other,
				}
				if varsOf[mask] == nil {
					varsOf[mask] = unionVars(varsOf[sub], varsOf[other])
				}
			}
		}
	}
	if best[full] == nil {
		// The group was not actually fully connected; fall back to greedy.
		return e.greedyJoin(ctx, rels)
	}
	var build func(mask int) *sparql.Results
	build = func(mask int) *sparql.Results {
		st := best[mask]
		if st.left == 0 {
			for i := 0; i < n; i++ {
				if mask == 1<<i {
					return rels[i]
				}
			}
		}
		return e.join2(ctx, build(st.left), build(st.right))
	}
	return build(full)
}

// estimateJoinSize is a coarse size estimate used only for DP plan costing:
// the smaller input bounds an FK-style join, doubled as slack.
func estimateJoinSize(a, b float64) float64 {
	m := math.Min(a, b)
	return m * 2
}

// greedyJoin repeatedly joins the connected pair with the smallest combined
// size.
func (e *Engine) greedyJoin(ctx context.Context, rels []*sparql.Results) *sparql.Results {
	rels = append([]*sparql.Results(nil), rels...)
	for len(rels) > 1 {
		bi, bj := -1, -1
		bestSize := math.Inf(1)
		for i := 0; i < len(rels); i++ {
			for j := i + 1; j < len(rels); j++ {
				if len(qplan.SharedVars(rels[i], rels[j])) == 0 {
					continue
				}
				s := float64(len(rels[i].Rows) + len(rels[j].Rows))
				if s < bestSize {
					bestSize, bi, bj = s, i, j
				}
			}
		}
		if bi < 0 {
			bi, bj = 0, 1 // no connected pair left: cross product
		}
		joined := e.join2(ctx, rels[bi], rels[bj])
		rels = append(rels[:bj], rels[bj+1:]...)
		rels[bi] = joined
	}
	return rels[0]
}
