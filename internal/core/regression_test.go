package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"lusail/internal/federation"
	"lusail/internal/qplan"
)

// Regression: the check-query cache key must encode the join variable's
// positions in BOTH patterns with a shared variable mapping. With
// per-pattern normalization, a subject-only check between (?c p ?x)/(?c p
// ?y) and a subject/object check between (?x p ?c)/(?c p ?y) collided on
// one key, so a cached "local" verdict from the first silently suppressed
// the global join the second requires — dropping results (found by the
// randomized property test at this seed).
func TestCheckCacheKeyEncodesVariablePositions(t *testing.T) {
	seed := int64(-6610927066117453342)
	rng := rand.New(rand.NewSource(seed))
	eps, oracle := randomFederation(rng, 2+rng.Intn(3), 12+rng.Intn(12))
	fed := federation.MustNew(eps...)
	e := MustNew(fed, DefaultOptions())
	for trial := 0; trial < 3; trial++ {
		q := randomConjunctiveQuery(rng)
		got, _, err := e.QueryString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleResults(t, oracle, q)
		got.Rows = qplan.DistinctRows(got.Rows)
		got.Sort()
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("trial %d: %s: got %d rows, want %d", trial, q, len(got.Rows), len(want.Rows))
		}
	}
}
