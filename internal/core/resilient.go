package core

import (
	"context"
	"errors"
	"fmt"

	"lusail/internal/client"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// queryEndpoint issues one non-idempotent request (subquery, bound join,
// optional) through the resilience layer, wrapping failures as typed
// *client.EndpointError so callers — and Degrade mode — can tell which
// endpoint and phase failed.
func (e *Engine) queryEndpoint(ctx context.Context, phase client.Phase, name, query string) (*sparql.Results, error) {
	ep := e.fed.Get(name)
	if ep == nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase,
			Err: fmt.Errorf("unknown endpoint")}
	}
	res, err := e.res.Do(ctx, ep, query)
	if err != nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase, Err: err}
	}
	return res, nil
}

// streamEndpoint issues one streaming request through the resilience
// layer. Errors surfaced later by the returned reader are raw transport
// errors; consumers wrap them as *client.EndpointError at the read site
// (see scanStream.push).
func (e *Engine) streamEndpoint(ctx context.Context, phase client.Phase, name, query string) (sparql.RowReader, error) {
	ep := e.fed.Get(name)
	if ep == nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase,
			Err: fmt.Errorf("unknown endpoint")}
	}
	rd, err := e.res.DoStream(ctx, ep, query)
	if err != nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase, Err: err}
	}
	return rd, nil
}

// probeEndpoint issues one idempotent probe (ASK, COUNT, LIMIT-1 check)
// with tail hedging when the resilience layer is configured for it.
func (e *Engine) probeEndpoint(ctx context.Context, phase client.Phase, name, query string) (*sparql.Results, error) {
	ep := e.fed.Get(name)
	if ep == nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase,
			Err: fmt.Errorf("unknown endpoint")}
	}
	res, err := e.res.DoHedged(ctx, ep, query)
	if err != nil {
		return nil, &client.EndpointError{Endpoint: name, Phase: phase, Err: err}
	}
	return res, nil
}

// degrade decides whether the failure of one endpoint request is absorbed
// into a partial answer. True means the caller must exclude the endpoint's
// contribution and carry on: the failure has been recorded as a structured
// Profile warning and counted. False means the error must propagate —
// either the engine is in FailFast mode, or the query itself is over
// (cancelled or timed out), in which case "degrading" would misreport a
// caller-initiated abort as an endpoint problem.
func (e *Engine) degrade(ctx context.Context, phase client.Phase, endpoint string, err error) bool {
	if e.opts.OnEndpointFailure != Degrade {
		return false
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	e.degraded.Inc()
	resilience.Warn(ctx, resilience.Warning{
		Endpoint: endpoint,
		Phase:    phase,
		Message:  err.Error(),
	})
	return true
}

// gate returns the pool admission gate: the resilience manager's
// non-claiming breaker view (a nil manager admits everything). The
// claiming admission happens inside Do/DoHedged at dispatch, so gated
// tasks are admitted exactly once.
func (e *Engine) gate() resilience.Gate { return e.res.Gate() }

// onRejectDegrade returns the ForEachGated rejection callback for Degrade
// mode — record a warning for the breaker-rejected endpoint and move on —
// or nil in FailFast mode, making a rejection the task's error.
func (e *Engine) onRejectDegrade(ctx context.Context, phase client.Phase, names []string) func(i int, err error) {
	if e.opts.OnEndpointFailure != Degrade {
		return nil
	}
	return func(i int, err error) {
		e.degraded.Inc()
		resilience.Warn(ctx, resilience.Warning{
			Endpoint: names[i],
			Phase:    phase,
			Message:  err.Error(),
		})
	}
}
