package core

import (
	"errors"

	"context"
	"io"
	"sync"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// scanBuf is the bounded depth of a scan's row channel: deep enough to
// decouple decoder and consumer bursts, shallow enough that a stalled
// consumer exerts backpressure on the wire instead of buffering the result.
const scanBuf = 64

// scanStream evaluates one subquery at all its relevant endpoints with one
// streaming request each, delivering rows as they are decoded off each
// response. Rows from different endpoints interleave in arrival order.
//
// Pool discipline: a pool slot is held only while the request is issued
// (connection + response head). Decoding runs in a per-endpoint pusher
// goroutine outside any slot, so a slow consumer of this scan can never
// starve other operators — bound-join dispatch, sibling scans — of slots;
// with the old held-slot design a PoolSize=1 engine would deadlock.
//
// Failure discipline mirrors the materialized path: in Degrade mode an
// endpoint that fails — at request time or mid-stream — is absorbed with a
// warning and its (remaining) contribution excluded; in FailFast mode the
// first failure cancels the scan and surfaces through Err.
type scanStream struct {
	e     *Engine
	sq    *Subquery
	phase client.Phase
	vars  []string

	ctx    context.Context
	cancel context.CancelFunc
	parent *obs.Span
	prof   *Profile // SubqueryStats sink (may be nil)

	started bool
	drained bool
	out     chan []rdf.Term
	errc    chan error
	span    *obs.Span

	row    []rdf.Term
	rows   int64
	err    error
	closed bool
}

func (e *Engine) newScanStream(ctx context.Context, sq *Subquery, phase client.Phase, prof *Profile) *scanStream {
	sctx, cancel := context.WithCancel(ctx)
	return &scanStream{
		e:      e,
		sq:     sq,
		phase:  phase,
		vars:   sq.Vars(),
		ctx:    sctx,
		cancel: cancel,
		parent: obs.FromContext(ctx),
		prof:   prof,
		out:    make(chan []rdf.Term, scanBuf),
		errc:   make(chan error, 1),
	}
}

func (s *scanStream) Vars() []string  { return s.vars }
func (s *scanStream) Row() []rdf.Term { return s.row }
func (s *scanStream) Err() error      { return s.err }

func (s *scanStream) Next() bool {
	if s.closed || s.err != nil || s.drained {
		return false
	}
	if !s.started {
		s.started = true
		s.run()
	}
	row, ok := <-s.out
	if !ok {
		s.drained = true
		if err := <-s.errc; err != nil {
			s.err = err
		}
		return false
	}
	s.row = row
	s.rows++
	return true
}

func (s *scanStream) run() {
	s.span = s.parent.StartChild("scan")
	s.span.SetAttr("patterns", len(s.sq.Patterns))
	s.span.SetAttr("endpoints", len(s.sq.Sources))
	go s.drive()
}

// drive issues one streaming request per endpoint through the pool, hands
// each response to a pusher goroutine, waits for all pushers, and delivers
// the final error before closing the row channel.
func (s *scanStream) drive() {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pushErr error
	e := s.e
	queryText := s.sq.Query(nil).String()
	err := e.pool.ForEachGated(s.ctx, s.sq.Sources, e.gate(),
		e.onRejectDegrade(s.ctx, s.phase, s.sq.Sources), func(i int) error {
			name := s.sq.Sources[i]
			rd, rerr := e.streamEndpoint(s.ctx, s.phase, name, queryText)
			if rerr != nil {
				if e.degrade(s.ctx, s.phase, name, rerr) {
					return nil
				}
				return rerr
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if perr := s.push(rd, name); perr != nil {
					mu.Lock()
					if pushErr == nil {
						pushErr = perr
					}
					mu.Unlock()
					s.cancel() // fail fast: stop sibling pushers
				}
			}()
			return nil
		})
	wg.Wait()
	mu.Lock()
	if err == nil {
		err = pushErr
	}
	mu.Unlock()
	s.errc <- err
	close(s.out)
}

// push decodes one endpoint's response outside the pool, forwarding rows
// aligned to the scan's variables. A mid-stream failure after some rows
// were already forwarded degrades like a request failure: the rows seen
// are genuine solutions, the endpoint's remaining contribution is lost.
func (s *scanStream) push(rd sparql.RowReader, name string) error {
	defer rd.Close()
	idx := varIndexes(s.vars, rd.Vars())
	for {
		row, err := rd.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			if client.AsEndpointError(err) == nil {
				err = &client.EndpointError{Endpoint: name, Phase: s.phase, Err: err}
			}
			if s.e.degrade(s.ctx, s.phase, name, err) {
				return nil
			}
			return err
		}
		aligned := make([]rdf.Term, len(s.vars))
		for j, t := range row {
			if k := idx[j]; k >= 0 {
				aligned[k] = t
			}
		}
		select {
		case s.out <- aligned:
		case <-s.ctx.Done():
			return nil
		}
	}
}

func (s *scanStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.cancel()
	if s.started && !s.drained {
		// Unblock pushers stuck on a full channel, then reap the driver's
		// terminal send. A deliberately abandoned scan reports no error.
		for range s.out {
		}
		s.drained = true
		<-s.errc
	}
	if s.prof != nil && s.started && len(s.sq.Patterns) > 1 && !s.sq.Optional {
		s.prof.SubqueryStats = append(s.prof.SubqueryStats, SubqueryStat{
			Patterns:  len(s.sq.Patterns),
			Estimated: s.sq.EstCard,
			Actual:    int(s.rows),
		})
	}
	s.span.SetAttr("rows", int(s.rows))
	s.span.End()
	return nil
}
