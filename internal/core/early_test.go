package core

import (
	"context"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/federation"
	"lusail/internal/rdf"
)

// earlyQ decomposes into one subquery on the paper federation (the ?C type
// pattern keeps ?C out of the object-only Case-2 escalation).
const earlyQ = `PREFIX ub: <http://lubm.org/ub#>
	PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	SELECT ?S ?P WHERE {
		?S ub:advisor ?P . ?S ub:takesCourse ?C . ?P ub:teacherOf ?C .
		?C rdf:type ub:GraduateCourse }`

func TestQueryEarlyStreamsBeforeSlowEndpoint(t *testing.T) {
	eps, _ := paperFederation(false)
	// ep1 is fast, ep2 is slow: streaming must deliver ep1's answers long
	// before ep2 responds.
	slowRTT := 300 * time.Millisecond
	fed := federation.MustNew(
		eps[0],
		client.NewLatency(eps[1], slowRTT, 0),
	)
	e := MustNew(fed, DefaultOptions())

	start := time.Now()
	var firstEmit time.Duration
	n := 0
	streamed, err := e.QueryEarly(context.Background(), earlyQ, func(map[string]rdf.Term) bool {
		if n == 0 {
			firstEmit = time.Since(start)
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed {
		t.Fatal("expected streaming mode for a single-subquery query")
	}
	if n == 0 {
		t.Fatal("no rows emitted")
	}
	// Analysis probes also hit the slow endpoint, so use a generous bound:
	// the first row must arrive well before all endpoints finished their
	// final subquery (which costs at least one more slow RTT).
	total := time.Since(start)
	if firstEmit >= total {
		t.Errorf("first emit (%v) should precede completion (%v)", firstEmit, total)
	}
}

func TestQueryEarlyFallbackMatchesQuery(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	// Qa has a GJV → several subqueries → the pipeline streams through a
	// bound/hash join; the rows must still match full evaluation.
	var rows []map[string]rdf.Term
	streamed, err := e.QueryEarly(context.Background(), qa, func(b map[string]rdf.Term) bool {
		rows = append(rows, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed {
		t.Error("global joins stream through the pipeline now; expected streaming mode")
	}
	want := oracleResults(t, oracle, qa)
	if len(rows) != len(want.Rows) {
		t.Errorf("emitted %d rows, oracle %d", len(rows), len(want.Rows))
	}
}

func TestQueryEarlyStopOnFalse(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	n := 0
	if _, err := e.QueryEarly(context.Background(), earlyQ, func(map[string]rdf.Term) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("emit called %d times after returning false", n)
	}
}

func TestQueryEarlyLimit(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	n := 0
	streamed, err := e.QueryEarly(context.Background(), earlyQ+" LIMIT 2", func(map[string]rdf.Term) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed {
		t.Error("LIMIT should not prevent streaming")
	}
	if n != 2 {
		t.Errorf("emitted %d rows, want 2", n)
	}
}

func TestQueryEarlyModifiersFallBack(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	// DISTINCT streams through the pipeline's dedup operator; only
	// modifiers that need the complete result (ORDER BY, aggregates)
	// report fallback delivery.
	for _, q := range []string{
		`PREFIX ub: <http://lubm.org/ub#> SELECT ?S WHERE { ?S ub:advisor ?P } ORDER BY ?S`,
		`PREFIX ub: <http://lubm.org/ub#> SELECT (COUNT(*) AS ?n) WHERE { ?S ub:advisor ?P }`,
	} {
		streamed, err := e.QueryEarly(context.Background(), q, func(map[string]rdf.Term) bool { return true })
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if streamed {
			t.Errorf("query %q should fall back (modifier needs full result)", q)
		}
	}
}
