package core

import (
	"context"
	"sync"

	"lusail/internal/client"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// ensureNonDelayed guarantees phase 1 has work: if every subquery got
// delayed, the most selective one is promoted to non-delayed.
func ensureNonDelayed(sqs []*Subquery) {
	anyNonDelayed := false
	for _, sq := range sqs {
		if !sq.Delayed {
			anyNonDelayed = true
			break
		}
	}
	if anyNonDelayed {
		return
	}
	// Prefer promoting a subquery whose cardinality was actually measured;
	// among those (or all, when nothing was measured), the most selective.
	best := 0
	for i, sq := range sqs {
		switch {
		case sq.CardKnown && !sqs[best].CardKnown:
			best = i
		case sq.CardKnown == sqs[best].CardKnown && sq.EstCard < sqs[best].EstCard:
			best = i
		}
	}
	sqs[best].Delayed = false
}

// refineSources re-runs source selection for generic subqueries (those
// containing a variable-predicate pattern, which are relevant to every
// endpoint) using the found bindings, as Algorithm 3 line 13 prescribes: an
// ASK with the VALUES block attached prunes endpoints that cannot
// contribute. The ASK probes cost far less than shipping bound subqueries
// to irrelevant endpoints, as the paper verified empirically.
func (e *Engine) refineSources(ctx context.Context, sq *Subquery, shared []string, rows [][]rdf.Term) ([]string, error) {
	if !hasVarPredicate(sq) || len(sq.Sources) < 2 {
		return sq.Sources, nil
	}
	ask := sparql.NewAsk()
	for _, tp := range sq.Patterns {
		ask.Where.Elements = append(ask.Where.Elements, tp)
	}
	ask.Where.Elements = append(ask.Where.Elements, sparql.InlineData{Vars: shared, Rows: rows})
	text := ask.String()

	keep := make([]bool, len(sq.Sources))
	// A breaker-rejected refinement probe keeps its endpoint: refinement
	// only prunes, and pruning on missing information would drop results.
	onReject := func(i int, err error) { keep[i] = true }
	err := e.pool.ForEachGated(ctx, sq.Sources, e.gate(), onReject, func(i int) error {
		res, err := e.probeEndpoint(ctx, client.PhaseRefinement, sq.Sources[i], text)
		if err != nil {
			if e.degrade(ctx, client.PhaseRefinement, sq.Sources[i], err) {
				keep[i] = true
				return nil
			}
			return err
		}
		ok, err := client.Boolean(res, sq.Sources[i])
		if err != nil {
			return &client.EndpointError{Endpoint: sq.Sources[i], Phase: client.PhaseRefinement, Err: err}
		}
		keep[i] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for i, k := range keep {
		if k {
			out = append(out, sq.Sources[i])
		}
	}
	if len(out) == 0 {
		// The sample may simply miss; fall back to all sources rather than
		// silently dropping results.
		return sq.Sources, nil
	}
	return out, nil
}

// hasVarPredicate reports whether any pattern has a variable in predicate
// position (the <?s ?p ?o>-style generic patterns of Section 4.2).
func hasVarPredicate(sq *Subquery) bool {
	for _, tp := range sq.Patterns {
		if tp.P.IsVar() {
			return true
		}
	}
	return false
}

// planOptionals resolves sources for each OPTIONAL block and wraps it as an
// optional subquery. An optional block with no relevant endpoint simply
// never extends any row.
func (e *Engine) planOptionals(ctx context.Context, br *qplan.Branch) ([]*optionalPlan, error) {
	var out []*optionalPlan
	for _, ob := range br.Optionals {
		sources := e.fed.Names()
		var mu sync.Mutex
		perPattern := make([][]string, len(ob.Patterns))
		err := e.pool.ForEach(ctx, len(ob.Patterns), func(i int) error {
			s, err := e.sel.RelevantSources(ctx, ob.Patterns[i])
			if err != nil {
				return err
			}
			mu.Lock()
			perPattern[i] = s
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range perPattern {
			sources = federation.IntersectSources(sources, s)
		}
		sq := &Subquery{Patterns: ob.Patterns, Sources: sources, Optional: true}
		// Push optional-scoped filters that the block fully binds.
		vars := map[string]bool{}
		for _, v := range sq.Vars() {
			vars[v] = true
		}
		var residual []sparql.Expr
		for _, f := range ob.Filters {
			pushable := true
			for _, v := range sparql.ExprVars(f) {
				if !vars[v] {
					pushable = false
					break
				}
			}
			if _, isExists := f.(sparql.ExprExists); isExists {
				pushable = false
			}
			if pushable {
				sq.Filters = append(sq.Filters, f)
			} else {
				residual = append(residual, f)
			}
		}
		sq.EstCard = float64(len(sources)) // coarse: more endpoints, later
		out = append(out, &optionalPlan{sq: sq, residual: residual})
	}
	return out, nil
}

type optionalPlan struct {
	sq       *Subquery
	residual []sparql.Expr // filters evaluated on the joined rows
}
