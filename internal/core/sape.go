package core

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"

	"lusail/internal/client"
	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// execute implements SAPE (Algorithm 3 plus the join evaluation of
// Section 4.2): non-delayed subqueries run concurrently across endpoints,
// delayed subqueries run afterwards as bound joins over the bindings found
// so far, and the subquery relations are joined with a cost-based order.
func (e *Engine) execute(ctx context.Context, br *qplan.Branch, sqs []*Subquery, prof *Profile) (*sparql.Results, error) {
	optionals, err := e.planOptionals(ctx, br)
	if err != nil {
		return nil, err
	}

	// Delay decisions over the mandatory subqueries (Figure 7).
	if !e.opts.DisableSAPE && len(sqs) > 1 {
		cards := make([]float64, len(sqs))
		numEPs := make([]float64, len(sqs))
		known := make([]bool, len(sqs))
		for i, sq := range sqs {
			cards[i] = sq.EstCard
			numEPs[i] = float64(len(sq.Sources))
			known[i] = sq.CardKnown
		}
		delayed := delayDecisions(cards, numEPs, known, e.opts.Threshold)
		for i, d := range delayed {
			sqs[i].Delayed = d
		}
		ensureNonDelayed(sqs)
	}
	for _, sq := range sqs {
		if sq.Delayed {
			prof.Delayed++
		}
	}

	// Phase 1 (lines 6-9): evaluate non-delayed subqueries concurrently at
	// all their relevant endpoints.
	var nonDelayed, delayed []*Subquery
	for _, sq := range sqs {
		if sq.Delayed {
			delayed = append(delayed, sq)
		} else {
			nonDelayed = append(nonDelayed, sq)
		}
	}
	relations, err := e.evalSubqueriesConcurrently(ctx, nonDelayed)
	if err != nil {
		return nil, err
	}
	for i, sq := range nonDelayed {
		if len(sq.Patterns) > 1 {
			prof.SubqueryStats = append(prof.SubqueryStats, SubqueryStat{
				Patterns:  len(sq.Patterns),
				Estimated: sq.EstCard,
				Actual:    len(relations[i].Rows),
			})
		}
	}

	// Join non-delayed results whenever possible: collapse each
	// var-connected component into one relation.
	components := e.joinConnected(ctx, relations)

	// Phase 2 (lines 10-18): evaluate delayed subqueries, most selective
	// first, bound to the found bindings.
	for len(delayed) > 0 {
		next := e.mostSelectiveDelayed(delayed, components)
		sq := delayed[next]
		delayed = append(delayed[:next], delayed[next+1:]...)

		rel, comp, err := e.evalDelayed(ctx, sq, components, prof)
		if err != nil {
			return nil, err
		}
		if comp >= 0 {
			// Join with the component that provided the bindings, updating
			// the found bindings for subsequent delayed subqueries.
			components[comp] = e.join2(ctx, components[comp], rel)
		} else {
			components = append(components, rel)
		}
		components = e.joinConnected(ctx, components)
	}

	// Join the remaining components (cross product if truly disjoint —
	// e.g. the C5/B5/B6 queries whose subgraphs meet only through FILTER).
	_, jsp := obs.StartSpan(ctx, "join")
	jsp.SetAttr("components", len(components))
	global := e.joinAll(ctx, components)

	// VALUES blocks from the query text join the global relation.
	for _, vd := range br.Values {
		global = joinValuesRelation(global, vd)
	}
	jsp.SetAttr("rows", len(global.Rows))
	jsp.End()

	// OPTIONAL blocks left-join at the global level, selective first.
	sort.SliceStable(optionals, func(i, j int) bool {
		return optionals[i].sq.EstCard < optionals[j].sq.EstCard
	})
	for _, ob := range optionals {
		rel, err := e.evalOptional(ctx, ob, global)
		if err != nil {
			return nil, err
		}
		global = qplan.LeftJoin(global, rel)
	}

	// Global filters (including those already pushed — reapplying is
	// harmless and catches cross-subquery predicates).
	global = qplan.ApplyFilters(global, br.Filters)
	global.Rows = qplan.DistinctRows(global.Rows)
	return global, nil
}

// ensureNonDelayed guarantees phase 1 has work: if every subquery got
// delayed, the most selective one is promoted to non-delayed.
func ensureNonDelayed(sqs []*Subquery) {
	anyNonDelayed := false
	for _, sq := range sqs {
		if !sq.Delayed {
			anyNonDelayed = true
			break
		}
	}
	if anyNonDelayed {
		return
	}
	// Prefer promoting a subquery whose cardinality was actually measured;
	// among those (or all, when nothing was measured), the most selective.
	best := 0
	for i, sq := range sqs {
		switch {
		case sq.CardKnown && !sqs[best].CardKnown:
			best = i
		case sq.CardKnown == sqs[best].CardKnown && sq.EstCard < sqs[best].EstCard:
			best = i
		}
	}
	sqs[best].Delayed = false
}

// evalSubqueriesConcurrently evaluates each subquery at each of its
// relevant endpoints with the ERH pool (non-blocking, all tasks submitted
// at once) and unions per-subquery results across endpoints.
func (e *Engine) evalSubqueriesConcurrently(ctx context.Context, sqs []*Subquery) ([]*sparql.Results, error) {
	type task struct {
		sq int
		ep string
	}
	var tasks []task
	var names []string
	for i, sq := range sqs {
		for _, ep := range sq.Sources {
			tasks = append(tasks, task{sq: i, ep: ep})
			names = append(names, ep)
		}
	}
	partial := make([]*sparql.Results, len(tasks))
	err := e.pool.ForEachGated(ctx, names, e.gate(),
		e.onRejectDegrade(ctx, client.PhaseSubquery, names), func(k int) error {
			t := tasks[k]
			sp := obs.FromContext(ctx).StartChild("subquery")
			defer sp.End()
			sp.SetAttr("endpoint", t.ep)
			sp.SetAttr("patterns", len(sqs[t.sq].Patterns))
			q := sqs[t.sq].Query(nil).String()
			res, err := e.queryEndpoint(ctx, client.PhaseSubquery, t.ep, q)
			if err != nil {
				if e.degrade(ctx, client.PhaseSubquery, t.ep, err) {
					sp.SetAttr("degraded", true)
					return nil
				}
				return err
			}
			sp.SetAttr("rows", len(res.Rows))
			partial[k] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	relations := make([]*sparql.Results, len(sqs))
	for i, sq := range sqs {
		rel := qplan.EmptyRelation(sq.Vars())
		for k, t := range tasks {
			if t.sq == i && partial[k] != nil {
				rel = qplan.UnionRelations(rel, partial[k])
			}
		}
		rel.Rows = qplan.DistinctRows(rel.Rows)
		relations[i] = rel
	}
	return relations, nil
}

// mostSelectiveDelayed picks the delayed subquery with the smallest refined
// cardinality: the estimate is capped by the number of found bindings of
// any variable it can join with (line 11 of Algorithm 3).
func (e *Engine) mostSelectiveDelayed(delayed []*Subquery, components []*sparql.Results) int {
	best, bestCard := 0, math.Inf(1)
	for i, sq := range delayed {
		card := sq.EstCard
		if !sq.CardKnown {
			// An unmeasured subquery competes only on its binding bound
			// below; its partial estimate must not make it look cheap.
			card = math.Inf(1)
		}
		for _, comp := range components {
			for _, v := range sq.Vars() {
				if comp.VarIndex(v) >= 0 {
					if n := float64(len(qplan.ProjectDistinct(comp, []string{v}))); n < card {
						card = n
					}
				}
			}
		}
		if card < bestCard {
			bestCard = card
			best = i
		}
	}
	return best
}

// evalDelayed evaluates one delayed subquery with bound joins: the found
// bindings of its shared variables are appended as VALUES blocks (line 12),
// its sources refined when the subquery is generic (line 13), and the block
// results merged (lines 15-16). It returns the subquery's relation and the
// index of the component that supplied the bindings (-1 if unbound).
func (e *Engine) evalDelayed(ctx context.Context, sq *Subquery, components []*sparql.Results, prof *Profile) (*sparql.Results, int, error) {
	// Choose the component with the largest variable overlap.
	comp, shared := -1, []string(nil)
	for i, c := range components {
		s := sharedRelVars(sq, c)
		if len(s) > len(shared) {
			comp, shared = i, s
		}
	}
	if comp < 0 {
		rel, err := e.evalUnbound(ctx, sq)
		return rel, -1, err
	}

	rows := qplan.ProjectDistinct(components[comp], shared)
	if len(rows) == 0 {
		// The mandatory part already has no solutions; an inner-join
		// subquery can only produce the empty relation.
		return qplan.EmptyRelation(sq.Vars()), comp, nil
	}
	bjCtx, bjSpan := obs.StartSpan(ctx, "bound-join")
	defer bjSpan.End()
	ctx = bjCtx
	bjSpan.SetAttr("bindings", len(rows))
	bjSpan.SetAttr("vars", strings.Join(shared, ","))
	sources, err := e.refineSources(ctx, sq, shared, rows)
	if err != nil {
		return nil, 0, err
	}

	blockSize := e.opts.ValuesBlockSize
	var blocks []sparql.InlineData
	for start := 0; start < len(rows); start += blockSize {
		end := start + blockSize
		if end > len(rows) {
			end = len(rows)
		}
		blocks = append(blocks, sparql.InlineData{Vars: shared, Rows: rows[start:end]})
	}

	type task struct {
		block int
		ep    string
	}
	var tasks []task
	for b := range blocks {
		for _, ep := range sources {
			tasks = append(tasks, task{block: b, ep: ep})
		}
	}
	bjSpan.SetAttr("blocks", len(blocks))
	names := make([]string, len(tasks))
	for k, t := range tasks {
		names[k] = t.ep
	}
	partial := make([]*sparql.Results, len(tasks))
	err = e.pool.ForEachGated(ctx, names, e.gate(),
		e.onRejectDegrade(ctx, client.PhaseBoundJoin, names), func(k int) error {
			t := tasks[k]
			sp := bjSpan.StartChild("batch")
			defer sp.End()
			sp.SetAttr("endpoint", t.ep)
			sp.SetAttr("block", t.block)
			sp.SetAttr("values", len(blocks[t.block].Rows))
			q := sq.Query(&blocks[t.block]).String()
			res, err := e.queryEndpoint(ctx, client.PhaseBoundJoin, t.ep, q)
			if err != nil {
				if e.degrade(ctx, client.PhaseBoundJoin, t.ep, err) {
					sp.SetAttr("degraded", true)
					return nil
				}
				return err
			}
			sp.SetAttr("rows", len(res.Rows))
			partial[k] = res
			return nil
		})
	if err != nil {
		return nil, 0, err
	}
	rel := qplan.EmptyRelation(sq.Vars())
	for _, p := range partial {
		if p != nil {
			rel = qplan.UnionRelations(rel, p)
		}
	}
	rel.Rows = qplan.DistinctRows(rel.Rows)
	bjSpan.SetAttr("rows", len(rel.Rows))
	return rel, comp, nil
}

// evalUnbound evaluates a subquery without bindings at all its sources.
func (e *Engine) evalUnbound(ctx context.Context, sq *Subquery) (*sparql.Results, error) {
	rels, err := e.evalSubqueriesConcurrently(ctx, []*Subquery{sq})
	if err != nil {
		return nil, err
	}
	return rels[0], nil
}

// refineSources re-runs source selection for generic subqueries (those
// containing a variable-predicate pattern, which are relevant to every
// endpoint) using the found bindings, as Algorithm 3 line 13 prescribes: an
// ASK with the VALUES block attached prunes endpoints that cannot
// contribute. The ASK probes cost far less than shipping bound subqueries
// to irrelevant endpoints, as the paper verified empirically.
func (e *Engine) refineSources(ctx context.Context, sq *Subquery, shared []string, rows [][]rdf.Term) ([]string, error) {
	if !hasVarPredicate(sq) || len(sq.Sources) < 2 {
		return sq.Sources, nil
	}
	ask := sparql.NewAsk()
	for _, tp := range sq.Patterns {
		ask.Where.Elements = append(ask.Where.Elements, tp)
	}
	ask.Where.Elements = append(ask.Where.Elements, sparql.InlineData{Vars: shared, Rows: rows})
	text := ask.String()

	keep := make([]bool, len(sq.Sources))
	// A breaker-rejected refinement probe keeps its endpoint: refinement
	// only prunes, and pruning on missing information would drop results.
	onReject := func(i int, err error) { keep[i] = true }
	err := e.pool.ForEachGated(ctx, sq.Sources, e.gate(), onReject, func(i int) error {
		res, err := e.probeEndpoint(ctx, client.PhaseRefinement, sq.Sources[i], text)
		if err != nil {
			if e.degrade(ctx, client.PhaseRefinement, sq.Sources[i], err) {
				keep[i] = true
				return nil
			}
			return err
		}
		ok, err := client.Boolean(res, sq.Sources[i])
		if err != nil {
			return &client.EndpointError{Endpoint: sq.Sources[i], Phase: client.PhaseRefinement, Err: err}
		}
		keep[i] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for i, k := range keep {
		if k {
			out = append(out, sq.Sources[i])
		}
	}
	if len(out) == 0 {
		// The sample may simply miss; fall back to all sources rather than
		// silently dropping results.
		return sq.Sources, nil
	}
	return out, nil
}

// hasVarPredicate reports whether any pattern has a variable in predicate
// position (the <?s ?p ?o>-style generic patterns of Section 4.2).
func hasVarPredicate(sq *Subquery) bool {
	for _, tp := range sq.Patterns {
		if tp.P.IsVar() {
			return true
		}
	}
	return false
}

// sharedRelVars returns the subquery variables present in the relation.
func sharedRelVars(sq *Subquery, rel *sparql.Results) []string {
	var out []string
	for _, v := range sq.Vars() {
		if rel.VarIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// planOptionals resolves sources for each OPTIONAL block and wraps it as an
// optional subquery. An optional block with no relevant endpoint simply
// never extends any row.
func (e *Engine) planOptionals(ctx context.Context, br *qplan.Branch) ([]*optionalPlan, error) {
	var out []*optionalPlan
	for _, ob := range br.Optionals {
		sources := e.fed.Names()
		var mu sync.Mutex
		perPattern := make([][]string, len(ob.Patterns))
		err := e.pool.ForEach(ctx, len(ob.Patterns), func(i int) error {
			s, err := e.sel.RelevantSources(ctx, ob.Patterns[i])
			if err != nil {
				return err
			}
			mu.Lock()
			perPattern[i] = s
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range perPattern {
			sources = federation.IntersectSources(sources, s)
		}
		sq := &Subquery{Patterns: ob.Patterns, Sources: sources, Optional: true}
		// Push optional-scoped filters that the block fully binds.
		vars := map[string]bool{}
		for _, v := range sq.Vars() {
			vars[v] = true
		}
		var residual []sparql.Expr
		for _, f := range ob.Filters {
			pushable := true
			for _, v := range sparql.ExprVars(f) {
				if !vars[v] {
					pushable = false
					break
				}
			}
			if _, isExists := f.(sparql.ExprExists); isExists {
				pushable = false
			}
			if pushable {
				sq.Filters = append(sq.Filters, f)
			} else {
				residual = append(residual, f)
			}
		}
		sq.EstCard = float64(len(sources)) // coarse: more endpoints, later
		out = append(out, &optionalPlan{sq: sq, residual: residual})
	}
	return out, nil
}

type optionalPlan struct {
	sq       *Subquery
	residual []sparql.Expr // filters evaluated on the joined rows
}

// evalOptional evaluates an optional subquery bound to the current global
// relation when they share variables (so only potentially-joining rows are
// fetched), unbound otherwise.
func (e *Engine) evalOptional(ctx context.Context, ob *optionalPlan, global *sparql.Results) (*sparql.Results, error) {
	sq := ob.sq
	if len(sq.Sources) == 0 {
		return qplan.EmptyRelation(sq.Vars()), nil
	}
	octx, osp := obs.StartSpan(ctx, "optional")
	defer osp.End()
	ctx = octx
	osp.SetAttr("sources", strings.Join(sq.Sources, ","))
	shared := sharedRelVars(sq, global)
	var rel *sparql.Results
	if len(shared) == 0 || len(global.Rows) == 0 {
		var err error
		rel, err = e.evalUnbound(ctx, sq)
		if err != nil {
			return nil, err
		}
	} else {
		rows := qplan.ProjectDistinct(global, shared)
		blockSize := e.opts.ValuesBlockSize
		rel = qplan.EmptyRelation(sq.Vars())
		for start := 0; start < len(rows); start += blockSize {
			end := start + blockSize
			if end > len(rows) {
				end = len(rows)
			}
			block := sparql.InlineData{Vars: shared, Rows: rows[start:end]}
			partial := make([]*sparql.Results, len(sq.Sources))
			err := e.pool.ForEachGated(ctx, sq.Sources, e.gate(),
				e.onRejectDegrade(ctx, client.PhaseOptional, sq.Sources), func(i int) error {
					res, err := e.queryEndpoint(ctx, client.PhaseOptional, sq.Sources[i], sq.Query(&block).String())
					if err != nil {
						if e.degrade(ctx, client.PhaseOptional, sq.Sources[i], err) {
							return nil
						}
						return err
					}
					partial[i] = res
					return nil
				})
			if err != nil {
				return nil, err
			}
			for _, p := range partial {
				if p != nil {
					rel = qplan.UnionRelations(rel, p)
				}
			}
		}
		rel.Rows = qplan.DistinctRows(rel.Rows)
	}
	rel = qplan.ApplyFilters(rel, ob.residual)
	return rel, nil
}

// joinValuesRelation joins a VALUES block from the query text into the
// global relation.
func joinValuesRelation(global *sparql.Results, d sparql.InlineData) *sparql.Results {
	vrel := sparql.NewResults(d.Vars)
	vrel.Rows = d.Rows
	return qplan.HashJoin(global, vrel)
}
