package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lusail/internal/client"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/store"
)

// randomFederation builds a random decentralized graph with authoritative
// placement: every triple lives at the endpoint owning its subject, while
// objects freely reference entities owned by other endpoints (the Linked
// Data interlink model of the paper's Figure 1).
func randomFederation(rng *rand.Rand, nEndpoints, nEntities int) ([]client.Endpoint, *store.Store) {
	preds := []rdf.Term{
		rdf.NewIRI("http://ex/p0"),
		rdf.NewIRI("http://ex/p1"),
		rdf.NewIRI("http://ex/p2"),
	}
	classes := []rdf.Term{
		rdf.NewIRI("http://ex/ClassA"),
		rdf.NewIRI("http://ex/ClassB"),
	}
	typ := rdf.NewIRI(rdf.RDFType)

	entity := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://ex/e%d", i)) }
	owner := make([]int, nEntities)
	for i := range owner {
		owner[i] = rng.Intn(nEndpoints)
	}
	parts := make([][]rdf.Triple, nEndpoints)
	oracle := store.New()
	add := func(ep int, t rdf.Triple) {
		parts[ep] = append(parts[ep], t)
		oracle.Add(t)
	}
	for i := 0; i < nEntities; i++ {
		ep := owner[i]
		add(ep, rdf.Triple{S: entity(i), P: typ, O: classes[rng.Intn(len(classes))]})
		nLinks := rng.Intn(4)
		for l := 0; l < nLinks; l++ {
			target := rng.Intn(nEntities) // may live anywhere: interlinks
			add(ep, rdf.Triple{S: entity(i), P: preds[rng.Intn(len(preds))], O: entity(target)})
		}
		if rng.Intn(2) == 0 {
			add(ep, rdf.Triple{
				S: entity(i),
				P: rdf.NewIRI("http://ex/label"),
				O: rdf.NewLiteral(fmt.Sprintf("label%d", rng.Intn(5))),
			})
		}
	}
	eps := make([]client.Endpoint, nEndpoints)
	for i := range eps {
		eps[i] = client.NewInProcess(fmt.Sprintf("ep%d", i), store.NewFromTriples(parts[i]))
	}
	return eps, oracle
}

// randomConjunctiveQuery builds a random chain or star query over the
// federation's vocabulary.
func randomConjunctiveQuery(rng *rand.Rand) string {
	preds := []string{"http://ex/p0", "http://ex/p1", "http://ex/p2"}
	n := 2 + rng.Intn(3)
	q := "SELECT * WHERE { "
	if rng.Intn(2) == 0 {
		// Chain: ?x0 p ?x1 . ?x1 q ?x2 ...
		for i := 0; i < n; i++ {
			q += fmt.Sprintf("?x%d <%s> ?x%d . ", i, preds[rng.Intn(len(preds))], i+1)
		}
	} else {
		// Star: ?c p ?x_i; occasionally reversed arms.
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				q += fmt.Sprintf("?x%d <%s> ?c . ", i, preds[rng.Intn(len(preds))])
			} else {
				q += fmt.Sprintf("?c <%s> ?x%d . ", preds[rng.Intn(len(preds))], i)
			}
		}
	}
	if rng.Intn(3) == 0 {
		q += "?c <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/ClassA> . "
	}
	q += "}"
	return q
}

// Lemma 1 + Lemma 2 property: for any federation with authoritative
// placement and any conjunctive query, Lusail's answer equals centralized
// evaluation over the union graph (no missing results from locality
// decisions, no spurious results from extraneous GJVs).
func TestFederatedMatchesCentralizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps, oracle := randomFederation(rng, 2+rng.Intn(3), 12+rng.Intn(12))
		fed := federation.MustNew(eps...)
		e := MustNew(fed, DefaultOptions())
		for trial := 0; trial < 3; trial++ {
			q := randomConjunctiveQuery(rng)
			got, _, err := e.QueryString(context.Background(), q)
			if err != nil {
				t.Logf("seed %d query %s: %v", seed, q, err)
				return false
			}
			want := oracleResults(t, oracle, q)
			got.Rows = qplan.DistinctRows(got.Rows)
			got.Sort()
			if !reflect.DeepEqual(got.Vars, want.Vars) || !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Logf("seed %d mismatch on %s:\n got %d rows\nwant %d rows", seed, q, len(got.Rows), len(want.Rows))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The same property under every threshold mode and with SAPE disabled:
// planning choices must never change answers.
func TestPlanningChoicesNeverChangeAnswersProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eps, oracle := randomFederation(rng, 3, 20)
	fed := federation.MustNew(eps...)
	queries := make([]string, 6)
	for i := range queries {
		queries[i] = randomConjunctiveQuery(rng)
	}
	configs := []Options{
		DefaultOptions(),
		{Threshold: ThresholdMu, ValuesBlockSize: 2, CacheSources: true, CacheChecks: true},
		{Threshold: ThresholdMu2Sigma, ValuesBlockSize: 7, CacheSources: false, CacheChecks: false},
		{Threshold: ThresholdOutliers, ValuesBlockSize: 100, CacheSources: true, CacheChecks: false},
		{DisableSAPE: true, ValuesBlockSize: 3, CacheSources: true, CacheChecks: true},
	}
	for _, q := range queries {
		want := oracleResults(t, oracle, q)
		for ci, opts := range configs {
			e := MustNew(fed, opts)
			got, _, err := e.QueryString(context.Background(), q)
			if err != nil {
				t.Fatalf("config %d query %s: %v", ci, q, err)
			}
			got.Rows = qplan.DistinctRows(got.Rows)
			got.Sort()
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Errorf("config %d query %s: %d rows, want %d", ci, q, len(got.Rows), len(want.Rows))
			}
		}
	}
}

// Tiny VALUES block sizes exercise the bound-join block partitioning.
func TestBoundJoinBlockPartitioning(t *testing.T) {
	eps, oracle := paperFederation(true)
	opts := DefaultOptions()
	opts.ValuesBlockSize = 1
	e := newEngine(t, eps, opts)
	got, _ := runLusail(t, e, qa)
	want := oracleResults(t, oracle, qa)
	assertSameResults(t, got, want)
}
