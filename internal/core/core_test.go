package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/eval"
	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

const ub = "http://lubm.org/ub#"

func u(s string) rdf.Term { return rdf.NewIRI(ub + s) }

func t3(s, p, o rdf.Term) rdf.Triple { return rdf.Triple{S: s, P: p, O: o} }

// paperFederation builds the running example of the paper (Figures 1, 2,
// 4): two university endpoints with the same schema, where Tim's PhD
// university lives at the other endpoint.
//
// withAnn adds the professor Ann (EP1) who advises a student but teaches no
// course — the paper's "extraneous computation" example that makes ?P a
// false-positive GJV.
func paperFederation(withAnn bool) (eps []*client.InProcess, oracle *store.Store) {
	typ := rdf.NewIRI(rdf.RDFType)
	advisor, teacherOf := u("advisor"), u("teacherOf")
	takes, phdFrom, addr := u("takesCourse"), u("PhDDegreeFrom"), u("address")
	gradStudent, assocProf, gradCourse := u("GraduateStudent"), u("AssociateProfessor"), u("GraduateCourse")

	// EP1: university A. Self-contained staff plus the address of univA,
	// which EP2's Tim and Ben reference remotely.
	univA := u("univA")
	ep1 := []rdf.Triple{
		t3(univA, addr, rdf.NewLiteral("AddrA")),
		t3(u("zoe"), typ, gradStudent),
		t3(u("zoe"), advisor, u("max")),
		t3(u("zoe"), takes, u("courseX")),
		t3(u("max"), typ, assocProf),
		t3(u("max"), teacherOf, u("courseX")),
		t3(u("max"), phdFrom, univA),
		t3(u("courseX"), typ, gradCourse),
	}
	if withAnn {
		ep1 = append(ep1,
			t3(u("sam"), typ, gradStudent),
			t3(u("sam"), advisor, u("ann")),
			t3(u("sam"), takes, u("courseX")),
			t3(u("ann"), typ, assocProf),
			t3(u("ann"), phdFrom, univA),
			// Ann teaches no course: ?P looks global although no remote
			// data is needed for her.
		)
	}

	// EP2: university B. Tim and Ben got their PhDs from univA (remote).
	univB := u("univB")
	ep2 := []rdf.Triple{
		t3(univB, addr, rdf.NewLiteral("AddrB")),
		t3(u("kim"), typ, gradStudent),
		t3(u("lee"), typ, gradStudent),
		t3(u("kim"), advisor, u("joy")),
		t3(u("kim"), advisor, u("tim")),
		t3(u("lee"), advisor, u("ben")),
		t3(u("kim"), takes, u("courseDB")),
		t3(u("lee"), takes, u("courseOS")),
		t3(u("joy"), typ, assocProf),
		t3(u("tim"), typ, assocProf),
		t3(u("ben"), typ, assocProf),
		t3(u("joy"), teacherOf, u("courseDB")),
		t3(u("tim"), teacherOf, u("courseDB")),
		t3(u("ben"), teacherOf, u("courseOS")),
		t3(u("joy"), phdFrom, univB),
		t3(u("tim"), phdFrom, univA),
		t3(u("ben"), phdFrom, univA),
		t3(u("courseDB"), typ, gradCourse),
		t3(u("courseOS"), typ, gradCourse),
	}

	oracle = store.New()
	oracle.AddAll(ep1)
	oracle.AddAll(ep2)
	return []*client.InProcess{
		client.NewInProcess("ep1", store.NewFromTriples(ep1)),
		client.NewInProcess("ep2", store.NewFromTriples(ep2)),
	}, oracle
}

func newEngine(t *testing.T, eps []*client.InProcess, opts Options) *Engine {
	t.Helper()
	var list []client.Endpoint
	for _, ep := range eps {
		list = append(list, ep)
	}
	fed, err := federation.New(list...)
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(fed, opts)
}

// qa is the paper's running-example query (Figure 2).
const qa = `
	PREFIX ub: <http://lubm.org/ub#>
	PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	SELECT ?S ?P ?U ?A WHERE {
		?S ub:advisor ?P .
		?S rdf:type ub:GraduateStudent .
		?P ub:teacherOf ?C .
		?P rdf:type ub:AssociateProfessor .
		?S ub:takesCourse ?C .
		?C rdf:type ub:GraduateCourse .
		?P ub:PhDDegreeFrom ?U .
		?U ub:address ?A .
	}`

// oracleResults evaluates the query centrally over the union of all
// endpoint data — the ground-truth federated answer.
func oracleResults(t *testing.T, oracle *store.Store, query string) *sparql.Results {
	t.Helper()
	res, err := eval.New(oracle).QueryString(query)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	res.Rows = qplan.DistinctRows(res.Rows)
	res.Sort()
	return res
}

func runLusail(t *testing.T, e *Engine, query string) (*sparql.Results, *Profile) {
	t.Helper()
	res, prof, err := e.QueryString(context.Background(), query)
	if err != nil {
		t.Fatalf("lusail: %v", err)
	}
	res.Rows = qplan.DistinctRows(res.Rows)
	res.Sort()
	return res, prof
}

func assertSameResults(t *testing.T, got, want *sparql.Results) {
	t.Helper()
	if !reflect.DeepEqual(got.Vars, want.Vars) {
		t.Fatalf("vars: got %v, want %v", got.Vars, want.Vars)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("rows mismatch:\n got (%d): %v\nwant (%d): %v",
			len(got.Rows), got.Rows, len(want.Rows), want.Rows)
	}
}

func TestPaperRunningExample(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	got, prof := runLusail(t, e, qa)
	want := oracleResults(t, oracle, qa)
	assertSameResults(t, got, want)
	// The paper's analysis: ?U must be global; ?S and ?C must be local.
	gjvs := map[string]bool{}
	for _, v := range prof.GJVs {
		gjvs[v] = true
	}
	if !gjvs["U"] {
		t.Errorf("?U should be a GJV; got %v", prof.GJVs)
	}
	if gjvs["S"] || gjvs["C"] {
		t.Errorf("?S and ?C should be local; got %v", prof.GJVs)
	}
	if gjvs["P"] {
		t.Errorf("?P should be local without Ann; got %v", prof.GJVs)
	}
	// Cross-endpoint answers must be present: Tim's students see AddrA.
	found := false
	for i := range got.Rows {
		b := got.Binding(i)
		if b["P"] == u("tim") && b["A"] == rdf.NewLiteral("AddrA") {
			found = true
		}
	}
	if !found {
		t.Error("missing interlink answer (kim, tim, univA, AddrA)")
	}
}

func TestExtraneousGJVStillCorrect(t *testing.T) {
	// With Ann, ?P becomes a (false) GJV; Lemma 2 says results still match.
	eps, oracle := paperFederation(true)
	e := newEngine(t, eps, DefaultOptions())
	got, prof := runLusail(t, e, qa)
	want := oracleResults(t, oracle, qa)
	assertSameResults(t, got, want)
	gjvs := map[string]bool{}
	for _, v := range prof.GJVs {
		gjvs[v] = true
	}
	if !gjvs["P"] {
		t.Errorf("?P should be (extraneously) global with Ann; got %v", prof.GJVs)
	}
}

func TestSingleSubqueryWhenNoGJV(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	// Students with their advisors: all instance-local. The ?C type
	// pattern gives ?C a subject occurrence, so its locality is checkable
	// (a pure object-only ?C would be escalated per Section 3.3 Case 2).
	q := `PREFIX ub: <http://lubm.org/ub#>
	      PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	      SELECT ?S ?P ?C WHERE {
	        ?S ub:advisor ?P . ?S ub:takesCourse ?C . ?P ub:teacherOf ?C .
	        ?C rdf:type ub:GraduateCourse }`
	got, prof := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
	if prof.Subqueries != 1 {
		t.Errorf("expected 1 subquery, got %d (%v)", prof.Subqueries, prof.Decomposition)
	}
	if len(prof.GJVs) != 0 {
		t.Errorf("expected no GJVs, got %v", prof.GJVs)
	}
}

func TestDecompositionInvariants(t *testing.T) {
	eps, _ := paperFederation(true)
	e := newEngine(t, eps, DefaultOptions())
	q := sparql.MustParse(qa)
	branches, err := qplan.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	br := branches[0]
	ctx := context.Background()
	sources := make([][]string, len(br.Patterns))
	for i, tp := range br.Patterns {
		s, err := e.sel.RelevantSources(ctx, tp)
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = s
	}
	stats, err := e.collectStats(ctx, br, sources)
	if err != nil {
		t.Fatal(err)
	}
	gjv, err := e.detectGJVs(ctx, br.Patterns, sources)
	if err != nil {
		t.Fatal(err)
	}
	sqs := e.decompose(br, sources, gjv, stats)

	// Invariant 1: every pattern appears in exactly one subquery.
	count := make(map[string]int)
	for _, sq := range sqs {
		for _, tp := range sq.Patterns {
			count[tp.String()]++
		}
	}
	if len(count) != len(br.Patterns) {
		t.Errorf("pattern coverage: %d distinct patterns in subqueries, want %d", len(count), len(br.Patterns))
	}
	for p, c := range count {
		if c != 1 {
			t.Errorf("pattern %s appears %d times", p, c)
		}
	}
	// Invariant 2: no subquery contains a pair sharing a GJV.
	for _, sq := range sqs {
		for i := 0; i < len(sq.Patterns); i++ {
			for j := i + 1; j < len(sq.Patterns); j++ {
				if conflict(sq.Patterns[i], sq.Patterns[j], gjv) {
					t.Errorf("subquery %s contains conflicting pair", sq)
				}
			}
		}
	}
	// Invariant 3: all patterns in a subquery share the subquery's sources.
	for _, sq := range sqs {
		for _, pi := range sq.patternIdx {
			if !federation.SameSources(sq.Sources, sources[pi]) {
				t.Errorf("subquery %s has pattern with different sources", sq)
			}
		}
	}
}

func TestFilterPushdownAndGlobalFilter(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?S ?A WHERE {
	        ?S ub:advisor ?P .
	        ?P ub:PhDDegreeFrom ?U .
	        ?U ub:address ?A .
	        FILTER(STR(?A) != "AddrB")
	      }`
	got, _ := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
}

func TestOptionalAtGlobalLevel(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?P ?U ?A WHERE {
	        ?P ub:PhDDegreeFrom ?U .
	        OPTIONAL { ?U ub:address ?A }
	      }`
	got, _ := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
	// Every professor keeps a row even if the university address is remote
	// or absent; with our data all addresses resolve, so check count > 0.
	if len(got.Rows) == 0 {
		t.Fatal("optional query returned nothing")
	}
}

func TestUnionDistribution(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?X WHERE {
	        { ?X ub:teacherOf ?C } UNION { ?X ub:takesCourse ?C }
	      }`
	got, _ := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
}

func TestAskForm(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	res, _, err := e.QueryString(context.Background(), `PREFIX ub: <http://lubm.org/ub#>
		ASK { ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBoolean || !res.Boolean {
		t.Errorf("ASK = %+v", res)
	}
}

func TestCountAggregateFederated(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT (COUNT(DISTINCT ?S) AS ?n) WHERE { ?S ub:advisor ?P }`
	got, _ := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
}

func TestLimitTruncatesCompleteResult(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?S WHERE { ?S ub:advisor ?P } ORDER BY ?S LIMIT 2`
	got, _, err := e.QueryString(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Errorf("LIMIT 2 returned %d rows", len(got.Rows))
	}
}

func TestEmptyResultForUnknownPredicate(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	got, _ := runLusail(t, e, `SELECT ?S WHERE { ?S <http://nowhere/p> ?O }`)
	if len(got.Rows) != 0 {
		t.Errorf("expected empty result, got %d rows", len(got.Rows))
	}
}

func TestDisableSAPESameResults(t *testing.T) {
	eps, oracle := paperFederation(true)
	opts := DefaultOptions()
	opts.DisableSAPE = true
	e := newEngine(t, eps, opts)
	got, prof := runLusail(t, e, qa)
	want := oracleResults(t, oracle, qa)
	assertSameResults(t, got, want)
	if prof.Delayed != 0 {
		t.Errorf("LADE-only mode delayed %d subqueries", prof.Delayed)
	}
}

func TestAllThresholdModesSameResults(t *testing.T) {
	for _, mode := range []ThresholdMode{ThresholdMu, ThresholdMuSigma, ThresholdMu2Sigma, ThresholdOutliers} {
		eps, oracle := paperFederation(true)
		opts := DefaultOptions()
		opts.Threshold = mode
		e := newEngine(t, eps, opts)
		got, _ := runLusail(t, e, qa)
		want := oracleResults(t, oracle, qa)
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("threshold %v: results differ", mode)
		}
	}
}

func TestCheckCacheReducesRequests(t *testing.T) {
	eps, _ := paperFederation(false)
	var m client.Metrics
	var list []client.Endpoint
	for _, ep := range eps {
		list = append(list, client.NewInstrumented(ep, &m))
	}
	fed := federation.MustNew(list...)
	e := MustNew(fed, DefaultOptions())
	ctx := context.Background()
	if _, _, err := e.QueryString(ctx, qa); err != nil {
		t.Fatal(err)
	}
	first := m.Snapshot()
	if _, _, err := e.QueryString(ctx, qa); err != nil {
		t.Fatal(err)
	}
	second := m.Snapshot().Sub(first)
	if second.Requests >= first.Requests {
		t.Errorf("cached run used %d requests, first run %d", second.Requests, first.Requests)
	}
	// Disabling caches restores the probe traffic.
	e.ClearCaches()
	preClear := m.Snapshot()
	if _, _, err := e.QueryString(ctx, qa); err != nil {
		t.Fatal(err)
	}
	third := m.Snapshot().Sub(preClear)
	if third.Requests <= second.Requests {
		t.Errorf("after ClearCaches expected more requests: %d <= %d", third.Requests, second.Requests)
	}
}

func TestProfilePhases(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	_, prof := runLusail(t, e, qa)
	if prof.Total <= 0 {
		t.Error("profile total missing")
	}
	if prof.Subqueries == 0 {
		t.Error("profile subqueries missing")
	}
	if prof.CountProbes == 0 {
		t.Error("profile count probes missing")
	}
	if prof.ChecksIssued == 0 {
		t.Error("profile checks missing")
	}
}

func TestDisconnectedSubgraphsJoinedByFilter(t *testing.T) {
	// The C5/B5/B6 shape: two disjoint subgraphs related only by a FILTER.
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      SELECT ?P1 ?P2 WHERE {
	        ?P1 ub:teacherOf ?C1 .
	        ?P2 ub:PhDDegreeFrom ?U2 .
	        FILTER(?P1 = ?P2)
	      }`
	got, _ := runLusail(t, e, q)
	want := oracleResults(t, oracle, q)
	assertSameResults(t, got, want)
	if len(got.Rows) == 0 {
		t.Error("filter-joined disjoint subgraphs returned nothing")
	}
}

// Failure injection: a flaky endpoint behind a retry wrapper must not
// change federated answers; without retries, the engine must surface the
// error rather than return silently partial results.
func TestFailureInjection(t *testing.T) {
	eps, oracle := paperFederation(false)
	want := oracleResults(t, oracle, qa)

	// With retries: correct answers despite injected failures.
	var wrapped []client.Endpoint
	for _, ep := range eps {
		flaky := client.NewFlaky(ep, 4)
		wrapped = append(wrapped, client.NewRetry(flaky, 4, time.Millisecond))
	}
	e := MustNew(federation.MustNew(wrapped...), DefaultOptions())
	got, _, err := e.QueryString(context.Background(), qa)
	if err != nil {
		t.Fatalf("with retry: %v", err)
	}
	got.Rows = qplan.DistinctRows(got.Rows)
	got.Sort()
	assertSameResults(t, got, want)

	// Without retries: the query errors out loudly.
	var raw []client.Endpoint
	for _, ep := range eps {
		raw = append(raw, client.NewFlaky(ep, 3))
	}
	e2 := MustNew(federation.MustNew(raw...), DefaultOptions())
	if _, _, err := e2.QueryString(context.Background(), qa); err == nil {
		t.Error("expected an error from the failing federation")
	}
}

func TestFederatedConstruct(t *testing.T) {
	eps, oracle := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := `PREFIX ub: <http://lubm.org/ub#>
	      CONSTRUCT { ?P ub:almaMaterAddress ?A }
	      WHERE { ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A }`
	triples, prof, err := e.ConstructString(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || prof.Total <= 0 {
		t.Error("missing profile")
	}
	// Oracle: run the same CONSTRUCT centrally.
	wantTriples, err := eval.New(oracle).Construct(sparql.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != len(wantTriples) {
		t.Fatalf("federated construct %d triples, oracle %d", len(triples), len(wantTriples))
	}
	want := map[rdf.Triple]bool{}
	for _, tr := range wantTriples {
		want[tr] = true
	}
	for _, tr := range triples {
		if !want[tr] {
			t.Errorf("unexpected triple %v", tr)
		}
	}
	// The cross-endpoint triple (tim -> AddrA) must be present.
	cross := rdf.Triple{S: u("tim"), P: u("almaMaterAddress"), O: rdf.NewLiteral("AddrA")}
	if !want[cross] {
		t.Fatal("oracle sanity: cross triple missing")
	}
	found := false
	for _, tr := range triples {
		if tr == cross {
			found = true
		}
	}
	if !found {
		t.Error("federated CONSTRUCT missed the interlink triple")
	}
}
