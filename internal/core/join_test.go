package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

func testEngine() *Engine {
	return MustNew(federation.MustNew(), DefaultOptions())
}

func mkRel(vars []string, rows ...[]string) *sparql.Results {
	r := sparql.NewResults(vars)
	for _, row := range rows {
		terms := make([]rdf.Term, len(row))
		for i, v := range row {
			if v != "" {
				terms[i] = rdf.NewIRI("http://ex/" + v)
			}
		}
		r.Rows = append(r.Rows, terms)
	}
	return r
}

func sortedKeys(r *sparql.Results) []string {
	var out []string
	for _, row := range r.Rows {
		key := ""
		for _, t := range row {
			key += t.Value + "|"
		}
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Join order must never change the result: DP, greedy, and naive left-deep
// orders agree on random connected relation sets.
func TestJoinOrderIndependenceProperty(t *testing.T) {
	e := testEngine()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		// Chain-connected relations R0(v0,v1), R1(v1,v2), ...
		n := 3 + rng.Intn(4)
		rels := make([]*sparql.Results, n)
		for i := 0; i < n; i++ {
			vars := []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)}
			var rows [][]string
			for k := 0; k < 2+rng.Intn(8); k++ {
				rows = append(rows, []string{
					fmt.Sprintf("x%d", rng.Intn(4)),
					fmt.Sprintf("x%d", rng.Intn(4)),
				})
			}
			rels[i] = mkRel(vars, rows...)
			rels[i].Rows = qplan.DistinctRows(rels[i].Rows)
		}
		dp := e.dpJoin(context.Background(), append([]*sparql.Results(nil), rels...))
		greedy := e.greedyJoin(context.Background(), append([]*sparql.Results(nil), rels...))
		naive := rels[0]
		for _, r := range rels[1:] {
			naive = qplan.HashJoin(naive, r)
		}
		// Align columns before comparing.
		align := func(r *sparql.Results) []string {
			cols := append([]string(nil), r.Vars...)
			sort.Strings(cols)
			out := sparql.NewResults(cols)
			for i := range r.Rows {
				b := r.Binding(i)
				row := make([]rdf.Term, len(cols))
				for j, v := range cols {
					row[j] = b[v]
				}
				out.Rows = append(out.Rows, row)
			}
			out.Rows = qplan.DistinctRows(out.Rows)
			return sortedKeys(out)
		}
		if !reflect.DeepEqual(align(dp), align(naive)) {
			t.Fatalf("trial %d: dp != naive", trial)
		}
		if !reflect.DeepEqual(align(greedy), align(naive)) {
			t.Fatalf("trial %d: greedy != naive", trial)
		}
	}
}

func TestJoinConnectedCollapsesComponents(t *testing.T) {
	e := testEngine()
	rels := []*sparql.Results{
		mkRel([]string{"a", "b"}, []string{"1", "2"}),
		mkRel([]string{"b", "c"}, []string{"2", "3"}),
		mkRel([]string{"x", "y"}, []string{"7", "8"}), // disconnected
	}
	out := e.joinConnected(context.Background(), rels)
	if len(out) != 2 {
		t.Fatalf("components = %d, want 2", len(out))
	}
}

func TestJoinAllCrossProduct(t *testing.T) {
	e := testEngine()
	rels := []*sparql.Results{
		mkRel([]string{"a"}, []string{"1"}, []string{"2"}),
		mkRel([]string{"b"}, []string{"3"}),
	}
	out := e.joinAll(context.Background(), rels)
	if len(out.Rows) != 2 {
		t.Errorf("cross product rows = %d, want 2", len(out.Rows))
	}
	if out.VarIndex("a") < 0 || out.VarIndex("b") < 0 {
		t.Errorf("vars = %v", out.Vars)
	}
}

func TestParallelHashJoinMatchesSequential(t *testing.T) {
	e := testEngine()
	var rowsA, rowsB [][]string
	for i := 0; i < 9000; i++ {
		rowsA = append(rowsA, []string{fmt.Sprintf("a%d", i), fmt.Sprintf("k%d", i%500)})
		rowsB = append(rowsB, []string{fmt.Sprintf("k%d", i%700), fmt.Sprintf("b%d", i)})
	}
	a := mkRel([]string{"x", "k"}, rowsA...)
	b := mkRel([]string{"k", "y"}, rowsB...)
	par := e.parallelHashJoin(context.Background(), a, b)
	seq := qplan.HashJoin(a, b)
	if len(par.Rows) != len(seq.Rows) {
		t.Fatalf("parallel %d rows, sequential %d", len(par.Rows), len(seq.Rows))
	}
	if !reflect.DeepEqual(sortedKeys(par), sortedKeys(seq)) {
		t.Error("parallel join content differs from sequential")
	}
}

func TestMergeSubqueriesCombinesCompatible(t *testing.T) {
	gjv := &GJVResult{Global: map[string]bool{"g": true}}
	mk := func(src string, tps ...sparql.TriplePattern) *Subquery {
		return &Subquery{Patterns: tps, Sources: []string{src}}
	}
	tpAB := sparql.TriplePattern{S: sparql.Var("a"), P: sparql.IRI("http://p1"), O: sparql.Var("b")}
	tpBC := sparql.TriplePattern{S: sparql.Var("b"), P: sparql.IRI("http://p2"), O: sparql.Var("c")}
	tpGX := sparql.TriplePattern{S: sparql.Var("g"), P: sparql.IRI("http://p3"), O: sparql.Var("x")}
	tpGY := sparql.TriplePattern{S: sparql.Var("g"), P: sparql.IRI("http://p4"), O: sparql.Var("y")}

	// Same sources, shared local var, no GJV conflict: must merge.
	out := mergeSubqueries([]*Subquery{mk("ep1", tpAB), mk("ep1", tpBC)}, gjv)
	if len(out) != 1 {
		t.Errorf("compatible subqueries not merged: %d", len(out))
	}
	// Shared variable is global: must NOT merge.
	out = mergeSubqueries([]*Subquery{mk("ep1", tpGX), mk("ep1", tpGY)}, gjv)
	if len(out) != 2 {
		t.Errorf("GJV-conflicting subqueries merged: %d", len(out))
	}
	// Different sources: must NOT merge.
	out = mergeSubqueries([]*Subquery{mk("ep1", tpAB), mk("ep2", tpBC)}, gjv)
	if len(out) != 2 {
		t.Errorf("different-source subqueries merged: %d", len(out))
	}
	// No shared variable: must NOT merge.
	tpXY := sparql.TriplePattern{S: sparql.Var("x9"), P: sparql.IRI("http://p5"), O: sparql.Var("y9")}
	out = mergeSubqueries([]*Subquery{mk("ep1", tpAB), mk("ep1", tpXY)}, gjv)
	if len(out) != 2 {
		t.Errorf("var-disjoint subqueries merged: %d", len(out))
	}
}

func TestSubqueryHelpers(t *testing.T) {
	sq := &Subquery{Patterns: []sparql.TriplePattern{
		{S: sparql.Var("a"), P: sparql.IRI("http://p"), O: sparql.Var("b")},
		{S: sparql.Var("b"), P: sparql.IRI("http://q"), O: sparql.Var("c")},
	}}
	if !reflect.DeepEqual(sq.Vars(), []string{"a", "b", "c"}) {
		t.Errorf("Vars = %v", sq.Vars())
	}
	if !sq.HasVar("b") || sq.HasVar("zz") {
		t.Error("HasVar wrong")
	}
	other := &Subquery{Patterns: []sparql.TriplePattern{
		{S: sparql.Var("c"), P: sparql.IRI("http://r"), O: sparql.Var("d")},
	}}
	if !reflect.DeepEqual(sq.SharedVars(other), []string{"c"}) {
		t.Errorf("SharedVars = %v", sq.SharedVars(other))
	}
}
