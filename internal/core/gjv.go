package core

import (
	"context"
	"fmt"
	"lusail/internal/client"
	"sort"
	"strings"
	"sync"

	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// GJVResult records the outcome of global-join-variable detection
// (Algorithm 1): the set of GJVs and, for diagnostics, the pattern pairs
// that caused each variable to become global.
type GJVResult struct {
	// Global maps each global join variable to true.
	Global map[string]bool
	// CausePairs maps a GJV to the index pairs (into the analyzed pattern
	// list) whose instance-locality check failed.
	CausePairs map[string][][2]int
	// ChecksIssued counts the check queries sent to endpoints.
	ChecksIssued int
	// CacheHits counts check queries answered from the cache.
	CacheHits int
}

// IsGlobal reports whether v is a global join variable.
func (r *GJVResult) IsGlobal(v string) bool { return r.Global[v] }

// GlobalVars returns the sorted list of GJVs.
func (r *GJVResult) GlobalVars() []string {
	out := make([]string, 0, len(r.Global))
	for v := range r.Global {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// checkCache caches the boolean outcome of locality check queries, keyed by
// the normalized pattern pair. The paper caches the checks that determine
// patterns which *cannot* be executed locally; caching both outcomes is
// strictly more effective and remains sound for a static federation.
type checkCache struct {
	mu sync.Mutex
	m  map[string]bool // key -> "pair failed the locality check" (v is global)

	hits   *obs.Counter
	misses *obs.Counter
}

func newCheckCache() *checkCache {
	reg := obs.Default()
	return &checkCache{
		m:      map[string]bool{},
		hits:   reg.Counter(obs.MetricCheckCacheHits, "LADE check-query cache hits"),
		misses: reg.Counter(obs.MetricCheckCacheMisses, "LADE check-query cache misses"),
	}
}

func (c *checkCache) get(key string) (bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

func (c *checkCache) put(key string, v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

func (c *checkCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]bool{}
}

func (c *checkCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// varRole describes how a variable occurs across the patterns that mention it.
type varRole struct {
	name    string
	subjIdx []int // patterns where it is the subject
	objIdx  []int // patterns where it is the object
	predIdx []int // patterns where it is the predicate
	allIdx  []int // union, in pattern order
}

// joinEntities returns the variables that appear in two or more patterns,
// with their roles (getJoinEntities in Algorithm 1).
func joinEntities(patterns []sparql.TriplePattern) []varRole {
	byVar := map[string]*varRole{}
	order := []string{}
	touch := func(v string) *varRole {
		r, ok := byVar[v]
		if !ok {
			r = &varRole{name: v}
			byVar[v] = r
			order = append(order, v)
		}
		return r
	}
	for i, tp := range patterns {
		seenHere := map[string]bool{}
		record := func(v string, role int) {
			if v == "" {
				return
			}
			r := touch(v)
			switch role {
			case 0:
				r.subjIdx = append(r.subjIdx, i)
			case 1:
				r.predIdx = append(r.predIdx, i)
			case 2:
				r.objIdx = append(r.objIdx, i)
			}
			if !seenHere[v] {
				seenHere[v] = true
				r.allIdx = append(r.allIdx, i)
			}
		}
		record(tp.S.Var, 0)
		record(tp.P.Var, 1)
		record(tp.O.Var, 2)
	}
	var out []varRole
	for _, v := range order {
		r := byVar[v]
		if len(r.allIdx) >= 2 {
			out = append(out, *r)
		}
	}
	return out
}

// detectGJVs implements Algorithm 1. patterns is the conjunctive core of
// the query; sources[i] lists the relevant endpoints of patterns[i];
// typeOf maps a variable to its rdf:type constraint pattern, if the query
// has one (used to narrow check queries, per Figure 5).
func (e *Engine) detectGJVs(ctx context.Context, patterns []sparql.TriplePattern, sources [][]string) (*GJVResult, error) {
	res := &GJVResult{Global: map[string]bool{}, CausePairs: map[string][][2]int{}}
	vars := joinEntities(patterns)
	typeOf := typeConstraints(patterns)

	type pendingCheck struct {
		varName string
		pair    [2]int
		queries []checkQuery
	}
	var pending []pendingCheck

	for _, vr := range vars {
		// A variable used in predicate position that joins with other
		// patterns is conservatively global (sound by Lemma 2; the paper
		// defers variable-predicate joins to the extended version).
		if len(vr.predIdx) > 0 {
			res.Global[vr.name] = true
			continue
		}
		global := false
		// Lines 8-11: patterns from different sources force a GJV without
		// any check queries.
		pairs := pairIndexes(vr.allIdx)
		for _, pr := range pairs {
			if !federation.SameSources(sources[pr[0]], sources[pr[1]]) {
				res.Global[vr.name] = true
				res.CausePairs[vr.name] = append(res.CausePairs[vr.name], pr)
				global = true
			}
		}
		if global {
			continue
		}
		// Lines 13-16: formulate check queries.
		switch {
		case len(vr.subjIdx) > 0 && len(vr.objIdx) > 0:
			// Subject and object: for each (object pattern, subject
			// pattern) pair, instances seen as objects must exist locally
			// as subjects (Figure 5).
			for _, oi := range vr.objIdx {
				for _, si := range vr.subjIdx {
					if oi == si {
						continue
					}
					pending = append(pending, pendingCheck{
						varName: vr.name,
						pair:    [2]int{oi, si},
						queries: []checkQuery{makeCheck(vr.name, patterns[oi], patterns[si], typeOf, sources[oi])},
					})
				}
			}
		case len(vr.objIdx) > 0 && len(vr.subjIdx) == 0:
			// Object only. Per-endpoint set-difference checks cannot see
			// the paper's Section 3.3 Case 2: the same object URI may be
			// referenced from several endpoints (incoming interlinks), in
			// which case the cross-endpoint combinations must be joined at
			// the Lusail server. We realize that server-side join by
			// escalating the variable to a GJV whenever its patterns span
			// more than one endpoint (sound by Lemma 2); with a single
			// relevant endpoint everything is local by construction.
			for _, pr := range pairs {
				if len(sources[pr[0]]) > 1 {
					res.Global[vr.name] = true
					res.CausePairs[vr.name] = append(res.CausePairs[vr.name], pr)
				}
			}
		default:
			// Subject only: both set differences must be empty, so check
			// each direction of each pair. (All triples of a subject live
			// at its authoritative endpoint, so a subject-only join cannot
			// straddle endpoints undetected.)
			for _, pr := range pairs {
				pending = append(pending, pendingCheck{
					varName: vr.name,
					pair:    pr,
					queries: []checkQuery{
						makeCheck(vr.name, patterns[pr[0]], patterns[pr[1]], typeOf, sources[pr[0]]),
						makeCheck(vr.name, patterns[pr[1]], patterns[pr[0]], typeOf, sources[pr[1]]),
					},
				})
			}
		}
	}

	// Execute all check queries at their relevant endpoints via the ERH
	// (lines 17-23), consulting the cache first.
	for _, pc := range pending {
		if res.Global[pc.varName] {
			// Already known global; the paper still treats the variable at
			// variable granularity, so skip further checks for it.
			continue
		}
		failed, err := e.runChecks(ctx, pc.queries, res)
		if err != nil {
			return nil, err
		}
		if failed {
			res.Global[pc.varName] = true
			res.CausePairs[pc.varName] = append(res.CausePairs[pc.varName], pc.pair)
		}
	}
	return res, nil
}

// checkQuery is one locality probe to run at a set of endpoints.
type checkQuery struct {
	key     string   // cache key
	text    string   // SPARQL text
	sources []string // endpoints to probe
}

// makeCheck builds the Figure 5 check query testing whether some binding of
// v in tpOuter lacks a local counterpart in tpInner.
//
// The paper narrows the check with v's rdf:type pattern when the query has
// one. That narrowing is only sound when the type triple is co-located with
// the outer occurrence of v, which holds when v is the *subject* of the
// outer pattern (an entity's triples, including its type, live at its
// authoritative endpoint). When v is the object, the referenced entity may
// live elsewhere and the type constraint would hide the very witness the
// check looks for — so we omit it there.
func makeCheck(v string, tpOuter, tpInner sparql.TriplePattern, typeOf map[string]sparql.TriplePattern, sources []string) checkQuery {
	q := sparql.NewSelect(v)
	q.Limit = 1
	if tt, ok := typeOf[v]; ok && tpOuter.S.Var == v {
		q.Where.Elements = append(q.Where.Elements, tt)
	}
	q.Where.Elements = append(q.Where.Elements, tpOuter)

	inner := sparql.NewSelect(v)
	inner.Where.Elements = append(inner.Where.Elements, renameExcept(tpInner, v))
	q.Where.Elements = append(q.Where.Elements, sparql.Filter{
		Expr: sparql.ExprExists{Not: true, Group: &sparql.GroupPattern{
			Elements: []sparql.Element{sparql.SubSelect{Query: inner}},
		}},
	})
	text := q.String()
	return checkQuery{
		key:     checkKey(v, tpOuter, tpInner, typeOf, sources),
		text:    text,
		sources: sources,
	}
}

// checkKey canonicalizes the check (outer, inner, join variable, type
// narrowing, sources) for the cache. Both patterns are normalized with a
// *shared* variable mapping in which the join variable gets a reserved
// name, so the key captures the variable's positions in both patterns and
// any other cross-pattern sharing — normalizing each pattern independently
// would collide, e.g., a subject-only check with a subject/object check
// over the same predicates.
func checkKey(v string, tpOuter, tpInner sparql.TriplePattern, typeOf map[string]sparql.TriplePattern, sources []string) string {
	names := map[string]string{v: "?JV"}
	canon := func(pt sparql.PatternTerm) string {
		if !pt.IsVar() {
			return pt.Term.String()
		}
		if n, ok := names[pt.Var]; ok {
			return n
		}
		n := fmt.Sprintf("?v%d", len(names))
		names[pt.Var] = n
		return n
	}
	pat := func(tp sparql.TriplePattern) string {
		return canon(tp.S) + " " + canon(tp.P) + " " + canon(tp.O)
	}
	key := pat(tpOuter) + "|" + pat(tpInner)
	if tt, ok := typeOf[v]; ok && tpOuter.S.Var == v {
		key += "|type=" + tt.O.String()
	}
	return key + "|" + federation.SourcesKey(sources)
}

// renameExcept renames all variables of tp except keep, so the inner check
// pattern cannot accidentally correlate with outer variables.
func renameExcept(tp sparql.TriplePattern, keep string) sparql.TriplePattern {
	ren := func(pt sparql.PatternTerm, pos string) sparql.PatternTerm {
		if pt.IsVar() && pt.Var != keep {
			return sparql.Var(pt.Var + "_chk" + pos)
		}
		return pt
	}
	return sparql.TriplePattern{S: ren(tp.S, "s"), P: ren(tp.P, "p"), O: ren(tp.O, "o")}
}

// runChecks executes the given check queries; it reports true as soon as
// any endpoint returns a witness (a binding with no local counterpart).
//
// In Degrade mode an unanswerable check falls back to the conservative
// outcome — the variable is treated as global, which is always sound
// (Lemma 2: a global join never loses answers, it only costs more work).
// That degraded verdict is NOT cached: it reflects an endpoint outage, not
// the data, and must not outlive the failure.
func (e *Engine) runChecks(ctx context.Context, checks []checkQuery, res *GJVResult) (bool, error) {
	for _, cq := range checks {
		if e.opts.CacheChecks {
			if failed, ok := e.checks.get(cq.key); ok {
				res.CacheHits++
				if failed {
					return true, nil
				}
				continue
			}
		}
		sp := obs.FromContext(ctx).StartChild("check-query")
		sp.SetAttr("sources", strings.Join(cq.sources, ","))
		failed := false
		degraded := false
		var mu sync.Mutex
		markDegraded := func() {
			mu.Lock()
			degraded = true
			mu.Unlock()
		}
		onReject := e.onRejectDegrade(ctx, client.PhaseCheck, cq.sources)
		var onRejectDegrade func(i int, err error)
		if onReject != nil {
			onRejectDegrade = func(i int, err error) {
				onReject(i, err)
				markDegraded()
			}
		}
		err := e.pool.ForEachGated(ctx, cq.sources, e.gate(), onRejectDegrade, func(i int) error {
			r, err := e.probeEndpoint(ctx, client.PhaseCheck, cq.sources[i], cq.text)
			if err != nil {
				if e.degrade(ctx, client.PhaseCheck, cq.sources[i], err) {
					markDegraded()
					return nil
				}
				return err
			}
			if len(r.Rows) > 0 {
				mu.Lock()
				failed = true
				mu.Unlock()
			}
			return nil
		})
		res.ChecksIssued += len(cq.sources)
		sp.SetAttr("failed", failed)
		if degraded {
			sp.SetAttr("degraded", true)
		}
		sp.End()
		if err != nil {
			return false, err
		}
		if failed {
			if e.opts.CacheChecks {
				e.checks.put(cq.key, failed)
			}
			return true, nil
		}
		if degraded {
			// Some endpoint never answered: a local verdict would be unsound.
			return true, nil
		}
		if e.opts.CacheChecks {
			e.checks.put(cq.key, false)
		}
	}
	return false, nil
}

// typeConstraints maps each variable to an rdf:type pattern constraining it,
// when the query contains one with a constant class.
func typeConstraints(patterns []sparql.TriplePattern) map[string]sparql.TriplePattern {
	out := map[string]sparql.TriplePattern{}
	for _, tp := range patterns {
		if tp.S.IsVar() && !tp.P.IsVar() && tp.P.Term.Value == rdf.RDFType && !tp.O.IsVar() {
			if _, dup := out[tp.S.Var]; !dup {
				out[tp.S.Var] = tp
			}
		}
	}
	return out
}

func pairIndexes(idx []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			out = append(out, [2]int{idx[i], idx[j]})
		}
	}
	return out
}
