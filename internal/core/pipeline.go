package core

import (
	"context"
	"math"
	"sort"

	"lusail/internal/client"
	"lusail/internal/rdf"
)

// branchStream assembles the streaming pipeline for one planned branch:
// the SAPE execution strategy (delay decisions, concurrent scans, bound
// joins for delayed subqueries) expressed as a tree of pull operators
// instead of a sequence of materialization barriers.
//
// Shape: the non-delayed subquery with the largest estimated cardinality
// becomes the driving probe stream — the relation that would dominate a
// materialized execution's memory flows through the pipeline row by row
// instead. Every other non-delayed subquery joins it as the build side of
// an incremental hash join (smallest, connected first), so only the
// smaller relations are held in memory, and only up to the spill budget.
// Delayed subqueries become pipelined bound joins fed blockwise from the
// stream; a delayed subquery sharing no variable with the accumulated
// stream falls back to an unbound scan under a (cross) hash join.
// Non-delayed scans and delayed bound joins interleave by connectivity: a
// delayed subquery often bridges two scans that share no variable with
// each other, and bound-joining it first keeps their cross product from
// ever materializing (LUBM Q4's shape). VALUES
// blocks join as in-memory build sides, OPTIONAL blocks as blockwise left
// joins (selective first), and the tail applies branch filters, aligns to
// the branch's variables, and deduplicates — the streaming equivalent of
// the DistinctRows the materialized path applied to the complete branch
// relation.
func (e *Engine) branchStream(ctx context.Context, pb *plannedBranch, prof *Profile) (RowStream, error) {
	if pb.empty {
		return newSliceStream(pb.br.Vars(), nil), nil
	}
	br := pb.br
	sqs := cloneSubqueries(pb.sqs)
	optionals, err := e.planOptionals(ctx, br)
	if err != nil {
		return nil, err
	}

	// Delay decisions over the mandatory subqueries (Figure 7).
	if !e.opts.DisableSAPE && len(sqs) > 1 {
		cards := make([]float64, len(sqs))
		numEPs := make([]float64, len(sqs))
		known := make([]bool, len(sqs))
		for i, sq := range sqs {
			cards[i] = sq.EstCard
			numEPs[i] = float64(len(sq.Sources))
			known[i] = sq.CardKnown
		}
		delayed := delayDecisions(cards, numEPs, known, e.opts.Threshold)
		for i, d := range delayed {
			sqs[i].Delayed = d
		}
		ensureNonDelayed(sqs)
	}
	var nonDelayed, delayed []*Subquery
	for _, sq := range sqs {
		if sq.Delayed {
			prof.Delayed++
			delayed = append(delayed, sq)
		} else {
			nonDelayed = append(nonDelayed, sq)
		}
	}

	effCard := func(sq *Subquery) float64 {
		if !sq.CardKnown {
			return math.Inf(1)
		}
		return sq.EstCard
	}

	// The largest non-delayed subquery drives the pipeline.
	var acc RowStream
	if len(nonDelayed) > 0 {
		drive := 0
		for i, sq := range nonDelayed {
			if effCard(sq) > effCard(nonDelayed[drive]) {
				drive = i
			}
		}
		driveSq := nonDelayed[drive]
		nonDelayed = append(nonDelayed[:drive], nonDelayed[drive+1:]...)
		acc = e.newScanStream(ctx, driveSq, client.PhaseSubquery, prof)
	} else if len(delayed) > 0 {
		// Everything got delayed and SAPE is off or ensureNonDelayed was
		// bypassed; seed with the most selective as an unbound scan.
		best := 0
		for i, sq := range delayed {
			if effCard(sq) < effCard(delayed[best]) {
				best = i
			}
		}
		seed := delayed[best]
		delayed = append(delayed[:best], delayed[best+1:]...)
		acc = e.newScanStream(ctx, seed, client.PhaseSubquery, prof)
	} else {
		// A branch without mandatory subqueries (VALUES/OPTIONAL only)
		// starts from the single empty solution.
		acc = newSliceStream(nil, [][]rdf.Term{{}})
	}

	accHas := func(sq *Subquery) bool {
		have := map[string]bool{}
		for _, v := range acc.Vars() {
			have[v] = true
		}
		for _, v := range sq.Vars() {
			if have[v] {
				return true
			}
		}
		return false
	}
	// peek finds the best next subquery in sqs without removing it:
	// connected to the stream first, most selective among those (or among
	// all when nothing connects). take commits the choice.
	peek := func(sqs []*Subquery) (int, bool) {
		best, bestConn := -1, false
		for i, sq := range sqs {
			conn := accHas(sq)
			switch {
			case best < 0,
				conn && !bestConn,
				conn == bestConn && effCard(sq) < effCard(sqs[best]):
				best, bestConn = i, conn
			}
		}
		return best, bestConn
	}
	take := func(sqs []*Subquery, i int) (*Subquery, []*Subquery) {
		sq := sqs[i]
		return sq, append(sqs[:i], sqs[i+1:]...)
	}

	// Remaining subqueries join greedily by connectivity. A connected
	// non-delayed scan is the cheapest next step (an in-memory build side
	// that must be fetched regardless); otherwise a connected delayed
	// subquery joins as a pipelined bound join — often bridging scans that
	// share no variable with each other, so the cross join below stays a
	// true last resort. Each join widens the stream's variable set, which
	// can connect subqueries that were disconnected a step earlier.
	for len(nonDelayed) > 0 || len(delayed) > 0 {
		ni, nConn := peek(nonDelayed)
		di, dConn := peek(delayed)
		var sq *Subquery
		switch {
		case ni >= 0 && (nConn || di < 0 || !dConn):
			// A non-delayed scan joins whenever one connects, and
			// cross-joins only when no delayed subquery could bridge
			// the gap first.
			sq, nonDelayed = take(nonDelayed, ni)
			build := e.newScanStream(ctx, sq, client.PhaseSubquery, prof)
			acc = e.newHashJoinStream(ctx, acc, build)
		case di >= 0 && dConn:
			sq, delayed = take(delayed, di)
			acc = e.newBoundJoinStream(ctx, acc, sq)
		default:
			// Only delayed subqueries remain and none connects:
			// degrade to an unbound scan under a cross hash join.
			sq, delayed = take(delayed, di)
			build := e.newScanStream(ctx, sq, client.PhaseSubquery, prof)
			acc = e.newHashJoinStream(ctx, acc, build)
		}
	}

	// VALUES blocks from the query text join as in-memory build sides.
	for _, vd := range br.Values {
		acc = e.newHashJoinStream(ctx, acc, newSliceStream(vd.Vars, vd.Rows))
	}

	// OPTIONAL blocks left-join the stream, selective first.
	sort.SliceStable(optionals, func(i, j int) bool {
		return optionals[i].sq.EstCard < optionals[j].sq.EstCard
	})
	for _, ob := range optionals {
		acc = e.newLeftJoinStream(ctx, acc, ob)
	}

	// Branch filters (including those already pushed — reapplying is
	// harmless and catches cross-subquery predicates), alignment to the
	// branch header, and set semantics.
	acc = newFilterStream(acc, br.Filters)
	acc = newAlignStream(acc, br.Vars())
	return newDedupStream(acc), nil
}
