// Package core implements Lusail, the paper's federated SPARQL engine:
//
//   - LADE (Locality-Aware DEcomposition): instance-aware detection of
//     global join variables via FILTER NOT EXISTS check queries
//     (Algorithm 1) and cost-guided decomposition of the query into
//     endpoint-local subqueries (Algorithm 2).
//   - SAPE (Selectivity-Aware Planning and parallel Execution): cardinality
//     estimation from COUNT probes, Chauvenet-filtered μ+σ delay rule,
//     concurrent evaluation of non-delayed subqueries, bound-join (VALUES)
//     evaluation of delayed subqueries with source refinement, and a
//     DP-ordered parallel hash join of subquery results (Algorithms 3).
package core

import (
	"sort"
	"strings"

	"lusail/internal/sparql"
)

// Subquery is an independent unit of execution produced by LADE: a set of
// triple patterns that every relevant endpoint can answer without missing
// results, plus any filters that were pushed into it.
type Subquery struct {
	// Patterns are the triple patterns evaluated together at each endpoint.
	Patterns []sparql.TriplePattern
	// Filters are filter expressions pushed into the subquery (every
	// variable they mention is bound by Patterns).
	Filters []sparql.Expr
	// Sources are the names of the relevant endpoints.
	Sources []string
	// Optional marks a subquery originating from an OPTIONAL block; it is
	// left-joined at the global level.
	Optional bool

	// EstCard is SAPE's estimated cardinality (set during planning).
	EstCard float64
	// CardKnown reports whether EstCard rests on complete statistics:
	// false when any underlying COUNT probe returned a malformed result,
	// so the estimate is partial and the delay heuristics must treat the
	// subquery conservatively rather than trust a number nobody measured.
	CardKnown bool
	// Delayed marks the subquery for bound-join evaluation in SAPE's second
	// phase.
	Delayed bool

	// patternIdx are the indexes of Patterns in the analyzed branch's
	// pattern list, used to look up per-pattern statistics.
	patternIdx []int
}

// Vars returns the sorted variable names bound by the subquery's patterns.
func (sq *Subquery) Vars() []string {
	seen := map[string]bool{}
	for _, tp := range sq.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HasVar reports whether any pattern binds v.
func (sq *Subquery) HasVar(v string) bool {
	for _, tp := range sq.Patterns {
		if tp.HasVar(v) {
			return true
		}
	}
	return false
}

// SharedVars returns the variables the two subqueries have in common.
func (sq *Subquery) SharedVars(other *Subquery) []string {
	var out []string
	for _, v := range sq.Vars() {
		if other.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

// Query renders the subquery as an executable SELECT projecting all its
// variables, with optional extra VALUES bindings appended (used by SAPE's
// bound joins).
func (sq *Subquery) Query(values *sparql.InlineData) *sparql.Query {
	q := sparql.NewSelect(sq.Vars()...)
	q.Distinct = true
	for _, tp := range sq.Patterns {
		q.Where.Elements = append(q.Where.Elements, tp)
	}
	if values != nil && len(values.Vars) > 0 && len(values.Rows) > 0 {
		q.Where.Elements = append(q.Where.Elements, *values)
	}
	for _, f := range sq.Filters {
		q.Where.Elements = append(q.Where.Elements, sparql.Filter{Expr: f})
	}
	return q
}

// String renders a compact human-readable form for logs and tests.
func (sq *Subquery) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, tp := range sq.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(tp.String())
	}
	b.WriteString("}@[")
	b.WriteString(strings.Join(sq.Sources, ","))
	b.WriteString("]")
	if sq.Optional {
		b.WriteString(" OPTIONAL")
	}
	if sq.Delayed {
		b.WriteString(" DELAYED")
	}
	return b.String()
}
