package core

import (
	"encoding/binary"
	"errors"
	"hash/maphash"

	"lusail/internal/eval"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// RowStream is the pull-based operator interface of the streaming
// execution pipeline (Volcano-style iterators over solution rows). A
// stream is lazy: no endpoint work starts until the first Next. The
// contract:
//
//   - Next advances to the next row, returning false at end-of-stream or
//     on error; after false, Err distinguishes the two.
//   - Row returns the current row, aligned to Vars (unbound variables are
//     zero Terms); it is only valid until the next Next or Close.
//   - Close releases the operator and everything beneath it — endpoint
//     requests, goroutines, spill files — on every path, including
//     mid-stream abandonment. It is idempotent. A deliberately closed
//     stream reports no error for the abandonment itself.
//
// Streams are not safe for concurrent use: one goroutine drives Next, Row,
// Err, and Close. Operators respect the context they were built with, so
// cancelling it unblocks any operator waiting on endpoint I/O.
type RowStream interface {
	Vars() []string
	Next() bool
	Row() []rdf.Term
	Err() error
	Close() error
}

// copyRow returns a retained copy of a borrowed row.
func copyRow(row []rdf.Term) []rdf.Term {
	return append([]rdf.Term(nil), row...)
}

// varIndexes maps each source column to its position in target (-1 when
// the target does not carry that variable).
func varIndexes(target, src []string) []int {
	pos := make(map[string]int, len(target))
	for i, v := range target {
		pos[v] = i
	}
	idx := make([]int, len(src))
	for j, v := range src {
		if i, ok := pos[v]; ok {
			idx[j] = i
		} else {
			idx[j] = -1
		}
	}
	return idx
}

// sliceStream serves an in-memory row slice (VALUES blocks, empty
// branches, drained relations).
type sliceStream struct {
	vars []string
	rows [][]rdf.Term
	i    int
	row  []rdf.Term
}

func newSliceStream(vars []string, rows [][]rdf.Term) *sliceStream {
	return &sliceStream{vars: vars, rows: rows}
}

func (s *sliceStream) Vars() []string  { return s.vars }
func (s *sliceStream) Row() []rdf.Term { return s.row }
func (s *sliceStream) Err() error      { return nil }
func (s *sliceStream) Close() error    { s.i = len(s.rows); return nil }

func (s *sliceStream) Next() bool {
	if s.i >= len(s.rows) {
		return false
	}
	s.row = s.rows[s.i]
	s.i++
	return true
}

// alignStream remaps (reorders, projects, or widens) rows to a target
// variable list. Variables absent from the source stay unbound, matching
// how projection zero-fills in qplan.Finalize.
type alignStream struct {
	src  RowStream
	vars []string
	idx  []int // source column j feeds target idx[j] (-1: dropped)
	row  []rdf.Term
}

func newAlignStream(src RowStream, vars []string) RowStream {
	if varsEqual(src.Vars(), vars) {
		return src
	}
	return &alignStream{
		src:  src,
		vars: vars,
		idx:  varIndexes(vars, src.Vars()),
		row:  make([]rdf.Term, len(vars)),
	}
}

func varsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *alignStream) Vars() []string  { return s.vars }
func (s *alignStream) Row() []rdf.Term { return s.row }
func (s *alignStream) Err() error      { return s.src.Err() }
func (s *alignStream) Close() error    { return s.src.Close() }

func (s *alignStream) Next() bool {
	if !s.src.Next() {
		return false
	}
	for i := range s.row {
		s.row[i] = rdf.Term{}
	}
	src := s.src.Row()
	for j, t := range src {
		if i := s.idx[j]; i >= 0 {
			s.row[i] = t
		}
	}
	return true
}

// filterStream keeps the rows passing every filter expression.
type filterStream struct {
	src     RowStream
	filters []sparql.Expr
	binding map[string]rdf.Term
}

func newFilterStream(src RowStream, filters []sparql.Expr) RowStream {
	if len(filters) == 0 {
		return src
	}
	return &filterStream{src: src, filters: filters, binding: make(map[string]rdf.Term, len(src.Vars()))}
}

func (s *filterStream) Vars() []string  { return s.src.Vars() }
func (s *filterStream) Row() []rdf.Term { return s.src.Row() }
func (s *filterStream) Err() error      { return s.src.Err() }
func (s *filterStream) Close() error    { return s.src.Close() }

func (s *filterStream) Next() bool {
	vars := s.src.Vars()
next:
	for s.src.Next() {
		row := s.src.Row()
		clear(s.binding)
		for i, v := range vars {
			if !row[i].IsZero() {
				s.binding[v] = row[i]
			}
		}
		for _, f := range s.filters {
			if !eval.FilterBinding(f, s.binding) {
				continue next
			}
		}
		return true
	}
	return false
}

// dedupStream drops rows already seen, using a 128-bit fingerprint (two
// independent maphash seeds over the TermsKey byte encoding) instead of
// retaining the full row: ~16 bytes per distinct row rather than the row
// itself, the compromise that keeps set semantics inside a bounded-memory
// pipeline. A 128-bit collision — which would silently drop one valid row
// — has probability ~n²/2¹²⁹, negligible at any realistic result size.
type dedupStream struct {
	src    RowStream
	seen   map[[16]byte]struct{}
	s1, s2 maphash.Seed
	buf    []byte
}

func newDedupStream(src RowStream) RowStream {
	return &dedupStream{
		src:  src,
		seen: make(map[[16]byte]struct{}),
		s1:   maphash.MakeSeed(),
		s2:   maphash.MakeSeed(),
	}
}

func (s *dedupStream) Vars() []string  { return s.src.Vars() }
func (s *dedupStream) Row() []rdf.Term { return s.src.Row() }
func (s *dedupStream) Err() error      { return s.src.Err() }
func (s *dedupStream) Close() error    { s.seen = nil; return s.src.Close() }

func (s *dedupStream) Next() bool {
	for s.src.Next() {
		fp := s.fingerprint(s.src.Row())
		if _, dup := s.seen[fp]; dup {
			continue
		}
		s.seen[fp] = struct{}{}
		return true
	}
	return false
}

func (s *dedupStream) fingerprint(row []rdf.Term) [16]byte {
	b := s.buf[:0]
	for _, t := range row {
		b = append(b, byte(t.Kind))
		b = append(b, t.Value...)
		b = append(b, 0x01)
		b = append(b, t.Lang...)
		b = append(b, 0x02)
		b = append(b, t.Datatype...)
		b = append(b, 0x00)
	}
	s.buf = b
	var fp [16]byte
	binary.LittleEndian.PutUint64(fp[:8], maphash.Bytes(s.s1, b))
	binary.LittleEndian.PutUint64(fp[8:], maphash.Bytes(s.s2, b))
	return fp
}

// offsetStream skips the first n rows.
type offsetStream struct {
	src     RowStream
	skip    int
	skipped bool
}

func newOffsetStream(src RowStream, n int) RowStream {
	if n <= 0 {
		return src
	}
	return &offsetStream{src: src, skip: n}
}

func (s *offsetStream) Vars() []string  { return s.src.Vars() }
func (s *offsetStream) Row() []rdf.Term { return s.src.Row() }
func (s *offsetStream) Err() error      { return s.src.Err() }
func (s *offsetStream) Close() error    { return s.src.Close() }

func (s *offsetStream) Next() bool {
	if !s.skipped {
		s.skipped = true
		for i := 0; i < s.skip; i++ {
			if !s.src.Next() {
				return false
			}
		}
	}
	return s.src.Next()
}

// limitStream stops after n rows; closing the pipeline then cancels any
// in-flight endpoint work upstream.
type limitStream struct {
	src  RowStream
	left int
}

func newLimitStream(src RowStream, n int) RowStream {
	if n < 0 {
		return src
	}
	return &limitStream{src: src, left: n}
}

func (s *limitStream) Vars() []string  { return s.src.Vars() }
func (s *limitStream) Row() []rdf.Term { return s.src.Row() }
func (s *limitStream) Err() error      { return s.src.Err() }
func (s *limitStream) Close() error    { return s.src.Close() }

func (s *limitStream) Next() bool {
	if s.left <= 0 {
		return false
	}
	if !s.src.Next() {
		return false
	}
	s.left--
	return true
}

// concatStream streams its sources in order (UNION branches). Sources must
// already be aligned to the same variable list.
type concatStream struct {
	vars []string
	srcs []RowStream
	i    int
	err  error
}

func newConcatStream(vars []string, srcs []RowStream) RowStream {
	if len(srcs) == 1 {
		return srcs[0]
	}
	return &concatStream{vars: vars, srcs: srcs}
}

func (s *concatStream) Vars() []string { return s.vars }
func (s *concatStream) Err() error     { return s.err }

func (s *concatStream) Row() []rdf.Term {
	return s.srcs[s.i].Row()
}

func (s *concatStream) Next() bool {
	for s.i < len(s.srcs) {
		if s.srcs[s.i].Next() {
			return true
		}
		if err := s.srcs[s.i].Err(); err != nil {
			s.err = err
			return false
		}
		s.i++
	}
	s.i = len(s.srcs) - 1 // keep Row() in range after exhaustion
	return false
}

func (s *concatStream) Close() error {
	var errs []error
	for _, src := range s.srcs {
		if err := src.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// drainStream materializes its source and applies qplan.Finalize — the
// blocking tail for solution modifiers that need the complete result
// (ORDER BY, GROUP BY, aggregates). Queries without those modifiers never
// pass through it.
type drainStream struct {
	q       *sparql.Query
	src     RowStream
	started bool
	res     *sparql.Results
	i       int
	row     []rdf.Term
	err     error
}

func newDrainStream(q *sparql.Query, src RowStream) *drainStream {
	return &drainStream{q: q, src: src}
}

func (s *drainStream) Vars() []string {
	if s.res != nil {
		return s.res.Vars
	}
	return s.q.ProjectedVars()
}

func (s *drainStream) Row() []rdf.Term { return s.row }
func (s *drainStream) Err() error      { return s.err }
func (s *drainStream) Close() error    { return s.src.Close() }

func (s *drainStream) Next() bool {
	if s.err != nil {
		return false
	}
	if !s.started {
		s.started = true
		rel := sparql.NewResults(append([]string(nil), s.src.Vars()...))
		//lint:lusail-vet budgetbound -- Finalize (sort/distinct/limit) needs the full relation; inputs are bounded by per-response caps and join spill budgets
		for s.src.Next() {
			rel.Rows = append(rel.Rows, copyRow(s.src.Row()))
		}
		if err := s.src.Err(); err != nil {
			s.err = err
			return false
		}
		res, err := qplan.Finalize(s.q, rel)
		if err != nil {
			s.err = err
			return false
		}
		s.res = res
	}
	if s.i >= len(s.res.Rows) {
		return false
	}
	s.row = s.res.Rows[s.i]
	s.i++
	return true
}
