package core

import (
	"context"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// QueryEarly executes a federated SELECT query and delivers solutions to
// emit as each one comes off the pipeline — the paper's future-work goal
// of "returning fast and early results during federated query execution".
// emit receives one solution at a time and returns false to stop the
// query; returning false cancels all in-flight endpoint work.
//
// Every plan shape streams: rows flow from the first responding endpoint
// through scans, bound joins, and hash joins without waiting for the
// complete result. The returned bool reports whether rows were delivered
// incrementally — false only when a solution modifier forces a blocking
// tail (ORDER BY, GROUP BY, aggregates), in which case emit still
// receives every final row, just only after the result is complete.
//
// Deprecated: QueryEarly predates the cursor API and survives as a thin
// wrapper over it. New code should call Engine.Select and iterate the
// returned *Rows, which exposes the same incremental delivery with
// per-row control, typed errors, and a Profile.
func (e *Engine) QueryEarly(ctx context.Context, query string, emit func(map[string]rdf.Term) bool) (bool, error) {
	rows, err := e.Select(ctx, query)
	if err != nil {
		return false, err
	}
	streamed := earlyEligible(rows.query)
	for rows.Next() {
		if !emit(rows.Binding()) {
			break
		}
	}
	err = rows.Err()
	if cerr := rows.Close(); err == nil {
		err = cerr
	}
	return streamed, err
}

// earlyEligible reports whether the query's modifiers allow incremental
// delivery (no modifier needs the complete result; DISTINCT, OFFSET, and
// LIMIT all stream).
func earlyEligible(q *sparql.Query) bool {
	return q.Form == sparql.SelectForm &&
		!q.HasAggregates() &&
		len(q.GroupBy) == 0 && len(q.OrderBy) == 0
}
