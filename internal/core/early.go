package core

import (
	"context"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// QueryEarly executes a federated query and delivers solutions to emit as
// soon as they are complete — the paper's future-work goal of "returning
// fast and early results during federated query execution" for interactive
// exploration. emit receives one solution at a time and returns false to
// stop the query.
//
// Early delivery applies when LADE decomposes the query into a *single*
// subquery (no global join variables) and the query has no solution
// modifiers that need the complete result (ORDER BY, DISTINCT, aggregates,
// OFFSET, OPTIONAL, VALUES): each endpoint's answers stream to emit the
// moment that endpoint responds, so the first results arrive at the speed
// of the fastest endpoint rather than the slowest. In streaming mode a
// solution present at several endpoints may be delivered more than once
// (bag semantics). Any other query falls back to full evaluation and emits
// the final rows in order.
//
// The returned bool reports whether streaming mode was used. QueryEarly is
// the parse-plan-stream convenience over Engine.Plan and
// Engine.ExecutePlanStream; callers that repeat query shapes should cache
// the Plan and call ExecutePlanStream directly.
func (e *Engine) QueryEarly(ctx context.Context, query string, emit func(map[string]rdf.Term) bool) (bool, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return false, err
	}
	p, err := e.Plan(ctx, q)
	if err != nil {
		return false, err
	}
	streamed, _, err := e.ExecutePlanStream(ctx, p, emit)
	return streamed, err
}

// earlyEligible reports whether the query's modifiers allow incremental
// delivery (no modifier needs the complete result; LIMIT is fine).
func earlyEligible(q *sparql.Query) bool {
	return q.Form == sparql.SelectForm &&
		!q.Distinct && !q.HasAggregates() &&
		len(q.GroupBy) == 0 && len(q.OrderBy) == 0 && q.Offset == 0
}
