package core

import (
	"context"
	"fmt"
	"lusail/internal/client"
	"sync"
	"sync/atomic"

	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// QueryEarly executes a federated query and delivers solutions to emit as
// soon as they are complete — the paper's future-work goal of "returning
// fast and early results during federated query execution" for interactive
// exploration. emit receives one solution at a time and returns false to
// stop the query.
//
// Early delivery applies when LADE decomposes the query into a *single*
// subquery (no global join variables) and the query has no solution
// modifiers that need the complete result (ORDER BY, DISTINCT, aggregates,
// OFFSET, OPTIONAL, VALUES): each endpoint's answers stream to emit the
// moment that endpoint responds, so the first results arrive at the speed
// of the fastest endpoint rather than the slowest. In streaming mode a
// solution present at several endpoints may be delivered more than once
// (bag semantics). Any other query falls back to full evaluation and emits
// the final rows in order.
//
// The returned bool reports whether streaming mode was used.
func (e *Engine) QueryEarly(ctx context.Context, query string, emit func(map[string]rdf.Term) bool) (bool, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return false, err
	}
	if !earlyEligible(q) {
		return false, e.emitAll(ctx, q, emit)
	}
	branches, err := qplan.Normalize(q)
	if err != nil {
		return false, err
	}
	if len(branches) != 1 {
		return false, e.emitAll(ctx, q, emit)
	}
	br := branches[0]
	if len(br.Optionals) > 0 || len(br.Values) > 0 {
		return false, e.emitAll(ctx, q, emit)
	}

	// Plan as usual: sources, stats, GJVs, decomposition.
	sources := make([][]string, len(br.Patterns))
	err = e.pool.ForEach(ctx, len(br.Patterns), func(i int) error {
		s, err := e.sel.RelevantSources(ctx, br.Patterns[i])
		if err != nil {
			return err
		}
		sources[i] = s
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, s := range sources {
		if len(s) == 0 {
			return true, nil // provably empty: nothing to emit
		}
	}
	stats, err := e.collectStats(ctx, br, sources)
	if err != nil {
		return false, err
	}
	gjv, err := e.detectGJVs(ctx, br.Patterns, sources)
	if err != nil {
		return false, err
	}
	sqs := e.decompose(br, sources, gjv, stats)
	if len(sqs) != 1 {
		// A global join is needed; results are only complete after it.
		return false, e.emitAll(ctx, q, emit)
	}

	// Streaming mode: one request per endpoint, rows forwarded as each
	// response lands.
	sq := sqs[0]
	vars := q.ProjectedVars()
	var stopped atomic.Bool
	var emitMu sync.Mutex
	emitted := 0
	limit := q.Limit

	queryText := sq.Query(nil).String()
	runErr := e.pool.ForEachGated(ctx, sq.Sources, e.gate(),
		e.onRejectDegrade(ctx, client.PhaseSubquery, sq.Sources), func(i int) error {
			if stopped.Load() {
				return nil
			}
			res, err := e.queryEndpoint(ctx, client.PhaseSubquery, sq.Sources[i], queryText)
			if err != nil {
				if e.degrade(ctx, client.PhaseSubquery, sq.Sources[i], err) {
					return nil
				}
				return err
			}
			rel := qplan.ApplyFilters(res, br.Filters)
			emitMu.Lock()
			defer emitMu.Unlock()
			for r := range rel.Rows {
				if stopped.Load() {
					return nil
				}
				if limit >= 0 && emitted >= limit {
					stopped.Store(true)
					return nil
				}
				b := rel.Binding(r)
				out := make(map[string]rdf.Term, len(vars))
				for _, v := range vars {
					if t, ok := b[v]; ok {
						out[v] = t
					}
				}
				emitted++
				if !emit(out) {
					stopped.Store(true)
					return nil
				}
			}
			return nil
		})
	if runErr != nil && !stopped.Load() {
		return true, runErr
	}
	return true, nil
}

// earlyEligible reports whether the query's modifiers allow incremental
// delivery (no modifier needs the complete result; LIMIT is fine).
func earlyEligible(q *sparql.Query) bool {
	return q.Form == sparql.SelectForm &&
		!q.Distinct && !q.HasAggregates() &&
		len(q.GroupBy) == 0 && len(q.OrderBy) == 0 && q.Offset == 0
}

// emitAll runs the full pipeline and emits the final rows.
func (e *Engine) emitAll(ctx context.Context, q *sparql.Query, emit func(map[string]rdf.Term) bool) error {
	res, _, err := e.Query(ctx, q)
	if err != nil {
		return err
	}
	if res.IsBoolean {
		return fmt.Errorf("lusail: QueryEarly does not support ASK queries")
	}
	for i := range res.Rows {
		if !emit(res.Binding(i)) {
			return nil
		}
	}
	return nil
}
